//! # preferred-repairs
//!
//! A complete Rust implementation of **“Dichotomies in the Complexity
//! of Preferred Repairs”** (Ronald Fagin, Benny Kimelfeld, Phokion G.
//! Kolaitis — PODS 2015): the framework of prioritized database
//! repairs under functional dependencies, every polynomial repair-
//! checking algorithm in the paper, both dichotomy classifiers, the
//! hardness gadgets, and consistent query answering over preferred
//! repairs.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`data`] | `rpr-data` | values, facts, instances, bitsets |
//! | [`fd`] | `rpr-fd` | FD theory: closures, implication, covers, keys, conflict graphs |
//! | [`priority`] | `rpr-priority` | priority relations, prioritizing instances, completions |
//! | [`core`] | `rpr-core` | the checking algorithms (Figure 2, Figure 4, §7.2, oracles, dispatchers) |
//! | [`classify`] | `rpr-classify` | the Theorem 3.1/6.1 and 7.1/7.6 classifiers |
//! | [`reductions`] | `rpr-reductions` | the Lemma 5.2 gadget and the Π framework |
//! | [`cqa`] | `rpr-cqa` | preferred consistent query answering |
//! | [`gen`] | `rpr-gen` | the running example and synthetic workloads |
//! | [`format`] | `rpr-format` | the `.rpr` text / `.rprb` binary formats, queries, fingerprints |
//! | [`serve`] | `rpr-serve` | the concurrent HTTP repair-checking service |
//!
//! ## Quickstart
//!
//! ```
//! use preferred_repairs::prelude::*;
//!
//! // Schema: Emp(name, dept) where name determines dept.
//! let sig = Signature::new([("Emp", 2)]).unwrap();
//! let schema = Schema::from_named(sig.clone(), [("Emp", &[1][..], &[2][..])]).unwrap();
//!
//! // An inconsistent instance: Alice appears in two departments.
//! let mut instance = Instance::new(sig);
//! let a_eng = instance.insert_named("Emp", ["alice".into(), "eng".into()]).unwrap();
//! let a_hr = instance.insert_named("Emp", ["alice".into(), "hr".into()]).unwrap();
//! instance.insert_named("Emp", ["bob".into(), "eng".into()]).unwrap();
//!
//! // Prefer the engineering record (e.g. it is newer).
//! let priority = PriorityRelation::new(instance.len(), [(a_eng, a_hr)]).unwrap();
//! let pi = PrioritizedInstance::conflict_restricted(&schema, instance.clone(), priority).unwrap();
//!
//! // The dispatcher classifies the schema (single FD ⇒ PTIME) and checks.
//! let checker = GRepairChecker::new(schema);
//! let j = instance.set_of([a_eng, FactId(2)]);
//! assert!(checker.check(&pi, &j).unwrap().is_optimal());
//! let j_bad = instance.set_of([a_hr, FactId(2)]);
//! assert!(!checker.check(&pi, &j_bad).unwrap().is_optimal());
//! ```

pub use rpr_classify as classify;
pub use rpr_cli as cli;
pub use rpr_core as core;
pub use rpr_cqa as cqa;
pub use rpr_data as data;
pub use rpr_engine as engine;
pub use rpr_fd as fd;
pub use rpr_format as format;
pub use rpr_gen as gen;
pub use rpr_policy as policy;
pub use rpr_priority as priority;
pub use rpr_reductions as reductions;
pub use rpr_serve as serve;

/// The most common imports, for `use preferred_repairs::prelude::*`.
pub mod prelude {
    pub use rpr_classify::{
        classify_schema, classify_schema_ccp, CcpClass, Complexity, SchemaClass,
    };
    pub use rpr_core::{CcpChecker, CheckOutcome, GRepairChecker, Improvement, Method};
    pub use rpr_data::{AttrSet, Fact, FactId, FactSet, Instance, Signature, Tuple, Value};
    pub use rpr_engine::{Budget, BudgetReport, CancelToken, Outcome};
    pub use rpr_fd::{ConflictGraph, Fd, Schema};
    pub use rpr_priority::{PrioritizedInstance, PriorityBuilder, PriorityMode, PriorityRelation};
}
