//! # rpr-engine — bounded execution for the dichotomy's hard side
//!
//! Half of this workspace is *intentionally* intractable: the paper's
//! dichotomy puts globally-optimal repair checking on the coNP-complete
//! side for most schemas, and the brute oracles, exact enumerators, and
//! CQA counting inherit that blow-up by design. This crate is the
//! execution-control layer that makes every such entry point fail
//! predictably instead of hanging or crashing:
//!
//! * [`Budget`] — a wall-clock deadline plus a work-unit allowance,
//!   shared (and summed) across concurrent workers, charged at loop
//!   granularity by the searches.
//! * [`CancelToken`] — cooperative cancellation, polled on every charge
//!   and between batch candidates.
//! * [`Outcome`] — the typed verdict `Done | Exceeded | Cancelled |
//!   Panicked`, carrying partial results and a machine-readable
//!   [`BudgetReport`] so callers degrade gracefully to a cheaper answer.
//! * [`faults`] (cfg-gated) — deterministic injection of worker panics,
//!   slowdowns, and mid-batch cancellations for the robustness suites.
//!
//! The crate is dependency-free and knows nothing about repairs; the
//! checking/enumeration/counting crates thread these primitives through
//! their exponential paths.

#![warn(missing_docs)]

pub mod budget;
pub mod cancel;
#[cfg(feature = "faults")]
pub mod faults;
pub mod outcome;

pub use budget::{Budget, BudgetReport, ExceedReason, Stop};
pub use cancel::CancelToken;
#[cfg(feature = "faults")]
pub use faults::FaultPlan;
pub use outcome::{describe_panic, Outcome, PanicReport};
