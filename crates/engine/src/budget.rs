//! Wall-clock deadlines and work-unit budgets.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a budget stopped the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExceedReason {
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The work-unit allowance ran out.
    WorkExhausted,
}

impl std::fmt::Display for ExceedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExceedReason::DeadlineExpired => write!(f, "deadline expired"),
            ExceedReason::WorkExhausted => write!(f, "work budget exhausted"),
        }
    }
}

/// A machine-readable account of an exhausted budget, attached to every
/// [`Outcome::Exceeded`](crate::Outcome::Exceeded) so callers (and the
/// CLI) can tell *how far* the computation got and *which* limit it hit.
#[must_use]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetReport {
    /// Which limit stopped the computation.
    pub reason: ExceedReason,
    /// Work units charged before stopping.
    pub work_done: u64,
    /// The work allowance, if one was set.
    pub max_work: Option<u64>,
    /// Wall-clock time elapsed when the budget tripped.
    pub elapsed: Duration,
    /// The deadline, if one was set.
    pub deadline: Option<Duration>,
}

impl BudgetReport {
    /// Renders the report as a single JSON object (no external
    /// dependencies; the fields are flat scalars).
    pub fn to_json(&self) -> String {
        let reason = match self.reason {
            ExceedReason::DeadlineExpired => "deadline-expired",
            ExceedReason::WorkExhausted => "work-exhausted",
        };
        let max_work = self.max_work.map_or_else(|| "null".to_owned(), |w| w.to_string());
        let deadline_ms = self
            .deadline
            .map_or_else(|| "null".to_owned(), |d| format!("{:.3}", d.as_secs_f64() * 1e3));
        format!(
            "{{\"reason\":\"{reason}\",\"work_done\":{},\"max_work\":{max_work},\"elapsed_ms\":{:.3},\"deadline_ms\":{deadline_ms}}}",
            self.work_done,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

impl std::fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} work unit(s) in {:.1?}", self.reason, self.work_done, self.elapsed)
    }
}

/// Why a bounded computation stopped before producing a full answer.
///
/// This is the control-flow error of the engine: budgeted loops
/// propagate it with `?` and the public entry points convert it into an
/// [`Outcome`](crate::Outcome) carrying whatever partial result exists.
#[must_use]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stop {
    /// A budget limit tripped.
    Exceeded(BudgetReport),
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for Stop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stop::Exceeded(r) => write!(f, "budget exceeded: {r}"),
            Stop::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for Stop {}

/// How often [`Budget::step`] polls the wall clock: every
/// `POLL_PERIOD` work units. Polling `Instant::now()` on every step
/// would dominate cheap search steps; polling every 256 keeps the
/// deadline-overshoot below a few microseconds of work while making the
/// per-step cost a single relaxed `fetch_add` plus a relaxed load.
const POLL_PERIOD: u64 = 256;

/// An execution budget: wall-clock deadline + work-unit allowance +
/// cooperative cancellation, shared across every worker of a bounded
/// computation.
///
/// * **Work units** are algorithm steps: one recursion node in the
///   exponential searches, one candidate in a batch, one pair in a
///   pairwise filter. Charging is a relaxed atomic add, so one `Budget`
///   can meter concurrent workers and the limit applies to their *sum*.
/// * **Deadline** is polled every [`POLL_PERIOD`] charged units (and at
///   every [`checkpoint`](Budget::checkpoint)), so a deadline is
///   honoured within the time it takes to execute 256 cheap steps.
/// * **Cancellation** is polled on every charge.
///
/// A default budget is unlimited — `Budget::unlimited().step()` never
/// fails — which lets bounded entry points serve as the only
/// implementation path without penalising unbounded callers.
#[derive(Debug)]
pub struct Budget {
    started: Instant,
    deadline_at: Option<Instant>,
    deadline: Option<Duration>,
    max_work: u64,
    work: AtomicU64,
    cancel: CancelToken,
    #[cfg(feature = "faults")]
    faults: Option<crate::faults::FaultPlan>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (work is still counted, for reporting).
    pub fn unlimited() -> Self {
        Budget {
            started: Instant::now(),
            deadline_at: None,
            deadline: None,
            max_work: u64::MAX,
            work: AtomicU64::new(0),
            cancel: CancelToken::new(),
            #[cfg(feature = "faults")]
            faults: None,
        }
    }

    /// Sets a wall-clock deadline, measured from *now*.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.started = Instant::now();
        self.deadline_at = Some(self.started + limit);
        self.deadline = Some(limit);
        self
    }

    /// Sets the work-unit allowance.
    pub fn with_max_work(mut self, units: u64) -> Self {
        self.max_work = units;
        self
    }

    /// Attaches an external cancellation token (keep a clone to cancel
    /// from outside).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a deterministic fault plan (testing only).
    #[cfg(feature = "faults")]
    pub fn with_faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// A clone of the budget's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Work units charged so far (across all workers).
    pub fn work_done(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the budget was armed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Charges one work unit. See [`charge`](Budget::charge).
    ///
    /// # Errors
    /// [`Stop`] when a limit trips or the token is cancelled.
    #[inline]
    pub fn step(&self) -> Result<(), Stop> {
        self.charge(1)
    }

    /// Charges `n` work units, then enforces the limits: the work
    /// allowance and cancellation on every call, the deadline whenever
    /// the counter crosses a [`POLL_PERIOD`] boundary.
    ///
    /// # Errors
    /// [`Stop::Exceeded`] when a limit trips, [`Stop::Cancelled`] when
    /// the token is cancelled.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), Stop> {
        let w = self.work.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if w > self.max_work {
            return Err(Stop::Exceeded(self.report(ExceedReason::WorkExhausted)));
        }
        if self.cancel.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        #[cfg(feature = "faults")]
        self.fault_on_work(w);
        // Poll the clock when the counter crosses a period boundary —
        // and on the very first charge, so an already-expired deadline
        // stops even a computation shorter than one period.
        if w % POLL_PERIOD < n || w == n {
            self.poll_deadline()?;
        }
        Ok(())
    }

    /// Charges `n` work units only if the work allowance can absorb
    /// all of them, returning whether the charge was applied. When the
    /// allowance would trip mid-way the counter is left unchanged and
    /// `Ok(false)` is returned, so a memoized fast path can fall back
    /// to the real computation — which then re-charges the same units
    /// step by step and trips exactly where an uncached run would.
    /// Cancellation and the deadline are polled as in
    /// [`charge`](Budget::charge).
    ///
    /// # Errors
    /// [`Stop::Exceeded`] on deadline expiry, [`Stop::Cancelled`] when
    /// the token is cancelled.
    pub fn try_charge(&self, n: u64) -> Result<bool, Stop> {
        let w = self.work.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if w > self.max_work {
            self.work.fetch_sub(n, Ordering::Relaxed);
            return Ok(false);
        }
        if self.cancel.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        #[cfg(feature = "faults")]
        self.fault_on_work(w);
        if w % POLL_PERIOD < n || w == n {
            self.poll_deadline()?;
        }
        Ok(true)
    }

    /// Polls cancellation and the deadline *without* charging work.
    /// Call between coarse units of work (batch candidates, relations)
    /// so bounds are observed even when no fine-grained steps run.
    ///
    /// # Errors
    /// [`Stop`] when the deadline has passed or the token is cancelled.
    pub fn checkpoint(&self) -> Result<(), Stop> {
        if self.cancel.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        self.poll_deadline()
    }

    fn poll_deadline(&self) -> Result<(), Stop> {
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(Stop::Exceeded(self.report(ExceedReason::DeadlineExpired)));
            }
        }
        Ok(())
    }

    /// Builds a [`BudgetReport`] snapshot for the given reason.
    pub fn report(&self, reason: ExceedReason) -> BudgetReport {
        BudgetReport {
            reason,
            work_done: self.work_done(),
            max_work: (self.max_work != u64::MAX).then_some(self.max_work),
            elapsed: self.elapsed(),
            deadline: self.deadline,
        }
    }

    /// Injected faults riding on the work counter: artificial slowdowns
    /// and scheduled mid-run cancellations.
    #[cfg(feature = "faults")]
    #[inline]
    fn fault_on_work(&self, w: u64) {
        if let Some(plan) = &self.faults {
            plan.on_work(w, &self.cancel);
        }
    }

    /// Panic-injection point for batch workers: panics iff the fault
    /// plan targets `candidate`. No-op without a plan.
    #[cfg(feature = "faults")]
    pub fn fault_panic_point(&self, candidate: usize) {
        if let Some(plan) = &self.faults {
            plan.panic_point(candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.step().unwrap();
        }
        assert_eq!(b.work_done(), 10_000);
    }

    #[test]
    fn work_allowance_trips_exactly() {
        let b = Budget::unlimited().with_max_work(3);
        b.step().unwrap();
        b.step().unwrap();
        b.step().unwrap();
        let stop = b.step().unwrap_err();
        match stop {
            Stop::Exceeded(r) => {
                assert_eq!(r.reason, ExceedReason::WorkExhausted);
                assert_eq!(r.max_work, Some(3));
                assert_eq!(r.work_done, 4);
            }
            Stop::Cancelled => panic!("expected Exceeded"),
        }
    }

    #[test]
    fn deadline_trips_within_poll_granularity() {
        let b = Budget::unlimited().with_deadline(Duration::from_millis(5));
        let t = Instant::now();
        let mut stopped = None;
        for _ in 0..u64::MAX {
            if let Err(s) = b.step() {
                stopped = Some(s);
                break;
            }
        }
        let elapsed = t.elapsed();
        assert!(matches!(
            stopped,
            Some(Stop::Exceeded(BudgetReport { reason: ExceedReason::DeadlineExpired, .. }))
        ));
        assert!(elapsed < Duration::from_millis(100), "deadline massively overshot: {elapsed:?}");
    }

    #[test]
    fn cancellation_is_observed_on_the_next_step() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        b.step().unwrap();
        token.cancel();
        assert_eq!(b.step().unwrap_err(), Stop::Cancelled);
        assert_eq!(b.checkpoint().unwrap_err(), Stop::Cancelled);
    }

    #[test]
    fn checkpoint_does_not_charge() {
        let b = Budget::unlimited().with_max_work(1);
        for _ in 0..100 {
            b.checkpoint().unwrap();
        }
        assert_eq!(b.work_done(), 0);
    }

    #[test]
    fn charges_are_shared_across_threads() {
        let b = Budget::unlimited().with_max_work(1000);
        let stops: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut tripped = false;
                        for _ in 0..500 {
                            if b.step().is_err() {
                                tripped = true;
                                break;
                            }
                        }
                        tripped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // 4×500 = 2000 > 1000: someone must trip, the sum is metered.
        assert!(stops.iter().any(|&t| t));
    }

    #[test]
    fn report_json_is_flat_and_complete() {
        let b = Budget::unlimited().with_max_work(7).with_deadline(Duration::from_millis(250));
        let _ = b.step();
        let json = b.report(ExceedReason::WorkExhausted).to_json();
        assert!(json.contains("\"reason\":\"work-exhausted\""), "{json}");
        assert!(json.contains("\"max_work\":7"), "{json}");
        assert!(json.contains("\"deadline_ms\":250.000"), "{json}");
        assert!(json.contains("\"work_done\":1"), "{json}");
        let unlimited = Budget::unlimited().report(ExceedReason::DeadlineExpired).to_json();
        assert!(unlimited.contains("\"max_work\":null"), "{unlimited}");
        assert!(unlimited.contains("\"deadline_ms\":null"), "{unlimited}");
    }
}
