//! The typed result of a bounded computation.

use crate::budget::{BudgetReport, Stop};
use std::any::Any;

/// A captured worker panic: the payload message plus where it happened.
///
/// Carried by [`Outcome::Panicked`] so one panicking candidate in a
/// batch degrades to a per-candidate verdict instead of unwinding
/// through the scope and taking the sibling results with it.
#[must_use]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicReport {
    /// The panic message (downcast from the payload when it is a
    /// string; a placeholder otherwise).
    pub message: String,
    /// Where the panic was caught (e.g. `"batch candidate 3"`).
    pub context: String,
}

impl PanicReport {
    /// Builds a report from a payload returned by
    /// [`std::panic::catch_unwind`].
    pub fn from_payload(context: impl Into<String>, payload: Box<dyn Any + Send>) -> Self {
        PanicReport { message: describe_panic(payload.as_ref()), context: context.into() }
    }
}

impl std::fmt::Display for PanicReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked in {}: {}", self.context, self.message)
    }
}

/// Extracts a human-readable message from a panic payload.
pub fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The outcome of a bounded computation: done, degraded, or isolated.
///
/// Every bounded entry point of the workspace returns one of these
/// instead of hanging, aborting, or silently truncating:
///
/// * [`Done`](Outcome::Done) — the full answer.
/// * [`Exceeded`](Outcome::Exceeded) — a budget limit tripped; carries
///   whatever partial answer the computation had accumulated plus a
///   machine-readable [`BudgetReport`].
/// * [`Cancelled`](Outcome::Cancelled) — the
///   [`CancelToken`](crate::CancelToken) fired; carries the partial
///   answer.
/// * [`Panicked`](Outcome::Panicked) — a worker panicked and the panic
///   was isolated to this result instead of unwinding the caller.
///
/// The enum is `#[must_use]`: a dropped `Outcome` is almost always a
/// bug (the degraded cases silently vanish).
#[must_use = "an Outcome may be Exceeded/Cancelled/Panicked — inspect it, don't drop it"]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The computation completed with a full answer.
    Done(T),
    /// A budget limit tripped; `partial` holds what was computed so far
    /// (when the computation accumulates results) and `report` says
    /// which limit tripped and how far the work got.
    Exceeded {
        /// The partial answer, if the computation produces one.
        partial: Option<T>,
        /// Machine-readable account of the tripped budget.
        report: BudgetReport,
    },
    /// Cooperative cancellation was observed.
    Cancelled {
        /// The partial answer, if the computation produces one.
        partial: Option<T>,
    },
    /// A worker panicked; the panic was contained to this outcome.
    Panicked {
        /// The partial answer, if sibling work completed before or
        /// despite the panic.
        partial: Option<T>,
        /// The captured panic.
        report: PanicReport,
    },
}

impl<T> Outcome<T> {
    /// Converts a [`Stop`] (the internal control-flow error of budgeted
    /// loops) into the matching outcome, attaching a partial answer.
    pub fn from_stop(stop: Stop, partial: Option<T>) -> Self {
        match stop {
            Stop::Exceeded(report) => Outcome::Exceeded { partial, report },
            Stop::Cancelled => Outcome::Cancelled { partial },
        }
    }

    /// Did the computation run to completion?
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }

    /// The full answer, if done.
    pub fn done(self) -> Option<T> {
        match self {
            Outcome::Done(t) => Some(t),
            _ => None,
        }
    }

    /// The full answer or the partial one, whichever exists.
    pub fn into_partial(self) -> Option<T> {
        match self {
            Outcome::Done(t) => Some(t),
            Outcome::Exceeded { partial, .. }
            | Outcome::Cancelled { partial }
            | Outcome::Panicked { partial, .. } => partial,
        }
    }

    /// A reference to the full or partial answer.
    pub fn partial(&self) -> Option<&T> {
        match self {
            Outcome::Done(t) => Some(t),
            Outcome::Exceeded { partial, .. }
            | Outcome::Cancelled { partial }
            | Outcome::Panicked { partial, .. } => partial.as_ref(),
        }
    }

    /// The budget report, when the outcome is `Exceeded`.
    pub fn budget_report(&self) -> Option<&BudgetReport> {
        match self {
            Outcome::Exceeded { report, .. } => Some(report),
            _ => None,
        }
    }

    /// Replaces the partial answer of a degraded outcome (`Done` keeps
    /// its full answer). For callers that accumulate their own partial
    /// state and need to attach it to a stop produced elsewhere.
    pub fn with_partial(self, partial: T) -> Outcome<T> {
        match self {
            Outcome::Done(t) => Outcome::Done(t),
            Outcome::Exceeded { report, .. } => {
                Outcome::Exceeded { partial: Some(partial), report }
            }
            Outcome::Cancelled { .. } => Outcome::Cancelled { partial: Some(partial) },
            Outcome::Panicked { report, .. } => {
                Outcome::Panicked { partial: Some(partial), report }
            }
        }
    }

    /// Maps the answer (full and partial alike).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Done(t) => Outcome::Done(f(t)),
            Outcome::Exceeded { partial, report } => {
                Outcome::Exceeded { partial: partial.map(f), report }
            }
            Outcome::Cancelled { partial } => Outcome::Cancelled { partial: partial.map(f) },
            Outcome::Panicked { partial, report } => {
                Outcome::Panicked { partial: partial.map(f), report }
            }
        }
    }

    /// Unwraps `Done`, panicking with `msg` otherwise (tests and
    /// call sites that establish completion by construction).
    #[track_caller]
    pub fn expect_done(self, msg: &str) -> T {
        match self {
            Outcome::Done(t) => t,
            Outcome::Exceeded { report, .. } => panic!("{msg}: budget exceeded ({report})"),
            Outcome::Cancelled { .. } => panic!("{msg}: cancelled"),
            Outcome::Panicked { report, .. } => panic!("{msg}: {report}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{Budget, ExceedReason};

    #[test]
    fn accessors_and_map() {
        let done: Outcome<u32> = Outcome::Done(7);
        assert!(done.is_done());
        assert_eq!(done.clone().done(), Some(7));
        assert_eq!(done.clone().map(|x| x * 2).done(), Some(14));

        let report = Budget::unlimited().report(ExceedReason::WorkExhausted);
        let exceeded = Outcome::Exceeded { partial: Some(3u32), report: report.clone() };
        assert!(!exceeded.is_done());
        assert_eq!(exceeded.partial(), Some(&3));
        assert_eq!(exceeded.clone().into_partial(), Some(3));
        assert_eq!(exceeded.budget_report(), Some(&report));
        assert_eq!(exceeded.map(|x| x + 1).into_partial(), Some(4));

        let cancelled: Outcome<u32> = Outcome::from_stop(Stop::Cancelled, None);
        assert_eq!(cancelled.partial(), None);
    }

    #[test]
    fn panic_payload_description() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        let report = PanicReport::from_payload("candidate 3", p);
        assert_eq!(report.message, "boom 42");
        assert!(report.to_string().contains("candidate 3"));
        let p = std::panic::catch_unwind(|| std::panic::panic_any(17u8)).unwrap_err();
        assert_eq!(PanicReport::from_payload("x", p).message, "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "wanted done: cancelled")]
    fn expect_done_panics_on_degraded() {
        let o: Outcome<()> = Outcome::Cancelled { partial: None };
        o.expect_done("wanted done");
    }
}
