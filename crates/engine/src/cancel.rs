//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones share the flag: hand one clone to the worker (via
/// [`Budget::with_cancel`](crate::Budget::with_cancel)) and keep the
/// other to call [`cancel`](CancelToken::cancel) from a supervisor
/// thread, a signal handler, or a timeout watchdog. Workers observe the
/// token *cooperatively* — the engine polls it at loop granularity
/// (every [`Budget::step`](crate::Budget::step)) and between batch
/// candidates, so cancellation latency is bounded by the longest
/// uninterrupted stretch of work between polls, never by the total
/// remaining work.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn observed_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
