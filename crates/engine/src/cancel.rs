//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones share the flag: hand one clone to the worker (via
/// [`Budget::with_cancel`](crate::Budget::with_cancel)) and keep the
/// other to call [`cancel`](CancelToken::cancel) from a supervisor
/// thread, a signal handler, or a timeout watchdog. Workers observe the
/// token *cooperatively* — the engine polls it at loop granularity
/// (every [`Budget::step`](crate::Budget::step)) and between batch
/// candidates, so cancellation latency is bounded by the longest
/// uninterrupted stretch of work between polls, never by the total
/// remaining work.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Arms a detached watchdog that fires [`cancel`](CancelToken::cancel)
    /// after `delay`. The thread holds only a clone of the flag, so it
    /// never keeps live work alive; if the token is dropped (or already
    /// cancelled) the watchdog's store is a harmless no-op.
    pub fn cancel_after(&self, delay: std::time::Duration) {
        let token = self.clone();
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            token.cancel();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn cancel_after_fires() {
        let t = CancelToken::new();
        t.cancel_after(std::time::Duration::from_millis(5));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !t.is_cancelled() {
            assert!(std::time::Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn observed_across_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || u.cancel());
        });
        assert!(t.is_cancelled());
    }
}
