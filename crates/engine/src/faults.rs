//! Deterministic fault injection (cfg-gated behind the `faults`
//! feature).
//!
//! The robustness suites need to *provoke* the failure modes the engine
//! defends against — a worker panicking mid-batch, a computation
//! crawling toward a deadline, a cancellation arriving halfway through
//! — and they need to provoke them deterministically so differential
//! assertions ("the surviving candidates are bit-identical to an
//! unfaulted run") are meaningful. A [`FaultPlan`] rides inside a
//! [`Budget`](crate::Budget) and fires at exact work counts or
//! candidate indices; production builds compile none of this.

use crate::cancel::CancelToken;
use std::time::Duration;

/// A deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    panic_on: Vec<usize>,
    slow_every: Option<(u64, Duration)>,
    cancel_after_work: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic inside the worker processing batch candidate `index`.
    pub fn panic_on_candidate(mut self, index: usize) -> Self {
        self.panic_on.push(index);
        self
    }

    /// Sleep for `pause` every `every` charged work units (artificial
    /// slowdown, for driving deadline paths deterministically).
    pub fn slow_every(mut self, every: u64, pause: Duration) -> Self {
        assert!(every > 0, "slowdown period must be positive");
        self.slow_every = Some((every, pause));
        self
    }

    /// Cancel the budget's token once `units` work units are charged
    /// (mid-batch cancellation).
    pub fn cancel_after_work(mut self, units: u64) -> Self {
        self.cancel_after_work = Some(units);
        self
    }

    /// Hook called by [`Budget::charge`](crate::Budget::charge) with
    /// the post-charge work count.
    pub(crate) fn on_work(&self, w: u64, cancel: &CancelToken) {
        if let Some((every, pause)) = self.slow_every {
            if w.is_multiple_of(every) {
                std::thread::sleep(pause);
            }
        }
        if let Some(units) = self.cancel_after_work {
            if w >= units {
                cancel.cancel();
            }
        }
    }

    /// Hook called by batch workers before checking a candidate.
    pub(crate) fn panic_point(&self, candidate: usize) {
        if self.panic_on.contains(&candidate) {
            panic!("injected fault: worker panic on candidate {candidate}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{Budget, Stop};

    #[test]
    fn cancel_after_work_fires_through_the_budget() {
        let b = Budget::unlimited().with_faults(FaultPlan::new().cancel_after_work(5));
        let mut stop = None;
        for _ in 0..100 {
            if let Err(s) = b.step() {
                stop = Some(s);
                break;
            }
        }
        assert_eq!(stop, Some(Stop::Cancelled));
        // The cancellation is observed on the step AFTER the threshold
        // charge (the charge itself checked the token first).
        assert!(b.work_done() >= 5 && b.work_done() <= 7, "work={}", b.work_done());
    }

    #[test]
    fn panic_point_targets_exact_candidates() {
        let b = Budget::unlimited().with_faults(FaultPlan::new().panic_on_candidate(2));
        b.fault_panic_point(0);
        b.fault_panic_point(1);
        let p = std::panic::catch_unwind(|| b.fault_panic_point(2));
        assert!(p.is_err());
    }

    #[test]
    fn slowdown_inflates_elapsed_time() {
        let b = Budget::unlimited()
            .with_faults(FaultPlan::new().slow_every(1, Duration::from_millis(2)));
        for _ in 0..5 {
            b.step().unwrap();
        }
        assert!(b.elapsed() >= Duration::from_millis(10));
    }
}
