//! The CLI commands, as library functions returning report strings
//! (the binary in `main.rs` is a thin shell around these, which keeps
//! everything testable).

use crate::format::Workspace;
use crate::query_parse::parse_query;
use rpr_classify::{classify_relation, classify_schema, classify_schema_ccp, RelationClass};
use rpr_core::{
    construct_globally_optimal_repair, is_completion_optimal, is_pareto_optimal, Budget,
    BudgetReport, CheckOutcome, CheckSession, Outcome, PanicReport,
};
use rpr_cqa::{
    answers_session, answers_session_bounded, repairs_under_session, repairs_under_session_bounded,
    RepairSemantics,
};
use rpr_fd::{
    discover_fds_for, is_3nf, is_bcnf, merge_by_lhs, minimal_cover, ConflictGraph, DiscoveryOptions,
};
use std::fmt::Write;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CommandError(pub String);

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CommandError {}

fn fail(msg: impl Into<String>) -> CommandError {
    CommandError(msg.into())
}

/// `rpr classify FILE --explain` — the classification with Armstrong
/// equivalence certificates and §5.2 witnesses.
pub fn classify_explain(ws: &Workspace) -> String {
    let mut out = rpr_classify::explain_schema(&ws.schema);
    out.push_str(&classify(ws));
    out
}

/// `rpr classify FILE` — report both dichotomies for the workspace's
/// schema.
pub fn classify(ws: &Workspace) -> String {
    let mut out = String::new();
    let sig = ws.schema.signature();
    let class = classify_schema(&ws.schema);
    let _ = writeln!(out, "Theorem 3.1 (conflict-restricted priorities): {}", class.complexity());
    for (rel, c) in class.per_relation() {
        let name = sig.symbol(*rel).name();
        match c {
            RelationClass::SingleFd(fd) => {
                let _ = writeln!(out, "  {name}: single FD — Δ ≡ {{{} → {}}}", fd.lhs, fd.rhs);
            }
            RelationClass::TwoKeys(a, b) => {
                let _ = writeln!(out, "  {name}: two keys — Δ ≡ {{{a} → all, {b} → all}}");
            }
            RelationClass::Hard(hc) => {
                let _ = writeln!(out, "  {name}: coNP-complete — {hc}");
            }
        }
    }
    let ccp = classify_schema_ccp(&ws.schema);
    let _ = writeln!(out, "Theorem 7.1 (cross-conflict priorities): {}", ccp.complexity());
    let _ = writeln!(out, "  {ccp:?}");
    out
}

/// `rpr check FILE [NAME]` — check the named candidate repair (or all
/// declared repairs) for global optimality.
///
/// # Errors
/// On unknown repair names, validation failures, or exact-search budget
/// exhaustion.
pub fn check(ws: &Workspace, name: Option<&str>) -> Result<String, CommandError> {
    check_with_jobs(ws, name, 1)
}

/// [`check`] with an explicit worker count for the session's parallel
/// fan-out (`rpr check --jobs N`). One [`CheckSession`] is built for
/// the workspace and shared across all named repairs.
///
/// # Errors
/// On unknown repair names, validation failures, or exact-search budget
/// exhaustion.
pub fn check_with_jobs(
    ws: &Workspace,
    name: Option<&str>,
    jobs: usize,
) -> Result<String, CommandError> {
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let targets: Vec<(String, rpr_data::FactSet)> = match name {
        Some(n) => {
            let j = ws.repair(n).ok_or_else(|| fail(format!("no repair named `{n}`")))?;
            vec![(n.to_owned(), j.clone())]
        }
        None => {
            if ws.repairs.is_empty() {
                return Err(fail("no `repair` declarations in the workspace"));
            }
            ws.repairs.clone()
        }
    };
    let mut out = String::new();
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let cg = session.conflict_graph();
    for (n, j) in targets {
        let outcome = session.check(&j).map_err(|e| fail(format!("`{n}`: {e}")))?;
        let _ = write!(out, "{n}: ");
        match outcome {
            CheckOutcome::Optimal => {
                let _ = writeln!(out, "globally-optimal repair ✓");
            }
            CheckOutcome::Improvable(imp) => {
                let _ = writeln!(out, "NOT globally optimal");
                let _ = writeln!(
                    out,
                    "  improvement: remove {} / add {}",
                    ws.instance.render_set(&imp.removed),
                    ws.instance.render_set(&imp.added)
                );
            }
            CheckOutcome::Inconsistent(a, b) => {
                let _ = writeln!(
                    out,
                    "not even consistent: {} conflicts with {}",
                    ws.instance.fact(a).display(ws.schema.signature()),
                    ws.instance.fact(b).display(ws.schema.signature())
                );
            }
        }
        let _ = writeln!(
            out,
            "  pareto-optimal: {}  completion-optimal: {}",
            is_pareto_optimal(cg, &ws.priority, &j),
            is_completion_optimal(cg, &ws.priority, &j)
        );
    }
    Ok(out)
}

/// `rpr certify FILE [NAME]` — canonical verdict certificates, one
/// JSON document per line, each independently re-checkable with
/// `rpr audit` (or any other implementation of the certificate
/// format). `--classify` certifies the dichotomy classification
/// instead of candidate repairs.
pub fn certify(
    ws: &Workspace,
    name: Option<&str>,
    classify_only: bool,
) -> Result<String, CommandError> {
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let session = CheckSession::new(&ws.schema, &pi);
    let mut out = String::new();
    if classify_only {
        let cert = session.certify_classification();
        out.push_str(&rpr_format::render_certificate(
            &ws.schema,
            &ws.instance,
            &ws.priority,
            &cert,
        ));
        out.push('\n');
        return Ok(out);
    }
    let targets: Vec<(String, rpr_data::FactSet)> = match name {
        Some(n) => {
            let j = ws.repair(n).ok_or_else(|| fail(format!("no repair named `{n}`")))?;
            vec![(n.to_owned(), j.clone())]
        }
        None => {
            if ws.repairs.is_empty() {
                return Err(fail("no `repair` declarations in the workspace"));
            }
            ws.repairs.clone()
        }
    };
    for (n, j) in targets {
        let outcome = session.check(&j).map_err(|e| fail(format!("`{n}`: {e}")))?;
        let cert = session.certify(&j, &outcome);
        out.push_str(&rpr_format::render_certificate(
            &ws.schema,
            &ws.instance,
            &ws.priority,
            &cert,
        ));
        out.push('\n');
    }
    Ok(out)
}

/// `rpr audit FILE` — re-validates certificates (one JSON document per
/// non-empty line, as `rpr certify` emits them) with the independent
/// `rpr-audit` checker. Returns the per-line report and whether every
/// certificate passed.
pub fn audit(text: &str) -> (String, bool) {
    let mut out = String::new();
    let mut all_ok = true;
    let mut total = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        total += 1;
        match rpr_audit::audit(line) {
            Ok(report) => {
                let what = match &report.verdict {
                    Some(v) => format!("check verdict `{v}`"),
                    None => report.kind.clone(),
                };
                let _ = writeln!(
                    out,
                    "line {}: OK — {what} ({} facts, {} relations)",
                    i + 1,
                    report.facts,
                    report.relations
                );
            }
            Err(e) => {
                all_ok = false;
                let _ = writeln!(out, "line {}: FAILED — {e}", i + 1);
            }
        }
    }
    if total == 0 {
        return ("no certificates found (expected one JSON document per line)\n".to_owned(), false);
    }
    let _ = writeln!(
        out,
        "{total} certificate(s): {}",
        if all_ok { "all valid" } else { "AUDIT FAILED" }
    );
    (out, all_ok)
}

fn semantics_from(name: &str) -> Result<RepairSemantics, CommandError> {
    name.parse().map_err(CommandError)
}

/// How a bounded command run ended — drives the binary's exit code
/// (`0` done, `4` budget-exceeded-partial, `5` cancelled).
#[derive(Clone, Debug)]
pub enum RunStatus {
    /// The command ran to completion.
    Done,
    /// A budget limit tripped; the report text holds whatever partial
    /// result could be certified.
    Exceeded(BudgetReport),
    /// The cancel token fired.
    Cancelled,
    /// A worker panic was isolated into the result.
    Panicked(PanicReport),
}

/// The result of a bounded command: the report text plus how the run
/// ended.
#[derive(Clone, Debug)]
pub struct BoundedRun {
    /// The human-readable report (a partial one on degraded runs).
    pub report: String,
    /// How the run ended.
    pub status: RunStatus,
}

fn status_of<T>(outcome: &Outcome<T>) -> RunStatus {
    match outcome {
        Outcome::Done(_) => RunStatus::Done,
        Outcome::Exceeded { report, .. } => RunStatus::Exceeded(report.clone()),
        Outcome::Cancelled { .. } => RunStatus::Cancelled,
        Outcome::Panicked { report, .. } => RunStatus::Panicked(report.clone()),
    }
}

/// [`check_with_jobs`] under an engine [`Budget`]: all candidates run
/// through the session's bounded batch checker, each with its own
/// per-candidate verdict. One panicking or budget-tripping candidate
/// degrades only its own line; completed verdicts are reported as
/// usual.
///
/// # Errors
/// On unknown repair names or validation failures (degradation is not
/// an error — it is reported in the [`RunStatus`]).
pub fn check_bounded_with_jobs(
    ws: &Workspace,
    name: Option<&str>,
    jobs: usize,
    budget: &Budget,
) -> Result<BoundedRun, CommandError> {
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let targets: Vec<(String, rpr_data::FactSet)> = match name {
        Some(n) => {
            let j = ws.repair(n).ok_or_else(|| fail(format!("no repair named `{n}`")))?;
            vec![(n.to_owned(), j.clone())]
        }
        None => {
            if ws.repairs.is_empty() {
                return Err(fail("no `repair` declarations in the workspace"));
            }
            ws.repairs.clone()
        }
    };
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let js: Vec<rpr_data::FactSet> = targets.iter().map(|(_, j)| j.clone()).collect();
    let outcomes = session.check_batch_bounded(&js, budget);
    let mut out = String::new();
    let mut status = RunStatus::Done;
    for ((n, _), outcome) in targets.iter().zip(&outcomes) {
        let _ = write!(out, "{n}: ");
        match outcome {
            Outcome::Done(CheckOutcome::Optimal) => {
                let _ = writeln!(out, "globally-optimal repair ✓");
            }
            Outcome::Done(CheckOutcome::Improvable(imp)) => {
                let _ = writeln!(out, "NOT globally optimal");
                let _ = writeln!(
                    out,
                    "  improvement: remove {} / add {}",
                    ws.instance.render_set(&imp.removed),
                    ws.instance.render_set(&imp.added)
                );
            }
            Outcome::Done(CheckOutcome::Inconsistent(a, b)) => {
                let _ = writeln!(
                    out,
                    "not even consistent: {} conflicts with {}",
                    ws.instance.fact(*a).display(ws.schema.signature()),
                    ws.instance.fact(*b).display(ws.schema.signature())
                );
            }
            Outcome::Exceeded { report, .. } => {
                let _ = writeln!(out, "undecided — budget exceeded ({report})");
            }
            Outcome::Cancelled { .. } => {
                let _ = writeln!(out, "undecided — cancelled");
            }
            Outcome::Panicked { report, .. } => {
                let _ = writeln!(out, "undecided — {report}");
            }
        }
        // Cancellation dominates (the whole run was interrupted); a
        // budget trip dominates a panic (the panic is per-candidate).
        status = match (status, status_of(outcome)) {
            (RunStatus::Cancelled, _) | (_, RunStatus::Cancelled) => RunStatus::Cancelled,
            (s @ RunStatus::Exceeded(_), _) => s,
            (_, s @ RunStatus::Exceeded(_)) => s,
            (s @ RunStatus::Panicked(_), _) => s,
            (_, s @ RunStatus::Panicked(_)) => s,
            (RunStatus::Done, RunStatus::Done) => RunStatus::Done,
        };
    }
    Ok(BoundedRun { report: out, status })
}

/// [`repairs_with_jobs`] under an engine [`Budget`]. On degradation the
/// report lists the certified partial repair set (when the semantics
/// admits one — see `rpr_cqa::repairs_under_bounded`).
///
/// # Errors
/// On bad semantics names.
pub fn repairs_bounded_with_jobs(
    ws: &Workspace,
    semantics: &str,
    jobs: usize,
    budget: &Budget,
) -> Result<BoundedRun, CommandError> {
    let sem = semantics_from(semantics)?;
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let outcome = repairs_under_session_bounded(sem, &session, budget);
    let status = status_of(&outcome);
    let mut out = String::new();
    let partial = !matches!(status, RunStatus::Done);
    match outcome.into_partial() {
        Some(list) => {
            let qualifier = if partial { " (partial)" } else { "" };
            let _ = writeln!(out, "{} {semantics} repair(s){qualifier}:", list.len());
            for j in &list {
                let _ = writeln!(out, "  {}", ws.instance.render_set(j));
            }
        }
        None => {
            let _ = writeln!(out, "no certified {semantics} repairs before the stop");
        }
    }
    Ok(BoundedRun { report: out, status })
}

/// [`cqa_with_jobs`] under an engine [`Budget`]. Partial answers
/// quantify over the partial repair set: certain is an upper bound,
/// possible a lower bound.
///
/// # Errors
/// On query parse errors or bad semantics.
pub fn cqa_bounded_with_jobs(
    ws: &Workspace,
    query: &str,
    semantics: &str,
    jobs: usize,
    budget: &Budget,
) -> Result<BoundedRun, CommandError> {
    let sem = semantics_from(semantics)?;
    let q = parse_query(&ws.instance, query).map_err(|e| fail(e.to_string()))?;
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let outcome = answers_session_bounded(&session, &q, sem, budget);
    let status = status_of(&outcome);
    let mut out = String::new();
    let partial = !matches!(status, RunStatus::Done);
    match outcome.into_partial() {
        Some(res) => {
            let qualifier = if partial { " (partial)" } else { "" };
            let _ = writeln!(
                out,
                "{} {semantics} repair(s) quantified over{qualifier}",
                res.repair_count
            );
            let fmt = |s: &std::collections::BTreeSet<rpr_data::Tuple>| {
                let items: Vec<String> = s.iter().map(|t| t.to_string()).collect();
                items.join(", ")
            };
            let _ = writeln!(out, "certain : {}", fmt(&res.certain));
            let _ = writeln!(out, "possible: {}", fmt(&res.possible));
            if partial {
                let _ =
                    writeln!(out, "(partial: certain is an upper bound, possible a lower bound)");
            }
        }
        None => {
            let _ = writeln!(out, "no certified partial answers before the stop");
        }
    }
    Ok(BoundedRun { report: out, status })
}

/// `rpr repairs FILE [--semantics S] [--budget N]` — enumerate the
/// repairs of the chosen semantics.
///
/// # Errors
/// On bad semantics names or budget exhaustion.
pub fn repairs(ws: &Workspace, semantics: &str, budget: usize) -> Result<String, CommandError> {
    repairs_with_jobs(ws, semantics, budget, 1)
}

/// [`repairs`] with an explicit worker count (`rpr repairs --jobs N`):
/// the globally-optimal filter fans out across candidates on one
/// amortized session.
///
/// # Errors
/// On bad semantics names or budget exhaustion.
pub fn repairs_with_jobs(
    ws: &Workspace,
    semantics: &str,
    budget: usize,
    jobs: usize,
) -> Result<String, CommandError> {
    let sem = semantics_from(semantics)?;
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let list = repairs_under_session(sem, &session, budget)
        .map_err(|e| fail(format!("{e} — raise --budget")))?;
    let mut out = String::new();
    let _ = writeln!(out, "{} {semantics} repair(s):", list.len());
    for j in &list {
        let _ = writeln!(out, "  {}", ws.instance.render_set(j));
    }
    Ok(out)
}

/// `rpr construct FILE` — build one globally-optimal repair
/// (polynomial, any schema).
pub fn construct(ws: &Workspace) -> String {
    let cg = ConflictGraph::new(&ws.schema, &ws.instance);
    let j = construct_globally_optimal_repair(&cg, &ws.priority);
    format!("globally-optimal repair: {}\n", ws.instance.render_set(&j))
}

/// `rpr cqa FILE QUERY [--semantics S] [--budget N]` — certain and
/// possible answers over the chosen repair semantics.
///
/// # Errors
/// On query parse errors, bad semantics, or budget exhaustion.
pub fn cqa(
    ws: &Workspace,
    query: &str,
    semantics: &str,
    budget: usize,
) -> Result<String, CommandError> {
    cqa_with_jobs(ws, query, semantics, budget, 1)
}

/// [`cqa`] with an explicit worker count (`rpr cqa --jobs N`). The
/// session is built once per invocation; the repair quantification
/// reuses its cached conflict graph and classification.
///
/// # Errors
/// On query parse errors, bad semantics, or budget exhaustion.
pub fn cqa_with_jobs(
    ws: &Workspace,
    query: &str,
    semantics: &str,
    budget: usize,
    jobs: usize,
) -> Result<String, CommandError> {
    let sem = semantics_from(semantics)?;
    let q = parse_query(&ws.instance, query).map_err(|e| fail(e.to_string()))?;
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let session = CheckSession::new(&ws.schema, &pi).with_jobs(jobs);
    let res = answers_session(&session, &q, sem, budget)
        .map_err(|e| fail(format!("{e} — raise --budget")))?;
    let mut out = String::new();
    let _ = writeln!(out, "{} {semantics} repair(s) quantified over", res.repair_count);
    let fmt = |s: &std::collections::BTreeSet<rpr_data::Tuple>| {
        let items: Vec<String> = s.iter().map(|t| t.to_string()).collect();
        items.join(", ")
    };
    let _ = writeln!(out, "certain : {}", fmt(&res.certain));
    let _ = writeln!(out, "possible: {}", fmt(&res.possible));
    Ok(out)
}

/// `rpr discover FILE [--max-lhs N]` — mine the FDs holding in the
/// declared facts (ignoring the declared `fd` lines), report them as a
/// minimal cover, and classify the *mined* schema under both theorems.
pub fn discover(ws: &Workspace, max_lhs: usize) -> String {
    let sig = ws.schema.signature();
    let mut out = String::new();
    let mut mined_all = Vec::new();
    for rel in sig.rel_ids() {
        let name = sig.symbol(rel).name();
        let mined = discover_fds_for(&ws.instance, rel, DiscoveryOptions { max_lhs });
        let cover = merge_by_lhs(&minimal_cover(&mined));
        let _ = writeln!(out, "{name}: {} minimal FD(s) hold in the data", cover.len());
        for fd in &cover {
            let _ =
                writeln!(out, "  fd {name}: {} -> {}", render_attrs(fd.lhs), render_attrs(fd.rhs));
        }
        mined_all.extend(cover);
    }
    // Classify the mined dependency set.
    match rpr_fd::Schema::new(sig.clone(), mined_all) {
        Ok(mined_schema) => {
            let class = classify_schema(&mined_schema);
            let ccp = classify_schema_ccp(&mined_schema);
            let _ = writeln!(
                out,
                "mined schema classification: {} (classical), {} (ccp)",
                class.complexity(),
                ccp.complexity()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "mined schema could not be assembled: {e}");
        }
    }
    out
}

fn render_attrs(a: rpr_data::AttrSet) -> String {
    if a.is_empty() {
        "-".to_owned()
    } else {
        a.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
    }
}

/// `rpr stats FILE` — conflict statistics of the workspace instance.
pub fn stats(ws: &Workspace) -> String {
    rpr_fd::ConflictStats::compute(&ws.schema, &ws.instance).to_string()
}

/// `rpr derive FILE "R: 1 -> 2 3"` — test whether the FD is implied by
/// the workspace's declared FDs and, if so, print an Armstrong-axiom
/// proof tree (Theorem 6.3 with receipts).
///
/// # Errors
/// On malformed FD syntax or unknown relations.
pub fn derive(ws: &Workspace, fd_text: &str) -> Result<String, CommandError> {
    let sig = ws.schema.signature();
    let (rel_name, spec) =
        fd_text.split_once(':').ok_or_else(|| fail("expected `NAME: lhs -> rhs`"))?;
    let rel = sig.require(rel_name.trim()).map_err(|e| fail(e.to_string()))?;
    let (lhs_text, rhs_text) =
        spec.split_once("->").ok_or_else(|| fail("expected `lhs -> rhs`"))?;
    let parse_side = |text: &str| -> Result<rpr_data::AttrSet, CommandError> {
        let text = text.trim();
        if text.is_empty() || text == "-" || text == "∅" {
            return Ok(rpr_data::AttrSet::EMPTY);
        }
        let mut out = rpr_data::AttrSet::EMPTY;
        for tok in text.split([' ', ',']).filter(|t| !t.is_empty()) {
            let n: usize = tok.parse().map_err(|_| fail(format!("bad attribute `{tok}`")))?;
            if n == 0 || n > sig.arity(rel) {
                return Err(fail(format!("attribute {n} outside the arity")));
            }
            out = out.insert(n);
        }
        Ok(out)
    };
    let target = rpr_fd::Fd::new(rel, parse_side(lhs_text)?, parse_side(rhs_text)?);
    match rpr_fd::derive(ws.schema.fds(), target) {
        Some(proof) => {
            debug_assert!(proof.verify(ws.schema.fds()));
            Ok(format!(
                "Δ ⊨ {} → {}   ({} inference steps)\n{proof}",
                target.lhs,
                target.rhs,
                proof.len()
            ))
        }
        None => Ok(format!("Δ ⊭ {} → {} (not implied)\n", target.lhs, target.rhs)),
    }
}

/// `rpr lint FILE` — normal-form analysis per relation, connected to
/// the dichotomy: BCNF relations are exactly the key-equivalent ones
/// (the §5.2 Case-1 frontier), and non-BCNF FD sets are where repair
/// checking turns coNP-complete.
pub fn lint(ws: &Workspace) -> String {
    let sig = ws.schema.signature();
    let mut out = String::new();
    for rel in sig.rel_ids() {
        let name = sig.symbol(rel).name();
        let fds = ws.schema.fds_for(rel);
        let arity = sig.arity(rel);
        let bcnf = is_bcnf(fds, arity);
        let third = is_3nf(fds, arity);
        let class = classify_relation(fds, rel, arity);
        let _ = writeln!(
            out,
            "{name}: BCNF={bcnf} 3NF={third} repair-checking={}",
            if class.is_tractable() { "PTIME" } else { "coNP-complete" }
        );
        for v in rpr_fd::violations(fds, arity) {
            let _ = writeln!(
                out,
                "  violation ({:?}): {} -> {}",
                v.kind,
                render_attrs(v.fd.lhs),
                render_attrs(v.fd.rhs)
            );
        }
        if let RelationClass::Hard(hc) = class {
            let _ = writeln!(out, "  hard case: {hc}");
        }
    }
    out
}

/// `rpr delta FILE OPSFILE [--out OUT]` — apply a delta-op script
/// (`insert`/`delete`/`prefer`/`unprefer` lines) to the workspace
/// through the incremental [`rpr_core::DeltaSession`] path, then
/// cross-check the patched artifacts against the brute-force oracle
/// rebuild ([`rpr_format::apply_ops_to_workspace`]). Returns the
/// report plus the mutated workspace (for `--out`).
///
/// # Errors
/// On malformed ops, ops the session rejects (absent facts, deletes
/// with incident edges, priority cycles, …), or — never expected — an
/// incremental/oracle divergence.
pub fn delta(ws: &Workspace, ops_text: &str) -> Result<(String, Workspace), CommandError> {
    use rpr_format::{apply_ops_to_workspace, parse_delta_script, workspace_fingerprint};

    let ops = parse_delta_script(ws.instance.signature(), ops_text)
        .map_err(|e| fail(format!("ops: {e}")))?;
    let before = workspace_fingerprint(ws);
    let pi = ws.prioritized().map_err(|e| fail(e.to_string()))?;
    let mut session = rpr_core::DeltaSession::prepare(std::sync::Arc::new(ws.schema.clone()), pi);
    let report = session.apply_delta(&ops).map_err(|e| fail(e.to_string()))?;
    let mutated = apply_ops_to_workspace(ws, &ops).map_err(|e| fail(e.to_string()))?;
    let after = workspace_fingerprint(&mutated);
    if session.fingerprint() != after {
        return Err(fail("internal: patched session diverged from the oracle rebuild"));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "applied {} op(s): {} insert(s), {} delete(s), {} priority op(s)",
        report.applied, report.inserts, report.deletes, report.priority_ops
    );
    let _ = writeln!(
        out,
        "path: {}",
        if report.rebuilt {
            "rebuilt (churn above the patch threshold)"
        } else {
            "patched in place"
        }
    );
    let _ = writeln!(out, "fingerprint: {} -> {}", before.to_hex(), after.to_hex());
    let _ = writeln!(
        out,
        "facts: {} -> {}; priority edges: {} -> {}",
        ws.instance.len(),
        mutated.instance.len(),
        ws.priority.edge_count(),
        mutated.priority.edge_count()
    );
    Ok((out, mutated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_workspace;
    use rpr_core::GRepairChecker;
    use rpr_priority::PriorityMode;

    const RUNNING: &str = "\
relation BookLoc/3
relation LibLoc/2

fd BookLoc: 1 -> 2
fd LibLoc: 1 -> 2
fd LibLoc: 2 -> 1

fact BookLoc(b1, fiction, lib1)
fact BookLoc(b1, drama, lib3)
fact LibLoc(lib1, almaden)
fact LibLoc(lib1, edenvale)
fact LibLoc(lib3, almaden)

prefer BookLoc(b1, fiction, lib1) > BookLoc(b1, drama, lib3)
prefer LibLoc(lib1, edenvale) > LibLoc(lib1, almaden)

repair good: BookLoc(b1, fiction, lib1); LibLoc(lib1, edenvale); LibLoc(lib3, almaden)
repair bad: BookLoc(b1, drama, lib3); LibLoc(lib1, almaden)
";

    #[test]
    fn classify_reports_both_theorems() {
        let ws = parse_workspace(RUNNING).unwrap();
        let report = classify(&ws);
        assert!(report.contains("Theorem 3.1"));
        assert!(report.contains("PTIME"));
        assert!(report.contains("single FD"));
        assert!(report.contains("two keys"));
        assert!(report.contains("Theorem 7.1"));
        assert!(report.contains("coNP-complete")); // ccp side is hard here
    }

    #[test]
    fn check_reports_optimality_and_witnesses() {
        let ws = parse_workspace(RUNNING).unwrap();
        let report = check(&ws, Some("good")).unwrap();
        assert!(report.contains("good: globally-optimal repair"));
        let report = check(&ws, Some("bad")).unwrap();
        assert!(report.contains("NOT globally optimal"));
        assert!(report.contains("improvement: remove"));
        // All declared repairs when no name given.
        let report = check(&ws, None).unwrap();
        assert!(report.contains("good:"));
        assert!(report.contains("bad:"));
        // Unknown names error.
        assert!(check(&ws, Some("nope")).is_err());
    }

    #[test]
    fn repairs_enumeration_by_semantics() {
        let ws = parse_workspace(RUNNING).unwrap();
        let all = repairs(&ws, "all", 1 << 20).unwrap();
        let global = repairs(&ws, "global", 1 << 20).unwrap();
        let n_all: usize = all.lines().next().unwrap().split(' ').next().unwrap().parse().unwrap();
        let n_global: usize =
            global.lines().next().unwrap().split(' ').next().unwrap().parse().unwrap();
        assert!(n_global <= n_all);
        assert!(n_all >= 2);
        assert!(repairs(&ws, "bogus", 1 << 20).is_err());
    }

    #[test]
    fn construct_is_always_available() {
        let ws = parse_workspace(RUNNING).unwrap();
        let report = construct(&ws);
        assert!(report.contains("globally-optimal repair:"));
        // The constructed repair passes the checker.
        let cg = ConflictGraph::new(&ws.schema, &ws.instance);
        let j = construct_globally_optimal_repair(&cg, &ws.priority);
        let pi = ws.prioritized().unwrap();
        assert!(GRepairChecker::new(ws.schema.clone()).check(&pi, &j).unwrap().is_optimal());
    }

    #[test]
    fn discover_mines_and_classifies() {
        let ws = parse_workspace(RUNNING).unwrap();
        let report = discover(&ws, 2);
        assert!(report.contains("BookLoc:"), "{report}");
        assert!(report.contains("mined schema classification:"), "{report}");
        // The workspace data is DIRTY (lib1 has two locations), so
        // mining correctly reports that no FD constrains LibLoc:
        assert!(report.contains("LibLoc: 0 minimal FD(s)"), "{report}");
        // Mining a *clean* repair of the data recovers LibLoc's key.
        let cg = ConflictGraph::new(&ws.schema, &ws.instance);
        let clean = construct_globally_optimal_repair(&cg, &ws.priority);
        let clean_ws = Workspace {
            schema: ws.schema.clone(),
            instance: ws.instance.materialize(&clean),
            priority: rpr_priority::PriorityRelation::empty(clean.len()),
            mode: PriorityMode::ConflictRestricted,
            repairs: Vec::new(),
        };
        let report = discover(&clean_ws, 2);
        assert!(report.contains("fd LibLoc:"), "{report}");
    }

    #[test]
    fn lint_connects_normal_forms_to_the_dichotomy() {
        let ws = parse_workspace(RUNNING).unwrap();
        let report = lint(&ws);
        // BookLoc's 1→2 over arity 3 violates BCNF, yet is tractable
        // (single FD); LibLoc is BCNF (two keys).
        assert!(report.contains("BookLoc: BCNF=false"), "{report}");
        assert!(report.contains("repair-checking=PTIME"), "{report}");
        assert!(report.contains("LibLoc: BCNF=true"), "{report}");
        assert!(report.contains("violation"), "{report}");
    }

    #[test]
    fn derive_prints_proof_trees() {
        let ws = parse_workspace(RUNNING).unwrap();
        // LibLoc: {1,2} -> 1 is implied (trivially) and 1 -> 2 is given.
        let out = derive(&ws, "LibLoc: 1 -> 2").unwrap();
        assert!(out.contains("Δ ⊨"), "{out}");
        assert!(out.contains("given"), "{out}");
        // BookLoc: 2 -> 1 is not implied.
        let out = derive(&ws, "BookLoc: 2 -> 1").unwrap();
        assert!(out.contains("not implied"), "{out}");
        // Errors.
        assert!(derive(&ws, "no colon").is_err());
        assert!(derive(&ws, "Nope: 1 -> 2").is_err());
        assert!(derive(&ws, "LibLoc: 9 -> 2").is_err());
    }

    #[test]
    fn cqa_answers_tighten_with_semantics() {
        let ws = parse_workspace(RUNNING).unwrap();
        let q = "q(?loc) <- BookLoc(b1, ?g, ?lib), LibLoc(?lib, ?loc)";
        let all = cqa(&ws, q, "all", 1 << 20).unwrap();
        let global = cqa(&ws, q, "global", 1 << 20).unwrap();
        assert!(all.contains("certain : \n") || all.contains("certain :"));
        assert!(global.contains("(edenvale)"));
        assert!(cqa(&ws, "broken", "all", 1 << 20).is_err());
    }

    #[test]
    fn delta_patches_and_cross_checks() {
        let ws = parse_workspace(RUNNING).unwrap();
        let (report, mutated) = delta(
            &ws,
            "# grow the catalog\ninsert BookLoc(b2, poetry, lib3)\nprefer LibLoc(lib3, almaden) > LibLoc(lib1, almaden)\n",
        )
        .unwrap();
        assert!(
            report.contains("applied 2 op(s): 1 insert(s), 0 delete(s), 1 priority op(s)"),
            "{report}"
        );
        assert!(report.contains("patched in place"), "{report}");
        assert!(report.contains("fingerprint: "), "{report}");
        assert_eq!(mutated.instance.len(), ws.instance.len() + 1);
        assert_eq!(mutated.priority.edge_count(), ws.priority.edge_count() + 1);
        // The mutated workspace is itself checkable.
        assert!(check(&mutated, Some("good")).is_ok());
        // Rejections surface the delta grammar / session diagnostics.
        assert!(delta(&ws, "banana\n").unwrap_err().to_string().contains("expected `insert`"));
        assert!(delta(&ws, "delete LibLoc(nope, nope)\n")
            .unwrap_err()
            .to_string()
            .contains("not in the instance"));
    }
}
