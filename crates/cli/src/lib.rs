//! # rpr-cli — the `rpr` command-line front end
//!
//! A small, file-driven interface to the preferred-repairs system:
//!
//! * [`format`] — the `.rpr` workspace format (schema + instance +
//!   priority + named candidate repairs in one text file);
//! * [`query_parse`] — `q(?x) <- R(?x, c), S(c, ?y)` conjunctive-query
//!   syntax;
//! * [`commands`] — `classify`, `check`, `repairs`, `construct`,
//!   `cqa`, `discover`, `lint` as report-returning library functions
//!   (the binary is a thin wrapper, which keeps every command
//!   unit-testable);
//! * [`store`] — the compact binary `.rprb` encoding (`rpr export`);
//!   every command accepts both formats.
//!
//! Sample workspaces live in the repository's `workloads/` directory.

#![warn(missing_docs)]

pub mod commands;
pub mod format;
pub mod query_parse;
pub mod store;
