//! # rpr-cli — the `rpr` command-line front end
//!
//! A small, file-driven interface to the preferred-repairs system:
//!
//! * [`commands`] — `classify`, `check`, `repairs`, `construct`,
//!   `cqa`, `discover`, `lint` as report-returning library functions
//!   (the binary is a thin wrapper, which keeps every command
//!   unit-testable);
//! * [`format`], [`query_parse`], [`store`] — re-exported from
//!   `rpr-format` (the `.rpr` grammar, conjunctive-query syntax and
//!   the `.rprb` binary codec now live there so the `rpr-serve` HTTP
//!   service can parse workspaces without this crate).
//!
//! Sample workspaces live in the repository's `workloads/` directory.

#![warn(missing_docs)]

pub mod commands;
pub use rpr_format::{format, query_parse, store};
