//! `rpr` — the preferred-repairs command line.
//!
//! ```text
//! rpr classify  FILE
//! rpr check     FILE [REPAIR_NAME]
//! rpr repairs   FILE [--semantics all|pareto|global|completion] [--budget N]
//! rpr construct FILE
//! rpr cqa       FILE "q(?x) <- R(?x, c)" [--semantics …] [--budget N]
//! ```
//!
//! `FILE` is a `.rpr` workspace (see `rpr_cli::format`). Exit codes:
//! 0 success, 1 usage error, 2 parse/command error, 4 budget exceeded
//! with a partial result (`--on-exceed partial`), 5 cancelled.

use rpr_cli::commands::{self, BoundedRun, RunStatus};
use rpr_cli::format::parse_workspace;
use rpr_cli::store;
use rpr_core::Budget;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: rpr <command> <file.rpr> [args]

commands:
  classify  FILE [--explain]          report both dichotomy classifications
                                      (--explain adds Armstrong certificates)
  check     FILE [NAME] [--jobs N]    check candidate repair(s) declared in the file
  repairs   FILE [--semantics S] [--budget N] [--jobs N]
                                      enumerate repairs (S: all|pareto|global|completion)
  construct FILE                      build one globally-optimal repair (always PTIME)
  cqa       FILE QUERY [--semantics S] [--budget N] [--jobs N]
                                      certain/possible answers, e.g. \"q(?x) <- R(?x, c)\"
  discover  FILE [--max-lhs N]        mine the FDs holding in the declared facts
  lint      FILE                      normal-form + dichotomy report per relation
  export    FILE OUT                  convert: .rprb writes binary, otherwise text
                                      (all commands read both forms)
  stats     FILE                      conflict statistics of the instance
  derive    FILE \"R: 1 -> 2\"          Armstrong-axiom proof that the FD is implied
  delta     FILE OPSFILE [--out OUT]  apply insert/delete/prefer/unprefer ops through
                                      the incremental session (cross-checked against
                                      a cold rebuild; --out writes the mutated
                                      workspace, .rprb for binary)
  certify   FILE [NAME] [--classify]  emit verdict certificates (one canonical JSON
                                      document per line; --classify certifies the
                                      dichotomy classification instead)
  audit     FILE                      independently re-validate certificates with
                                      rpr-audit (exit 0 all valid, 2 otherwise)
  serve     [--addr HOST:PORT] [--jobs N] [--queue N] [--cache N]
            [--cache-bytes-max N] [--timeout-ms MS] [--max-work N]
            [--idle-timeout-ms MS] [--requests-per-conn N]
            [--max-connections N] [--self-audit]
                                      run the repair-checking HTTP service
                                      (keep-alive; POST /check /classify /cqa /delta,
                                      GET /healthz /metrics; --self-audit re-checks
                                      every issued certificate before responding;
                                      --cache-bytes-max caps shard-store bytes,
                                      evicting cold shards LRU-first)
  request   URL [FILE] [--repairs A,B] [--query Q] [--semantics S]
            [--timeout-ms MS] [--max-work N]
                                      send one request to a running server, e.g.
                                      rpr request http://127.0.0.1:7171/check db.rpr

options:
  --jobs N            worker threads for check/repairs/cqa parallel fan-out
                      (default: available parallelism; 1 = sequential)
  --timeout-ms MS     wall-clock deadline for check/repairs/cqa
  --max-work N        work-unit allowance for check/repairs/cqa
  --cancel-after-ms MS  fire the cooperative cancel token after MS
  --on-exceed MODE    fail (default): a tripped budget is an error (exit 2)
                      partial: report the partial result, exit 4
                      (cancellation always reports partial and exits 5)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(CliResult { report, exit, note }) => {
            print!("{report}");
            if let Some(note) = note {
                eprintln!("{note}");
            }
            ExitCode::from(exit)
        }
        Err(UsageOr::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            ExitCode::from(1)
        }
        Err(UsageOr::Command(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// What the process prints and how it exits.
struct CliResult {
    report: String,
    exit: u8,
    /// An extra stderr line (the budget-report JSON on degraded runs).
    note: Option<String>,
}

impl CliResult {
    fn ok(report: String) -> Self {
        CliResult { report, exit: 0, note: None }
    }
}

enum UsageOr {
    Usage(String),
    Command(String),
}

enum OnExceed {
    Fail,
    Partial,
}

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, UsageOr> {
    match opt_value(args, flag) {
        Some(v) => {
            v.parse().map(Some).map_err(|_| UsageOr::Command(format!("bad {flag} value `{v}`")))
        }
        None => Ok(None),
    }
}

/// Folds a bounded command run into output + exit code under the
/// `--on-exceed` policy.
fn resolve_bounded(run: BoundedRun, on_exceed: &OnExceed) -> Result<CliResult, UsageOr> {
    match run.status {
        RunStatus::Done => Ok(CliResult::ok(run.report)),
        RunStatus::Exceeded(report) => match on_exceed {
            OnExceed::Fail => Err(UsageOr::Command(format!(
                "budget exceeded ({report}) — raise --timeout-ms/--max-work or pass --on-exceed partial"
            ))),
            OnExceed::Partial => {
                Ok(CliResult { report: run.report, exit: 4, note: Some(report.to_json()) })
            }
        },
        RunStatus::Cancelled => {
            Ok(CliResult { report: run.report, exit: 5, note: Some("cancelled".to_owned()) })
        }
        RunStatus::Panicked(report) => Err(UsageOr::Command(report.to_string())),
    }
}

fn run(args: &[String]) -> Result<CliResult, UsageOr> {
    let command = args.first().ok_or_else(|| UsageOr::Usage("missing command".into()))?;
    // Network commands take no workspace file argument up front, and
    // `audit` reads certificate lines rather than a workspace.
    match command.as_str() {
        "serve" => return run_serve(args),
        "request" => return run_request(args),
        "audit" => return run_audit(args),
        _ => {}
    }
    let path = args.get(1).ok_or_else(|| UsageOr::Usage("missing workspace file".into()))?;
    let raw =
        std::fs::read(path).map_err(|e| UsageOr::Command(format!("cannot read {path}: {e}")))?;
    let ws = if store::is_binary(&raw) {
        store::decode(&raw).map_err(|e| UsageOr::Command(e.to_string()))?
    } else {
        let text = String::from_utf8(raw)
            .map_err(|_| UsageOr::Command(format!("{path} is neither UTF-8 text nor .rprb")))?;
        parse_workspace(&text).map_err(|e| UsageOr::Command(e.to_string()))?
    };

    let semantics = opt_value(args, "--semantics").unwrap_or_else(|| "global".to_owned());
    // Worker threads for the check session's parallel fan-out
    // (`0`/absent → available parallelism, shared with `rpr serve`).
    let jobs: usize = rpr_core::resolve_jobs(opt_parse(args, "--jobs")?);
    let budget: usize = match opt_value(args, "--budget") {
        Some(b) => b.parse().map_err(|_| UsageOr::Command(format!("bad --budget value `{b}`")))?,
        None => 1 << 22,
    };

    // Engine execution control: any of these flags routes check/
    // repairs/cqa through the bounded entry points.
    let timeout_ms: Option<u64> = opt_parse(args, "--timeout-ms")?;
    let max_work: Option<u64> = opt_parse(args, "--max-work")?;
    let cancel_after_ms: Option<u64> = opt_parse(args, "--cancel-after-ms")?;
    let on_exceed = match opt_value(args, "--on-exceed").as_deref() {
        None | Some("fail") => OnExceed::Fail,
        Some("partial") => OnExceed::Partial,
        Some(other) => {
            return Err(UsageOr::Command(format!(
                "bad --on-exceed value `{other}` (use fail|partial)"
            )))
        }
    };
    let engine = if timeout_ms.is_some() || max_work.is_some() || cancel_after_ms.is_some() {
        let mut b = Budget::unlimited();
        if let Some(ms) = timeout_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(w) = max_work {
            b = b.with_max_work(w);
        }
        if let Some(ms) = cancel_after_ms {
            b.cancel_token().cancel_after(Duration::from_millis(ms));
        }
        Some(b)
    } else {
        None
    };

    match command.as_str() {
        "classify" => {
            if args.iter().any(|a| a == "--explain") {
                Ok(CliResult::ok(commands::classify_explain(&ws)))
            } else {
                Ok(CliResult::ok(commands::classify(&ws)))
            }
        }
        "check" => {
            let name = args.get(2).filter(|a| !a.starts_with("--")).map(|s| s.as_str());
            match &engine {
                Some(b) => {
                    let run = commands::check_bounded_with_jobs(&ws, name, jobs, b)
                        .map_err(|e| UsageOr::Command(e.to_string()))?;
                    resolve_bounded(run, &on_exceed)
                }
                None => commands::check_with_jobs(&ws, name, jobs)
                    .map(CliResult::ok)
                    .map_err(|e| UsageOr::Command(e.to_string())),
            }
        }
        "repairs" => match &engine {
            Some(b) => {
                let run = commands::repairs_bounded_with_jobs(&ws, &semantics, jobs, b)
                    .map_err(|e| UsageOr::Command(e.to_string()))?;
                resolve_bounded(run, &on_exceed)
            }
            None => commands::repairs_with_jobs(&ws, &semantics, budget, jobs)
                .map(CliResult::ok)
                .map_err(|e| UsageOr::Command(e.to_string())),
        },
        "construct" => Ok(CliResult::ok(commands::construct(&ws))),
        "discover" => {
            let max_lhs: usize = match opt_value(args, "--max-lhs") {
                Some(m) => {
                    m.parse().map_err(|_| UsageOr::Command(format!("bad --max-lhs value `{m}`")))?
                }
                None => 3,
            };
            Ok(CliResult::ok(commands::discover(&ws, max_lhs)))
        }
        "lint" => Ok(CliResult::ok(commands::lint(&ws))),
        "derive" => {
            let fd_text =
                args.get(2).ok_or_else(|| UsageOr::Usage("derive needs an FD argument".into()))?;
            commands::derive(&ws, fd_text)
                .map(CliResult::ok)
                .map_err(|e| UsageOr::Command(e.to_string()))
        }
        "delta" => {
            let ops_path = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageOr::Usage("delta needs an ops file".into()))?;
            let ops_text = std::fs::read_to_string(ops_path)
                .map_err(|e| UsageOr::Command(format!("cannot read {ops_path}: {e}")))?;
            let (mut report, mutated) =
                commands::delta(&ws, &ops_text).map_err(|e| UsageOr::Command(e.to_string()))?;
            if let Some(out) = opt_value(args, "--out") {
                if out.ends_with(".rprb") {
                    let bytes = store::encode(&mutated);
                    std::fs::write(&out, &bytes)
                        .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                    report.push_str(&format!("wrote {out} ({} bytes, binary)\n", bytes.len()));
                } else {
                    let text = rpr_cli::format::render_workspace(&mutated);
                    std::fs::write(&out, &text)
                        .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                    report.push_str(&format!("wrote {out} ({} bytes, text)\n", text.len()));
                }
            }
            Ok(CliResult::ok(report))
        }
        "export" => {
            let out =
                args.get(2).ok_or_else(|| UsageOr::Usage("export needs an output path".into()))?;
            // Extension picks the format: .rprb binary, anything else text.
            if out.ends_with(".rprb") {
                let bytes = store::encode(&ws);
                std::fs::write(out, &bytes)
                    .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                Ok(CliResult::ok(format!("wrote {out} ({} bytes, binary)\n", bytes.len())))
            } else {
                let text = rpr_cli::format::render_workspace(&ws);
                std::fs::write(out, &text)
                    .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                Ok(CliResult::ok(format!("wrote {out} ({} bytes, text)\n", text.len())))
            }
        }
        "certify" => {
            let name = args.get(2).filter(|a| !a.starts_with("--")).map(|s| s.as_str());
            let classify_only = args.iter().any(|a| a == "--classify");
            commands::certify(&ws, name, classify_only)
                .map(CliResult::ok)
                .map_err(|e| UsageOr::Command(e.to_string()))
        }
        "stats" => Ok(CliResult::ok(commands::stats(&ws))),
        "cqa" => {
            let query = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageOr::Usage("cqa needs a query argument".into()))?;
            match &engine {
                Some(b) => {
                    let run = commands::cqa_bounded_with_jobs(&ws, query, &semantics, jobs, b)
                        .map_err(|e| UsageOr::Command(e.to_string()))?;
                    resolve_bounded(run, &on_exceed)
                }
                None => commands::cqa_with_jobs(&ws, query, &semantics, budget, jobs)
                    .map(CliResult::ok)
                    .map_err(|e| UsageOr::Command(e.to_string())),
            }
        }
        other => Err(UsageOr::Usage(format!("unknown command `{other}`"))),
    }
}

/// `rpr audit FILE` — independently re-validate certificates (one
/// JSON document per line, as `rpr certify` and the serve `certify`
/// flag emit them). Exit 0 when every certificate passes, 2 otherwise.
fn run_audit(args: &[String]) -> Result<CliResult, UsageOr> {
    let path =
        args.get(1).ok_or_else(|| UsageOr::Usage("audit needs a certificate file".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| UsageOr::Command(format!("cannot read {path}: {e}")))?;
    let (report, all_ok) = commands::audit(&text);
    Ok(CliResult { report, exit: if all_ok { 0 } else { 2 }, note: None })
}

/// `rpr serve` — run the repair-checking HTTP service until drained
/// (SIGINT/SIGTERM or `POST /shutdown`).
fn run_serve(args: &[String]) -> Result<CliResult, UsageOr> {
    use rpr_serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    // The spread covers `corrupt_certificates`, which only exists when
    // rpr-serve is built with `--features faults`.
    #[allow(clippy::needless_update)]
    let config = ServeConfig {
        addr: opt_value(args, "--addr").unwrap_or(defaults.addr),
        jobs: opt_parse(args, "--jobs")?,
        queue_capacity: opt_parse(args, "--queue")?.unwrap_or(defaults.queue_capacity),
        cache_capacity: opt_parse(args, "--cache")?.unwrap_or(defaults.cache_capacity),
        cache_bytes_max: opt_parse(args, "--cache-bytes-max")?.or(defaults.cache_bytes_max),
        default_timeout_ms: opt_parse(args, "--timeout-ms")?.or(defaults.default_timeout_ms),
        default_max_work: opt_parse(args, "--max-work")?,
        install_signal_handlers: true,
        idle_timeout_ms: opt_parse(args, "--idle-timeout-ms")?.unwrap_or(defaults.idle_timeout_ms),
        max_requests_per_conn: opt_parse(args, "--requests-per-conn")?
            .unwrap_or(defaults.max_requests_per_conn),
        max_connections: opt_parse(args, "--max-connections")?.unwrap_or(defaults.max_connections),
        self_audit: args.iter().any(|a| a == "--self-audit"),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).map_err(|e| UsageOr::Command(format!("cannot bind: {e}")))?;
    let addr = server.local_addr().map_err(|e| UsageOr::Command(e.to_string()))?;
    // Announced on stdout, flushed, so scripts (and the integration
    // test) can pick up an ephemeral port from the first line.
    println!("rpr-serve listening on http://{addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let admitted = server.run().map_err(|e| UsageOr::Command(format!("serve: {e}")))?;
    Ok(CliResult::ok(format!("drained after {admitted} connection(s)\n")))
}

/// `rpr request` — a one-shot client for a running `rpr serve`,
/// packaging a workspace file into the JSON body the service expects.
fn run_request(args: &[String]) -> Result<CliResult, UsageOr> {
    use rpr_serve::{client_call, Json};
    let url = args
        .get(1)
        .ok_or_else(|| UsageOr::Usage("request needs a URL (http://HOST:PORT/ENDPOINT)".into()))?;
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (addr, path) = match rest.split_once('/') {
        Some((addr, path)) => (addr, format!("/{path}")),
        None => return Err(UsageOr::Usage(format!("URL `{url}` names no endpoint path"))),
    };

    let (method, body) = if matches!(path.as_str(), "/healthz" | "/metrics") {
        ("GET", Vec::new())
    } else if path == "/shutdown" {
        ("POST", Vec::new())
    } else {
        // POST endpoints ship the workspace text (binary stores are
        // re-rendered: the wire format is always .rpr text).
        let file = args
            .get(2)
            .filter(|a| !a.starts_with("--"))
            .ok_or_else(|| UsageOr::Usage(format!("request to {path} needs a workspace file")))?;
        let raw = std::fs::read(file)
            .map_err(|e| UsageOr::Command(format!("cannot read {file}: {e}")))?;
        let text = if store::is_binary(&raw) {
            let ws = store::decode(&raw).map_err(|e| UsageOr::Command(e.to_string()))?;
            rpr_cli::format::render_workspace(&ws)
        } else {
            String::from_utf8(raw)
                .map_err(|_| UsageOr::Command(format!("{file} is neither UTF-8 text nor .rprb")))?
        };
        let mut fields = vec![("workspace".to_owned(), Json::str(text))];
        if let Some(names) = opt_value(args, "--repairs") {
            fields
                .push(("repairs".to_owned(), Json::Arr(names.split(',').map(Json::str).collect())));
        }
        if let Some(query) = opt_value(args, "--query") {
            fields.push(("query".to_owned(), Json::str(query)));
        }
        if let Some(semantics) = opt_value(args, "--semantics") {
            fields.push(("semantics".to_owned(), Json::str(semantics)));
        }
        if let Some(ms) = opt_parse::<u64>(args, "--timeout-ms")? {
            fields.push(("timeout_ms".to_owned(), Json::Int(ms as i64)));
        }
        if let Some(work) = opt_parse::<u64>(args, "--max-work")? {
            fields.push(("max_work".to_owned(), Json::Int(work as i64)));
        }
        ("POST", Json::Obj(fields.into_iter().collect()).render().into_bytes())
    };

    let (status, response) = client_call(addr, method, &path, &body)
        .map_err(|e| UsageOr::Command(format!("request to {addr}: {e}")))?;
    let mut report = String::from_utf8_lossy(&response).into_owned();
    if !report.ends_with('\n') {
        report.push('\n');
    }
    // Exit codes mirror the local commands: 200 → 0, budget-exceeded
    // partial → 4, drain/saturation → 5, anything else → 2.
    let exit = match status {
        200 => 0,
        422 => 4,
        503 => 5,
        _ => 2,
    };
    Ok(CliResult { report, exit, note: Some(format!("http status {status}")) })
}
