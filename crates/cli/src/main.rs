//! `rpr` — the preferred-repairs command line.
//!
//! ```text
//! rpr classify  FILE
//! rpr check     FILE [REPAIR_NAME]
//! rpr repairs   FILE [--semantics all|pareto|global|completion] [--budget N]
//! rpr construct FILE
//! rpr cqa       FILE "q(?x) <- R(?x, c)" [--semantics …] [--budget N]
//! ```
//!
//! `FILE` is a `.rpr` workspace (see `rpr_cli::format`). Exit codes:
//! 0 success, 1 usage error, 2 parse/command error.

use rpr_cli::commands;
use rpr_cli::format::parse_workspace;
use rpr_cli::store;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rpr <command> <file.rpr> [args]

commands:
  classify  FILE [--explain]          report both dichotomy classifications
                                      (--explain adds Armstrong certificates)
  check     FILE [NAME] [--jobs N]    check candidate repair(s) declared in the file
  repairs   FILE [--semantics S] [--budget N] [--jobs N]
                                      enumerate repairs (S: all|pareto|global|completion)
  construct FILE                      build one globally-optimal repair (always PTIME)
  cqa       FILE QUERY [--semantics S] [--budget N] [--jobs N]
                                      certain/possible answers, e.g. \"q(?x) <- R(?x, c)\"
  discover  FILE [--max-lhs N]        mine the FDs holding in the declared facts
  lint      FILE                      normal-form + dichotomy report per relation
  export    FILE OUT                  convert: .rprb writes binary, otherwise text
                                      (all commands read both forms)
  stats     FILE                      conflict statistics of the instance
  derive    FILE \"R: 1 -> 2\"          Armstrong-axiom proof that the FD is implied

options:
  --jobs N   worker threads for check/repairs/cqa parallel fan-out
             (default: available parallelism; 1 = sequential)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(UsageOr::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            ExitCode::from(1)
        }
        Err(UsageOr::Command(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

enum UsageOr {
    Usage(String),
    Command(String),
}

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<String, UsageOr> {
    let command = args.first().ok_or_else(|| UsageOr::Usage("missing command".into()))?;
    let path = args.get(1).ok_or_else(|| UsageOr::Usage("missing workspace file".into()))?;
    let raw =
        std::fs::read(path).map_err(|e| UsageOr::Command(format!("cannot read {path}: {e}")))?;
    let ws = if store::is_binary(&raw) {
        store::decode(&raw).map_err(|e| UsageOr::Command(e.to_string()))?
    } else {
        let text = String::from_utf8(raw)
            .map_err(|_| UsageOr::Command(format!("{path} is neither UTF-8 text nor .rprb")))?;
        parse_workspace(&text).map_err(|e| UsageOr::Command(e.to_string()))?
    };

    let semantics = opt_value(args, "--semantics").unwrap_or_else(|| "global".to_owned());
    // Worker threads for the check session's parallel fan-out; the
    // default is the machine's available parallelism.
    let jobs: usize = match opt_value(args, "--jobs") {
        Some(j) => j
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| UsageOr::Command(format!("bad --jobs value `{j}`")))?,
        None => rpr_core::default_jobs(),
    };
    let budget: usize = match opt_value(args, "--budget") {
        Some(b) => b.parse().map_err(|_| UsageOr::Command(format!("bad --budget value `{b}`")))?,
        None => 1 << 22,
    };

    match command.as_str() {
        "classify" => {
            if args.iter().any(|a| a == "--explain") {
                Ok(commands::classify_explain(&ws))
            } else {
                Ok(commands::classify(&ws))
            }
        }
        "check" => {
            let name = args.get(2).filter(|a| !a.starts_with("--")).map(|s| s.as_str());
            commands::check_with_jobs(&ws, name, jobs).map_err(|e| UsageOr::Command(e.to_string()))
        }
        "repairs" => commands::repairs_with_jobs(&ws, &semantics, budget, jobs)
            .map_err(|e| UsageOr::Command(e.to_string())),
        "construct" => Ok(commands::construct(&ws)),
        "discover" => {
            let max_lhs: usize = match opt_value(args, "--max-lhs") {
                Some(m) => {
                    m.parse().map_err(|_| UsageOr::Command(format!("bad --max-lhs value `{m}`")))?
                }
                None => 3,
            };
            Ok(commands::discover(&ws, max_lhs))
        }
        "lint" => Ok(commands::lint(&ws)),
        "derive" => {
            let fd_text =
                args.get(2).ok_or_else(|| UsageOr::Usage("derive needs an FD argument".into()))?;
            commands::derive(&ws, fd_text).map_err(|e| UsageOr::Command(e.to_string()))
        }
        "export" => {
            let out =
                args.get(2).ok_or_else(|| UsageOr::Usage("export needs an output path".into()))?;
            // Extension picks the format: .rprb binary, anything else text.
            if out.ends_with(".rprb") {
                let bytes = store::encode(&ws);
                std::fs::write(out, &bytes)
                    .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                Ok(format!("wrote {out} ({} bytes, binary)\n", bytes.len()))
            } else {
                let text = rpr_cli::format::render_workspace(&ws);
                std::fs::write(out, &text)
                    .map_err(|e| UsageOr::Command(format!("cannot write {out}: {e}")))?;
                Ok(format!("wrote {out} ({} bytes, text)\n", text.len()))
            }
        }
        "stats" => Ok(commands::stats(&ws)),
        "cqa" => {
            let query = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageOr::Usage("cqa needs a query argument".into()))?;
            commands::cqa_with_jobs(&ws, query, &semantics, budget, jobs)
                .map_err(|e| UsageOr::Command(e.to_string()))
        }
        other => Err(UsageOr::Usage(format!("unknown command `{other}`"))),
    }
}
