//! True end-to-end tests of the `rpr` binary: argument handling, exit
//! codes, stdout/stderr wiring, and the text↔binary format bridge.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rpr(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rpr")).args(args).output().expect("binary runs")
}

fn workload(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../workloads");
    p.push(name);
    p.to_string_lossy().into_owned()
}

#[test]
fn classify_succeeds_with_report() {
    let out = rpr(&["classify", &workload("running_example.rpr")]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Theorem 3.1"));
    assert!(stdout.contains("PTIME"));
}

#[test]
fn check_reports_witnesses_and_exit_zero() {
    let out = rpr(&["check", &workload("running_example.rpr"), "J1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("NOT globally optimal"));
    assert!(stdout.contains("improvement: remove"));
}

#[test]
fn usage_errors_exit_one() {
    let out = rpr(&[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"));

    let out = rpr(&["frobnicate", &workload("running_example.rpr")]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn command_errors_exit_two() {
    let out = rpr(&["classify", "/nonexistent/file.rpr"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"));

    let out = rpr(&["check", &workload("running_example.rpr"), "NoSuchRepair"]);
    assert_eq!(out.status.code(), Some(2));

    let out = rpr(&["cqa", &workload("running_example.rpr"), "garbage query"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn export_then_reload_binary() {
    let dir = std::env::temp_dir();
    let out_path = dir.join("rpr_binary_test.rprb");
    let out_str = out_path.to_string_lossy().into_owned();
    let out = rpr(&["export", &workload("running_example.rpr"), &out_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Every command accepts the binary form.
    let out = rpr(&["check", &out_str, "J2"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("globally-optimal repair"));

    let out = rpr(&["repairs", &out_str, "--semantics", "global"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().starts_with("3 global repair(s)"));

    std::fs::remove_file(out_path).ok();
}

#[test]
fn derive_and_lint_and_discover_run() {
    let out = rpr(&["derive", &workload("hard_s4.rpr"), "R4: 1 -> 3"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("transitivity"));

    let out = rpr(&["lint", &workload("hard_s4.rpr")]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("coNP-complete"));

    let out = rpr(&["discover", &workload("source_trust.rpr"), "--max-lhs", "2"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("minimal FD(s)"));
}

#[test]
fn budget_flag_is_parsed_and_enforced() {
    let out = rpr(&["repairs", &workload("running_example.rpr"), "--budget", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("budget"));

    let out = rpr(&["repairs", &workload("running_example.rpr"), "--budget", "nope"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn engine_budget_flags_and_exit_codes() {
    // fail mode (default): a tripped budget is a command error (exit 2),
    // same contract as the legacy --budget flag.
    let out = rpr(&["repairs", &workload("hard_blowup.rpr"), "--max-work", "10000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("budget exceeded"));

    // partial mode: exit 4, the partial repair list on stdout, and a
    // machine-readable budget-report JSON line on stderr.
    let out = rpr(&[
        "repairs",
        &workload("hard_blowup.rpr"),
        "--max-work",
        "10000",
        "--on-exceed",
        "partial",
    ]);
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8(out.stdout).unwrap().contains("(partial)"));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("\"reason\":\"work-exhausted\""), "{stderr}");
    assert!(stderr.contains("\"max_work\":10000"), "{stderr}");

    // A wall-clock deadline trips the same way.
    let out = rpr(&[
        "repairs",
        &workload("hard_blowup.rpr"),
        "--timeout-ms",
        "30",
        "--on-exceed",
        "partial",
    ]);
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8(out.stderr).unwrap().contains("deadline-expired"));

    // Confirming a true repair on the hard side (no witness to find)
    // trips the deadline the same way under check.
    let out = rpr(&[
        "check",
        &workload("hard_blowup.rpr"),
        "J",
        "--timeout-ms",
        "30",
        "--on-exceed",
        "partial",
    ]);
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8(out.stdout).unwrap().contains("undecided"));

    // Cooperative cancellation always reports the partial and exits 5.
    let out = rpr(&["repairs", &workload("hard_blowup.rpr"), "--cancel-after-ms", "20"]);
    assert_eq!(out.status.code(), Some(5));
    assert!(String::from_utf8(out.stderr).unwrap().contains("cancelled"));

    // Bad flag values are command errors.
    let out = rpr(&["repairs", &workload("hard_blowup.rpr"), "--max-work", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    let out = rpr(&["repairs", &workload("hard_blowup.rpr"), "--on-exceed", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bounded_runs_that_finish_exit_zero() {
    // Generous budgets leave the answers (and exit codes) unchanged.
    let out = rpr(&[
        "repairs",
        &workload("running_example.rpr"),
        "--semantics",
        "global",
        "--max-work",
        "1000000",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().starts_with("3 global repair(s)"));

    let out = rpr(&["check", &workload("running_example.rpr"), "J2", "--timeout-ms", "60000"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("globally-optimal repair"));

    let out = rpr(&[
        "cqa",
        &workload("running_example.rpr"),
        "q(?loc) <- BookLoc(b1, ?g, ?l), LibLoc(?l, ?loc)",
        "--semantics",
        "global",
        "--max-work",
        "1000000",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("certain"));
}

#[test]
fn stats_and_text_export_roundtrip() {
    let out = rpr(&["stats", &workload("running_example.rpr")]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("conflicting pairs"), "{stdout}");

    // Binary → text → binary keeps every command working.
    let dir = std::env::temp_dir();
    let bin_path = dir.join("rpr_roundtrip.rprb");
    let txt_path = dir.join("rpr_roundtrip.rpr");
    let bin_str = bin_path.to_string_lossy().into_owned();
    let txt_str = txt_path.to_string_lossy().into_owned();
    assert!(rpr(&["export", &workload("running_example.rpr"), &bin_str]).status.success());
    assert!(rpr(&["export", &bin_str, &txt_str]).status.success());
    let out = rpr(&["check", &txt_str, "J2"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("globally-optimal repair"));
    std::fs::remove_file(bin_path).ok();
    std::fs::remove_file(txt_path).ok();
}

#[test]
fn classify_explain_adds_certificates() {
    let out = rpr(&["classify", &workload("running_example.rpr"), "--explain"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("equivalence certificate"), "{stdout}");
    assert!(stdout.contains("incomparable"), "{stdout}");
}
