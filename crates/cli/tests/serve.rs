//! End-to-end tests of `rpr serve`: a real spawned server process on
//! an ephemeral port, driven over real sockets by `rpr request` and
//! the `client_call` helper. Covers the serving contract: cold vs
//! cached checks, classification, metrics reconciliation,
//! budget-exceeded partials (422), admission control (503), and
//! graceful drain.

use rpr_serve::{client_call, parse_json, Json};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn workload(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../workloads");
    p.push(name);
    p.to_string_lossy().into_owned()
}

/// A spawned `rpr serve` process bound to an ephemeral port. Killed on
/// drop so a failing test never leaks a listener.
struct ServerProc {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rpr"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("server announces its address");
        let addr = line
            .trim()
            .rsplit("http://")
            .next()
            .expect("announcement names the address")
            .to_owned();
        assert!(addr.contains(':'), "unexpected announcement: {line}");
        ServerProc { child, addr, stdout }
    }

    fn call(&self, method: &str, path: &str, body: &str) -> (u16, Json) {
        let (status, raw) =
            client_call(&self.addr, method, path, body.as_bytes()).expect("request round-trips");
        let text = String::from_utf8(raw).expect("response is UTF-8");
        let json = if path == "/metrics" {
            Json::str(text)
        } else {
            parse_json(&text).unwrap_or_else(|e| panic!("bad JSON ({e}): {text}"))
        };
        (status, json)
    }

    /// Drains via `POST /shutdown` and waits for a clean exit.
    fn shutdown(mut self) -> String {
        let (status, _) = self.call("POST", "/shutdown", "");
        assert_eq!(status, 200);
        let exit = self.child.wait().expect("server exits");
        assert!(exit.success(), "server exited with {exit}");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drains stdout");
        // Drop's kill is a no-op: the child already exited.
        rest
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn body_with_workspace(name: &str, extra: &str) -> String {
    let text = std::fs::read_to_string(workload(name)).expect("workload exists");
    let ws = Json::str(text).render();
    format!("{{\"workspace\":{ws}{extra}}}")
}

fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} not exposed:\n{metrics}"))
        .trim()
        .parse()
        .expect("counter is integral")
}

#[test]
fn check_classify_cache_and_metrics_reconcile() {
    let server = ServerProc::spawn(&["--jobs", "2"]);

    // Cold check: all three declared repairs, J2 the optimal one.
    let (status, json) =
        server.call("POST", "/check", &body_with_workspace("running_example.rpr", ""));
    assert_eq!(status, 200, "{json}");
    assert_eq!(json.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(json.get("cached").and_then(Json::as_bool), Some(false));
    let results = json.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), 3);
    let verdict = |name: &str| {
        results
            .iter()
            .find(|r| r.get("repair").and_then(Json::as_str) == Some(name))
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    assert_eq!(verdict("J2").as_deref(), Some("optimal"));
    assert_eq!(verdict("J1").as_deref(), Some("improvable"));

    // Same workspace again: the session cache must hit.
    let (status, json) = server.call(
        "POST",
        "/check",
        &body_with_workspace("running_example.rpr", ",\"repairs\":[\"J2\"]"),
    );
    assert_eq!(status, 200);
    assert_eq!(json.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("results").and_then(Json::as_arr).map(<[Json]>::len), Some(1));

    // Classification rides the same cached session.
    let (status, json) =
        server.call("POST", "/classify", &body_with_workspace("running_example.rpr", ""));
    assert_eq!(status, 200);
    assert_eq!(json.get("complexity").and_then(Json::as_str), Some("ptime"));
    assert_eq!(json.get("mode").and_then(Json::as_str), Some("conflict"));
    assert_eq!(json.get("cached").and_then(Json::as_bool), Some(true));

    // CQA through the service.
    let (status, json) = server.call(
        "POST",
        "/cqa",
        &body_with_workspace(
            "running_example.rpr",
            ",\"query\":\"q(?loc) <- BookLoc(b1, ?g, ?l), LibLoc(?l, ?loc)\",\"semantics\":\"global\"",
        ),
    );
    assert_eq!(status, 200, "{json}");
    assert!(json.get("certain").and_then(Json::as_arr).is_some());

    // Malformed bodies are 400, unknown routes 404.
    let (status, _) = server.call("POST", "/check", "{not json");
    assert_eq!(status, 400);
    let (status, _) = server.call("POST", "/check", "{}");
    assert_eq!(status, 400);
    let (status, _) = server.call("GET", "/nope", "");
    assert_eq!(status, 404);

    // Metrics reconcile with what we sent: 4 successful POSTs + the
    // three failures above (the /metrics GET itself is counted too).
    let (status, metrics) = server.call("GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = metrics.as_str().unwrap().to_owned();
    assert_eq!(counter(&metrics, "rpr_cache_hits_total"), 3);
    assert_eq!(counter(&metrics, "rpr_cache_misses_total"), 1);
    assert!(counter(&metrics, "rpr_requests_total") >= 8);
    assert!(counter(&metrics, "rpr_done_total") >= 4);
    assert_eq!(counter(&metrics, "rpr_bad_request_total"), 3);
    assert!(metrics.contains("rpr_check_latency_seconds_bucket"));

    let tail = server.shutdown();
    assert!(tail.contains("drained after"), "got: {tail}");
}

#[test]
fn budget_exceeded_returns_422_with_partial() {
    let server = ServerProc::spawn(&["--jobs", "1"]);
    // hard_blowup's candidate J needs the coNP-side confirmation sweep;
    // one unit of work cannot finish it.
    let (status, json) =
        server.call("POST", "/check", &body_with_workspace("hard_blowup.rpr", ",\"max_work\":1"));
    assert_eq!(status, 422, "{json}");
    assert_eq!(json.get("status").and_then(Json::as_str), Some("exceeded"));
    let report = json.get("budget_report").expect("budget report attached");
    assert!(report.get("work_done").is_some(), "{report}");
    let results = json.get("results").and_then(Json::as_arr).expect("partial results present");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].get("status").and_then(Json::as_str), Some("exceeded"));
    server.shutdown();
}

#[test]
fn saturated_queue_returns_503_with_retry_after() {
    // `--queue 0` makes every connection arrive over capacity: pure
    // admission-control rejection before any request byte is read.
    let server = ServerProc::spawn(&["--queue", "0"]);
    let (status, raw) = client_call(&server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 503);
    assert!(String::from_utf8_lossy(&raw).contains("saturated"));
    let (status, _) = client_call(&server.addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(status, 503);
    // `/shutdown` is itself turned away at capacity 0, so this server
    // ends by the Drop kill rather than a graceful drain.
}

#[test]
fn rpr_request_round_trip_and_exit_codes() {
    let server = ServerProc::spawn(&[]);
    let url = |path: &str| format!("http://{}{path}", server.addr);

    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["request", &url("/check"), &workload("running_example.rpr"), "--repairs", "J2"])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"verdict\":\"optimal\""), "got: {stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["request", &url("/check"), &workload("hard_blowup.rpr"), "--max-work", "1"])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stdout));

    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["request", &url("/healthz")])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout).unwrap().contains("ok"));

    // Any status outside {200, 422, 503} — here a 404 for an unknown
    // endpoint — exits 2, exactly as the README's mapping documents.
    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["request", &url("/nope"), &workload("running_example.rpr")])
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stderr).contains("http status 404"));

    server.shutdown();
}

#[test]
fn certify_requests_attach_auditable_certificates() {
    // `--self-audit`: the server re-validates every certificate with
    // rpr-audit before responding; genuine traffic must be unaffected.
    let server = ServerProc::spawn(&["--self-audit"]);
    let (status, json) = server.call(
        "POST",
        "/check",
        &body_with_workspace("running_example.rpr", ",\"certify\":true"),
    );
    assert_eq!(status, 200);
    let results = json.get("results").and_then(Json::as_arr).expect("results array");
    assert!(!results.is_empty());
    for entry in results {
        let cert = entry
            .get("certificate")
            .and_then(Json::as_str)
            .expect("each completed candidate carries a certificate");
        let report = rpr_audit::audit(cert).expect("issued certificates re-validate");
        assert_eq!(
            Some(report.verdict.expect("check certificates carry a verdict").as_str()),
            entry.get("verdict").and_then(Json::as_str)
        );
    }
    // Without the flag, no certificates are attached (and none are
    // counted as issued beyond the certify request's).
    let (status, json) =
        server.call("POST", "/check", &body_with_workspace("running_example.rpr", ""));
    assert_eq!(status, 200);
    for entry in json.get("results").and_then(Json::as_arr).unwrap() {
        assert!(entry.get("certificate").is_none());
    }
    let (_, metrics) = server.call("GET", "/metrics", "");
    let metrics = metrics.as_str().unwrap().to_owned();
    assert_eq!(counter(&metrics, "rpr_certificates_issued_total"), results.len() as u64);
    assert_eq!(counter(&metrics, "rpr_audit_failures_total"), 0);
    server.shutdown();
}

#[test]
fn certify_then_audit_round_trips_through_files() {
    let dir = std::env::temp_dir().join(format!("rpr-certify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cert_path = dir.join("certs.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["certify", &workload("running_example.rpr")])
        .output()
        .expect("certify runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::write(&cert_path, &out.stdout).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["audit", cert_path.to_str().unwrap()])
        .output()
        .expect("audit runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("all valid"));

    // Tamper with one byte of evidence: the audit must fail with exit 2.
    let text = std::fs::read_to_string(&cert_path).unwrap();
    let tampered = text.replacen("\"optimal\"", "\"improvable\"", 1);
    assert_ne!(tampered, text, "corpus has an optimal verdict to tamper with");
    std::fs::write(&cert_path, tampered).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_rpr"))
        .args(["audit", cert_path.to_str().unwrap()])
        .output()
        .expect("audit runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("FAILED"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_mid_stream_drains_queued_work() {
    let server = ServerProc::spawn(&["--jobs", "1"]);
    // Long-running request in flight…
    let addr = server.addr.clone();
    let body = body_with_workspace("running_example.rpr", "");
    let worker = std::thread::spawn(move || {
        client_call(&addr, "POST", "/check", body.as_bytes()).expect("in-flight request answered")
    });
    // Let the connection land (backlog or queue) before draining.
    std::thread::sleep(std::time::Duration::from_millis(100));
    // …drain while it may still be queued or mid-check: the request
    // must still receive a complete response (done or cancelled), never
    // a dropped connection.
    let tail = server.shutdown();
    let (status, raw) = worker.join().unwrap();
    assert!(
        status == 200 || status == 503,
        "expected done-or-cancelled, got {status}: {}",
        String::from_utf8_lossy(&raw)
    );
    assert!(tail.contains("drained after"), "got: {tail}");
}
