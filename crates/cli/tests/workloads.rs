//! Integration tests driving the shipped `.rpr` workloads through the
//! command layer — the same paths the `rpr` binary exercises.

use rpr_cli::commands::{check, classify, construct, cqa, repairs};
use rpr_cli::format::parse_workspace;

fn load(name: &str) -> rpr_cli::format::Workspace {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../workloads/");
    let text = std::fs::read_to_string(format!("{path}{name}")).expect("workload file");
    parse_workspace(&text).expect("workload parses")
}

#[test]
fn running_example_workload_end_to_end() {
    let ws = load("running_example.rpr");
    assert_eq!(ws.instance.len(), 13);
    assert_eq!(ws.priority.edge_count(), 6);

    let report = classify(&ws);
    assert!(report.contains("Theorem 3.1 (conflict-restricted priorities): PTIME"));

    // J2 is the paper's globally-optimal repair; J1 is improvable.
    let r = check(&ws, Some("J2")).unwrap();
    assert!(r.contains("J2: globally-optimal repair"), "{r}");
    let r = check(&ws, Some("J1")).unwrap();
    assert!(r.contains("NOT globally optimal"), "{r}");
    // J4 is a repair but not globally optimal under the full priority.
    let r = check(&ws, Some("J4")).unwrap();
    assert!(r.contains("J4:"));

    // Enumerations shrink with the semantics.
    let count = |s: &str| -> usize {
        repairs(&ws, s, 1 << 22)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let all = count("all");
    let pareto = count("pareto");
    let global = count("global");
    let completion = count("completion");
    assert_eq!(all, 16);
    assert!(completion <= global && global <= pareto && pareto <= all);
    assert_eq!(global, 3);

    // Construction returns one of the optimal repairs.
    let built = construct(&ws);
    assert!(built.contains("globally-optimal repair:"));

    // CQA: almaden is certain under the global semantics.
    let q = "q(?loc) <- BookLoc(b1, ?g, ?l), LibLoc(?l, ?loc)";
    let res = cqa(&ws, q, "global", 1 << 22).unwrap();
    assert!(res.contains("certain : (almaden)"), "{res}");
}

#[test]
fn source_trust_workload_is_ccp_and_polynomial() {
    let ws = load("source_trust.rpr");
    assert_eq!(ws.mode, rpr_priority::PriorityMode::CrossConflict);
    let report = classify(&ws);
    assert!(report.contains("Theorem 7.1 (cross-conflict priorities): PTIME"), "{report}");

    let r = check(&ws, Some("gold_view")).unwrap();
    assert!(r.contains("gold_view: globally-optimal repair"), "{r}");
    let r = check(&ws, Some("scratch_view")).unwrap();
    assert!(r.contains("NOT globally optimal"), "{r}");
}

#[test]
fn hard_s4_workload_uses_the_exact_fallback() {
    let ws = load("hard_s4.rpr");
    let report = classify(&ws);
    assert!(report.contains("coNP-complete"), "{report}");
    assert!(report.contains("Case 4"), "{report}");

    // The declared J = {R4(a,y,1), R4(c,y,2)}: R4(a,x,1) ≻ R4(a,y,1)
    // makes it improvable.
    let r = check(&ws, Some("J")).unwrap();
    assert!(r.contains("NOT globally optimal"), "{r}");
}
