//! Property-based tests for the CLI's parsing surfaces: the text
//! format, the binary codec, and the query syntax — random structured
//! inputs roundtrip, random garbage fails cleanly (never panics).

use proptest::prelude::*;
use rpr_cli::format::{parse_workspace, render_workspace, Workspace};
use rpr_cli::query_parse::parse_query;
use rpr_cli::store::{decode, encode, is_binary};
use rpr_data::{FactId, Instance, Signature, Value};
use rpr_fd::{Fd, Schema};
use rpr_priority::{PriorityMode, PriorityRelation};

/// Builds a random (but always well-formed) workspace.
fn workspace_strategy() -> impl Strategy<Value = Workspace> {
    (
        proptest::collection::vec((0i64..4, 0i64..4), 0..12),
        proptest::collection::vec(0u64..u64::MAX, 12),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(rows, ranks, edge_bits, ccp)| {
            let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
            let schema = Schema::new(
                sig.clone(),
                [
                    Fd::from_attrs(sig.rel_id("R").unwrap(), [1], [2]),
                    Fd::from_attrs(sig.rel_id("S").unwrap(), [], [1]),
                ],
            )
            .unwrap();
            let mut instance = Instance::new(sig);
            for (k, (a, b)) in rows.iter().enumerate() {
                let rel = if k % 2 == 0 { "R" } else { "S" };
                instance.insert_named(rel, [Value::Int(*a), Value::Int(*b)]).unwrap();
            }
            // Rank-oriented subset of pairs (acyclic by construction);
            // in classical mode restrict to conflicting pairs.
            let cg = rpr_fd::ConflictGraph::new(&schema, &instance);
            let n = instance.len();
            let mut edges = Vec::new();
            let mut k = 0;
            for x in 0..n {
                for y in (x + 1)..n {
                    let wanted = edge_bits >> (k % 64) & 1 == 1;
                    k += 1;
                    let conflicting = cg.conflicting(FactId(x as u32), FactId(y as u32));
                    if wanted && (ccp || conflicting) {
                        let key = |i: usize| (ranks[i % 12], i);
                        if key(x) > key(y) {
                            edges.push((FactId(x as u32), FactId(y as u32)));
                        } else {
                            edges.push((FactId(y as u32), FactId(x as u32)));
                        }
                    }
                }
            }
            let priority = PriorityRelation::new(n, edges).unwrap();
            // One named repair: the greedy completion of ∅.
            let j = cg.extend_to_repair(&instance.empty_set());
            Workspace {
                schema,
                instance,
                priority,
                mode: if ccp {
                    PriorityMode::CrossConflict
                } else {
                    PriorityMode::ConflictRestricted
                },
                repairs: vec![("j".to_owned(), j)],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_roundtrip_random_workspaces(ws in workspace_strategy()) {
        let text = render_workspace(&ws);
        let back = parse_workspace(&text).expect("rendered text parses");
        prop_assert_eq!(back.instance.len(), ws.instance.len());
        for (_, f) in ws.instance.iter() {
            prop_assert!(back.instance.contains(f));
        }
        prop_assert_eq!(back.schema.fds(), ws.schema.fds());
        prop_assert_eq!(back.priority.edges(), ws.priority.edges());
        prop_assert_eq!(back.mode, ws.mode);
        prop_assert_eq!(back.repairs[0].1.len(), ws.repairs[0].1.len());
    }

    #[test]
    fn binary_roundtrip_random_workspaces(ws in workspace_strategy()) {
        let bytes = encode(&ws);
        prop_assert!(is_binary(&bytes));
        let back = decode(&bytes).expect("encoded bytes decode");
        prop_assert_eq!(back.instance.len(), ws.instance.len());
        prop_assert_eq!(back.priority.edges(), ws.priority.edges());
        prop_assert_eq!(back.mode, ws.mode);
        // Text and binary agree after a full cycle.
        let text = render_workspace(&back);
        let again = parse_workspace(&text).unwrap();
        prop_assert_eq!(again.instance.len(), ws.instance.len());
    }

    #[test]
    fn random_garbage_never_panics_the_parsers(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Binary decoder: any byte soup must yield Ok or Err, not panic.
        let _ = decode(&bytes);
        // Text parser: lossy text from the soup.
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_workspace(&text);
    }

    #[test]
    fn random_garbage_never_panics_the_query_parser(text in "[ -~]{0,80}") {
        let sig = Signature::new([("R", 2)]).unwrap();
        let instance = Instance::new(sig);
        let _ = parse_query(&instance, &text);
    }

    #[test]
    fn well_formed_queries_always_parse(
        n_atoms in 1usize..4,
        constants in proptest::collection::vec(0i64..5, 4),
    ) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let mut instance = Instance::new(sig);
        instance.insert_named("R", [Value::Int(0), Value::Int(1)]).unwrap();
        let mut body = Vec::new();
        for k in 0..n_atoms {
            body.push(format!("R(?v{k}, {})", constants[k % 4]));
        }
        let q = format!("q(?v0) <- {}", body.join(", "));
        let parsed = parse_query(&instance, &q).expect("generated query parses");
        prop_assert_eq!(parsed.atoms.len(), n_atoms);
        let _ = parsed.eval(&instance);
    }
}
