//! Property-based tests for policy compilation: acyclicity for every
//! rule stack and scope, lexicographic-composition laws, and agreement
//! between the two scopes on conflicting pairs.

use proptest::prelude::*;
use rpr_data::{Instance, Signature, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_policy::{Policy, PriorityScope, Rule};

fn schema() -> Schema {
    let sig = Signature::new([("R", 4)]).unwrap();
    Schema::from_named(sig, [("R", &[1][..], &[2, 3, 4][..])]).unwrap()
}

fn instance(rows: &[(i64, i64, u8, i64)]) -> Instance {
    let schema = schema();
    let mut i = Instance::new(schema.signature().clone());
    let sources = ["gold", "bulk", "scrape"];
    for &(k, v, s, t) in rows {
        i.insert_named(
            "R",
            [Value::Int(k), Value::Int(v), Value::sym(sources[(s % 3) as usize]), Value::Int(t)],
        )
        .unwrap();
    }
    i
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    prop_oneof![
        Just(Rule::NewerWins { attr: 4 }),
        Just(Rule::SourceRanking {
            attr: 3,
            ranking: vec!["gold".into(), "bulk".into(), "scrape".into()],
        }),
        Just(Rule::Lexicographic),
        (1usize..=4).prop_map(|attr| Rule::NewerWins { attr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_priorities_are_always_acyclic(
        rows in proptest::collection::vec((0i64..3, 0i64..4, any::<u8>(), 0i64..10), 1..12),
        rules in proptest::collection::vec(rule_strategy(), 0..4),
    ) {
        let schema = schema();
        let inst = instance(&rows);
        let mut policy = Policy::new();
        for r in rules {
            policy = policy.rule(r);
        }
        for scope in [PriorityScope::ConflictsOnly, PriorityScope::AllPairs] {
            let p = policy.compile(&schema, &inst, scope).expect("compiles");
            // Construction enforces acyclicity; double-check via topo sort.
            prop_assert_eq!(p.topological_order().len(), inst.len());
        }
    }

    #[test]
    fn conflicts_scope_is_the_restriction_of_all_pairs(
        rows in proptest::collection::vec((0i64..3, 0i64..4, any::<u8>(), 0i64..10), 1..12),
        rules in proptest::collection::vec(rule_strategy(), 1..4),
    ) {
        let schema = schema();
        let inst = instance(&rows);
        let mut policy = Policy::new();
        for r in rules {
            policy = policy.rule(r);
        }
        let cg = ConflictGraph::new(&schema, &inst);
        let conflicts = policy.compile(&schema, &inst, PriorityScope::ConflictsOnly).unwrap();
        let all = policy.compile(&schema, &inst, PriorityScope::AllPairs).unwrap();
        // Same orientation on conflicting pairs; nothing extra.
        for &(a, b) in conflicts.edges() {
            prop_assert!(cg.conflicting(a, b));
            prop_assert!(all.prefers(a, b));
        }
        for &(a, b) in all.edges() {
            if cg.conflicting(a, b) {
                prop_assert!(conflicts.prefers(a, b));
            } else {
                prop_assert!(!conflicts.prefers(a, b));
            }
        }
    }

    #[test]
    fn lexicographic_tiebreak_totalizes_conflicts(
        rows in proptest::collection::vec((0i64..3, 0i64..4, any::<u8>(), 0i64..10), 1..12),
    ) {
        let schema = schema();
        let inst = instance(&rows);
        let cg = ConflictGraph::new(&schema, &inst);
        let p = Policy::new()
            .break_ties_lexicographically()
            .compile(&schema, &inst, PriorityScope::ConflictsOnly)
            .unwrap();
        for (a, b) in cg.edges() {
            prop_assert!(p.prefers(a, b) ^ p.prefers(b, a));
        }
    }

    #[test]
    fn earlier_rules_dominate_later_ones(
        rows in proptest::collection::vec((0i64..3, 0i64..4, any::<u8>(), 0i64..10), 2..12),
    ) {
        // Wherever the first rule strictly separates a pair, appending
        // more rules never flips the orientation.
        let schema = schema();
        let inst = instance(&rows);
        let first = Policy::new().prefer_newer(4);
        let stacked = Policy::new().prefer_newer(4).break_ties_lexicographically();
        let p1 = first.compile(&schema, &inst, PriorityScope::AllPairs).unwrap();
        let p2 = stacked.compile(&schema, &inst, PriorityScope::AllPairs).unwrap();
        for &(a, b) in p1.edges() {
            prop_assert!(p2.prefers(a, b), "stacking must preserve decided pairs");
        }
    }
}
