//! # rpr-policy — declarative cleaning policies
//!
//! The paper motivates priorities operationally: "one source is
//! regarded to be more reliable than another", "a more recent fact
//! should be preferred over an earlier fact" (§1), and its follow-up
//! work (Fagin et al., PODS'14) turns such rules into a cleaning
//! language for information-extraction systems. This crate is that
//! idea in library form: a [`Policy`] is an ordered list of [`Rule`]s,
//! each scoring facts; rules compose **lexicographically** (the first
//! rule that strictly separates two facts decides), and the policy
//! compiles to an acyclic [`PriorityRelation`] in either priority mode.
//!
//! ```
//! use rpr_data::{Instance, Signature, Value};
//! use rpr_fd::Schema;
//! use rpr_policy::{Policy, PriorityScope};
//!
//! let sig = Signature::new([("Emp", 3)]).unwrap();
//! let schema = Schema::from_named(sig.clone(), [("Emp", &[1][..], &[2, 3][..])]).unwrap();
//! let mut inst = Instance::new(sig);
//! // Emp(name, dept, source)
//! inst.insert_named("Emp", ["alice".into(), "eng".into(), "hr_feed".into()]).unwrap();
//! inst.insert_named("Emp", ["alice".into(), "sales".into(), "scrape".into()]).unwrap();
//!
//! let policy = Policy::new()
//!     .prefer_source_ranking(3, &["hr_feed", "scrape"]) // attribute 3 names the source
//!     .break_ties_lexicographically();
//! let priority = policy
//!     .compile(&schema, &inst, PriorityScope::ConflictsOnly)
//!     .unwrap();
//! assert_eq!(priority.edge_count(), 1); // hr_feed beats scrape on the conflict
//! ```

#![warn(missing_docs)]

use rpr_data::{Fact, FactId, Instance, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::{PriorityError, PriorityRelation};
use std::cmp::Ordering;
use std::sync::Arc;

/// Whether the compiled priority orders only conflicting pairs (§2.3)
/// or every separated pair (§7 ccp mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PriorityScope {
    /// Classical: edges only between conflicting facts.
    ConflictsOnly,
    /// Cross-conflict: edges between all separated pairs.
    AllPairs,
}

/// One scoring rule. Rules never fail; facts they don't speak about
/// get `None` and are tied at this level.
#[derive(Clone)]
pub enum Rule {
    /// Prefer higher values of an integer attribute (e.g. a timestamp
    /// column). Facts of other relations or with non-integer values
    /// are tied.
    NewerWins {
        /// The relation attribute (1-based) holding the timestamp; the
        /// rule applies to every relation whose arity covers it.
        attr: usize,
    },
    /// Prefer facts whose symbolic attribute value ranks earlier in
    /// the given list (source reliability). Unlisted values are tied
    /// below all listed ones.
    SourceRanking {
        /// The attribute (1-based) naming the source.
        attr: usize,
        /// Sources from most to least trusted.
        ranking: Vec<String>,
    },
    /// Prefer facts of one relation over another wholesale (only
    /// meaningful with [`PriorityScope::AllPairs`], where it can order
    /// non-conflicting facts).
    RelationRanking {
        /// Relation names from most to least preferred.
        ranking: Vec<String>,
    },
    /// Arbitrary user score.
    Custom {
        /// The scoring function (higher wins).
        score: Arc<dyn Fn(&Fact) -> i64 + Send + Sync>,
    },
    /// Deterministic total tie-break on the rendered fact (useful to
    /// force unambiguous cleanings).
    Lexicographic,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rule::NewerWins { attr } => write!(f, "NewerWins(attr {attr})"),
            Rule::SourceRanking { attr, ranking } => {
                write!(f, "SourceRanking(attr {attr}, {ranking:?})")
            }
            Rule::RelationRanking { ranking } => write!(f, "RelationRanking({ranking:?})"),
            Rule::Custom { .. } => write!(f, "Custom(fn)"),
            Rule::Lexicographic => write!(f, "Lexicographic"),
        }
    }
}

impl Rule {
    /// Compares two facts under this rule: `Greater` means the first
    /// fact is preferred.
    fn compare(&self, schema: &Schema, a: &Fact, b: &Fact) -> Ordering {
        match self {
            Rule::NewerWins { attr } => {
                let get = |f: &Fact| -> Option<i64> {
                    let arity = schema.signature().arity(f.rel());
                    if *attr == 0 || *attr > arity {
                        return None;
                    }
                    f.get(*attr).as_int()
                };
                match (get(a), get(b)) {
                    (Some(x), Some(y)) => x.cmp(&y),
                    _ => Ordering::Equal,
                }
            }
            Rule::SourceRanking { attr, ranking } => {
                let rank = |f: &Fact| -> i64 {
                    let arity = schema.signature().arity(f.rel());
                    if *attr == 0 || *attr > arity {
                        return -1;
                    }
                    match f.get(*attr) {
                        Value::Sym(s) => ranking
                            .iter()
                            .position(|r| r == s.as_ref())
                            .map(|p| ranking.len() as i64 - p as i64)
                            .unwrap_or(0),
                        _ => 0,
                    }
                };
                rank(a).cmp(&rank(b))
            }
            Rule::RelationRanking { ranking } => {
                let rank = |f: &Fact| -> i64 {
                    let name = schema.signature().symbol(f.rel()).name();
                    ranking
                        .iter()
                        .position(|r| r == name)
                        .map(|p| ranking.len() as i64 - p as i64)
                        .unwrap_or(0)
                };
                rank(a).cmp(&rank(b))
            }
            Rule::Custom { score } => score(a).cmp(&score(b)),
            Rule::Lexicographic => {
                let key = |f: &Fact| f.display(schema.signature()).to_string();
                // Earlier lexicographically = preferred, to make the
                // rule a deterministic but arbitrary total tiebreak.
                key(b).cmp(&key(a))
            }
        }
    }
}

/// An ordered list of rules, composed lexicographically.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    rules: Vec<Rule>,
}

impl Policy {
    /// The empty policy (compiles to the empty priority).
    pub fn new() -> Self {
        Policy { rules: Vec::new() }
    }

    /// Appends a rule.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Appends [`Rule::NewerWins`] on the given attribute.
    pub fn prefer_newer(self, attr: usize) -> Self {
        self.rule(Rule::NewerWins { attr })
    }

    /// Appends [`Rule::SourceRanking`].
    pub fn prefer_source_ranking(self, attr: usize, ranking: &[&str]) -> Self {
        self.rule(Rule::SourceRanking {
            attr,
            ranking: ranking.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Appends [`Rule::RelationRanking`].
    pub fn prefer_relations(self, ranking: &[&str]) -> Self {
        self.rule(Rule::RelationRanking {
            ranking: ranking.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Appends a custom scoring rule.
    pub fn prefer_by<F>(self, score: F) -> Self
    where
        F: Fn(&Fact) -> i64 + Send + Sync + 'static,
    {
        self.rule(Rule::Custom { score: Arc::new(score) })
    }

    /// Appends the deterministic total tie-break.
    pub fn break_ties_lexicographically(self) -> Self {
        self.rule(Rule::Lexicographic)
    }

    /// The rules, in application order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Lexicographic comparison of two facts under the policy.
    pub fn compare(&self, schema: &Schema, a: &Fact, b: &Fact) -> Ordering {
        for rule in &self.rules {
            match rule.compare(schema, a, b) {
                Ordering::Equal => continue,
                decided => return decided,
            }
        }
        Ordering::Equal
    }

    /// Compiles the policy into a priority over the instance.
    ///
    /// Every rule is score-based, so the lexicographic composition is a
    /// total preorder and the orientation of its strict part is acyclic
    /// by construction; the `Result` only exists to propagate
    /// [`PriorityRelation::new`]'s validation (which cannot fire here,
    /// but callers should not have to trust that reasoning).
    ///
    /// # Errors
    /// Propagates [`PriorityError`] from relation construction.
    pub fn compile(
        &self,
        schema: &Schema,
        instance: &Instance,
        scope: PriorityScope,
    ) -> Result<PriorityRelation, PriorityError> {
        let mut edges: Vec<(FactId, FactId)> = Vec::new();
        match scope {
            PriorityScope::ConflictsOnly => {
                let cg = ConflictGraph::new(schema, instance);
                for (a, b) in cg.edges() {
                    match self.compare(schema, instance.fact(a), instance.fact(b)) {
                        Ordering::Greater => edges.push((a, b)),
                        Ordering::Less => edges.push((b, a)),
                        Ordering::Equal => {}
                    }
                }
            }
            PriorityScope::AllPairs => {
                for (a, fa) in instance.iter() {
                    for (b, fb) in instance.iter() {
                        if a < b {
                            match self.compare(schema, fa, fb) {
                                Ordering::Greater => edges.push((a, b)),
                                Ordering::Less => edges.push((b, a)),
                                Ordering::Equal => {}
                            }
                        }
                    }
                }
            }
        }
        PriorityRelation::new(instance.len(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{construct_globally_optimal_repair, is_globally_optimal_brute};
    use rpr_data::Signature;

    fn schema_and_instance() -> (Schema, Instance) {
        let sig = Signature::new([("R", 3)]).unwrap();
        // R(key, value, timestamp), key → everything.
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2, 3][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("k1"), v("old"), Value::Int(1)]).unwrap(); // 0
        i.insert_named("R", [v("k1"), v("new"), Value::Int(9)]).unwrap(); // 1
        i.insert_named("R", [v("k2"), v("x"), Value::Int(5)]).unwrap(); // 2
        i.insert_named("R", [v("k2"), v("y"), Value::Int(5)]).unwrap(); // 3 (tie!)
        (schema, i)
    }

    #[test]
    fn newer_wins_orders_conflicts_only() {
        let (schema, i) = schema_and_instance();
        let p = Policy::new()
            .prefer_newer(3)
            .compile(&schema, &i, PriorityScope::ConflictsOnly)
            .unwrap();
        assert!(p.prefers(FactId(1), FactId(0)));
        // The k2 pair is tied on timestamp: unordered.
        assert!(!p.prefers(FactId(2), FactId(3)));
        assert!(!p.prefers(FactId(3), FactId(2)));
        // Non-conflicting pairs stay unordered in this scope.
        assert!(!p.prefers(FactId(1), FactId(2)));
    }

    #[test]
    fn lexicographic_composition_breaks_ties() {
        let (schema, i) = schema_and_instance();
        let p = Policy::new()
            .prefer_newer(3)
            .break_ties_lexicographically()
            .compile(&schema, &i, PriorityScope::ConflictsOnly)
            .unwrap();
        // Now every conflicting pair is ordered.
        assert!(p.prefers(FactId(1), FactId(0)));
        assert!(p.prefers(FactId(2), FactId(3)) ^ p.prefers(FactId(3), FactId(2)));
        // Total policies yield unambiguous cleanings.
        let cg = ConflictGraph::new(&schema, &i);
        let j = construct_globally_optimal_repair(&cg, &p);
        assert!(is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap());
        let all = rpr_core::globally_optimal_repairs(&cg, &p, 1 << 20).unwrap();
        assert_eq!(all.len(), 1, "total policy ⇒ exactly one optimal repair");
    }

    #[test]
    fn rule_order_matters() {
        let (schema, i) = schema_and_instance();
        // value="old" gets a custom boost; order decides the winner.
        let boost_old = |f: &Fact| i64::from(f.get(2).as_sym() == Some("old"));
        let newest_first = Policy::new()
            .prefer_newer(3)
            .prefer_by(boost_old)
            .compile(&schema, &i, PriorityScope::ConflictsOnly)
            .unwrap();
        assert!(newest_first.prefers(FactId(1), FactId(0)));
        let old_first = Policy::new()
            .prefer_by(boost_old)
            .prefer_newer(3)
            .compile(&schema, &i, PriorityScope::ConflictsOnly)
            .unwrap();
        assert!(old_first.prefers(FactId(0), FactId(1)));
    }

    #[test]
    fn relation_ranking_needs_all_pairs_scope() {
        let sig = Signature::new([("Gold", 2), ("Scratch", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [("Gold", &[1][..], &[2][..]), ("Scratch", &[1][..], &[2][..])],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("Gold", [Value::sym("a"), Value::sym("x")]).unwrap();
        i.insert_named("Scratch", [Value::sym("a"), Value::sym("y")]).unwrap();
        let policy = Policy::new().prefer_relations(&["Gold", "Scratch"]);
        // Conflicts-only: the two facts are in different relations, so
        // they never conflict and nothing is ordered.
        let p = policy.compile(&schema, &i, PriorityScope::ConflictsOnly).unwrap();
        assert_eq!(p.edge_count(), 0);
        // All-pairs (ccp): the gold fact dominates.
        let p = policy.compile(&schema, &i, PriorityScope::AllPairs).unwrap();
        assert!(p.prefers(FactId(0), FactId(1)));
    }

    #[test]
    fn source_ranking_unlisted_sources_lose() {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [Value::sym("k"), Value::sym("trusted")]).unwrap();
        i.insert_named("R", [Value::sym("k"), Value::sym("unknown")]).unwrap();
        let p = Policy::new()
            .prefer_source_ranking(2, &["trusted"])
            .compile(&schema, &i, PriorityScope::ConflictsOnly)
            .unwrap();
        assert!(p.prefers(FactId(0), FactId(1)));
    }

    #[test]
    fn empty_policy_compiles_to_empty_priority() {
        let (schema, i) = schema_and_instance();
        let p = Policy::new().compile(&schema, &i, PriorityScope::AllPairs).unwrap();
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn compiled_priorities_are_acyclic_even_for_adversarial_customs() {
        // A custom rule with a stable score can't create cycles; check
        // a score designed to collide heavily.
        let (schema, i) = schema_and_instance();
        let p = Policy::new()
            .prefer_by(|f| f.get(1).as_sym().map(|s| s.len() as i64).unwrap_or(0))
            .break_ties_lexicographically()
            .compile(&schema, &i, PriorityScope::AllPairs)
            .unwrap();
        assert_eq!(p.topological_order().len(), i.len());
    }
}
