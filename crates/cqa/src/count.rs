//! Counting and uniqueness of globally-optimal repairs.
//!
//! The paper's concluding remarks single out two follow-up questions:
//! determining the *number* of globally-optimal repairs, and
//! characterizing when exactly one exists — "the existence of precisely
//! one repair implies that the constraints and priorities define an
//! unambiguous cleaning of inconsistencies". These helpers answer both
//! questions by enumeration (with budgets), which is the best known
//! general tool.

use rpr_core::{globally_optimal_repairs, Budget, BudgetExceeded, CheckSession, Outcome};
use rpr_data::FactSet;
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Summary of the globally-optimal repair space of an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSpace {
    /// All globally-optimal repairs.
    pub optimal: Vec<FactSet>,
}

impl RepairSpace {
    /// Computes the space by enumeration.
    ///
    /// # Errors
    /// [`BudgetExceeded`] if enumeration exceeds the budget.
    pub fn compute(
        cg: &ConflictGraph,
        priority: &PriorityRelation,
        budget: usize,
    ) -> Result<Self, BudgetExceeded> {
        Ok(RepairSpace { optimal: globally_optimal_repairs(cg, priority, budget)? })
    }

    /// Computes the space against an amortized [`CheckSession`]: the
    /// session's cached conflict graph drives the enumeration, and
    /// optimality is decided by its dispatched (parallel) checker
    /// rather than the pairwise oracle. Agrees with
    /// [`RepairSpace::compute`].
    ///
    /// # Errors
    /// [`BudgetExceeded`] if enumeration or a hard-side exact check
    /// exceeds its budget.
    pub fn compute_session(
        session: &CheckSession<'_>,
        budget: usize,
    ) -> Result<Self, BudgetExceeded> {
        Ok(RepairSpace { optimal: rpr_core::globally_optimal_repairs_session(session, budget)? })
    }

    /// Computes the space under an engine [`Budget`] (deadline, shared
    /// work allowance, cooperative cancellation).
    ///
    /// On degradation the partial space holds the repairs confirmed
    /// optimal so far — see
    /// [`globally_optimal_repairs_bounded`](rpr_core::globally_optimal_repairs_bounded)
    /// for the exact partial-result semantics.
    pub fn compute_bounded(
        cg: &ConflictGraph,
        priority: &PriorityRelation,
        budget: &Budget,
    ) -> Outcome<Self> {
        rpr_core::globally_optimal_repairs_bounded(cg, priority, budget)
            .map(|optimal| RepairSpace { optimal })
    }

    /// Computes the space against an amortized [`CheckSession`] under an
    /// engine [`Budget`]. The session variant confirms candidates one by
    /// one against the whole instance, so on degradation the partial
    /// space is a sound subset of the optimal repairs.
    pub fn compute_session_bounded(session: &CheckSession<'_>, budget: &Budget) -> Outcome<Self> {
        rpr_core::globally_optimal_repairs_session_bounded(session, budget)
            .map(|optimal| RepairSpace { optimal })
    }

    /// Number of globally-optimal repairs.
    pub fn count(&self) -> usize {
        self.optimal.len()
    }

    /// The unique globally-optimal repair, if the cleaning is
    /// unambiguous.
    pub fn unique(&self) -> Option<&FactSet> {
        match self.optimal.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::Schema;

    fn setup(edges: &[(u32, u32)]) -> (ConflictGraph, PriorityRelation) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("g"), v("a")]).unwrap();
        i.insert_named("R", [v("g"), v("b")]).unwrap();
        i.insert_named("R", [v("g"), v("c")]).unwrap();
        let p = PriorityRelation::new(i.len(), edges.iter().map(|&(a, b)| (FactId(a), FactId(b))))
            .unwrap();
        (ConflictGraph::new(&schema, &i), p)
    }

    #[test]
    fn total_priority_gives_unambiguous_cleaning() {
        let (cg, p) = setup(&[(0, 1), (1, 2), (0, 2)]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 1);
        let unique = space.unique().unwrap();
        assert!(unique.contains(FactId(0)));
    }

    #[test]
    fn empty_priority_keeps_all_repairs_optimal() {
        let (cg, p) = setup(&[]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 3);
        assert!(space.unique().is_none());
    }

    #[test]
    fn partial_priority_in_between() {
        let (cg, p) = setup(&[(0, 1)]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 2); // {a} and {c}; {b} is improved by {a}
        assert!(space.unique().is_none());
    }

    #[test]
    fn bounded_space_agrees_with_legacy_under_unlimited_budgets() {
        let (cg, p) = setup(&[(0, 1)]);
        let legacy = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        let budget = Budget::unlimited();
        let bounded = RepairSpace::compute_bounded(&cg, &p, &budget)
            .expect_done("unlimited budget must finish");
        assert_eq!(bounded, legacy);
    }

    #[test]
    fn bounded_space_degrades_on_a_tiny_work_allowance() {
        let (cg, p) = setup(&[]);
        let budget = Budget::unlimited().with_max_work(1);
        match RepairSpace::compute_bounded(&cg, &p, &budget) {
            Outcome::Exceeded { report, .. } => assert_eq!(report.max_work, Some(1)),
            other => panic!("expected Exceeded, got {other:?}"),
        }
    }
}
