//! Counting and uniqueness of globally-optimal repairs.
//!
//! The paper's concluding remarks single out two follow-up questions:
//! determining the *number* of globally-optimal repairs, and
//! characterizing when exactly one exists — "the existence of precisely
//! one repair implies that the constraints and priorities define an
//! unambiguous cleaning of inconsistencies". These helpers answer both
//! questions by enumeration (with budgets), which is the best known
//! general tool.

use rpr_core::{globally_optimal_repairs, BudgetExceeded, CheckSession};
use rpr_data::FactSet;
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Summary of the globally-optimal repair space of an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSpace {
    /// All globally-optimal repairs.
    pub optimal: Vec<FactSet>,
}

impl RepairSpace {
    /// Computes the space by enumeration.
    ///
    /// # Errors
    /// [`BudgetExceeded`] if enumeration exceeds the budget.
    pub fn compute(
        cg: &ConflictGraph,
        priority: &PriorityRelation,
        budget: usize,
    ) -> Result<Self, BudgetExceeded> {
        Ok(RepairSpace { optimal: globally_optimal_repairs(cg, priority, budget)? })
    }

    /// Computes the space against an amortized [`CheckSession`]: the
    /// session's cached conflict graph drives the enumeration, and
    /// optimality is decided by its dispatched (parallel) checker
    /// rather than the pairwise oracle. Agrees with
    /// [`RepairSpace::compute`].
    ///
    /// # Errors
    /// [`BudgetExceeded`] if enumeration or a hard-side exact check
    /// exceeds its budget.
    pub fn compute_session(
        session: &CheckSession<'_>,
        budget: usize,
    ) -> Result<Self, BudgetExceeded> {
        Ok(RepairSpace { optimal: rpr_core::globally_optimal_repairs_session(session, budget)? })
    }

    /// Number of globally-optimal repairs.
    pub fn count(&self) -> usize {
        self.optimal.len()
    }

    /// The unique globally-optimal repair, if the cleaning is
    /// unambiguous.
    pub fn unique(&self) -> Option<&FactSet> {
        match self.optimal.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::Schema;

    fn setup(edges: &[(u32, u32)]) -> (ConflictGraph, PriorityRelation) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("g"), v("a")]).unwrap();
        i.insert_named("R", [v("g"), v("b")]).unwrap();
        i.insert_named("R", [v("g"), v("c")]).unwrap();
        let p = PriorityRelation::new(i.len(), edges.iter().map(|&(a, b)| (FactId(a), FactId(b))))
            .unwrap();
        (ConflictGraph::new(&schema, &i), p)
    }

    #[test]
    fn total_priority_gives_unambiguous_cleaning() {
        let (cg, p) = setup(&[(0, 1), (1, 2), (0, 2)]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 1);
        let unique = space.unique().unwrap();
        assert!(unique.contains(FactId(0)));
    }

    #[test]
    fn empty_priority_keeps_all_repairs_optimal() {
        let (cg, p) = setup(&[]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 3);
        assert!(space.unique().is_none());
    }

    #[test]
    fn partial_priority_in_between() {
        let (cg, p) = setup(&[(0, 1)]);
        let space = RepairSpace::compute(&cg, &p, 1 << 20).unwrap();
        assert_eq!(space.count(), 2); // {a} and {c}; {b} is improved by {a}
        assert!(space.unique().is_none());
    }
}
