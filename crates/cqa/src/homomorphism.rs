//! Query homomorphisms, containment and minimization.
//!
//! The classification programme the paper's concluding remarks sketch
//! (preferred consistent query answering) is, in the classical CQA
//! literature, driven by *syntactic* properties of the query — and the
//! canonical toolbox is the Chandra–Merlin machinery implemented here:
//!
//! * [`find_homomorphism`] — a variable mapping from one query to
//!   another that preserves atoms and head variables;
//! * [`is_contained_in`] — `q1 ⊑ q2` iff `q2` maps homomorphically
//!   into `q1` (Chandra–Merlin);
//! * [`minimize`] — the core of a query: a minimal equivalent
//!   subquery, unique up to renaming.

use crate::query::{Atom, ConjunctiveQuery, Term};
use rpr_data::{FxHashMap, Value};

/// A homomorphism: a total map from the variables of the source query
/// to terms (variables or constants) of the target query.
pub type Homomorphism = FxHashMap<u32, Term>;

fn apply(h: &Homomorphism, t: &Term) -> Term {
    match t {
        Term::Const(c) => Term::Const(c.clone()),
        Term::Var(v) => h.get(v).cloned().unwrap_or(Term::Var(*v)),
    }
}

fn atom_matches(h: &mut Homomorphism, src: &Atom, dst: &Atom) -> Option<Vec<u32>> {
    if src.rel != dst.rel || src.terms.len() != dst.terms.len() {
        return None;
    }
    let mut bound = Vec::new();
    for (s, d) in src.terms.iter().zip(&dst.terms) {
        match s {
            Term::Const(c) => {
                if !matches!(d, Term::Const(c2) if c2 == c) {
                    for v in bound.drain(..) {
                        h.remove(&v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match h.get(v) {
                Some(existing) if existing != d => {
                    for v in bound.drain(..) {
                        h.remove(&v);
                    }
                    return None;
                }
                Some(_) => {}
                None => {
                    h.insert(*v, d.clone());
                    bound.push(*v);
                }
            },
        }
    }
    Some(bound)
}

fn search(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    idx: usize,
    h: &mut Homomorphism,
) -> bool {
    if idx == from.atoms.len() {
        // Head variables must map to the corresponding head variables.
        return from
            .head
            .iter()
            .zip(&to.head)
            .all(|(src, dst)| h.get(src) == Some(&Term::Var(*dst)));
    }
    for dst_atom in &to.atoms {
        if let Some(bound) = atom_matches(h, &from.atoms[idx], dst_atom) {
            if search(from, to, idx + 1, h) {
                return true;
            }
            for v in bound {
                h.remove(&v);
            }
        }
    }
    false
}

/// Finds a homomorphism from `from` into `to` (atom-preserving,
/// head-preserving), if any.
///
/// Requires the two queries to have equally long heads.
pub fn find_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Homomorphism> {
    if from.head.len() != to.head.len() {
        return None;
    }
    let mut h = Homomorphism::default();
    // Pre-seed the head mapping so the search prunes early.
    for (src, dst) in from.head.iter().zip(&to.head) {
        match h.get(src) {
            Some(existing) if existing != &Term::Var(*dst) => return None,
            _ => {
                h.insert(*src, Term::Var(*dst));
            }
        }
    }
    if search(from, to, 0, &mut h) {
        Some(h)
    } else {
        None
    }
}

/// Chandra–Merlin containment: `q1 ⊑ q2` (every answer of `q1` is an
/// answer of `q2`, over all instances) iff `q2` maps into `q1`.
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q2, q1).is_some()
}

/// Query equivalence.
pub fn are_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Computes the core: repeatedly drops an atom if the shrunken query
/// still maps into… (i.e. stays equivalent). The result is a minimal
/// equivalent subquery.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut shrunk = false;
        for i in 0..current.atoms.len() {
            let mut candidate = current.clone();
            candidate.atoms.remove(i);
            // Dropping an atom can only weaken the query (candidate ⊒
            // current is automatic); equivalence needs candidate ⊑
            // current as well.
            if is_contained_in(&candidate, &current) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Dresses the helper: substitute a homomorphism through a query
/// (useful for debugging and tests).
pub fn apply_homomorphism(h: &Homomorphism, q: &ConjunctiveQuery) -> Vec<Atom> {
    q.atoms
        .iter()
        .map(|a| Atom { rel: a.rel, terms: a.terms.iter().map(|t| apply(h, t)).collect() })
        .collect()
}

/// Convenience for building constant terms in tests.
pub fn constant(s: &str) -> Term {
    Term::Const(Value::sym(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::atom;
    use rpr_data::{Instance, Signature};

    fn instance() -> Instance {
        let sig = Signature::new([("E", 2)]).unwrap();
        Instance::new(sig)
    }

    /// q(x) ← E(x,y), E(y,z)  vs  q(x) ← E(x,y): the 2-path maps into
    /// the 1-edge query? No — but the 1-edge query maps into the
    /// 2-path, so path ⊑ edge.
    #[test]
    fn containment_of_paths() {
        let i = instance();
        let path2 = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![atom(&i, "E", &["?0", "?1"]), atom(&i, "E", &["?1", "?2"])],
        };
        let edge = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "E", &["?0", "?1"])] };
        assert!(is_contained_in(&path2, &edge));
        assert!(!is_contained_in(&edge, &path2));
        assert!(!are_equivalent(&path2, &edge));
    }

    /// The classic core example: q() ← E(x,y), E(y,x), E(z,z) minimizes
    /// to q() ← E(z,z) (the self-loop absorbs the 2-cycle).
    #[test]
    fn minimization_collapses_redundant_atoms() {
        let i = instance();
        let q = ConjunctiveQuery::boolean(vec![
            atom(&i, "E", &["?0", "?1"]),
            atom(&i, "E", &["?1", "?0"]),
            atom(&i, "E", &["?2", "?2"]),
        ]);
        let m = minimize(&q);
        assert_eq!(m.atoms.len(), 1);
        assert!(are_equivalent(&q, &m));
    }

    #[test]
    fn minimization_keeps_irredundant_queries() {
        let i = instance();
        // A 2-path with both endpoints in the head cannot shrink.
        let q = ConjunctiveQuery {
            head: vec![0, 2],
            atoms: vec![atom(&i, "E", &["?0", "?1"]), atom(&i, "E", &["?1", "?2"])],
        };
        let m = minimize(&q);
        assert_eq!(m.atoms.len(), 2);
    }

    #[test]
    fn head_variables_are_respected() {
        let i = instance();
        // q1(x) ← E(x,x); q2(y) ← E(y,y): isomorphic.
        let q1 = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "E", &["?0", "?0"])] };
        let q2 = ConjunctiveQuery { head: vec![1], atoms: vec![atom(&i, "E", &["?1", "?1"])] };
        assert!(are_equivalent(&q1, &q2));
        // But q3(x) ← E(x,y) is different from q4(y) ← E(x,y).
        let q3 = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "E", &["?0", "?1"])] };
        let q4 = ConjunctiveQuery { head: vec![1], atoms: vec![atom(&i, "E", &["?0", "?1"])] };
        assert!(!are_equivalent(&q3, &q4));
    }

    #[test]
    fn constants_must_match_exactly() {
        let i = instance();
        let qa = ConjunctiveQuery::boolean(vec![atom(&i, "E", &["a", "?0"])]);
        let qb = ConjunctiveQuery::boolean(vec![atom(&i, "E", &["b", "?0"])]);
        let qv = ConjunctiveQuery::boolean(vec![atom(&i, "E", &["?1", "?0"])]);
        assert!(!is_contained_in(&qa, &qb));
        // Variables map onto constants: qa ⊑ qv.
        assert!(is_contained_in(&qa, &qv));
        assert!(!is_contained_in(&qv, &qa));
    }

    #[test]
    fn containment_respects_evaluation() {
        // Semantic sanity: if q1 ⊑ q2 then q1's answers are a subset of
        // q2's on a concrete instance.
        let sig = Signature::new([("E", 2)]).unwrap();
        let mut data = Instance::new(sig);
        for (a, b) in [("1", "2"), ("2", "3"), ("3", "3")] {
            data.insert_named("E", [Value::sym(a), Value::sym(b)]).unwrap();
        }
        let path2 = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![atom(&data, "E", &["?0", "?1"]), atom(&data, "E", &["?1", "?2"])],
        };
        let edge = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&data, "E", &["?0", "?1"])] };
        assert!(is_contained_in(&path2, &edge));
        let a1 = path2.eval(&data);
        let a2 = edge.eval(&data);
        assert!(a1.is_subset(&a2));
    }
}
