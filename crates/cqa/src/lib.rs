//! # rpr-cqa — consistent query answering over preferred repairs
//!
//! The concluding remarks of the paper pose preferred consistent query
//! answering and globally-optimal repair counting as follow-up
//! problems; this crate supplies the executable baseline for both:
//!
//! * [`query`] — conjunctive queries with naive join evaluation;
//! * [`answers`] — σ-certain and σ-possible answers for σ ∈ {all,
//!   Pareto, global, completion} repair semantics;
//! * [`count`] — counting globally-optimal repairs and deciding
//!   uniqueness ("unambiguous cleaning").

#![warn(missing_docs)]

pub mod answers;
pub mod count;
pub mod homomorphism;
pub mod query;
pub mod ucq;

pub use answers::{
    answers, answers_bounded, answers_session, answers_session_bounded, repairs_under,
    repairs_under_bounded, repairs_under_session, repairs_under_session_bounded, CqaAnswers,
    RepairSemantics,
};
pub use count::RepairSpace;
pub use homomorphism::{
    are_equivalent, find_homomorphism, is_contained_in, minimize, Homomorphism,
};
pub use query::{atom, Atom, ConjunctiveQuery, Term};
pub use ucq::{ucq_answers, ucq_answers_bounded, UnionQuery};
