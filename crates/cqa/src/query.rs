//! Conjunctive queries and naive evaluation.
//!
//! The concluding remarks of the paper name *preferred consistent query
//! answering* as the next classification target; this module supplies
//! the query substrate: conjunctive queries `q(x̄) ← R1(t̄1), …, Rk(t̄k)`
//! with variables and constants, evaluated by backtracking joins.
//! Instances are small (they come from repair enumeration), so the
//! naive evaluator is the right tool.

use rpr_data::{FxHashMap, Instance, RelId, Tuple, Value};
use std::collections::BTreeSet;

/// A term in a query atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable, identified by a small integer.
    Var(u32),
    /// A constant.
    Const(Value),
}

/// An atom `R(t1, …, tn)`.
#[derive(Clone, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// The terms, one per attribute.
    pub terms: Vec<Term>,
}

/// A conjunctive query: head variables plus a conjunction of atoms.
///
/// ```
/// use rpr_data::{Instance, Signature, Tuple, Value};
/// use rpr_cqa::{atom, ConjunctiveQuery};
///
/// let sig = Signature::new([("E", 2)]).unwrap();
/// let mut i = Instance::new(sig);
/// i.insert_named("E", ["a".into(), "b".into()]).unwrap();
/// i.insert_named("E", ["b".into(), "c".into()]).unwrap();
///
/// // q(x, z) ← E(x, y), E(y, z): two-step reachability.
/// let q = ConjunctiveQuery {
///     head: vec![0, 2],
///     atoms: vec![atom(&i, "E", &["?0", "?1"]), atom(&i, "E", &["?1", "?2"])],
/// };
/// q.validate(&i).unwrap();
/// let answers = q.eval(&i);
/// assert!(answers.contains(&Tuple::new(["a".into(), "c".into()])));
/// assert_eq!(answers.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ConjunctiveQuery {
    /// The answer variables, in output order.
    pub head: Vec<u32>,
    /// The body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// A boolean query (empty head).
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { head: Vec::new(), atoms }
    }

    /// Validates the query against a signature: arities match and every
    /// head variable occurs in the body.
    pub fn validate(&self, instance: &Instance) -> Result<(), String> {
        let sig = instance.signature();
        let mut body_vars: BTreeSet<u32> = BTreeSet::new();
        for atom in &self.atoms {
            let arity = sig.arity(atom.rel);
            if atom.terms.len() != arity {
                return Err(format!(
                    "atom over {} has {} terms, arity is {arity}",
                    sig.symbol(atom.rel).name(),
                    atom.terms.len()
                ));
            }
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    body_vars.insert(*v);
                }
            }
        }
        for h in &self.head {
            if !body_vars.contains(h) {
                return Err(format!("head variable ?{h} does not occur in the body"));
            }
        }
        Ok(())
    }

    /// Evaluates the query over an instance, returning the set of head
    /// projections (a single empty tuple for satisfied boolean
    /// queries).
    pub fn eval(&self, instance: &Instance) -> BTreeSet<Tuple> {
        let mut answers = BTreeSet::new();
        let mut binding: FxHashMap<u32, Value> = FxHashMap::default();
        self.join(instance, 0, &mut binding, &mut answers);
        answers
    }

    fn join(
        &self,
        instance: &Instance,
        depth: usize,
        binding: &mut FxHashMap<u32, Value>,
        answers: &mut BTreeSet<Tuple>,
    ) {
        if depth == self.atoms.len() {
            let tuple = Tuple::new(
                self.head
                    .iter()
                    .map(|v| binding.get(v).expect("validated head variable is bound").clone()),
            );
            answers.insert(tuple);
            return;
        }
        let atom = &self.atoms[depth];
        'facts: for &id in instance.facts_of(atom.rel) {
            let fact = instance.fact(id);
            let mut bound_here: Vec<u32> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                let value = fact.get(pos + 1);
                match term {
                    Term::Const(c) => {
                        if c != value {
                            for v in bound_here.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'facts;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(existing) if existing != value => {
                            for v in bound_here.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'facts;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(*v, value.clone());
                            bound_here.push(*v);
                        }
                    },
                }
            }
            self.join(instance, depth + 1, binding, answers);
            for v in bound_here {
                binding.remove(&v);
            }
        }
    }

    /// Does the (boolean) query hold on the instance?
    pub fn holds(&self, instance: &Instance) -> bool {
        !self.eval(instance).is_empty()
    }
}

/// Convenience constructor: `atom(rel, terms)` with `?n` strings for
/// variables and anything else a symbol constant.
pub fn atom(instance: &Instance, rel: &str, terms: &[&str]) -> Atom {
    let rel = instance.signature().require(rel).expect("relation exists");
    let terms = terms
        .iter()
        .map(|t| match t.strip_prefix('?') {
            Some(v) => Term::Var(v.parse().expect("?N variables")),
            None => Term::Const(Value::sym(*t)),
        })
        .collect();
    Atom { rel, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::Signature;

    fn library() -> Instance {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("BookLoc", [v("b1"), v("fiction"), v("lib1")]).unwrap();
        i.insert_named("BookLoc", [v("b2"), v("poetry"), v("lib1")]).unwrap();
        i.insert_named("BookLoc", [v("b3"), v("horror"), v("lib2")]).unwrap();
        i.insert_named("LibLoc", [v("lib1"), v("almaden")]).unwrap();
        i.insert_named("LibLoc", [v("lib2"), v("bascom")]).unwrap();
        i
    }

    #[test]
    fn single_atom_selection_and_projection() {
        let i = library();
        // q(x) ← BookLoc(x, y, lib1)
        let q = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![atom(&i, "BookLoc", &["?0", "?1", "lib1"])],
        };
        q.validate(&i).unwrap();
        let ans = q.eval(&i);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&Tuple::new([Value::sym("b1")])));
        assert!(ans.contains(&Tuple::new([Value::sym("b2")])));
    }

    #[test]
    fn join_across_relations() {
        let i = library();
        // q(x, l) ← BookLoc(x, g, y), LibLoc(y, l)
        let q = ConjunctiveQuery {
            head: vec![0, 3],
            atoms: vec![
                atom(&i, "BookLoc", &["?0", "?1", "?2"]),
                atom(&i, "LibLoc", &["?2", "?3"]),
            ],
        };
        q.validate(&i).unwrap();
        let ans = q.eval(&i);
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&Tuple::new([Value::sym("b3"), Value::sym("bascom")])));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let i = library();
        // q() ← LibLoc(x, x): no library named after its location.
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "LibLoc", &["?0", "?0"])]);
        assert!(!q.holds(&i));
        // q() ← BookLoc(x, y, z), LibLoc(z, w): holds.
        let q = ConjunctiveQuery::boolean(vec![
            atom(&i, "BookLoc", &["?0", "?1", "?2"]),
            atom(&i, "LibLoc", &["?2", "?3"]),
        ]);
        assert!(q.holds(&i));
    }

    #[test]
    fn validation_catches_errors() {
        let i = library();
        let bad_arity = ConjunctiveQuery::boolean(vec![Atom {
            rel: i.signature().rel_id("LibLoc").unwrap(),
            terms: vec![Term::Var(0)],
        }]);
        assert!(bad_arity.validate(&i).is_err());
        let unbound_head =
            ConjunctiveQuery { head: vec![9], atoms: vec![atom(&i, "LibLoc", &["?0", "?1"])] };
        assert!(unbound_head.validate(&i).is_err());
    }

    #[test]
    fn empty_body_boolean_query_is_true_with_empty_tuple() {
        let i = library();
        let q = ConjunctiveQuery::boolean(vec![]);
        assert!(q.holds(&i));
    }
}
