//! Consistent query answering over preferred repairs.
//!
//! For a repair semantics `σ` (all subset repairs, Pareto-optimal,
//! globally-optimal, completion-optimal), the σ-certain answers of `q`
//! on `(I, ≻)` are `⋂ {q(J) : J a σ-repair}` and the σ-possible answers
//! `⋃ {q(J) : …}` — the preferred generalization of Arenas-Bertossi-
//! Chomicki consistent answers that the paper's concluding remarks pose
//! as the next classification problem. Repairs are enumerated by the
//! oracles in `rpr-core` under an explicit budget.

use crate::query::ConjunctiveQuery;
use rpr_core::{
    enumerate_repairs, is_completion_optimal, is_global_improvement, is_pareto_improvement,
    BudgetExceeded, CheckSession,
};
use rpr_data::{FactSet, Instance, Tuple};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::PriorityRelation;
use std::collections::BTreeSet;

/// The repair semantics to quantify over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairSemantics {
    /// All subset repairs (Arenas–Bertossi–Chomicki).
    All,
    /// Pareto-optimal repairs.
    Pareto,
    /// Globally-optimal repairs.
    Global,
    /// Completion-optimal repairs.
    Completion,
}

impl RepairSemantics {
    /// All four semantics, in the inclusion order
    /// `Completion ⊆ Global ⊆ Pareto ⊆ All` (strongest first).
    pub const ALL: [RepairSemantics; 4] = [
        RepairSemantics::Completion,
        RepairSemantics::Global,
        RepairSemantics::Pareto,
        RepairSemantics::All,
    ];
}

impl std::fmt::Display for RepairSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RepairSemantics::All => "all",
            RepairSemantics::Pareto => "pareto",
            RepairSemantics::Global => "global",
            RepairSemantics::Completion => "completion",
        };
        write!(f, "{name}")
    }
}

impl std::str::FromStr for RepairSemantics {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "all" => RepairSemantics::All,
            "pareto" => RepairSemantics::Pareto,
            "global" => RepairSemantics::Global,
            "completion" => RepairSemantics::Completion,
            other => {
                return Err(format!(
                    "unknown semantics `{other}` (use all|pareto|global|completion)"
                ))
            }
        })
    }
}

/// Enumerates the repairs of the chosen semantics.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn repairs_under(
    semantics: RepairSemantics,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    let all = enumerate_repairs(cg, budget)?;
    Ok(match semantics {
        RepairSemantics::All => all,
        RepairSemantics::Pareto => {
            // J is Pareto-optimal iff no repair Pareto-improves it
            // (improvements extend to repairs; see rpr-core::brute).
            all.iter()
                .filter(|j| !all.iter().any(|r| is_pareto_improvement(priority, j, r)))
                .cloned()
                .collect()
        }
        RepairSemantics::Global => all
            .iter()
            .filter(|j| !all.iter().any(|r| is_global_improvement(priority, j, r)))
            .cloned()
            .collect(),
        RepairSemantics::Completion => {
            all.into_iter().filter(|j| is_completion_optimal(cg, priority, j)).collect()
        }
    })
}

/// Enumerates the repairs of the chosen semantics against an amortized
/// [`CheckSession`] — no per-call conflict-graph construction, and the
/// globally-optimal filter runs through the session's dispatched
/// (polynomial where possible, parallel) checker instead of the
/// pairwise oracle scan.
///
/// Agrees with [`repairs_under`] on the session's conflict graph.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration (or, on hard schemas, an
/// exact check) exceeds its budget.
pub fn repairs_under_session(
    semantics: RepairSemantics,
    session: &CheckSession<'_>,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    if semantics == RepairSemantics::Global {
        return rpr_core::globally_optimal_repairs_session(session, budget);
    }
    repairs_under(semantics, session.conflict_graph(), session.priority(), budget)
}

/// The result of a preferred-CQA computation.
#[derive(Clone, Debug)]
pub struct CqaAnswers {
    /// Tuples present in the answer on every σ-repair.
    pub certain: BTreeSet<Tuple>,
    /// Tuples present in the answer on at least one σ-repair.
    pub possible: BTreeSet<Tuple>,
    /// How many σ-repairs were quantified over.
    pub repair_count: usize,
}

/// Computes certain and possible answers of `query` on `(instance, ≻)`
/// under the chosen repair semantics.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn answers(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: usize,
) -> Result<CqaAnswers, BudgetExceeded> {
    let cg = ConflictGraph::new(schema, instance);
    let repairs = repairs_under(semantics, &cg, priority, budget)?;
    Ok(quantify(instance, query, &repairs))
}

/// Computes certain and possible answers of `query` against an
/// amortized [`CheckSession`]. Answer/count loops over many queries
/// should build one session and call this per query: the conflict
/// graph, classification, and partitions are shared across all of
/// them.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration (or a hard-side exact
/// check) exceeds its budget.
pub fn answers_session(
    session: &CheckSession<'_>,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: usize,
) -> Result<CqaAnswers, BudgetExceeded> {
    let repairs = repairs_under_session(semantics, session, budget)?;
    Ok(quantify(session.instance(), query, &repairs))
}

fn quantify(instance: &Instance, query: &ConjunctiveQuery, repairs: &[FactSet]) -> CqaAnswers {
    let mut certain: Option<BTreeSet<Tuple>> = None;
    let mut possible: BTreeSet<Tuple> = BTreeSet::new();
    for j in repairs {
        let sub = instance.materialize(j);
        let ans = query.eval(&sub);
        possible.extend(ans.iter().cloned());
        certain = Some(match certain {
            None => ans,
            Some(c) => c.intersection(&ans).cloned().collect(),
        });
    }
    CqaAnswers { certain: certain.unwrap_or_default(), possible, repair_count: repairs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::atom;
    use rpr_data::{FactId, Signature, Value};

    /// R(name, group) with key "group" (R: 2→1 and 2→… wait we want
    /// one winner per group: use R: 1→2 over (group, member)).
    fn setup() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("g1"), v("a")]).unwrap(); // 0
        i.insert_named("R", [v("g1"), v("b")]).unwrap(); // 1
        i.insert_named("R", [v("g2"), v("c")]).unwrap(); // 2
                                                         // Prefer a over b.
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        (schema, i, p)
    }

    #[test]
    fn semantics_shrink_the_repair_set() {
        let (schema, i, p) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        let all = repairs_under(RepairSemantics::All, &cg, &p, 1 << 20).unwrap();
        let pareto = repairs_under(RepairSemantics::Pareto, &cg, &p, 1 << 20).unwrap();
        let global = repairs_under(RepairSemantics::Global, &cg, &p, 1 << 20).unwrap();
        let completion = repairs_under(RepairSemantics::Completion, &cg, &p, 1 << 20).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(pareto.len(), 1);
        assert_eq!(global.len(), 1);
        assert_eq!(completion.len(), 1);
        // C ⊆ G ⊆ P ⊆ All.
        for j in &completion {
            assert!(global.contains(j));
        }
        for j in &global {
            assert!(pareto.contains(j));
        }
    }

    #[test]
    fn certain_answers_differ_by_semantics() {
        let (schema, i, p) = setup();
        // q(x) ← R(g1, x).
        let q = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g1", "?0"])] };
        let all = answers(&schema, &i, &p, &q, RepairSemantics::All, 1 << 20).unwrap();
        // Under plain repairs, neither a nor b is certain.
        assert!(all.certain.is_empty());
        assert_eq!(all.possible.len(), 2);
        // Under globally-optimal repairs the preferred fact is certain.
        let global = answers(&schema, &i, &p, &q, RepairSemantics::Global, 1 << 20).unwrap();
        assert_eq!(global.certain.len(), 1);
        assert!(global.certain.contains(&Tuple::new([Value::sym("a")])));
        assert_eq!(global.repair_count, 1);
    }

    #[test]
    fn boolean_certainty() {
        let (schema, i, p) = setup();
        // q() ← R(g1, b): possible under All, refuted under Global.
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "R", &["g1", "b"])]);
        let all = answers(&schema, &i, &p, &q, RepairSemantics::All, 1 << 20).unwrap();
        assert!(all.certain.is_empty());
        assert!(!all.possible.is_empty());
        let global = answers(&schema, &i, &p, &q, RepairSemantics::Global, 1 << 20).unwrap();
        assert!(global.possible.is_empty());
    }

    #[test]
    fn empty_instance_yields_no_answers_but_one_repair() {
        let (schema, _, _) = setup();
        let i = Instance::new(schema.signature().clone());
        let p = PriorityRelation::empty(0);
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "R", &["g1", "?0"])]);
        let res = answers(&schema, &i, &p, &q, RepairSemantics::All, 1024).unwrap();
        assert_eq!(res.repair_count, 1); // the empty repair
        assert!(res.certain.is_empty());
        assert!(res.possible.is_empty());
    }
}

#[cfg(test)]
mod semantics_name_tests {
    use super::*;

    #[test]
    fn display_fromstr_roundtrip() {
        for sem in RepairSemantics::ALL {
            let back: RepairSemantics = sem.to_string().parse().unwrap();
            assert_eq!(back, sem);
        }
        assert!("bogus".parse::<RepairSemantics>().is_err());
    }

    #[test]
    fn inclusion_order_constant_is_strongest_first() {
        assert_eq!(RepairSemantics::ALL[0], RepairSemantics::Completion);
        assert_eq!(RepairSemantics::ALL[3], RepairSemantics::All);
    }
}
