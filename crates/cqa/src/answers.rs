//! Consistent query answering over preferred repairs.
//!
//! For a repair semantics `σ` (all subset repairs, Pareto-optimal,
//! globally-optimal, completion-optimal), the σ-certain answers of `q`
//! on `(I, ≻)` are `⋂ {q(J) : J a σ-repair}` and the σ-possible answers
//! `⋃ {q(J) : …}` — the preferred generalization of Arenas-Bertossi-
//! Chomicki consistent answers that the paper's concluding remarks pose
//! as the next classification problem. Repairs are enumerated by the
//! oracles in `rpr-core` under an explicit budget.

use crate::query::ConjunctiveQuery;
use rpr_core::{
    enumerate_repairs, enumerate_repairs_bounded, is_completion_optimal, is_global_improvement,
    is_pareto_improvement, Budget, BudgetExceeded, CheckSession, Outcome,
};
use rpr_data::{FactSet, Instance, Tuple};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::PriorityRelation;
use std::collections::BTreeSet;

/// The repair semantics to quantify over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairSemantics {
    /// All subset repairs (Arenas–Bertossi–Chomicki).
    All,
    /// Pareto-optimal repairs.
    Pareto,
    /// Globally-optimal repairs.
    Global,
    /// Completion-optimal repairs.
    Completion,
}

impl RepairSemantics {
    /// All four semantics, in the inclusion order
    /// `Completion ⊆ Global ⊆ Pareto ⊆ All` (strongest first).
    pub const ALL: [RepairSemantics; 4] = [
        RepairSemantics::Completion,
        RepairSemantics::Global,
        RepairSemantics::Pareto,
        RepairSemantics::All,
    ];
}

impl std::fmt::Display for RepairSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RepairSemantics::All => "all",
            RepairSemantics::Pareto => "pareto",
            RepairSemantics::Global => "global",
            RepairSemantics::Completion => "completion",
        };
        write!(f, "{name}")
    }
}

impl std::str::FromStr for RepairSemantics {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "all" => RepairSemantics::All,
            "pareto" => RepairSemantics::Pareto,
            "global" => RepairSemantics::Global,
            "completion" => RepairSemantics::Completion,
            other => {
                return Err(format!(
                    "unknown semantics `{other}` (use all|pareto|global|completion)"
                ))
            }
        })
    }
}

/// Enumerates the repairs of the chosen semantics.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn repairs_under(
    semantics: RepairSemantics,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    let all = enumerate_repairs(cg, budget)?;
    Ok(match semantics {
        RepairSemantics::All => all,
        RepairSemantics::Pareto => {
            // J is Pareto-optimal iff no repair Pareto-improves it
            // (improvements extend to repairs; see rpr-core::brute).
            all.iter()
                .filter(|j| !all.iter().any(|r| is_pareto_improvement(priority, j, r)))
                .cloned()
                .collect()
        }
        RepairSemantics::Global => all
            .iter()
            .filter(|j| !all.iter().any(|r| is_global_improvement(priority, j, r)))
            .cloned()
            .collect(),
        RepairSemantics::Completion => {
            all.into_iter().filter(|j| is_completion_optimal(cg, priority, j)).collect()
        }
    })
}

/// Enumerates the repairs of the chosen semantics under an engine
/// [`Budget`] (deadline, shared work allowance, cooperative
/// cancellation). Agrees with [`repairs_under`] when the budget does not
/// trip.
///
/// Partial-result semantics on degradation:
///
/// * `All` — the partial is a prefix of the repair enumeration (every
///   member is a true repair).
/// * `Pareto` / `Global` — confirming optimality requires comparing
///   against *every* repair, so a truncated enumeration cannot certify
///   any candidate and the partial is `None`; when enumeration finishes
///   but the pairwise filter trips mid-scan, the partial holds the
///   candidates confirmed so far.
/// * `Completion` — each repair is judged on its own, so the partial
///   holds the completion-optimal repairs confirmed before the stop.
pub fn repairs_under_bounded(
    semantics: RepairSemantics,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: &Budget,
) -> Outcome<Vec<FactSet>> {
    let (all, enumeration_stop) = match enumerate_repairs_bounded(cg, budget) {
        Outcome::Done(r) => (r, None),
        Outcome::Exceeded { partial, report } => {
            (partial.unwrap_or_default(), Some(rpr_core::Stop::Exceeded(report)))
        }
        Outcome::Cancelled { partial } => {
            (partial.unwrap_or_default(), Some(rpr_core::Stop::Cancelled))
        }
        Outcome::Panicked { partial, report } => return Outcome::Panicked { partial, report },
    };
    if let Some(stop) = enumeration_stop {
        // A prefix of the repairs is itself a valid partial only under
        // `All`; the optimality filters need the complete set to
        // certify anything, and completion checks on a prefix would
        // silently narrow the answer to that prefix.
        let partial = match semantics {
            RepairSemantics::All => Some(all),
            _ => None,
        };
        return Outcome::from_stop(stop, partial);
    }
    let filtered: Result<Vec<FactSet>, (Vec<FactSet>, rpr_core::Stop)> = match semantics {
        RepairSemantics::All => Ok(all),
        RepairSemantics::Pareto => filter_bounded(&all, budget, |j| {
            !all.iter().any(|r| is_pareto_improvement(priority, j, r))
        }),
        RepairSemantics::Global => filter_bounded(&all, budget, |j| {
            !all.iter().any(|r| is_global_improvement(priority, j, r))
        }),
        RepairSemantics::Completion => {
            filter_bounded(&all, budget, |j| is_completion_optimal(cg, priority, j))
        }
    };
    match filtered {
        Ok(repairs) => Outcome::Done(repairs),
        Err((kept, stop)) => Outcome::from_stop(stop, Some(kept)),
    }
}

/// Retains the repairs passing `keep`, charging one budget unit per
/// candidate; on a stop, returns the candidates confirmed so far.
fn filter_bounded(
    all: &[FactSet],
    budget: &Budget,
    keep: impl Fn(&FactSet) -> bool,
) -> Result<Vec<FactSet>, (Vec<FactSet>, rpr_core::Stop)> {
    let mut out = Vec::new();
    for j in all {
        if let Err(stop) = budget.step() {
            return Err((out, stop));
        }
        if keep(j) {
            out.push(j.clone());
        }
    }
    Ok(out)
}

/// Enumerates the repairs of the chosen semantics against an amortized
/// [`CheckSession`] under an engine [`Budget`]. The globally-optimal
/// semantics routes through the session's bounded dispatched checker
/// (its partial is a sound confirmed-optimal subset); the others share
/// the plain bounded path of [`repairs_under_bounded`].
pub fn repairs_under_session_bounded(
    semantics: RepairSemantics,
    session: &CheckSession<'_>,
    budget: &Budget,
) -> Outcome<Vec<FactSet>> {
    if semantics == RepairSemantics::Global {
        return rpr_core::globally_optimal_repairs_session_bounded(session, budget);
    }
    repairs_under_bounded(semantics, session.conflict_graph(), session.priority(), budget)
}

/// Enumerates the repairs of the chosen semantics against an amortized
/// [`CheckSession`] — no per-call conflict-graph construction, and the
/// globally-optimal filter runs through the session's dispatched
/// (polynomial where possible, parallel) checker instead of the
/// pairwise oracle scan.
///
/// Agrees with [`repairs_under`] on the session's conflict graph.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration (or, on hard schemas, an
/// exact check) exceeds its budget.
pub fn repairs_under_session(
    semantics: RepairSemantics,
    session: &CheckSession<'_>,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    if semantics == RepairSemantics::Global {
        return rpr_core::globally_optimal_repairs_session(session, budget);
    }
    repairs_under(semantics, session.conflict_graph(), session.priority(), budget)
}

/// The result of a preferred-CQA computation.
#[derive(Clone, Debug)]
pub struct CqaAnswers {
    /// Tuples present in the answer on every σ-repair.
    pub certain: BTreeSet<Tuple>,
    /// Tuples present in the answer on at least one σ-repair.
    pub possible: BTreeSet<Tuple>,
    /// How many σ-repairs were quantified over.
    pub repair_count: usize,
}

/// Computes certain and possible answers of `query` on `(instance, ≻)`
/// under the chosen repair semantics.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn answers(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: usize,
) -> Result<CqaAnswers, BudgetExceeded> {
    let cg = ConflictGraph::new(schema, instance);
    let repairs = repairs_under(semantics, &cg, priority, budget)?;
    Ok(quantify(instance, query, &repairs))
}

/// Computes certain and possible answers of `query` against an
/// amortized [`CheckSession`]. Answer/count loops over many queries
/// should build one session and call this per query: the conflict
/// graph, classification, and partitions are shared across all of
/// them.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration (or a hard-side exact
/// check) exceeds its budget.
pub fn answers_session(
    session: &CheckSession<'_>,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: usize,
) -> Result<CqaAnswers, BudgetExceeded> {
    let repairs = repairs_under_session(semantics, session, budget)?;
    Ok(quantify(session.instance(), query, &repairs))
}

/// Computes certain and possible answers under an engine [`Budget`].
///
/// On degradation the partial answers quantify over the partial repair
/// set: `certain` is then an *upper bound* (more repairs can only
/// shrink the intersection) and `possible` a *lower bound* (more
/// repairs can only grow the union) on the true answers. A degraded
/// outcome with no partial repair set carries no partial answers.
pub fn answers_bounded(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: &Budget,
) -> Outcome<CqaAnswers> {
    let cg = ConflictGraph::new(schema, instance);
    repairs_under_bounded(semantics, &cg, priority, budget)
        .map(|repairs| quantify(instance, query, &repairs))
}

/// Computes certain and possible answers against an amortized
/// [`CheckSession`] under an engine [`Budget`]. Same partial-answer
/// bounds as [`answers_bounded`].
pub fn answers_session_bounded(
    session: &CheckSession<'_>,
    query: &ConjunctiveQuery,
    semantics: RepairSemantics,
    budget: &Budget,
) -> Outcome<CqaAnswers> {
    repairs_under_session_bounded(semantics, session, budget)
        .map(|repairs| quantify(session.instance(), query, &repairs))
}

fn quantify(instance: &Instance, query: &ConjunctiveQuery, repairs: &[FactSet]) -> CqaAnswers {
    let mut certain: Option<BTreeSet<Tuple>> = None;
    let mut possible: BTreeSet<Tuple> = BTreeSet::new();
    for j in repairs {
        let sub = instance.materialize(j);
        let ans = query.eval(&sub);
        possible.extend(ans.iter().cloned());
        certain = Some(match certain {
            None => ans,
            Some(c) => c.intersection(&ans).cloned().collect(),
        });
    }
    CqaAnswers { certain: certain.unwrap_or_default(), possible, repair_count: repairs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::atom;
    use rpr_data::{FactId, Signature, Value};

    /// R(name, group) with key "group" (R: 2→1 and 2→… wait we want
    /// one winner per group: use R: 1→2 over (group, member)).
    fn setup() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("g1"), v("a")]).unwrap(); // 0
        i.insert_named("R", [v("g1"), v("b")]).unwrap(); // 1
        i.insert_named("R", [v("g2"), v("c")]).unwrap(); // 2
                                                         // Prefer a over b.
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        (schema, i, p)
    }

    #[test]
    fn semantics_shrink_the_repair_set() {
        let (schema, i, p) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        let all = repairs_under(RepairSemantics::All, &cg, &p, 1 << 20).unwrap();
        let pareto = repairs_under(RepairSemantics::Pareto, &cg, &p, 1 << 20).unwrap();
        let global = repairs_under(RepairSemantics::Global, &cg, &p, 1 << 20).unwrap();
        let completion = repairs_under(RepairSemantics::Completion, &cg, &p, 1 << 20).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(pareto.len(), 1);
        assert_eq!(global.len(), 1);
        assert_eq!(completion.len(), 1);
        // C ⊆ G ⊆ P ⊆ All.
        for j in &completion {
            assert!(global.contains(j));
        }
        for j in &global {
            assert!(pareto.contains(j));
        }
    }

    #[test]
    fn certain_answers_differ_by_semantics() {
        let (schema, i, p) = setup();
        // q(x) ← R(g1, x).
        let q = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g1", "?0"])] };
        let all = answers(&schema, &i, &p, &q, RepairSemantics::All, 1 << 20).unwrap();
        // Under plain repairs, neither a nor b is certain.
        assert!(all.certain.is_empty());
        assert_eq!(all.possible.len(), 2);
        // Under globally-optimal repairs the preferred fact is certain.
        let global = answers(&schema, &i, &p, &q, RepairSemantics::Global, 1 << 20).unwrap();
        assert_eq!(global.certain.len(), 1);
        assert!(global.certain.contains(&Tuple::new([Value::sym("a")])));
        assert_eq!(global.repair_count, 1);
    }

    #[test]
    fn boolean_certainty() {
        let (schema, i, p) = setup();
        // q() ← R(g1, b): possible under All, refuted under Global.
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "R", &["g1", "b"])]);
        let all = answers(&schema, &i, &p, &q, RepairSemantics::All, 1 << 20).unwrap();
        assert!(all.certain.is_empty());
        assert!(!all.possible.is_empty());
        let global = answers(&schema, &i, &p, &q, RepairSemantics::Global, 1 << 20).unwrap();
        assert!(global.possible.is_empty());
    }

    #[test]
    fn bounded_agrees_with_legacy_under_unlimited_budgets() {
        let (schema, i, p) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        let budget = Budget::unlimited();
        for sem in RepairSemantics::ALL {
            let legacy = repairs_under(sem, &cg, &p, 1 << 20).unwrap();
            let bounded = repairs_under_bounded(sem, &cg, &p, &budget)
                .expect_done("unlimited budget must finish");
            assert_eq!(bounded, legacy, "semantics {sem}");
        }
        let q = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g1", "?0"])] };
        let legacy = answers(&schema, &i, &p, &q, RepairSemantics::Global, 1 << 20).unwrap();
        let bounded = answers_bounded(&schema, &i, &p, &q, RepairSemantics::Global, &budget)
            .expect_done("unlimited budget must finish");
        assert_eq!(bounded.certain, legacy.certain);
        assert_eq!(bounded.possible, legacy.possible);
        assert_eq!(bounded.repair_count, legacy.repair_count);
    }

    #[test]
    fn bounded_session_agrees_with_plain_bounded() {
        let (schema, i, p) = setup();
        let pi =
            rpr_priority::PrioritizedInstance::conflict_restricted(&schema, i, p.clone()).unwrap();
        let checker = rpr_core::GRepairChecker::new(schema.clone());
        let session = checker.session(&pi).with_jobs(1);
        let budget = Budget::unlimited();
        for sem in RepairSemantics::ALL {
            let mut plain = repairs_under_bounded(sem, session.conflict_graph(), &p, &budget)
                .expect_done("unlimited");
            let mut via_session =
                repairs_under_session_bounded(sem, &session, &budget).expect_done("unlimited");
            plain.sort();
            via_session.sort();
            assert_eq!(plain, via_session, "semantics {sem}");
        }
    }

    #[test]
    fn bounded_degrades_per_semantics_on_truncated_enumeration() {
        let (schema, i, p) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        // Enumeration alone needs more than 2 units here, so every
        // semantics sees a truncated repair enumeration.
        let budget = Budget::unlimited().with_max_work(2);
        match repairs_under_bounded(RepairSemantics::All, &cg, &p, &budget) {
            Outcome::Exceeded { partial: Some(prefix), .. } => {
                let full = repairs_under(RepairSemantics::All, &cg, &p, 1 << 20).unwrap();
                assert!(prefix.len() < full.len());
                for j in &prefix {
                    assert!(full.contains(j), "partial members must be true repairs");
                }
            }
            other => panic!("expected Exceeded with a prefix, got {other:?}"),
        }
        let budget = Budget::unlimited().with_max_work(2);
        match repairs_under_bounded(RepairSemantics::Global, &cg, &p, &budget) {
            Outcome::Exceeded { partial: None, .. } => {}
            other => panic!("a truncated enumeration cannot certify optimality: {other:?}"),
        }
    }

    #[test]
    fn bounded_answers_observe_cancellation() {
        let (schema, i, p) = setup();
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "R", &["g1", "b"])]);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        match answers_bounded(&schema, &i, &p, &q, RepairSemantics::All, &budget) {
            Outcome::Cancelled { .. } => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn empty_instance_yields_no_answers_but_one_repair() {
        let (schema, _, _) = setup();
        let i = Instance::new(schema.signature().clone());
        let p = PriorityRelation::empty(0);
        let q = ConjunctiveQuery::boolean(vec![atom(&i, "R", &["g1", "?0"])]);
        let res = answers(&schema, &i, &p, &q, RepairSemantics::All, 1024).unwrap();
        assert_eq!(res.repair_count, 1); // the empty repair
        assert!(res.certain.is_empty());
        assert!(res.possible.is_empty());
    }
}

#[cfg(test)]
mod semantics_name_tests {
    use super::*;

    #[test]
    fn display_fromstr_roundtrip() {
        for sem in RepairSemantics::ALL {
            let back: RepairSemantics = sem.to_string().parse().unwrap();
            assert_eq!(back, sem);
        }
        assert!("bogus".parse::<RepairSemantics>().is_err());
    }

    #[test]
    fn inclusion_order_constant_is_strongest_first() {
        assert_eq!(RepairSemantics::ALL[0], RepairSemantics::Completion);
        assert_eq!(RepairSemantics::ALL[3], RepairSemantics::All);
    }
}
