//! Unions of conjunctive queries (UCQs).
//!
//! The related-work discussion in §1 cites Fontaine's result that a
//! CQA dichotomy for **unions of conjunctive queries** would resolve
//! the Feder–Vardi conjecture — UCQs are the canonical closure of CQs
//! the classification programme works with. This module adds them to
//! the query substrate: evaluation (union of disjunct answers),
//! preferred certain/possible answering, and the Sagiv–Yannakakis
//! containment test (`⋃ᵢ qᵢ ⊑ ⋃ⱼ q′ⱼ` iff every `qᵢ` is contained in
//! some `q′ⱼ`).

use crate::answers::{repairs_under, repairs_under_bounded, RepairSemantics};
use crate::homomorphism::is_contained_in;
use crate::query::ConjunctiveQuery;
use rpr_core::{Budget, BudgetExceeded, Outcome};
use rpr_data::{Instance, Tuple};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::PriorityRelation;
use std::collections::BTreeSet;

/// A union of conjunctive queries with a shared head arity.
#[derive(Clone, Debug)]
pub struct UnionQuery {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Builds a UCQ.
    ///
    /// # Errors
    /// Fails (with a message) if the disjunct list is empty or head
    /// arities differ.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Result<Self, String> {
        let first =
            disjuncts.first().ok_or_else(|| "a UCQ needs at least one disjunct".to_owned())?;
        let width = first.head.len();
        if disjuncts.iter().any(|q| q.head.len() != width) {
            return Err("all disjuncts must share the head arity".to_owned());
        }
        Ok(UnionQuery { disjuncts })
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Validates every disjunct against the instance's signature.
    ///
    /// # Errors
    /// Propagates the first disjunct validation error.
    pub fn validate(&self, instance: &Instance) -> Result<(), String> {
        for q in &self.disjuncts {
            q.validate(instance)?;
        }
        Ok(())
    }

    /// Evaluates the UCQ: the union of the disjunct answers.
    pub fn eval(&self, instance: &Instance) -> BTreeSet<Tuple> {
        let mut out = BTreeSet::new();
        for q in &self.disjuncts {
            out.extend(q.eval(instance));
        }
        out
    }

    /// Does the (boolean) UCQ hold?
    pub fn holds(&self, instance: &Instance) -> bool {
        self.disjuncts.iter().any(|q| q.holds(instance))
    }

    /// Sagiv–Yannakakis containment: `self ⊑ other` iff every disjunct
    /// of `self` is contained in some disjunct of `other`.
    pub fn is_contained_in(&self, other: &UnionQuery) -> bool {
        self.disjuncts.iter().all(|q| other.disjuncts.iter().any(|p| is_contained_in(q, p)))
    }

    /// UCQ equivalence.
    pub fn is_equivalent_to(&self, other: &UnionQuery) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }

    /// Removes disjuncts contained in other disjuncts (the UCQ core).
    pub fn minimize(&self) -> UnionQuery {
        let mut kept: Vec<ConjunctiveQuery> = Vec::new();
        'outer: for (i, q) in self.disjuncts.iter().enumerate() {
            for (j, p) in self.disjuncts.iter().enumerate() {
                if i != j && is_contained_in(q, p) {
                    // q ⊑ p: drop q — unless p ⊑ q too and p was
                    // already kept/later (keep the first of an
                    // equivalence class).
                    if !(is_contained_in(p, q) && j > i) {
                        continue 'outer;
                    }
                }
            }
            kept.push(q.clone());
        }
        UnionQuery { disjuncts: kept }
    }
}

/// σ-certain and σ-possible answers of a UCQ over preferred repairs.
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn ucq_answers(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    query: &UnionQuery,
    semantics: RepairSemantics,
    budget: usize,
) -> Result<crate::answers::CqaAnswers, BudgetExceeded> {
    let cg = ConflictGraph::new(schema, instance);
    let repairs = repairs_under(semantics, &cg, priority, budget)?;
    Ok(quantify_ucq(instance, query, &repairs))
}

/// σ-certain and σ-possible answers of a UCQ under an engine
/// [`Budget`]. On degradation the partial answers quantify over the
/// partial repair set — the same upper/lower-bound reading as
/// [`answers_bounded`](crate::answers::answers_bounded).
pub fn ucq_answers_bounded(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    query: &UnionQuery,
    semantics: RepairSemantics,
    budget: &Budget,
) -> Outcome<crate::answers::CqaAnswers> {
    let cg = ConflictGraph::new(schema, instance);
    repairs_under_bounded(semantics, &cg, priority, budget)
        .map(|repairs| quantify_ucq(instance, query, &repairs))
}

fn quantify_ucq(
    instance: &Instance,
    query: &UnionQuery,
    repairs: &[rpr_data::FactSet],
) -> crate::answers::CqaAnswers {
    let mut certain: Option<BTreeSet<Tuple>> = None;
    let mut possible: BTreeSet<Tuple> = BTreeSet::new();
    for j in repairs {
        let sub = instance.materialize(j);
        let ans = query.eval(&sub);
        possible.extend(ans.iter().cloned());
        certain = Some(match certain {
            None => ans,
            Some(c) => c.intersection(&ans).cloned().collect(),
        });
    }
    crate::answers::CqaAnswers {
        certain: certain.unwrap_or_default(),
        possible,
        repair_count: repairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::atom;
    use rpr_data::{FactId, Signature, Value};

    fn instance() -> Instance {
        let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("g"), v("a")]).unwrap(); // 0
        i.insert_named("R", [v("g"), v("b")]).unwrap(); // 1 (conflicts 0 under key 1)
        i.insert_named("S", [v("h"), v("c")]).unwrap(); // 2
        i
    }

    fn schema(i: &Instance) -> Schema {
        Schema::from_named(
            i.signature().clone(),
            [("R", &[1][..], &[2][..]), ("S", &[1][..], &[2][..])],
        )
        .unwrap()
    }

    #[test]
    fn union_evaluation() {
        let i = instance();
        // q(x) ← R(g, x)  ∪  q(x) ← S(h, x).
        let u = UnionQuery::new(vec![
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g", "?0"])] },
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "S", &["h", "?0"])] },
        ])
        .unwrap();
        u.validate(&i).unwrap();
        let ans = u.eval(&i);
        assert_eq!(ans.len(), 3);
        assert!(u.holds(&i));
    }

    #[test]
    fn head_arity_mismatch_rejected() {
        let i = instance();
        let err = UnionQuery::new(vec![
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["?0", "?1"])] },
            ConjunctiveQuery::boolean(vec![atom(&i, "S", &["?0", "?1"])]),
        ]);
        assert!(err.is_err());
        assert!(UnionQuery::new(vec![]).is_err());
    }

    #[test]
    fn sagiv_yannakakis_containment() {
        let i = instance();
        let edge = |rel: &str| ConjunctiveQuery {
            head: vec![0],
            atoms: vec![atom(&i, rel, &["?1", "?0"])],
        };
        let r_only = UnionQuery::new(vec![edge("R")]).unwrap();
        let both = UnionQuery::new(vec![edge("R"), edge("S")]).unwrap();
        assert!(r_only.is_contained_in(&both));
        assert!(!both.is_contained_in(&r_only));
        assert!(!both.is_equivalent_to(&r_only));
        assert!(both.is_equivalent_to(&both.clone()));
    }

    #[test]
    fn minimization_drops_absorbed_disjuncts() {
        let i = instance();
        // R(x,y) ∪ R(x,a): the constant-bound disjunct is absorbed.
        let general = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["?0", "?1"])] };
        let specific = ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["?0", "a"])] };
        let u = UnionQuery::new(vec![general.clone(), specific]).unwrap();
        let m = u.minimize();
        assert_eq!(m.disjuncts().len(), 1);
        assert!(m.is_equivalent_to(&u));
        // Duplicate-free equivalence classes keep one representative.
        let dup = UnionQuery::new(vec![general.clone(), general]).unwrap();
        assert_eq!(dup.minimize().disjuncts().len(), 1);
    }

    #[test]
    fn ucq_certain_answers_over_preferred_repairs() {
        let i = instance();
        let schema = schema(&i);
        // Prefer R(g,a) over R(g,b).
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        // q(x) ← R(g, x) ∪ q(x) ← S(h, x).
        let u = UnionQuery::new(vec![
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g", "?0"])] },
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "S", &["h", "?0"])] },
        ])
        .unwrap();
        let all = ucq_answers(&schema, &i, &p, &u, RepairSemantics::All, 1 << 20).unwrap();
        // c is certain (S has no conflicts); a/b only possible.
        assert_eq!(all.certain.len(), 1);
        assert_eq!(all.possible.len(), 3);
        let global = ucq_answers(&schema, &i, &p, &u, RepairSemantics::Global, 1 << 20).unwrap();
        // Under the global semantics a becomes certain too.
        assert_eq!(global.certain.len(), 2);
    }

    #[test]
    fn bounded_ucq_answers_agree_with_legacy() {
        let i = instance();
        let schema = schema(&i);
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        let u = UnionQuery::new(vec![
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "R", &["g", "?0"])] },
            ConjunctiveQuery { head: vec![0], atoms: vec![atom(&i, "S", &["h", "?0"])] },
        ])
        .unwrap();
        let budget = Budget::unlimited();
        for sem in RepairSemantics::ALL {
            let legacy = ucq_answers(&schema, &i, &p, &u, sem, 1 << 20).unwrap();
            let bounded = ucq_answers_bounded(&schema, &i, &p, &u, sem, &budget)
                .expect_done("unlimited budget must finish");
            assert_eq!(bounded.certain, legacy.certain, "semantics {sem}");
            assert_eq!(bounded.possible, legacy.possible, "semantics {sem}");
            assert_eq!(bounded.repair_count, legacy.repair_count, "semantics {sem}");
        }
        let tight = Budget::unlimited().with_max_work(1);
        match ucq_answers_bounded(&schema, &i, &p, &u, RepairSemantics::All, &tight) {
            Outcome::Exceeded { report, .. } => assert_eq!(report.max_work, Some(1)),
            other => panic!("expected Exceeded, got {other:?}"),
        }
    }
}
