//! The Theorem 3.1 / Theorem 6.1 classifier.
//!
//! For each relation symbol `R`, globally-optimal repair checking for
//! `({R}, Δ|R)` is polynomial iff `Δ|R` is equivalent to a single FD or
//! to two key constraints; by Proposition 3.5 the whole schema is
//! polynomial iff every relation is, and coNP-complete as soon as one
//! relation is hard. Theorem 6.1: this classification is itself
//! computable in polynomial time, via Lemma 6.2 and Theorem 6.3.

use crate::hard_case::diagnose_hard_case;
use crate::relation_class::{Complexity, HardCase, RelationClass};
use crate::single_fd::equivalent_single_fd;
use crate::two_keys::equivalent_two_incomparable_keys;
use rpr_data::RelId;
use rpr_fd::Schema;
use std::fmt;

/// The classification of a whole schema under Theorem 3.1.
#[derive(Clone, Debug)]
pub struct SchemaClass {
    per_relation: Vec<(RelId, RelationClass)>,
}

impl SchemaClass {
    /// The per-relation classes, in signature order.
    pub fn per_relation(&self) -> &[(RelId, RelationClass)] {
        &self.per_relation
    }

    /// The class of one relation.
    pub fn class_of(&self, rel: RelId) -> &RelationClass {
        &self.per_relation[rel.index()].1
    }

    /// The overall complexity (Proposition 3.5: hard iff some relation
    /// is hard).
    pub fn complexity(&self) -> Complexity {
        if self.per_relation.iter().all(|(_, c)| c.is_tractable()) {
            Complexity::PolynomialTime
        } else {
            Complexity::ConpComplete
        }
    }

    /// The hard relations and their §5.2 cases.
    pub fn hard_relations(&self) -> impl Iterator<Item = (RelId, &HardCase)> {
        self.per_relation.iter().filter_map(|(rel, c)| match c {
            RelationClass::Hard(hc) => Some((*rel, hc)),
            _ => None,
        })
    }
}

impl fmt::Display for SchemaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.complexity())
    }
}

/// Classifies one relation's FD set (the per-relation core of Theorem
/// 3.1). `fds` must all be over `rel`.
pub fn classify_relation(fds: &[rpr_fd::Fd], rel: RelId, arity: usize) -> RelationClass {
    if let Some(fd) = equivalent_single_fd(fds, rel, arity) {
        return RelationClass::SingleFd(fd);
    }
    if let Some((a1, a2)) = equivalent_two_incomparable_keys(fds, arity) {
        return RelationClass::TwoKeys(a1, a2);
    }
    // Both tractability tests failed, so the relation is coNP-complete
    // (that decision is exact and polynomial). Identifying *which* §5.2
    // case applies is diagnostic and budgeted; on very wide schemas the
    // witness search may come back unresolved.
    let hc = diagnose_hard_case(fds, arity).unwrap_or(HardCase::Unresolved);
    RelationClass::Hard(hc)
}

/// Classifies a schema under Theorem 3.1 (the Theorem 6.1 algorithm).
///
/// ```
/// use rpr_data::Signature;
/// use rpr_fd::Schema;
/// use rpr_classify::{classify_schema, Complexity};
///
/// // The paper's running example is on the tractable side…
/// let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
/// let tractable = Schema::from_named(sig, [
///     ("BookLoc", &[1][..], &[2][..]),
///     ("LibLoc", &[1][..], &[2][..]),
///     ("LibLoc", &[2][..], &[1][..]),
/// ]).unwrap();
/// assert_eq!(classify_schema(&tractable).complexity(), Complexity::PolynomialTime);
///
/// // …while S4 = {1→2, 2→3} of Example 3.4 is coNP-complete.
/// let sig = Signature::new([("R", 3)]).unwrap();
/// let hard = Schema::from_named(sig, [
///     ("R", &[1][..], &[2][..]),
///     ("R", &[2][..], &[3][..]),
/// ]).unwrap();
/// assert_eq!(classify_schema(&hard).complexity(), Complexity::ConpComplete);
/// ```
pub fn classify_schema(schema: &Schema) -> SchemaClass {
    let sig = schema.signature();
    let per_relation = sig
        .rel_ids()
        .map(|rel| (rel, classify_relation(schema.fds_for(rel), rel, sig.arity(rel))))
        .collect();
    SchemaClass { per_relation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::Signature;

    #[test]
    fn example_3_2_running_schema_is_tractable() {
        // BookLoc: single fd; LibLoc: two keys → PTIME.
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig,
            [
                ("BookLoc", &[1][..], &[2][..]),
                ("LibLoc", &[1][..], &[2][..]),
                ("LibLoc", &[2][..], &[1][..]),
            ],
        )
        .unwrap();
        let class = classify_schema(&schema);
        assert_eq!(class.complexity(), Complexity::PolynomialTime);
        let b = schema.signature().rel_id("BookLoc").unwrap();
        let l = schema.signature().rel_id("LibLoc").unwrap();
        assert!(matches!(class.class_of(b), RelationClass::SingleFd(_)));
        assert!(matches!(class.class_of(l), RelationClass::TwoKeys(..)));
        assert_eq!(class.hard_relations().count(), 0);
    }

    #[test]
    fn example_3_3_is_tractable() {
        // R ternary {1→2}; S ternary {}; T quaternary {1→{2,3,4}, {2,3}→1}.
        let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
        let schema = Schema::from_named(
            sig,
            [
                ("R", &[1][..], &[2][..]),
                ("T", &[1][..], &[2, 3, 4][..]),
                ("T", &[2, 3][..], &[1][..]),
            ],
        )
        .unwrap();
        let class = classify_schema(&schema);
        assert_eq!(class.complexity(), Complexity::PolynomialTime);
        let s = schema.signature().rel_id("S").unwrap();
        // ∆|S is empty — equivalent to a single (trivial) fd.
        match class.class_of(s) {
            RelationClass::SingleFd(fd) => assert!(fd.is_trivial()),
            other => panic!("unexpected class {other:?}"),
        }
        let t = schema.signature().rel_id("T").unwrap();
        assert!(matches!(class.class_of(t), RelationClass::TwoKeys(..)));
    }

    #[test]
    fn example_3_4_all_six_schemas_are_hard() {
        let specs: [&[(&[usize], &[usize])]; 6] = [
            &[(&[1, 2], &[3]), (&[1, 3], &[2]), (&[2, 3], &[1])],
            &[(&[1], &[2]), (&[2], &[1])],
            &[(&[1, 2], &[3]), (&[3], &[2])],
            &[(&[1], &[2]), (&[2], &[3])],
            &[(&[1], &[3]), (&[2], &[3])],
            &[(&[], &[1]), (&[2], &[3])],
        ];
        for (i, spec) in specs.iter().enumerate() {
            let sig = Signature::new([("R", 3)]).unwrap();
            let fds: Vec<(&str, &[usize], &[usize])> =
                spec.iter().map(|&(l, r)| ("R", l, r)).collect();
            let schema = Schema::from_named(sig, fds).unwrap();
            let class = classify_schema(&schema);
            assert_eq!(class.complexity(), Complexity::ConpComplete, "S{} must be hard", i + 1);
            let (_, hc) = class.hard_relations().next().unwrap();
            assert_eq!(hc.number() as usize, i + 1, "S{} lands in its case", i + 1);
        }
    }

    #[test]
    fn mixed_schema_is_hard_if_any_relation_is() {
        let sig = Signature::new([("Good", 2), ("Bad", 3)]).unwrap();
        let schema = Schema::from_named(
            sig,
            [
                ("Good", &[1][..], &[2][..]),
                ("Bad", &[1][..], &[2][..]),
                ("Bad", &[2][..], &[3][..]),
            ],
        )
        .unwrap();
        let class = classify_schema(&schema);
        assert_eq!(class.complexity(), Complexity::ConpComplete);
        assert_eq!(class.hard_relations().count(), 1);
    }

    #[test]
    fn empty_schema_is_tractable() {
        let sig = Signature::new([("R", 3)]).unwrap();
        let schema = Schema::new(sig, []).unwrap();
        assert_eq!(classify_schema(&schema).complexity(), Complexity::PolynomialTime);
    }
}
