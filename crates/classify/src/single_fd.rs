//! Deciding equivalence to a single FD (§6, Lemma 6.2 part 1).
//!
//! Lemma 6.2(1): if `Δ` is equivalent to a nontrivial FD `A → B`, then
//! some FD in `Δ` has `A` as its left-hand side. The polynomial
//! algorithm therefore only tries left-hand sides occurring in `Δ`:
//! for each such `A`, the strongest single FD with that lhs is
//! `A → ⟦R.A^Δ⟧` (Theorem 6.3 gives the closure in polynomial time);
//! `Δ` is equivalent to it iff every FD of `Δ` is implied by it.

use rpr_data::{AttrSet, RelId};
use rpr_fd::{closure, implies, lhs_candidates, Fd};

/// If `fds` (all over one relation of the given arity) is equivalent to
/// a single FD, returns one such FD; otherwise `None`.
///
/// The returned FD is `A → ⟦R.A^Δ⟧` for the first qualifying lhs `A`,
/// or the trivial FD `∅ → ∅` when `Δ` has no nontrivial consequences.
pub fn equivalent_single_fd(fds: &[Fd], rel: RelId, _arity: usize) -> Option<Fd> {
    // All-trivial (or empty) Δ ⟺ equivalent to a trivial FD.
    if fds.iter().all(|fd| fd.is_trivial()) {
        return Some(Fd::new(rel, AttrSet::EMPTY, AttrSet::EMPTY));
    }
    for lhs in lhs_candidates(fds) {
        let candidate = Fd::new(rel, lhs, closure(lhs, fds));
        if fds.iter().all(|&fd| implies(&[candidate], fd)) {
            return Some(candidate);
        }
    }
    None
}

/// If `fds` is equivalent to a **single key constraint** `A → ⟦R⟧`,
/// returns the key's lhs. This is the per-relation test of the ccp
/// primary-key-assignment condition (Theorem 7.1).
pub fn equivalent_single_key(fds: &[Fd], rel: RelId, arity: usize) -> Option<AttrSet> {
    let fd = equivalent_single_fd(fds, rel, arity)?;
    if fd.is_trivial() {
        // Trivial Δ is equivalent to the trivial key ⟦R⟧ → ⟦R⟧.
        return Some(AttrSet::full(arity));
    }
    if closure(fd.lhs, fds) == AttrSet::full(arity) {
        Some(fd.lhs)
    } else {
        None
    }
}

/// If `fds` is equivalent to a **constant-attribute constraint**
/// `∅ → B` (§7.1), returns `B = ⟦R.∅^Δ⟧`. Trivial `Δ` qualifies with
/// `B = ∅`.
pub fn equivalent_constant_attribute(fds: &[Fd], rel: RelId) -> Option<AttrSet> {
    let b = closure(AttrSet::EMPTY, fds);
    let candidate = Fd::new(rel, AttrSet::EMPTY, b);
    if fds.iter().all(|&fd| implies(&[candidate], fd)) {
        Some(b)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(0);

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::from_attrs(R, lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn single_fd_positive_cases() {
        // Literally a single FD.
        let got = equivalent_single_fd(&[fd(&[1], &[2])], R, 3).unwrap();
        assert_eq!(got.lhs, AttrSet::singleton(1));
        assert_eq!(got.rhs, AttrSet::from_attrs([1, 2]));
        // Redundant decorations of one FD.
        let fds = [fd(&[1], &[2]), fd(&[1], &[2, 3]), fd(&[1, 2], &[3])];
        assert!(equivalent_single_fd(&fds, R, 3).is_some());
        // Empty and all-trivial sets (Example 3.3's S-relation: "∆|S is
        // empty, hence equivalent to a single trivial fd").
        assert!(equivalent_single_fd(&[], R, 3).unwrap().is_trivial());
        assert!(equivalent_single_fd(&[fd(&[1, 2], &[1])], R, 3).unwrap().is_trivial());
    }

    #[test]
    fn single_fd_negative_cases() {
        // S2 of Example 3.4: {1→2, 2→1} over ternary.
        assert!(equivalent_single_fd(&[fd(&[1], &[2]), fd(&[2], &[1])], R, 3).is_none());
        // S4: {1→2, 2→3}.
        assert!(equivalent_single_fd(&[fd(&[1], &[2]), fd(&[2], &[3])], R, 3).is_none());
        // S5: {1→3, 2→3}.
        assert!(equivalent_single_fd(&[fd(&[1], &[3]), fd(&[2], &[3])], R, 3).is_none());
        // S6: {∅→1, 2→3}.
        assert!(equivalent_single_fd(&[fd(&[], &[1]), fd(&[2], &[3])], R, 3).is_none());
    }

    #[test]
    fn chain_fds_on_binary_collapse_to_a_key() {
        // Over a binary relation, {1→2, 2→1} is NOT a single fd… each
        // candidate: 1→{1,2} implies 1→2 but not 2→1. Still None.
        assert!(equivalent_single_fd(&[fd(&[1], &[2]), fd(&[2], &[1])], R, 2).is_none());
    }

    #[test]
    fn single_key_detection() {
        // {1→2, 1→3} over ternary ≡ key 1→⟦R⟧.
        let fds = [fd(&[1], &[2]), fd(&[1], &[3])];
        assert_eq!(equivalent_single_key(&fds, R, 3), Some(AttrSet::singleton(1)));
        // {1→2} over ternary is a single FD but not a key.
        assert_eq!(equivalent_single_key(&[fd(&[1], &[2])], R, 3), None);
        // Trivial Δ is the trivial key.
        assert_eq!(equivalent_single_key(&[], R, 2), Some(AttrSet::full(2)));
    }

    #[test]
    fn constant_attribute_detection() {
        // {∅→3} qualifies (§7.1).
        assert_eq!(equivalent_constant_attribute(&[fd(&[], &[3])], R), Some(AttrSet::singleton(3)));
        // {∅→1, ∅→2} merges.
        assert_eq!(
            equivalent_constant_attribute(&[fd(&[], &[1]), fd(&[], &[2])], R),
            Some(AttrSet::from_attrs([1, 2]))
        );
        // {1→2} is not constant-attribute.
        assert_eq!(equivalent_constant_attribute(&[fd(&[1], &[2])], R), None);
        // Trivial Δ is ∅ → ∅.
        assert_eq!(equivalent_constant_attribute(&[], R), Some(AttrSet::EMPTY));
    }
}
