//! Deciding equivalence to a set of two key constraints (§6, Lemma 6.2
//! part 2).
//!
//! Lemma 6.2(2): if `Δ` is equivalent to `{A1 → B1, A2 → B2}` with
//! incomparable nontrivial left-hand sides, then `Δ` contains FDs with
//! lhs `A1` and lhs `A2`. The §6 algorithm therefore tries every pair of
//! left-hand sides occurring in `Δ`, verifies both are keys (closure =
//! `⟦R⟧`), and checks that every FD of `Δ` is implied by the two keys.
//! The comparable-keys case collapses to a single key, which
//! [`crate::single_fd::equivalent_single_fd`] already covers.

use rpr_data::AttrSet;
use rpr_fd::{closure, implies, lhs_candidates, Fd};

/// If `fds` (all over one relation of the given arity) is equivalent to
/// a set of two *incomparable* key constraints, returns their left-hand
/// sides `(A1, A2)` with `A1 < A2` in bitmask order; otherwise `None`.
///
/// Note: FD sets equivalent to a *single* key return `None` here — they
/// are already on the tractable side via the single-FD condition, and
/// the two-keys algorithm (`GRepCheck2Keys`) explicitly assumes
/// incomparable keys (§4.2).
pub fn equivalent_two_incomparable_keys(fds: &[Fd], arity: usize) -> Option<(AttrSet, AttrSet)> {
    let full = AttrSet::full(arity);
    let candidates = lhs_candidates(fds);
    let rel = fds.first()?.rel;
    for (i, &a1) in candidates.iter().enumerate() {
        if closure(a1, fds) != full {
            continue;
        }
        for &a2 in candidates.iter().skip(i + 1) {
            if a1.is_subset(a2) || a2.is_subset(a1) {
                continue;
            }
            if closure(a2, fds) != full {
                continue;
            }
            let keys = [Fd::key(rel, a1, arity), Fd::key(rel, a2, arity)];
            if fds.iter().all(|&fd| implies(&keys, fd)) {
                return if a1 < a2 { Some((a1, a2)) } else { Some((a2, a1)) };
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::RelId;

    const R: RelId = RelId(0);

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::from_attrs(R, lhs.iter().copied(), rhs.iter().copied())
    }

    #[test]
    fn libloc_is_two_keys() {
        // Running example: LibLoc with {1→2, 2→1} over a binary relation.
        let fds = [fd(&[1], &[2]), fd(&[2], &[1])];
        assert_eq!(
            equivalent_two_incomparable_keys(&fds, 2),
            Some((AttrSet::singleton(1), AttrSet::singleton(2)))
        );
    }

    #[test]
    fn example_3_3_t_relation() {
        // ∆|T = {1→{2,3,4}, {2,3}→1} ≡ {1→⟦T⟧, {2,3}→⟦T⟧}.
        let fds = [fd(&[1], &[2, 3, 4]), fd(&[2, 3], &[1])];
        assert_eq!(
            equivalent_two_incomparable_keys(&fds, 4),
            Some((AttrSet::singleton(1), AttrSet::from_attrs([2, 3])))
        );
    }

    #[test]
    fn s2_is_not_two_keys_over_ternary() {
        // S2 = {1→2, 2→1} over a TERNARY relation: neither {1} nor {2}
        // reaches attribute 3, so they are not keys.
        let fds = [fd(&[1], &[2]), fd(&[2], &[1])];
        assert_eq!(equivalent_two_incomparable_keys(&fds, 3), None);
    }

    #[test]
    fn s1_three_keys_rejected() {
        let fds = [fd(&[1, 2], &[3]), fd(&[1, 3], &[2]), fd(&[2, 3], &[1])];
        assert_eq!(equivalent_two_incomparable_keys(&fds, 3), None);
    }

    #[test]
    fn s3_rejected() {
        // S3 = {{1,2}→3, 3→2}: {1,2} is a key, {3} is not; not two keys.
        let fds = [fd(&[1, 2], &[3]), fd(&[3], &[2])];
        assert_eq!(equivalent_two_incomparable_keys(&fds, 3), None);
    }

    #[test]
    fn comparable_keys_return_none() {
        // {1→all, {1,2}→all}: comparable lhs; single key covers it.
        let fds = [fd(&[1], &[2, 3]), fd(&[1, 2], &[3])];
        assert_eq!(equivalent_two_incomparable_keys(&fds, 3), None);
    }

    #[test]
    fn two_keys_with_extra_implied_fds() {
        // Two keys plus consequences of them still classify as two keys.
        let fds = [
            fd(&[1], &[2, 3]),
            fd(&[2], &[1, 3]),
            fd(&[1, 2], &[3]), // implied
        ];
        assert_eq!(
            equivalent_two_incomparable_keys(&fds, 3),
            Some((AttrSet::singleton(1), AttrSet::singleton(2)))
        );
    }

    #[test]
    fn empty_fd_set_returns_none() {
        assert_eq!(equivalent_two_incomparable_keys(&[], 3), None);
    }
}
