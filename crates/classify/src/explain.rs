//! Human-readable classification reports with proof receipts.
//!
//! [`classify_schema`](crate::classify_schema) answers *which* side of
//! Theorem 3.1 a schema is on; this module explains *why*, in terms a
//! reviewer can re-check:
//!
//! * tractable single-FD relations come with Armstrong derivations of
//!   every original FD from the equivalent single FD (and the converse
//!   implication), i.e. a machine-checkable equivalence certificate;
//! * tractable two-key relations come with the key pair, their
//!   minimality, and per-FD derivations from the two keys;
//! * hard relations come with the §5.2 case, the `A`/`B` witnesses and
//!   their closures `A⁺`, `Â`, `B⁺`, `B̂`, plus which Example 3.4
//!   schema anchors the reduction.

use crate::hard_case::case_witness_detail;
use crate::relation_class::{HardCase, RelationClass};
use crate::theorem31::classify_relation;
use rpr_data::RelId;
use rpr_fd::{derive, Fd, Schema};
use std::fmt::Write;

/// Renders a per-relation explanation of the Theorem 3.1 classification.
pub fn explain_relation(fds: &[Fd], rel: RelId, arity: usize, name: &str) -> String {
    let mut out = String::new();
    match classify_relation(fds, rel, arity) {
        RelationClass::SingleFd(single) => {
            let _ = writeln!(
                out,
                "{name}: tractable (condition 1) — Δ ≡ {{{} → {}}}",
                single.lhs, single.rhs
            );
            let _ = writeln!(out, "  equivalence certificate (Armstrong derivations):");
            for fd in fds {
                match derive(&[single], *fd) {
                    Some(proof) => {
                        let _ = writeln!(
                            out,
                            "  · {} → {} follows in {} steps",
                            fd.lhs,
                            fd.rhs,
                            proof.len()
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  · INTERNAL ERROR: {} → {} not derivable",
                            fd.lhs, fd.rhs
                        );
                    }
                }
            }
            if let Some(proof) = derive(fds, single) {
                let _ = writeln!(
                    out,
                    "  · conversely, {} → {} follows from Δ in {} steps",
                    single.lhs,
                    single.rhs,
                    proof.len()
                );
            }
        }
        RelationClass::TwoKeys(a1, a2) => {
            let _ =
                writeln!(out, "{name}: tractable (condition 2) — Δ ≡ {{{a1} → ⟦R⟧, {a2} → ⟦R⟧}}");
            let keys = [Fd::key(rel, a1, arity), Fd::key(rel, a2, arity)];
            for fd in fds {
                if let Some(proof) = derive(&keys, *fd) {
                    let _ = writeln!(
                        out,
                        "  · {} → {} follows from the keys in {} steps",
                        fd.lhs,
                        fd.rhs,
                        proof.len()
                    );
                }
            }
            let _ = writeln!(
                out,
                "  · the keys are incomparable ({a1} ⊄ {a2}, {a2} ⊄ {a1}), as GRepCheck2Keys requires"
            );
        }
        RelationClass::Hard(hc) => {
            let _ = writeln!(out, "{name}: coNP-complete — {hc}");
            match &hc {
                HardCase::ThreeOrMoreKeys(keys) => {
                    let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "  Δ is equivalent to the key set {{{}}} (≥3 keys): the Case-1 Π \
                         transports the Hamiltonian-cycle gadget from S1 into this schema",
                        rendered.join(", ")
                    );
                }
                HardCase::Unresolved => {
                    let _ = writeln!(
                        out,
                        "  the tractability tests failed (that decision is exact); the \
                         §5.2 witness search exceeded its budget on this very wide schema"
                    );
                }
                _ => {
                    if let Some((a, b, a_plus, a_hat, b_plus, b_hat)) =
                        case_witness_detail(fds, arity)
                    {
                        let _ = writeln!(
                            out,
                            "  witnesses: A = {a} (minimal non-key determiner), B = {b} \
                             (minimal non-redundant determiner ≠ A)"
                        );
                        let _ = writeln!(
                            out,
                            "  A⁺ = {a_plus}, Â = {a_hat}, B⁺ = {b_plus}, B̂ = {b_hat}"
                        );
                        let _ = writeln!(
                            out,
                            "  the reduction anchor is S{} of Example 3.4",
                            hc.number()
                        );
                    }
                }
            }
        }
    }
    out
}

/// Renders the whole-schema explanation.
pub fn explain_schema(schema: &Schema) -> String {
    let sig = schema.signature();
    let mut out = String::new();
    for rel in sig.rel_ids() {
        out.push_str(&explain_relation(
            schema.fds_for(rel),
            rel,
            sig.arity(rel),
            sig.symbol(rel).name(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::Signature;

    fn schema(fds: &[(&[usize], &[usize])]) -> Schema {
        let sig = Signature::new([("R", 3)]).unwrap();
        let named: Vec<(&str, &[usize], &[usize])> =
            fds.iter().map(|&(l, r)| ("R", l, r)).collect();
        Schema::from_named(sig, named).unwrap()
    }

    #[test]
    fn single_fd_explanation_has_certificates() {
        let s = schema(&[(&[1], &[2]), (&[1], &[2, 3])]);
        let text = explain_schema(&s);
        assert!(text.contains("condition 1"), "{text}");
        assert!(text.contains("follows in"), "{text}");
        assert!(text.contains("conversely"), "{text}");
        assert!(!text.contains("INTERNAL ERROR"), "{text}");
    }

    #[test]
    fn two_keys_explanation() {
        let sig = Signature::new([("L", 2)]).unwrap();
        let s = Schema::from_named(sig, [("L", &[1][..], &[2][..]), ("L", &[2][..], &[1][..])])
            .unwrap();
        let text = explain_schema(&s);
        assert!(text.contains("condition 2"), "{text}");
        assert!(text.contains("incomparable"), "{text}");
        assert!(text.contains("follows from the keys"), "{text}");
    }

    #[test]
    fn hard_explanations_name_the_anchor() {
        // S4.
        let s = schema(&[(&[1], &[2]), (&[2], &[3])]);
        let text = explain_schema(&s);
        assert!(text.contains("coNP-complete"), "{text}");
        assert!(text.contains("anchor is S4"), "{text}");
        assert!(text.contains("A⁺"), "{text}");
        // S1 (three keys).
        let s = schema(&[(&[1, 2], &[3]), (&[1, 3], &[2]), (&[2, 3], &[1])]);
        let text = explain_schema(&s);
        assert!(text.contains("Case-1 Π"), "{text}");
        assert!(text.contains("Hamiltonian-cycle gadget"), "{text}");
    }
}
