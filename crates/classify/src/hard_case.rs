//! The §5.2 case branching for hard relations.
//!
//! When `Δ|R` is equivalent to neither a single FD nor two keys, the
//! hardness proof reduces from one of the six concrete schemas of
//! Example 3.4, chosen by this case analysis:
//!
//! * **Case 1**: `Δ` is equivalent to a set of `k ≥ 3` keys.
//! * Otherwise, fix a minimal determiner `A` that is not a key and a
//!   minimal non-redundant determiner `B ≠ A`, and with
//!   `A⁺ = ⟦R.A^Δ⟧`, `Â = A⁺ \ A`, `B⁺ = ⟦R.B^Δ⟧`, `B̂ = B⁺ \ B`:
//!   - **Case 2**: `A⁺ = B⁺`;
//!   - **Case 3**: `B⁺ ⊄ A⁺`, `A ∩ B̂ ≠ ∅`, `Â ∩ B ≠ ∅`;
//!   - **Case 4**: `B⁺ ⊄ A⁺`, `A ∩ B̂ ≠ ∅`, `Â ∩ B = ∅`;
//!   - **Case 5**: `B⁺ ⊄ A⁺`, `A ∩ B̂ = ∅`, `B̂ ⊆ Â`;
//!   - **Case 6**: `B⁺ ⊄ A⁺`, `A ∩ B̂ = ∅`, `B̂ ⊄ Â`;
//!   - **Case 7**: `A⁺ ⊄ B⁺` (the remaining possibility; symmetric).
//!
//! The tractable/hard *decision* is polynomial (§6); identifying the
//! hard case is diagnostic machinery and may enumerate attribute
//! subsets (exponential in the arity, which is fine for the arities the
//! reductions target).

use crate::relation_class::HardCase;
use rpr_data::AttrSet;
use rpr_engine::{Budget, Outcome, Stop};
use rpr_fd::{
    as_key_set, closure, hard_case_witnesses, is_nonredundant_determiner, minimal_determiners,
    relevant_attrs, Fd,
};

/// Determines which §5.2 case a hard relation falls into.
///
/// Precondition: `fds` is equivalent to neither a single FD nor two
/// keys (i.e. the relation is on the hard side of Theorem 3.1). If the
/// precondition is violated the function may return `None`.
pub fn diagnose_hard_case(fds: &[Fd], arity: usize) -> Option<HardCase> {
    // Case 1: equivalent to a set of keys (which then must have ≥ 3
    // members, since ≤ 2 would be on the tractable side).
    if let Some(keys) = as_key_set(fds, arity) {
        if keys.len() >= 3 {
            return Some(HardCase::ThreeOrMoreKeys(keys));
        }
        // 1 or 2 keys ⇒ tractable; precondition violated.
        return None;
    }

    let (a, b) = hard_case_witnesses(fds, arity)?;
    let a_plus = closure(a, fds);
    let b_plus = closure(b, fds);
    let a_hat = a_plus.difference(a);
    let b_hat = b_plus.difference(b);

    if a_plus == b_plus {
        return Some(HardCase::Case2 { a, b });
    }
    if !b_plus.is_subset(a_plus) {
        let a_meets_bhat = !a.is_disjoint(b_hat);
        let ahat_meets_b = !a_hat.is_disjoint(b);
        return Some(match (a_meets_bhat, ahat_meets_b) {
            (true, true) => HardCase::Case3 { a, b },
            (true, false) => HardCase::Case4 { a, b },
            (false, _) => {
                if b_hat.is_subset(a_hat) {
                    HardCase::Case5 { a, b }
                } else {
                    HardCase::Case6 { a, b }
                }
            }
        });
    }
    // B⁺ ⊊ A⁺, hence A⁺ ⊄ B⁺: Case 7.
    Some(HardCase::Case7 { a, b })
}

/// [`diagnose_hard_case`] under a caller-supplied [`Budget`].
///
/// The case *decision* is polynomial, but the `B` witness search may
/// enumerate attribute subsets; on wide schemas that enumeration is the
/// one place the diagnosis can blow up. This variant charges one work
/// unit per candidate subset examined and observes the budget's
/// deadline and cancellation token, degrading to
/// [`Outcome::Exceeded`]/[`Outcome::Cancelled`] instead of burning
/// through the fixed internal step cap of the legacy path. Under an
/// unlimited budget the result is identical to
/// [`diagnose_hard_case`].
pub fn diagnose_hard_case_bounded(
    fds: &[Fd],
    arity: usize,
    budget: &Budget,
) -> Outcome<Option<HardCase>> {
    if let Some(keys) = as_key_set(fds, arity) {
        if keys.len() >= 3 {
            return Outcome::Done(Some(HardCase::ThreeOrMoreKeys(keys)));
        }
        return Outcome::Done(None);
    }
    let (a, b) = match hard_case_witnesses_bounded(fds, arity, budget) {
        Ok(Some(pair)) => pair,
        Ok(None) => return Outcome::Done(None),
        Err(stop) => return Outcome::from_stop(stop, None),
    };
    let a_plus = closure(a, fds);
    let b_plus = closure(b, fds);
    let a_hat = a_plus.difference(a);
    let b_hat = b_plus.difference(b);

    Outcome::Done(Some(if a_plus == b_plus {
        HardCase::Case2 { a, b }
    } else if !b_plus.is_subset(a_plus) {
        match (!a.is_disjoint(b_hat), !a_hat.is_disjoint(b)) {
            (true, true) => HardCase::Case3 { a, b },
            (true, false) => HardCase::Case4 { a, b },
            (false, _) => {
                if b_hat.is_subset(a_hat) {
                    HardCase::Case5 { a, b }
                } else {
                    HardCase::Case6 { a, b }
                }
            }
        }
    } else {
        HardCase::Case7 { a, b }
    }))
}

/// The §5.2 witness search under an engine budget: a minimal non-key
/// determiner `A`, then the size-ordered scan for the non-redundant
/// `B ≠ A`, charging one unit per candidate subset. The scan order is
/// exactly [`rpr_fd::hard_case_witnesses`]' (combinations of the sorted
/// relevant attributes, smallest size first, lexicographic within a
/// size), so both paths return the same witness pair.
fn hard_case_witnesses_bounded(
    fds: &[Fd],
    arity: usize,
    budget: &Budget,
) -> Result<Option<(AttrSet, AttrSet)>, Stop> {
    let full = AttrSet::full(arity);
    let Some(a) = minimal_determiners(fds, arity).into_iter().find(|&a| closure(a, fds) != full)
    else {
        return Ok(None);
    };
    let universe: Vec<usize> = relevant_attrs(fds).iter().collect();
    for size in 0..=universe.len() {
        let mut chosen = vec![0usize; size];
        if let Some(b) =
            combos_find(&universe, size, 0, &mut chosen, 0, &mut |combo| -> Result<_, Stop> {
                budget.step()?;
                let b = AttrSet::from_attrs(combo.iter().copied());
                Ok((b != a && is_nonredundant_determiner(b, fds)).then_some(b))
            })?
        {
            return Ok(Some((a, b)));
        }
    }
    Ok(None)
}

/// Lexicographic k-combinations of `pool`, stopping at the first
/// combination `f` accepts (or the first budget stop `f` raises).
fn combos_find(
    pool: &[usize],
    size: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    depth: usize,
    f: &mut impl FnMut(&[usize]) -> Result<Option<AttrSet>, Stop>,
) -> Result<Option<AttrSet>, Stop> {
    if depth == size {
        return f(&chosen[..size]);
    }
    for i in start..pool.len() {
        chosen[depth] = pool[i];
        if let Some(found) = combos_find(pool, size, i + 1, chosen, depth + 1, f)? {
            return Ok(Some(found));
        }
    }
    Ok(None)
}

/// Convenience wrapper exposing the `(A, B, A⁺, Â, B⁺, B̂)` tuple for
/// diagnostics and the experiment harness.
pub fn case_witness_detail(
    fds: &[Fd],
    arity: usize,
) -> Option<(AttrSet, AttrSet, AttrSet, AttrSet, AttrSet, AttrSet)> {
    let (a, b) = hard_case_witnesses(fds, arity)?;
    let a_plus = closure(a, fds);
    let b_plus = closure(b, fds);
    Some((a, b, a_plus, a_plus.difference(a), b_plus, b_plus.difference(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::RelId;

    const R: RelId = RelId(0);

    fn fd(lhs: &[usize], rhs: &[usize]) -> Fd {
        Fd::from_attrs(R, lhs.iter().copied(), rhs.iter().copied())
    }

    /// Each Si of Example 3.4 must land in Case i — that is how the
    /// paper chose them ("In Cases 2–6 we show reductions … from the
    /// schemas Si for i = 2, …, 6").
    #[test]
    fn the_six_schemas_land_in_their_cases() {
        // S1 = {{1,2}→3, {1,3}→2, {2,3}→1}.
        let s1 = [fd(&[1, 2], &[3]), fd(&[1, 3], &[2]), fd(&[2, 3], &[1])];
        assert_eq!(diagnose_hard_case(&s1, 3).unwrap().number(), 1);

        // S2 = {1→2, 2→1} over ternary: A={1}, B={2}, A⁺=B⁺={1,2}.
        let s2 = [fd(&[1], &[2]), fd(&[2], &[1])];
        assert_eq!(diagnose_hard_case(&s2, 3).unwrap().number(), 2);

        // S3 = {{1,2}→3, 3→2}: A={3} (minimal determiner, closure {2,3},
        // not a key), B={1,2}? B must be non-redundant minimal ≠ A.
        let s3 = [fd(&[1, 2], &[3]), fd(&[3], &[2])];
        assert_eq!(diagnose_hard_case(&s3, 3).unwrap().number(), 3);

        // S4 = {1→2, 2→3}: A={2} (closure {2,3}, not key), B={1} (key).
        // B⁺={1,2,3} ⊄ A⁺={2,3}; A∩B̂ = {2}∩{2,3} ≠ ∅; Â∩B = {3}∩{1} = ∅.
        let s4 = [fd(&[1], &[2]), fd(&[2], &[3])];
        assert_eq!(diagnose_hard_case(&s4, 3).unwrap().number(), 4);

        // S5 = {1→3, 2→3}: A={1}, B={2}; A⁺={1,3}, B⁺={2,3};
        // B⁺ ⊄ A⁺; A∩B̂ = {1}∩{3} = ∅; B̂={3} ⊆ Â={3}.
        let s5 = [fd(&[1], &[3]), fd(&[2], &[3])];
        assert_eq!(diagnose_hard_case(&s5, 3).unwrap().number(), 5);

        // S6 = {∅→1, 2→3}: A=∅, B={2}; A⁺={1}, B⁺={2,3};
        // B⁺ ⊄ A⁺; A∩B̂ = ∅ (A empty); B̂={3} ⊄ Â={1}.
        let s6 = [fd(&[], &[1]), fd(&[2], &[3])];
        assert_eq!(diagnose_hard_case(&s6, 3).unwrap().number(), 6);
    }

    #[test]
    fn case7_is_reachable() {
        // Build Δ with A⁺ ⊋ B⁺: need the minimal non-key determiner A
        // to reach strictly more than B. Take Δ = {1→{2,3}, 2→3} over
        // arity 4: minimal determiners {1},{2}; {1} not a key
        // (closure {1,2,3} ≠ {1,2,3,4}) → A={1}, A⁺={1,2,3}.
        // Non-redundant determiners ≠ A minimal: {2} (gain {3} not from ∅).
        // B={2}, B⁺={2,3} ⊊ A⁺ → Case 7.
        let fds = [fd(&[1], &[2, 3]), fd(&[2], &[3])];
        let hc = diagnose_hard_case(&fds, 4).unwrap();
        assert_eq!(hc.number(), 7);
    }

    #[test]
    fn tractable_inputs_return_none() {
        // Single fd.
        assert!(diagnose_hard_case(&[fd(&[1], &[2])], 3).is_none());
        // Two keys.
        let two = [fd(&[1], &[2]), fd(&[2], &[1])];
        assert!(diagnose_hard_case(&two, 2).is_none());
        // Empty.
        assert!(diagnose_hard_case(&[], 3).is_none());
    }

    #[test]
    fn bounded_diagnosis_matches_unbounded_on_every_case() {
        let cases: Vec<(Vec<Fd>, usize)> = vec![
            (vec![fd(&[1, 2], &[3]), fd(&[1, 3], &[2]), fd(&[2, 3], &[1])], 3),
            (vec![fd(&[1], &[2]), fd(&[2], &[1])], 3),
            (vec![fd(&[1, 2], &[3]), fd(&[3], &[2])], 3),
            (vec![fd(&[1], &[2]), fd(&[2], &[3])], 3),
            (vec![fd(&[1], &[3]), fd(&[2], &[3])], 3),
            (vec![fd(&[], &[1]), fd(&[2], &[3])], 3),
            (vec![fd(&[1], &[2, 3]), fd(&[2], &[3])], 4),
            (vec![fd(&[1], &[2])], 3),
            (vec![], 3),
        ];
        for (fds, arity) in cases {
            let unbounded = diagnose_hard_case(&fds, arity);
            let bounded = diagnose_hard_case_bounded(&fds, arity, &Budget::unlimited())
                .expect_done("unlimited budget");
            assert_eq!(bounded, unbounded, "divergence on {fds:?}");
        }
    }

    #[test]
    fn bounded_diagnosis_degrades_on_tight_budgets() {
        // S4 needs the B subset scan; one work unit is not enough.
        let s4 = [fd(&[1], &[2]), fd(&[2], &[3])];
        let tight = Budget::unlimited().with_max_work(1);
        assert!(matches!(diagnose_hard_case_bounded(&s4, 3, &tight), Outcome::Exceeded { .. }));
        let cancelled = Budget::unlimited();
        cancelled.cancel_token().cancel();
        assert!(matches!(
            diagnose_hard_case_bounded(&s4, 3, &cancelled),
            Outcome::Cancelled { .. }
        ));
        // Case 1 decides without the subset scan: immune to the budget.
        let s1 = [fd(&[1, 2], &[3]), fd(&[1, 3], &[2]), fd(&[2, 3], &[1])];
        assert!(diagnose_hard_case_bounded(&s1, 3, &tight).is_done());
    }

    #[test]
    fn witness_detail_consistency() {
        let s4 = [fd(&[1], &[2]), fd(&[2], &[3])];
        let (a, b, a_plus, a_hat, b_plus, b_hat) = case_witness_detail(&s4, 3).unwrap();
        assert_eq!(a_plus, closure(a, &s4));
        assert_eq!(b_plus, closure(b, &s4));
        assert_eq!(a_hat, a_plus.difference(a));
        assert_eq!(b_hat, b_plus.difference(b));
    }
}
