//! Classification outcomes for a single relation symbol.

use rpr_data::AttrSet;
use rpr_fd::Fd;
use std::fmt;

/// The side of the Theorem 3.1 dichotomy a relation's FD set falls on,
/// with the witness the polynomial algorithms need.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelationClass {
    /// `Δ|R` is equivalent to the single FD carried here (condition 1 of
    /// Theorem 3.1). Covers empty/trivial `Δ|R` (a trivial FD) and a
    /// single key.
    SingleFd(Fd),
    /// `Δ|R` is equivalent to the two (incomparable) key constraints
    /// with these left-hand sides (condition 2 of Theorem 3.1).
    TwoKeys(AttrSet, AttrSet),
    /// Neither condition holds: globally-optimal repair checking for
    /// this relation alone is coNP-complete, via the §5.2 case carried
    /// here.
    Hard(HardCase),
}

impl RelationClass {
    /// Is the relation on the tractable side?
    pub fn is_tractable(&self) -> bool {
        !matches!(self, RelationClass::Hard(_))
    }
}

/// The §5.2 case analysis for hard relations. Each case names the
/// concrete schema of Example 3.4 that reduces into it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HardCase {
    /// Case 1: `Δ|R` is equivalent to a set of `k ≥ 3` keys (reduction
    /// from `S1`); carries the minimized key set.
    ThreeOrMoreKeys(Vec<AttrSet>),
    /// Case 2: `A⁺ = B⁺` (reduction from `S2 = {1→2, 2→1}`).
    Case2 {
        /// The fixed minimal non-key determiner `A`.
        a: AttrSet,
        /// The fixed minimal non-redundant determiner `B ≠ A`.
        b: AttrSet,
    },
    /// Case 3: `B⁺ ⊄ A⁺`, `A ∩ B̂ ≠ ∅`, `Â ∩ B ≠ ∅` (from `S3`).
    Case3 {
        /// `A` as in Case 2.
        a: AttrSet,
        /// `B` as in Case 2.
        b: AttrSet,
    },
    /// Case 4: `B⁺ ⊄ A⁺`, `A ∩ B̂ ≠ ∅`, `Â ∩ B = ∅` (from `S4`).
    Case4 {
        /// `A` as in Case 2.
        a: AttrSet,
        /// `B` as in Case 2.
        b: AttrSet,
    },
    /// Case 5: `B⁺ ⊄ A⁺`, `A ∩ B̂ = ∅`, `B̂ ⊆ Â` (from `S5`).
    Case5 {
        /// `A` as in Case 2.
        a: AttrSet,
        /// `B` as in Case 2.
        b: AttrSet,
    },
    /// Case 6: `B⁺ ⊄ A⁺`, `A ∩ B̂ = ∅`, `B̂ ⊄ Â` (from `S6`).
    Case6 {
        /// `A` as in Case 2.
        a: AttrSet,
        /// `B` as in Case 2.
        b: AttrSet,
    },
    /// Case 7: `A⁺ ⊄ B⁺` (symmetric to the `B⁺ ⊄ A⁺` cases).
    Case7 {
        /// `A` as in Case 2.
        a: AttrSet,
        /// `B` as in Case 2.
        b: AttrSet,
    },
    /// The relation is on the hard side (both tractability tests
    /// failed — that decision is exact and polynomial, per Theorem
    /// 6.1), but the diagnostic search for the §5.2 witness pair
    /// exhausted its budget. Only reachable on very wide schemas.
    Unresolved,
}

impl HardCase {
    /// The case number in §5.2 (1–7); `0` for [`HardCase::Unresolved`].
    pub fn number(&self) -> u8 {
        match self {
            HardCase::ThreeOrMoreKeys(_) => 1,
            HardCase::Case2 { .. } => 2,
            HardCase::Case3 { .. } => 3,
            HardCase::Case4 { .. } => 4,
            HardCase::Case5 { .. } => 5,
            HardCase::Case6 { .. } => 6,
            HardCase::Case7 { .. } => 7,
            HardCase::Unresolved => 0,
        }
    }
}

impl fmt::Display for HardCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardCase::ThreeOrMoreKeys(keys) => {
                write!(f, "Case 1 ({} keys)", keys.len())
            }
            HardCase::Unresolved => write!(f, "hard (case undiagnosed)"),
            other => {
                let (a, b) = match other {
                    HardCase::Case2 { a, b }
                    | HardCase::Case3 { a, b }
                    | HardCase::Case4 { a, b }
                    | HardCase::Case5 { a, b }
                    | HardCase::Case6 { a, b }
                    | HardCase::Case7 { a, b } => (a, b),
                    HardCase::ThreeOrMoreKeys(_) | HardCase::Unresolved => unreachable!(),
                };
                write!(f, "Case {} (A={a}, B={b})", other.number())
            }
        }
    }
}

/// The overall complexity of globally-optimal repair checking for a
/// schema.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Complexity {
    /// Solvable in polynomial time.
    PolynomialTime,
    /// coNP-complete.
    ConpComplete,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::PolynomialTime => write!(f, "PTIME"),
            Complexity::ConpComplete => write!(f, "coNP-complete"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::RelId;

    #[test]
    fn tractability_predicate() {
        let fd = Fd::from_attrs(RelId(0), [1], [2]);
        assert!(RelationClass::SingleFd(fd).is_tractable());
        assert!(RelationClass::TwoKeys(AttrSet::singleton(1), AttrSet::singleton(2)).is_tractable());
        assert!(!RelationClass::Hard(HardCase::Case2 {
            a: AttrSet::singleton(1),
            b: AttrSet::singleton(2)
        })
        .is_tractable());
    }

    #[test]
    fn case_numbers_and_display() {
        assert_eq!(HardCase::ThreeOrMoreKeys(vec![]).number(), 1);
        let c = HardCase::Case5 { a: AttrSet::singleton(1), b: AttrSet::singleton(2) };
        assert_eq!(c.number(), 5);
        assert!(c.to_string().contains("Case 5"));
        assert!(c.to_string().contains("A={1}"));
        assert_eq!(Complexity::PolynomialTime.to_string(), "PTIME");
        assert_eq!(Complexity::ConpComplete.to_string(), "coNP-complete");
    }
}
