//! The Theorem 7.1 / Theorem 7.6 classifier for cross-conflict
//! priorities.
//!
//! With ccp-instances the dichotomy condition changes: globally-optimal
//! repair checking is polynomial iff `Δ` is a **primary-key assignment**
//! (every `Δ|R` equivalent to a single key constraint) or a
//! **constant-attribute assignment** (every `Δ|R` equivalent to
//! `∅ → B`); in every other case it is coNP-complete. Note the
//! "every relation" quantifier — unlike Theorem 3.1, ccp hardness does
//! not decompose per relation, because priorities cross relations.

use crate::relation_class::Complexity;
use crate::single_fd::{equivalent_constant_attribute, equivalent_single_key};
use rpr_data::{AttrSet, RelId};
use rpr_fd::Schema;

/// The classification of a schema under Theorem 7.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CcpClass {
    /// Every `Δ|R` is equivalent to a single key; carries the key lhs
    /// per relation (signature order).
    PrimaryKeyAssignment(Vec<AttrSet>),
    /// Every `Δ|R` is equivalent to `∅ → B`; carries `B` per relation
    /// (signature order).
    ConstantAttributeAssignment(Vec<AttrSet>),
    /// Neither: coNP-complete over ccp-instances. Carries one relation
    /// witnessing the failure of each condition.
    Hard {
        /// A relation whose `Δ|R` is not equivalent to a single key.
        not_primary_key: RelId,
        /// A relation whose `Δ|R` is not equivalent to `∅ → B`.
        not_constant_attribute: RelId,
    },
}

impl CcpClass {
    /// The overall complexity over ccp-instances.
    pub fn complexity(&self) -> Complexity {
        match self {
            CcpClass::Hard { .. } => Complexity::ConpComplete,
            _ => Complexity::PolynomialTime,
        }
    }
}

/// Classifies a schema under Theorem 7.1 (the Theorem 7.6 algorithm).
///
/// When both conditions hold (e.g. `Δ` is empty), the primary-key form
/// is preferred — the graph algorithm is the cheaper checker.
pub fn classify_schema_ccp(schema: &Schema) -> CcpClass {
    let sig = schema.signature();

    let mut pk: Vec<AttrSet> = Vec::with_capacity(sig.len());
    let mut pk_fail: Option<RelId> = None;
    let mut ca: Vec<AttrSet> = Vec::with_capacity(sig.len());
    let mut ca_fail: Option<RelId> = None;

    for rel in sig.rel_ids() {
        let fds = schema.fds_for(rel);
        let arity = sig.arity(rel);
        match equivalent_single_key(fds, rel, arity) {
            Some(key) => pk.push(key),
            None => pk_fail = pk_fail.or(Some(rel)),
        }
        match equivalent_constant_attribute(fds, rel) {
            Some(b) => ca.push(b),
            None => ca_fail = ca_fail.or(Some(rel)),
        }
    }

    match (pk_fail, ca_fail) {
        (None, _) => CcpClass::PrimaryKeyAssignment(pk),
        (Some(_), None) => CcpClass::ConstantAttributeAssignment(ca),
        (Some(p), Some(c)) => CcpClass::Hard { not_primary_key: p, not_constant_attribute: c },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::Signature;

    #[test]
    fn section_7_1_worked_examples() {
        // Example 3.3's schema is PTIME classically but hard for ccp:
        // ∆|R = {1→2} is neither a key nor constant-attribute.
        let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
        let schema = Schema::from_named(
            sig,
            [
                ("R", &[1][..], &[2][..]),
                ("T", &[1][..], &[2, 3, 4][..]),
                ("T", &[2, 3][..], &[1][..]),
            ],
        )
        .unwrap();
        let class = classify_schema_ccp(&schema);
        assert_eq!(class.complexity(), Complexity::ConpComplete);

        // §7.1: replace Δ with {R:1→{2,3}, S:∅→1}: still coNP-complete —
        // R is a key but S is constant-attribute (mixed assignments).
        let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
        let schema =
            Schema::from_named(sig, [("R", &[1][..], &[2, 3][..]), ("S", &[][..], &[1][..])])
                .unwrap();
        assert_eq!(classify_schema_ccp(&schema).complexity(), Complexity::ConpComplete);

        // §7.1: with {R:1→{2,3}, S:{1,2}→3}: now a primary-key
        // assignment (T gets the trivial key), hence PTIME.
        let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
        let schema =
            Schema::from_named(sig, [("R", &[1][..], &[2, 3][..]), ("S", &[1, 2][..], &[3][..])])
                .unwrap();
        let class = classify_schema_ccp(&schema);
        assert_eq!(class.complexity(), Complexity::PolynomialTime);
        assert!(matches!(class, CcpClass::PrimaryKeyAssignment(_)));
    }

    #[test]
    fn constant_attribute_assignment_detected() {
        let sig = Signature::new([("R", 2), ("S", 3)]).unwrap();
        let schema =
            Schema::from_named(sig, [("R", &[][..], &[1][..]), ("S", &[][..], &[2, 3][..])])
                .unwrap();
        match classify_schema_ccp(&schema) {
            CcpClass::ConstantAttributeAssignment(bs) => {
                assert_eq!(bs[0], AttrSet::singleton(1));
                assert_eq!(bs[1], AttrSet::from_attrs([2, 3]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_delta_prefers_primary_key_form() {
        // §7.1: "if ∆ is empty then ∆ is both a primary-key assignment
        // and a constant-attribute assignment."
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::new(sig, []).unwrap();
        assert!(matches!(classify_schema_ccp(&schema), CcpClass::PrimaryKeyAssignment(_)));
    }

    #[test]
    fn hard_class_carries_witnesses() {
        // Running-example schema: LibLoc has two keys → not a single
        // key, not constant-attribute (this is Δd of §7.3).
        let sig = Signature::new([("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig,
            [("LibLoc", &[1][..], &[2][..]), ("LibLoc", &[2][..], &[1][..])],
        )
        .unwrap();
        match classify_schema_ccp(&schema) {
            CcpClass::Hard { not_primary_key, not_constant_attribute } => {
                assert_eq!(not_primary_key, RelId(0));
                assert_eq!(not_constant_attribute, RelId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
