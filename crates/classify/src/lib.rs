//! # rpr-classify — the dichotomy classifiers
//!
//! Implements the classification side of *Dichotomies in the Complexity
//! of Preferred Repairs*:
//!
//! * [`classify_schema`] — Theorem 3.1 via the polynomial Theorem 6.1
//!   algorithm (Lemma 6.2 + Maier–Mendelzon–Sagiv implication): for each
//!   relation, is `Δ|R` equivalent to a single FD or to two keys? If
//!   not, [`diagnose_hard_case`] identifies which §5.2 case (1–7) the
//!   relation falls into — i.e. which of the six concrete schemas of
//!   Example 3.4 reduces into it.
//! * [`classify_schema_ccp`] — Theorem 7.1 via the polynomial Theorem
//!   7.6 algorithm: is `Δ` a primary-key assignment or a
//!   constant-attribute assignment?
//!
//! The classifiers return the witnesses (the single FD, the two key
//! lhs's, the per-relation keys…) that the polynomial checkers in
//! `rpr-core` dispatch on.

#![warn(missing_docs)]

pub mod explain;
pub mod hard_case;
pub mod relation_class;
pub mod single_fd;
pub mod theorem31;
pub mod theorem71;
pub mod two_keys;

pub use explain::{explain_relation, explain_schema};
pub use hard_case::{case_witness_detail, diagnose_hard_case, diagnose_hard_case_bounded};
pub use relation_class::{Complexity, HardCase, RelationClass};
pub use single_fd::{equivalent_constant_attribute, equivalent_single_fd, equivalent_single_key};
pub use theorem31::{classify_relation, classify_schema, SchemaClass};
pub use theorem71::{classify_schema_ccp, CcpClass};
pub use two_keys::equivalent_two_incomparable_keys;
