//! A from-slice JSON scanner: shallow, zero-copy field extraction.
//!
//! The serving hot path receives JSON bodies of the shape
//! `{"workspace": "...", "timeout_ms": 100, "repairs": ["J"]}` and
//! needs a handful of top-level fields — building a full document tree
//! (maps, per-key `String`s, boxed values) per request is pure
//! allocation overhead. [`scan_object`] walks the document **once**,
//! in place over the input slice, handing each top-level field to a
//! callback as a [`SliceValue`]:
//!
//! * strings stay **escaped spans** ([`RawStr`]) borrowing the input —
//!   decoding ([`RawStr::cow`]) is deferred until a field is actually
//!   wanted, and borrows when the span contains no escapes;
//! * numbers/booleans are decoded in place;
//! * nested objects are *validated and skipped*, never materialized;
//! * arrays are scanned shallowly (their elements follow these same
//!   rules).
//!
//! The scanner validates the entire document (including unused fields
//! and trailing input), so accepting a body via this path is exactly as
//! strict as the tree parser. [`parse_workspace_raw`] then feeds a
//! scanned `workspace` field straight into the workspace parser — and
//! therefore into `rpr-data`'s interners — with at most one transient
//! `String` (zero when the span is escape-free).

use crate::format::{parse_workspace, FormatError, Workspace};
use std::borrow::Cow;

/// Maximum nesting depth (matches the serving layer's tree parser).
const MAX_DEPTH: u32 = 64;

/// A syntax error, with the byte offset it was detected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceError {
    /// Byte offset into the scanned text.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SliceError {}

/// A JSON string as an **escaped span** of the input: the bytes between
/// the quotes, backslash sequences intact. Scanning validated the
/// escapes, so decoding cannot fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawStr<'a> {
    raw: &'a str,
}

impl<'a> RawStr<'a> {
    /// Decodes the span. Borrows the input unchanged when it contains
    /// no escapes (the common case for short identifiers); allocates
    /// exactly one `String` otherwise.
    pub fn cow(&self) -> Cow<'a, str> {
        if !self.raw.contains('\\') {
            return Cow::Borrowed(self.raw);
        }
        let mut out = String::with_capacity(self.raw.len());
        let mut chars = self.raw.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hi = hex4(&mut chars);
                    let code = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: the low half must follow as
                        // another \u escape.
                        let mut probe = chars.clone();
                        if probe.next() == Some('\\') && probe.next() == Some('u') {
                            let lo = hex4(&mut probe);
                            if (0xDC00..0xE000).contains(&lo) {
                                chars = probe;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            }
                        } else {
                            hi
                        }
                    } else {
                        hi
                    };
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                // Unreachable: the scanner rejected unknown escapes.
                Some(other) => out.push(other),
                None => break,
            }
        }
        Cow::Owned(out)
    }

    /// Does the decoded string equal `s`? Escape-free spans compare
    /// without decoding.
    pub fn is(&self, s: &str) -> bool {
        if !self.raw.contains('\\') {
            return self.raw == s;
        }
        self.cow() == s
    }
}

fn hex4(chars: &mut std::str::Chars<'_>) -> u32 {
    let mut code = 0u32;
    for _ in 0..4 {
        code = code * 16 + chars.next().and_then(|c| c.to_digit(16)).unwrap_or(0);
    }
    code
}

/// A shallowly-scanned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceValue<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string, as an undecoded span of the input.
    Str(RawStr<'a>),
    /// An array; elements are themselves shallow.
    Arr(Vec<SliceValue<'a>>),
    /// A nested object — validated and skipped, not materialized.
    Obj,
}

impl<'a> SliceValue<'a> {
    /// The value as a non-negative integer, accepting integral floats
    /// (mirrors the tree parser's `as_u64` coercion so `1e3` and
    /// `1000` behave identically).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            SliceValue::Int(i) => u64::try_from(*i).ok(),
            SliceValue::Float(f) if f.fract() == 0.0 && f.is_finite() && *f >= 0.0 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The string span, if this is a string.
    pub fn as_raw_str(&self) -> Option<RawStr<'a>> {
        match self {
            SliceValue::Str(raw) => Some(*raw),
            _ => None,
        }
    }
}

/// Scans `text` as one JSON document. If the top level is an object,
/// every field is handed to `field` (duplicate keys: every occurrence
/// is reported, so last-wins falls out of overwriting) and the scan
/// returns `Ok(true)`; any other well-formed top level returns
/// `Ok(false)` with no callbacks. The whole document is validated
/// either way, trailing garbage included.
pub fn scan_object<'a>(
    text: &'a str,
    mut field: impl FnMut(RawStr<'a>, SliceValue<'a>),
) -> Result<bool, SliceError> {
    let mut s = Scanner { bytes: text.as_bytes(), text, pos: 0 };
    s.skip_ws();
    let is_object = s.peek() == Some(b'{');
    if is_object {
        s.object(1, Some(&mut field))?;
    } else {
        s.value(1)?;
    }
    s.skip_ws();
    if s.pos < s.bytes.len() {
        return Err(s.err("trailing characters after value"));
    }
    Ok(is_object)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

type FieldSink<'s, 'a> = &'s mut dyn FnMut(RawStr<'a>, SliceValue<'a>);

impl<'a> Scanner<'a> {
    fn err(&self, message: &'static str) -> SliceError {
        SliceError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), SliceError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    /// Scans one value shallowly. `depth` counts containers entered.
    fn value(&mut self, depth: u32) -> Result<SliceValue<'a>, SliceError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object(depth + 1, None)?;
                Ok(SliceValue::Obj)
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(SliceValue::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(SliceValue::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'"') => Ok(SliceValue::Str(self.string()?)),
            Some(b't') => self.literal("true", SliceValue::Bool(true)),
            Some(b'f') => self.literal("false", SliceValue::Bool(false)),
            Some(b'n') => self.literal("null", SliceValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    /// Scans `{...}`; fields go to `sink` when provided (the top-level
    /// object), otherwise the contents are validated and discarded.
    fn object(
        &mut self,
        depth: u32,
        mut sink: Option<FieldSink<'_, 'a>>,
    ) -> Result<(), SliceError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.expect(b'{', "expected `{`")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            let value = self.value(depth)?;
            if let Some(sink) = sink.as_mut() {
                sink(key, value);
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn literal(
        &mut self,
        word: &'static str,
        value: SliceValue<'a>,
    ) -> Result<SliceValue<'a>, SliceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("expected a value"))
        }
    }

    /// Scans a string, validating escapes; returns the raw span.
    fn string(&mut self) -> Result<RawStr<'a>, SliceError> {
        self.expect(b'"', "expected `\"`")?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let raw = &self.text[start..self.pos];
                    self.pos += 1;
                    return Ok(RawStr { raw });
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Skip over one UTF-8 scalar (input is &str, so
                    // continuation bytes are well-formed).
                    self.pos += 1;
                    while matches!(self.peek(), Some(c) if c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<SliceValue<'a>, SliceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(SliceError { offset: digits_start, message: "leading zero in number" });
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let span = &self.text[start..self.pos];
        if integral {
            if let Ok(i) = span.parse::<i64>() {
                return Ok(SliceValue::Int(i));
            }
        }
        span.parse::<f64>()
            .map(SliceValue::Float)
            .map_err(|_| SliceError { offset: start, message: "malformed number" })
    }
}

/// Parses a scanned `workspace` string field straight into a
/// [`Workspace`] (and thus into `rpr-data`'s interners): unescape is a
/// borrow when possible, one transient `String` otherwise — never a
/// JSON tree.
pub fn parse_workspace_raw(raw: &RawStr<'_>) -> Result<Workspace, FormatError> {
    parse_workspace(&raw.cow())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(text: &str) -> Vec<(String, SliceValue<'_>)> {
        let mut out = Vec::new();
        let is_obj = scan_object(text, |k, v| out.push((k.cow().into_owned(), v))).unwrap();
        assert!(is_obj);
        out
    }

    #[test]
    fn scans_shallow_fields() {
        let got = fields(r#"{"a": 1, "b": "x", "c": true, "d": null, "e": 2.5}"#);
        assert_eq!(got[0].1, SliceValue::Int(1));
        assert_eq!(got[1].1.as_raw_str().unwrap().cow(), "x");
        assert_eq!(got[2].1, SliceValue::Bool(true));
        assert_eq!(got[3].1, SliceValue::Null);
        assert_eq!(got[4].1, SliceValue::Float(2.5));
    }

    #[test]
    fn strings_borrow_when_escape_free() {
        let text = r#"{"plain": "hello", "escaped": "a\nb\u0041"}"#;
        let got = fields(text);
        match got[0].1.as_raw_str().unwrap().cow() {
            Cow::Borrowed(s) => assert_eq!(s, "hello"),
            Cow::Owned(_) => panic!("escape-free string must borrow"),
        }
        assert_eq!(got[1].1.as_raw_str().unwrap().cow(), "a\nbA");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let got = fields(r#"{"emoji": "\ud83d\ude00"}"#);
        assert_eq!(got[0].1.as_raw_str().unwrap().cow(), "😀");
    }

    #[test]
    fn arrays_scan_shallowly_and_objects_skip() {
        let got = fields(r#"{"repairs": ["J", "K"], "nested": {"deep": [1, {"x": 2}]}}"#);
        let SliceValue::Arr(items) = &got[0].1 else { panic!("array expected") };
        assert!(items[0].as_raw_str().unwrap().is("J"));
        assert!(items[1].as_raw_str().unwrap().is("K"));
        assert_eq!(got[1].1, SliceValue::Obj);
    }

    #[test]
    fn non_object_top_level_validates_without_callbacks() {
        let mut called = false;
        assert!(!scan_object("[1, 2, 3]", |_, _| called = true).unwrap());
        assert!(!called);
        assert!(scan_object("[1, 2", |_, _| ()).is_err());
    }

    #[test]
    fn u64_coercion_matches_tree_parser() {
        assert_eq!(SliceValue::Int(7).as_u64(), Some(7));
        assert_eq!(SliceValue::Int(-1).as_u64(), None);
        assert_eq!(SliceValue::Float(1e3).as_u64(), Some(1000));
        assert_eq!(SliceValue::Float(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"bad\": \"\\q\"}",
            "{\"bad\": \"\\u00zz\"}",
            "01",
            "1.",
            "1e",
            "nul",
        ] {
            assert!(scan_object(bad, |_, _| ()).is_err(), "must reject: {bad}");
        }
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(scan_object(&deep, |_, _| ()).is_err(), "must reject deep nesting");
    }

    #[test]
    fn workspace_field_round_trips_into_interners() {
        let body = r#"{"workspace": "relation R/2\nfact R(a, b)\n"}"#;
        let mut ws = None;
        scan_object(body, |k, v| {
            if k.is("workspace") {
                ws = v.as_raw_str();
            }
        })
        .unwrap();
        let workspace = parse_workspace_raw(&ws.unwrap()).unwrap();
        assert_eq!(workspace.instance.len(), 1);
    }
}
