//! A compact binary encoding for workspaces (`.rprb`).
//!
//! The `.rpr` text format is for humans; for larger instances `rpr
//! export` writes this length-prefixed binary form, which every command
//! also accepts (detected by magic). The format is versioned and fully
//! validated on decode — a corrupted or truncated file yields a
//! [`StoreError`], never a panic or a silently wrong workspace.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "RPRB", version u8 (=1), mode u8 (0 classical, 1 ccp)
//! relations: u32 count, then per relation: name (u16 len + UTF-8), arity u8
//! fds:       u32 count, then per FD: rel u32, lhs u64, rhs u64
//! facts:     u32 count, then per fact: rel u32, then per attribute a Value
//! priority:  u32 edge count, then (u32, u32) pairs
//! repairs:   u16 count, then per repair: name, u32 member count, u32 ids
//!
//! Value: tag u8 — 0 int (i64), 1 symbol (u16 len + UTF-8), 2 pair
//!        (two Values, recursively)
//! ```

use crate::format::Workspace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rpr_data::{AttrSet, Fact, FactId, Instance, Signature, Tuple, Value};
use rpr_fd::{Fd, Schema};
use rpr_priority::{PriorityMode, PriorityRelation};
use std::fmt;

const MAGIC: &[u8; 4] = b"RPRB";
const VERSION: u8 = 1;

/// Errors decoding a binary workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The magic bytes are wrong (not a `.rprb` file).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A semantic validation failed after structural decoding.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a .rprb file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported .rprb version {v}"),
            StoreError::Truncated => write!(f, "truncated .rprb data"),
            StoreError::BadUtf8 => write!(f, "invalid UTF-8 in .rprb data"),
            StoreError::Invalid(m) => write!(f, "invalid .rprb contents: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Does the buffer start with the binary magic?
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= 4 && &data[..4] == MAGIC
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(n) => {
            buf.put_u8(0);
            buf.put_i64_le(*n);
        }
        Value::Sym(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        Value::Pair(p) => {
            buf.put_u8(2);
            put_value(buf, &p.0);
            put_value(buf, &p.1);
        }
    }
}

/// Encodes a workspace to bytes.
pub fn encode(ws: &Workspace) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024 + ws.instance.len() * 32);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(match ws.mode {
        PriorityMode::ConflictRestricted => 0,
        PriorityMode::CrossConflict => 1,
    });
    let sig = ws.schema.signature();
    buf.put_u32_le(sig.len() as u32);
    for (_, sym) in sig.iter() {
        put_str(&mut buf, sym.name());
        buf.put_u8(sym.arity() as u8);
    }
    buf.put_u32_le(ws.schema.fds().len() as u32);
    for fd in ws.schema.fds() {
        buf.put_u32_le(fd.rel.0);
        buf.put_u64_le(fd.lhs.bits());
        buf.put_u64_le(fd.rhs.bits());
    }
    buf.put_u32_le(ws.instance.len() as u32);
    for (_, fact) in ws.instance.iter() {
        buf.put_u32_le(fact.rel().0);
        for v in fact.tuple().values() {
            put_value(&mut buf, v);
        }
    }
    let edges = ws.priority.edges();
    buf.put_u32_le(edges.len() as u32);
    for &(a, b) in edges {
        buf.put_u32_le(a.0);
        buf.put_u32_le(b.0);
    }
    buf.put_u16_le(ws.repairs.len() as u16);
    for (name, set) in &ws.repairs {
        put_str(&mut buf, name);
        buf.put_u32_le(set.len() as u32);
        for id in set.iter() {
            buf.put_u32_le(id.0);
        }
    }
    buf.freeze()
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), StoreError> {
        if self.buf.remaining() < n {
            Err(StoreError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        self.need(len)?;
        let bytes = &self.buf[..len];
        let s = std::str::from_utf8(bytes).map_err(|_| StoreError::BadUtf8)?.to_owned();
        self.buf.advance(len);
        Ok(s)
    }

    fn value(&mut self, depth: usize) -> Result<Value, StoreError> {
        if depth > 32 {
            return Err(StoreError::Invalid("value nesting too deep".into()));
        }
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::sym(self.string()?)),
            2 => {
                let a = self.value(depth + 1)?;
                let b = self.value(depth + 1)?;
                Ok(Value::pair(a, b))
            }
            t => Err(StoreError::Invalid(format!("unknown value tag {t}"))),
        }
    }
}

/// Decodes a workspace from bytes.
///
/// # Errors
/// [`StoreError`] on any structural or semantic problem.
pub fn decode(data: &[u8]) -> Result<Workspace, StoreError> {
    let mut r = Reader { buf: data };
    r.need(4)?;
    if &r.buf[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    r.buf.advance(4);
    let version = r.u8()?;
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let mode = match r.u8()? {
        0 => PriorityMode::ConflictRestricted,
        1 => PriorityMode::CrossConflict,
        m => return Err(StoreError::Invalid(format!("unknown mode {m}"))),
    };

    let nrels = r.u32()? as usize;
    if nrels > 1 << 16 {
        return Err(StoreError::Invalid("implausible relation count".into()));
    }
    let mut rels: Vec<(String, usize)> = Vec::with_capacity(nrels);
    for _ in 0..nrels {
        let name = r.string()?;
        let arity = r.u8()? as usize;
        rels.push((name, arity));
    }
    let sig = Signature::new(rels.iter().map(|(n, a)| (n.as_str(), *a)))
        .map_err(|e| StoreError::Invalid(e.to_string()))?;

    let nfds = r.u32()? as usize;
    if nfds > 1 << 20 {
        return Err(StoreError::Invalid("implausible FD count".into()));
    }
    let mut fds = Vec::with_capacity(nfds);
    for _ in 0..nfds {
        let rel = rpr_data::RelId(r.u32()?);
        if rel.index() >= sig.len() {
            return Err(StoreError::Invalid("FD over unknown relation".into()));
        }
        let lhs = AttrSet::from_bits(r.u64()?);
        let rhs = AttrSet::from_bits(r.u64()?);
        fds.push(Fd::new(rel, lhs, rhs));
    }
    let schema = Schema::new(sig.clone(), fds).map_err(|e| StoreError::Invalid(e.to_string()))?;

    let nfacts = r.u32()? as usize;
    if nfacts > 1 << 26 {
        return Err(StoreError::Invalid("implausible fact count".into()));
    }
    let mut instance = Instance::new(sig.clone());
    for _ in 0..nfacts {
        let rel = rpr_data::RelId(r.u32()?);
        if rel.index() >= sig.len() {
            return Err(StoreError::Invalid("fact over unknown relation".into()));
        }
        let arity = sig.arity(rel);
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(r.value(0)?);
        }
        let fact = Fact::new(&sig, rel, Tuple::new(values))
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        instance.insert(fact);
    }

    let nedges = r.u32()? as usize;
    if nedges > 1 << 26 {
        return Err(StoreError::Invalid("implausible edge count".into()));
    }
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let a = FactId(r.u32()?);
        let b = FactId(r.u32()?);
        edges.push((a, b));
    }
    let priority = PriorityRelation::new(instance.len(), edges)
        .map_err(|e| StoreError::Invalid(e.to_string()))?;

    let nrepairs = r.u16()? as usize;
    let mut repairs = Vec::with_capacity(nrepairs);
    for _ in 0..nrepairs {
        let name = r.string()?;
        let count = r.u32()? as usize;
        if count > instance.len() {
            return Err(StoreError::Invalid("repair larger than the instance".into()));
        }
        let mut set = instance.empty_set();
        for _ in 0..count {
            let id = FactId(r.u32()?);
            if id.index() >= instance.len() {
                return Err(StoreError::Invalid("repair references unknown fact".into()));
            }
            set.insert(id);
        }
        repairs.push((name, set));
    }

    Ok(Workspace { schema, instance, priority, mode, repairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_workspace;

    const SAMPLE: &str = "\
relation R/2
relation S/3
fd R: 1 -> 2
fd S: - -> 3
fact R(a, 1)
fact R(a, 2)
fact S(x, y, 0)
prefer R(a, 2) > R(a, 1)
repair best: R(a, 2); S(x, y, 0)
";

    fn sample() -> Workspace {
        parse_workspace(SAMPLE).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ws = sample();
        let bytes = encode(&ws);
        assert!(is_binary(&bytes));
        let back = decode(&bytes).unwrap();
        assert_eq!(back.instance.len(), ws.instance.len());
        for (_, f) in ws.instance.iter() {
            assert!(back.instance.contains(f));
        }
        assert_eq!(back.schema.fds(), ws.schema.fds());
        assert_eq!(back.priority.edges(), ws.priority.edges());
        assert_eq!(back.mode, ws.mode);
        assert_eq!(back.repairs.len(), 1);
        assert_eq!(back.repairs[0].0, "best");
        assert_eq!(back.repairs[0].1.len(), 2);
    }

    #[test]
    fn pair_values_roundtrip() {
        // Build a workspace containing Π-style pair values directly.
        let mut ws = sample();
        let sig = ws.instance.signature().clone();
        let fact = Fact::parse_new(
            &sig,
            "R",
            [
                Value::pair(Value::Int(1), Value::sym("x")),
                Value::triple(1.into(), 2.into(), 3.into()),
            ],
        )
        .unwrap();
        ws.instance.insert(fact.clone());
        // Re-size the priority/repairs to the grown instance.
        ws.priority = PriorityRelation::empty(ws.instance.len());
        ws.repairs.clear();
        let back = decode(&encode(&ws)).unwrap();
        assert!(back.instance.contains(&fact));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "prefix of length {cut} must fail cleanly");
        }
    }

    #[test]
    fn corrupted_headers_are_rejected() {
        let bytes = encode(&sample());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(decode(&bad).unwrap_err(), StoreError::BadMagic);
        let mut bad = bytes.to_vec();
        bad[4] = 99; // version
        assert_eq!(decode(&bad).unwrap_err(), StoreError::BadVersion(99));
        let mut bad = bytes.to_vec();
        bad[5] = 7; // mode
        assert!(matches!(decode(&bad).unwrap_err(), StoreError::Invalid(_)));
    }

    #[test]
    fn bit_flips_never_panic() {
        // Fuzz-lite: flip each byte in turn; decoding must return
        // (any) Result, never panic, and successful decodes must be
        // internally consistent.
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0xFF;
            if let Ok(ws) = decode(&mutated) {
                assert_eq!(ws.priority.len(), ws.instance.len());
            }
        }
    }

    #[test]
    fn text_detection() {
        assert!(!is_binary(SAMPLE.as_bytes()));
        assert!(!is_binary(b"RP"));
    }
}
