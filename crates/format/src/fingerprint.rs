//! Canonical whole-workspace fingerprints.
//!
//! The serving layer caches prepared check sessions keyed by the
//! *content* of `(schema, FDs, priority, instance)`. The composition
//! itself lives in `rpr-core` ([`rpr_core::fingerprint`]) because the
//! incremental [`DeltaSession`](rpr_core::DeltaSession) maintains the
//! same fingerprint across mutations and must agree with it
//! bit-for-bit; this module applies it to parsed [`Workspace`]s.
//!
//! Candidate repairs are deliberately **excluded**: they vary per
//! request while the cached session artifacts depend only on the
//! prioritized instance.

use crate::format::Workspace;
use rpr_data::fingerprint::{Fingerprint, FingerprintBuilder};
use rpr_priority::{PriorityMode, PriorityRelation};

pub use rpr_core::fingerprint::{priority_fingerprint, schema_fingerprint};

/// The canonical 128-bit fingerprint of a workspace's prioritized
/// instance: schema (signature + FDs), instance facts, priority edges,
/// and priority mode. Declaration order of relations, FDs, facts and
/// preferences does not affect the result; candidate repairs are not
/// part of the key.
pub fn workspace_fingerprint(ws: &Workspace) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.fingerprint(schema_fingerprint(&ws.schema));
    b.fingerprint(rpr_data::fingerprint_instance(&ws.instance));
    b.fingerprint(priority_fingerprint(&ws.instance, &ws.priority));
    b.word(match ws.mode {
        PriorityMode::ConflictRestricted => 1,
        PriorityMode::CrossConflict => 2,
    });
    b.finish()
}

/// `workspace_fingerprint` without the `Workspace` wrapper, for callers
/// holding the components separately.
pub fn components_fingerprint(
    schema: &rpr_fd::Schema,
    instance: &rpr_data::Instance,
    priority: &PriorityRelation,
    mode: PriorityMode,
) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.fingerprint(schema_fingerprint(schema));
    b.fingerprint(rpr_data::fingerprint_instance(instance));
    b.fingerprint(priority_fingerprint(instance, priority));
    b.word(match mode {
        PriorityMode::ConflictRestricted => 1,
        PriorityMode::CrossConflict => 2,
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_workspace;

    const BASE: &str = "\
relation R/2
fd R: 1 -> 2
relation S/1
fact R(a, x)
fact R(a, y)
fact S(z)
prefer R(a, x) > R(a, y)
mode conflict
";

    /// Same content, every declaration order permuted.
    const SHUFFLED: &str = "\
relation R/2
relation S/1
fd R: 1 -> 2
fact S(z)
fact R(a, y)
fact R(a, x)
prefer R(a, x) > R(a, y)
mode conflict
";

    #[test]
    fn declaration_order_does_not_matter() {
        let a = parse_workspace(BASE).unwrap();
        let b = parse_workspace(SHUFFLED).unwrap();
        assert_eq!(workspace_fingerprint(&a), workspace_fingerprint(&b));
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let base = workspace_fingerprint(&parse_workspace(BASE).unwrap());
        // Extra fact.
        let more = BASE.replace("fact S(z)", "fact S(z)\nfact S(w)");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&more).unwrap()));
        // Reversed preference edge.
        let flipped = BASE.replace("prefer R(a, x) > R(a, y)", "prefer R(a, y) > R(a, x)");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&flipped).unwrap()));
        // Dropped FD.
        let nofd = BASE.replace("fd R: 1 -> 2\n", "");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&nofd).unwrap()));
    }

    #[test]
    fn repairs_are_not_part_of_the_key() {
        let with_repair = format!("{BASE}repair J: R(a, x); S(z)\n");
        let a = parse_workspace(BASE).unwrap();
        let b = parse_workspace(&with_repair).unwrap();
        assert_eq!(workspace_fingerprint(&a), workspace_fingerprint(&b));
    }

    #[test]
    fn agrees_with_the_core_composition() {
        let ws = parse_workspace(BASE).unwrap();
        let pi = ws.prioritized().unwrap();
        assert_eq!(workspace_fingerprint(&ws), rpr_core::content_fingerprint(&ws.schema, &pi));
    }
}
