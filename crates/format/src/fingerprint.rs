//! Canonical whole-workspace fingerprints.
//!
//! The serving layer caches prepared check sessions keyed by the
//! *content* of `(schema, FDs, priority, instance)`. This module
//! composes the `rpr-data` fingerprint primitives into that key:
//! every component is hashed by content (relation names, tuple values,
//! endpoint facts of priority edges) and set-valued components are
//! combined order-insensitively, so two workspaces that declare the
//! same data in different orders — and therefore assign different
//! `FactId`s — produce the same fingerprint.
//!
//! Candidate repairs are deliberately **excluded**: they vary per
//! request while the cached session artifacts depend only on the
//! prioritized instance.

use crate::format::Workspace;
use rpr_data::fingerprint::{combine_unordered, fingerprint_fact, Fingerprint, FingerprintBuilder};
use rpr_data::{Instance, Signature};
use rpr_fd::Schema;
use rpr_priority::{PriorityMode, PriorityRelation};

/// Fingerprint of a schema: its signature plus the *set* of FDs
/// (each hashed by relation name and attribute bitmasks).
pub fn schema_fingerprint(schema: &Schema) -> Fingerprint {
    let sig = schema.signature();
    let mut b = FingerprintBuilder::new();
    b.fingerprint(rpr_data::fingerprint_signature(sig));
    b.fingerprint(combine_unordered(schema.fds().iter().map(|fd| {
        let mut f = FingerprintBuilder::new();
        f.str(sig.symbol(fd.rel).name()).word(fd.lhs.bits()).word(fd.rhs.bits());
        f.finish()
    })));
    b.finish()
}

/// Fingerprint of a priority relation over a fixed instance: the *set*
/// of edges, each hashed as the ordered pair of its endpoint facts'
/// content digests (so renumbering facts does not change the result).
pub fn priority_fingerprint(instance: &Instance, priority: &PriorityRelation) -> Fingerprint {
    let sig: &Signature = instance.signature();
    combine_unordered(priority.edges().iter().map(|&(hi, lo)| {
        let mut b = FingerprintBuilder::new();
        b.fingerprint(fingerprint_fact(sig, instance.fact(hi)));
        b.fingerprint(fingerprint_fact(sig, instance.fact(lo)));
        b.finish()
    }))
}

/// The canonical 128-bit fingerprint of a workspace's prioritized
/// instance: schema (signature + FDs), instance facts, priority edges,
/// and priority mode. Declaration order of relations, FDs, facts and
/// preferences does not affect the result; candidate repairs are not
/// part of the key.
pub fn workspace_fingerprint(ws: &Workspace) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.fingerprint(schema_fingerprint(&ws.schema));
    b.fingerprint(rpr_data::fingerprint_instance(&ws.instance));
    b.fingerprint(priority_fingerprint(&ws.instance, &ws.priority));
    b.word(match ws.mode {
        PriorityMode::ConflictRestricted => 1,
        PriorityMode::CrossConflict => 2,
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_workspace;

    const BASE: &str = "\
relation R/2
fd R: 1 -> 2
relation S/1
fact R(a, x)
fact R(a, y)
fact S(z)
prefer R(a, x) > R(a, y)
mode conflict
";

    /// Same content, every declaration order permuted.
    const SHUFFLED: &str = "\
relation R/2
relation S/1
fd R: 1 -> 2
fact S(z)
fact R(a, y)
fact R(a, x)
prefer R(a, x) > R(a, y)
mode conflict
";

    #[test]
    fn declaration_order_does_not_matter() {
        let a = parse_workspace(BASE).unwrap();
        let b = parse_workspace(SHUFFLED).unwrap();
        assert_eq!(workspace_fingerprint(&a), workspace_fingerprint(&b));
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let base = workspace_fingerprint(&parse_workspace(BASE).unwrap());
        // Extra fact.
        let more = BASE.replace("fact S(z)", "fact S(z)\nfact S(w)");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&more).unwrap()));
        // Reversed preference edge.
        let flipped = BASE.replace("prefer R(a, x) > R(a, y)", "prefer R(a, y) > R(a, x)");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&flipped).unwrap()));
        // Dropped FD.
        let nofd = BASE.replace("fd R: 1 -> 2\n", "");
        assert_ne!(base, workspace_fingerprint(&parse_workspace(&nofd).unwrap()));
    }

    #[test]
    fn repairs_are_not_part_of_the_key() {
        let with_repair = format!("{BASE}repair J: R(a, x); S(z)\n");
        let a = parse_workspace(BASE).unwrap();
        let b = parse_workspace(&with_repair).unwrap();
        assert_eq!(workspace_fingerprint(&a), workspace_fingerprint(&b));
    }
}
