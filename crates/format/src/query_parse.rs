//! Parsing conjunctive queries from the command line.
//!
//! Syntax: `q(?x, ?y) <- R(?x, c), S(c, ?y)` — head variables listed in
//! output order (possibly empty for a boolean query), body atoms
//! comma-separated at the top level, `?name` for variables, anything
//! else a constant (integers parse as ints).

use rpr_cqa::{Atom, ConjunctiveQuery, Term};
use rpr_data::FxHashMap;
use rpr_data::{Instance, Value};

/// A query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError(pub String);

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query: {}", self.0)
    }
}

impl std::error::Error for QueryError {}

fn err(msg: impl Into<String>) -> QueryError {
    QueryError(msg.into())
}

/// Splits `R(a, b), S(c)` at top-level commas.
fn split_atoms(body: &str) -> Result<Vec<&str>, QueryError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in body.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1).ok_or_else(|| err("unbalanced `)`"))?;
            }
            ',' if depth == 0 => {
                out.push(body[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(err("unbalanced `(`"));
    }
    let last = body[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    Ok(out)
}

fn parse_atom_text(
    instance: &Instance,
    text: &str,
    vars: &mut FxHashMap<String, u32>,
) -> Result<Atom, QueryError> {
    let open = text.find('(').ok_or_else(|| err(format!("expected atom, got `{text}`")))?;
    if !text.ends_with(')') {
        return Err(err(format!("atom `{text}` missing `)`")));
    }
    let rel_name = text[..open].trim();
    let rel = instance.signature().require(rel_name).map_err(|e| err(e.to_string()))?;
    let mut terms = Vec::new();
    for tok in text[open + 1..text.len() - 1].split(',') {
        let tok = tok.trim();
        if let Some(var) = tok.strip_prefix('?') {
            if var.is_empty() {
                return Err(err("empty variable name `?`"));
            }
            let next = vars.len() as u32;
            let id = *vars.entry(var.to_owned()).or_insert(next);
            terms.push(Term::Var(id));
        } else if tok.is_empty() {
            return Err(err(format!("empty term in `{text}`")));
        } else {
            let value = match tok.parse::<i64>() {
                Ok(n) => Value::Int(n),
                Err(_) => Value::sym(tok),
            };
            terms.push(Term::Const(value));
        }
    }
    Ok(Atom { rel, terms })
}

/// Parses a query against an instance's signature.
///
/// # Errors
/// [`QueryError`] on syntax problems; validation errors (arity, unbound
/// head variables) are surfaced too.
pub fn parse_query(instance: &Instance, text: &str) -> Result<ConjunctiveQuery, QueryError> {
    let (head, body) = text.split_once("<-").ok_or_else(|| err("expected `head <- body`"))?;
    let head = head.trim();
    let open = head.find('(').ok_or_else(|| err("head must look like q(?x, …)"))?;
    if !head.ends_with(')') {
        return Err(err("head missing `)`"));
    }
    let mut vars: FxHashMap<String, u32> = FxHashMap::default();
    let mut head_vars = Vec::new();
    let head_body = head[open + 1..head.len() - 1].trim();
    if !head_body.is_empty() {
        for tok in head_body.split(',') {
            let tok = tok.trim();
            let var = tok
                .strip_prefix('?')
                .ok_or_else(|| err(format!("head terms must be variables, got `{tok}`")))?;
            let next = vars.len() as u32;
            head_vars.push(*vars.entry(var.to_owned()).or_insert(next));
        }
    }
    let mut atoms = Vec::new();
    for atom_text in split_atoms(body.trim())? {
        atoms.push(parse_atom_text(instance, atom_text, &mut vars)?);
    }
    let q = ConjunctiveQuery { head: head_vars, atoms };
    q.validate(instance).map_err(QueryError)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::Signature;

    fn instance() -> Instance {
        let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [Value::sym("a"), Value::Int(1)]).unwrap();
        i.insert_named("S", [Value::Int(1), Value::sym("z")]).unwrap();
        i
    }

    #[test]
    fn parses_joins_and_evaluates() {
        let i = instance();
        let q = parse_query(&i, "q(?x, ?y) <- R(?x, ?m), S(?m, ?y)").unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.atoms.len(), 2);
        let ans = q.eval(&i);
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn constants_and_booleans() {
        let i = instance();
        let q = parse_query(&i, "q() <- R(a, 1)").unwrap();
        assert!(q.holds(&i));
        let q = parse_query(&i, "q() <- R(a, 2)").unwrap();
        assert!(!q.holds(&i));
        // Integers vs symbols matter.
        let q = parse_query(&i, "q() <- S(1, z)").unwrap();
        assert!(q.holds(&i));
    }

    #[test]
    fn repeated_variables_join() {
        let i = instance();
        let q = parse_query(&i, "q(?v) <- R(?x, ?v), S(?v, ?y)").unwrap();
        assert_eq!(q.eval(&i).len(), 1);
    }

    #[test]
    fn errors() {
        let i = instance();
        assert!(parse_query(&i, "no arrow here").is_err());
        assert!(parse_query(&i, "q(?x) <- T(?x)").is_err()); // unknown relation
        assert!(parse_query(&i, "q(?x) <- R(?y, ?z)").is_err()); // unbound head
        assert!(parse_query(&i, "q(c) <- R(?x, ?y)").is_err()); // constant in head
        assert!(parse_query(&i, "q() <- R(?x)").is_err()); // arity
        assert!(parse_query(&i, "q() <- R(?x, ?y").is_err()); // unbalanced
    }
}
