//! Canonical JSON serialization of verdict certificates (`cert_v` 1).
//!
//! A serialized certificate is **self-contained**: besides the verdict
//! evidence it embeds the schema (relation names/arities and the FD
//! list), the flat fact table (index = fact id), and the full priority
//! edge list — everything the dependency-free `rpr-audit` crate needs
//! to re-validate the verdict without consulting any other input.
//!
//! The encoding is *canonical*: one line, no whitespace, objects with
//! a fixed field order (documented in DESIGN.md §"Certificates &
//! audit"), integers in decimal without leading zeros, and strings
//! escaped as `\"`, `\\`, and `\u00XX` for control characters only.
//! [`parse_certificate`] + [`render_value`] round-trip byte-identically
//! with [`render_certificate`]'s output, which makes certificates safe
//! to cache, diff, and hash.
//!
//! Tuple values use a tagged, injective string encoding ([`encode_value`]):
//! `i<decimal>` for integers, `s<byte-len>:<bytes>` for symbols, and
//! `p(<enc>,<enc>)` for pairs. `Display` is *not* injective
//! (`Sym("12")` and `Int(12)` both print `12`), and certificate
//! soundness needs value equality to coincide with encoding equality.

use crate::format::FormatError;
use rpr_classify::{CcpClass, HardCase, RelationClass};
use rpr_core::certificate::{
    BlockEvidence, CertVerdict, Certificate, ClassificationCert, OptimalScope,
};
use rpr_data::{AttrSet, FactId, Instance, Value};
use rpr_fd::Schema;
use rpr_priority::{PriorityMode, PriorityRelation};

/// The current certificate format version.
pub const CERT_V: u64 = 1;

/// Appends the tagged injective encoding of one tuple value.
///
/// `i<decimal>` (ints), `s<len>:<bytes>` (symbols, length-prefixed so
/// arbitrary content cannot collide), `p(<enc>,<enc>)` (pairs).
pub fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Sym(s) => {
            out.push('s');
            out.push_str(&s.len().to_string());
            out.push(':');
            out.push_str(s);
        }
        Value::Pair(p) => {
            out.push_str("p(");
            encode_value(&p.0, out);
            out.push(',');
            encode_value(&p.1, out);
            out.push(')');
        }
    }
}

fn push_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_attrs(attrs: AttrSet, out: &mut String) {
    out.push('[');
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&a.to_string());
    }
    out.push(']');
}

fn push_ids(ids: &[FactId], out: &mut String) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out.push(']');
}

fn push_pairs(pairs: &[(FactId, FactId)], out: &mut String) {
    out.push('[');
    for (i, (a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&a.0.to_string());
        out.push(',');
        out.push_str(&b.0.to_string());
        out.push(']');
    }
    out.push(']');
}

fn push_relation_class(class: &RelationClass, out: &mut String) {
    match class {
        RelationClass::SingleFd(fd) => {
            out.push_str("{\"kind\":\"single_fd\",\"lhs\":");
            push_attrs(fd.lhs, out);
            out.push_str(",\"rhs\":");
            push_attrs(fd.rhs, out);
            out.push('}');
        }
        RelationClass::TwoKeys(k1, k2) => {
            out.push_str("{\"kind\":\"two_keys\",\"k1\":");
            push_attrs(*k1, out);
            out.push_str(",\"k2\":");
            push_attrs(*k2, out);
            out.push('}');
        }
        RelationClass::Hard(case) => {
            out.push_str("{\"kind\":\"hard\",\"case\":");
            out.push_str(&case.number().to_string());
            match case {
                HardCase::ThreeOrMoreKeys(keys) => {
                    out.push_str(",\"keys\":[");
                    for (i, k) in keys.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_attrs(*k, out);
                    }
                    out.push(']');
                }
                HardCase::Case2 { a, b }
                | HardCase::Case3 { a, b }
                | HardCase::Case4 { a, b }
                | HardCase::Case5 { a, b }
                | HardCase::Case6 { a, b }
                | HardCase::Case7 { a, b } => {
                    out.push_str(",\"a\":");
                    push_attrs(*a, out);
                    out.push_str(",\"b\":");
                    push_attrs(*b, out);
                }
                HardCase::Unresolved => {}
            }
            out.push('}');
        }
    }
}

fn push_classification(classification: &ClassificationCert, out: &mut String) {
    match classification {
        ClassificationCert::Classical(per_rel) => {
            out.push_str("{\"scope\":\"classical\",\"relations\":[");
            for (i, (rel, class)) in per_rel.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&rel.0.to_string());
                out.push(',');
                push_relation_class(class, out);
                out.push(']');
            }
            out.push_str("]}");
        }
        ClassificationCert::Ccp(CcpClass::PrimaryKeyAssignment(keys)) => {
            out.push_str("{\"scope\":\"ccp\",\"kind\":\"primary_key\",\"keys\":[");
            for (i, k) in keys.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_attrs(*k, out);
            }
            out.push_str("]}");
        }
        ClassificationCert::Ccp(CcpClass::ConstantAttributeAssignment(consts)) => {
            out.push_str("{\"scope\":\"ccp\",\"kind\":\"constant_attribute\",\"consts\":[");
            for (i, c) in consts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_attrs(*c, out);
            }
            out.push_str("]}");
        }
        ClassificationCert::Ccp(CcpClass::Hard { not_primary_key, not_constant_attribute }) => {
            out.push_str("{\"scope\":\"ccp\",\"kind\":\"hard\",\"not_primary_key\":");
            out.push_str(&not_primary_key.0.to_string());
            out.push_str(",\"not_constant_attribute\":");
            out.push_str(&not_constant_attribute.0.to_string());
            out.push('}');
        }
    }
}

fn push_block(block: &BlockEvidence, out: &mut String) {
    out.push_str("{\"rel\":");
    out.push_str(&block.rel.0.to_string());
    out.push_str(",\"lhs\":");
    push_attrs(block.fd.lhs, out);
    out.push_str(",\"rhs\":");
    push_attrs(block.fd.rhs, out);
    out.push_str(",\"group\":");
    out.push_str(&block.group.0.to_string());
    out.push_str(",\"consistency\":");
    push_ids(&block.consistency, out);
    out.push_str(",\"maximality\":");
    push_pairs(&block.maximality, out);
    out.push('}');
}

fn push_verdict(verdict: &CertVerdict, out: &mut String) {
    match verdict {
        CertVerdict::Inconsistent { f, g } => {
            out.push_str("{\"kind\":\"inconsistent\",\"f\":");
            out.push_str(&f.0.to_string());
            out.push_str(",\"g\":");
            out.push_str(&g.0.to_string());
            out.push('}');
        }
        CertVerdict::Improvable(w) => {
            out.push_str("{\"kind\":\"improvable\",\"from\":");
            push_ids(&w.from, out);
            out.push_str(",\"to\":");
            push_ids(&w.to, out);
            out.push_str(",\"justification\":");
            push_pairs(&w.justification, out);
            out.push('}');
        }
        CertVerdict::Optimal { scope, maximality, blocks } => {
            out.push_str("{\"kind\":\"optimal\",\"scope\":\"");
            out.push_str(match scope {
                OptimalScope::Complete => "complete",
                OptimalScope::RepairOnly => "repair_only",
            });
            out.push_str("\",\"maximality\":");
            push_pairs(maximality, out);
            out.push_str(",\"blocks\":[");
            for (i, b) in blocks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_block(b, out);
            }
            out.push_str("]}");
        }
    }
}

/// Renders a certificate in the canonical `cert_v` 1 encoding: one
/// line, fixed field order, self-contained (schema + facts + priority
/// embedded).
pub fn render_certificate(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
    cert: &Certificate,
) -> String {
    let sig = schema.signature();
    let mut out = String::with_capacity(256 + instance.len() * 32);
    out.push_str("{\"cert_v\":");
    out.push_str(&CERT_V.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(if cert.check.is_some() { "check" } else { "classification" });
    out.push_str("\",\"mode\":\"");
    out.push_str(match cert.mode {
        PriorityMode::ConflictRestricted => "conflict",
        PriorityMode::CrossConflict => "ccp",
    });
    out.push_str("\",\"schema\":{\"relations\":[");
    for (i, rel) in sig.rel_ids().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_json_str(sig.symbol(rel).name(), &mut out);
        out.push(',');
        out.push_str(&sig.arity(rel).to_string());
        out.push(']');
    }
    out.push_str("],\"fds\":[");
    for (i, fd) in schema.fds().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&fd.rel.0.to_string());
        out.push(',');
        push_attrs(fd.lhs, &mut out);
        out.push(',');
        push_attrs(fd.rhs, &mut out);
        out.push(']');
    }
    out.push_str("]},\"facts\":[");
    for (i, (_, fact)) in instance.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&fact.rel().0.to_string());
        out.push_str(",[");
        for (k, v) in fact.tuple().values().iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let mut enc = String::new();
            encode_value(v, &mut enc);
            push_json_str(&enc, &mut out);
        }
        out.push_str("]]");
    }
    out.push_str("],\"priority\":");
    push_pairs(priority.edges(), &mut out);
    out.push_str(",\"classification\":");
    push_classification(&cert.classification, &mut out);
    if let Some(check) = &cert.check {
        out.push_str(",\"candidate\":");
        push_ids(&check.candidate, &mut out);
        out.push_str(",\"verdict\":");
        push_verdict(&check.verdict, &mut out);
    }
    out.push('}');
    out
}

/// A parsed certificate document. Object fields keep their textual
/// order, so [`render_value`] reproduces a canonical input
/// byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertValue {
    /// An integer (certificates contain no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<CertValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, CertValue)>),
}

impl CertValue {
    /// Field lookup on an object; `None` on other shapes.
    pub fn get(&self, key: &str) -> Option<&CertValue> {
        match self {
            CertValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable field lookup on an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut CertValue> {
        match self {
            CertValue::Obj(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[CertValue]> {
        match self {
            CertValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CertValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CertValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a certificate document (strict JSON, integers only).
///
/// # Errors
/// [`FormatError`] (line 1) describing the first malformed byte.
pub fn parse_certificate(text: &str) -> Result<CertValue, FormatError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after certificate"));
    }
    Ok(v)
}

/// Renders a parsed document back to canonical bytes (compact, field
/// order preserved, canonical string escapes).
pub fn render_value(v: &CertValue) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &CertValue, out: &mut String) {
    match v {
        CertValue::Int(i) => out.push_str(&i.to_string()),
        CertValue::Str(s) => push_json_str(s, out),
        CertValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        CertValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(k, out);
                out.push(':');
                render_into(val, out);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> FormatError {
        FormatError { line: 1, message: format!("byte {}: {}", self.pos, message.into()) }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), FormatError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<CertValue, FormatError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(CertValue::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err(
                "unexpected byte (certificates hold objects, arrays, strings, and integers only)",
            )),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<CertValue, FormatError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(CertValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate field {key:?}")));
            }
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(CertValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<CertValue, FormatError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(CertValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(CertValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, FormatError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            let c = char::from_u32(cp).ok_or_else(|| {
                                self.err("surrogate escapes are not used by certificates")
                            })?;
                            out.push(c);
                            // hex4 leaves pos on its last digit.
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by match");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`; leaves `pos` on the last
    /// digit (the caller advances past it).
    fn hex4(&mut self) -> Result<u32, FormatError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.bytes.get(self.pos) {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<CertValue, FormatError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("certificates contain integers only"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(CertValue::Int)
            .map_err(|_| self.err(format!("bad integer {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips_hand_written_docs() {
        for text in [
            r#"{"cert_v":1,"kind":"check"}"#,
            r#"{"a":[1,2,[3]],"b":{"c":"x\"y\\z","d":-7}}"#,
            r#"[]"#,
            r#"{"s":"i12","t":"s3:a,b","u":"p(i1,s1:x)"}"#,
        ] {
            let doc = parse_certificate(text).unwrap();
            assert_eq!(render_value(&doc), text);
        }
    }

    #[test]
    fn parser_rejects_malformed_docs() {
        for text in [
            "",
            "{",
            r#"{"a":1,}"#,
            r#"{"a":1.5}"#,
            r#"{"a":true}"#,
            r#"{"a":1}{"#,
            r#"{"a":1,"a":2}"#,
            "\"\u{1}\"",
        ] {
            assert!(parse_certificate(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn value_encoding_is_injective_on_display_collisions() {
        let mut a = String::new();
        encode_value(&Value::sym("12"), &mut a);
        let mut b = String::new();
        encode_value(&Value::int(12), &mut b);
        assert_ne!(a, b);
        assert_eq!(a, "s2:12");
        assert_eq!(b, "i12");
        let mut p = String::new();
        encode_value(&Value::pair(Value::sym("a,b"), Value::int(3)), &mut p);
        assert_eq!(p, "p(s3:a,b,i3)");
    }
}
