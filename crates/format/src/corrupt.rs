//! Certificate-corruption plans for fault-injection testing
//! (`--features faults` only).
//!
//! Each operation takes a serialized certificate, applies one targeted
//! lie at the [`CertValue`] level, and re-renders. Every operation is
//! *guaranteed-invalidating*: applied to a genuine certificate it
//! always produces one that `rpr-audit` must reject — the differential
//! suite in `tests/certificates.rs` treats a single accepted corruption
//! as a failure. Operations return `None` when they do not apply to the
//! certificate's shape (e.g. dropping a priority edge from an
//! `inconsistent` verdict, whose evidence never cites edges).

use crate::certificate_json::{parse_certificate, render_value, CertValue};

/// One corruption operation: canonical text in, corrupted text out
/// (`None` if the operation does not apply to this certificate).
pub type Corruption = fn(&str) -> Option<String>;

/// The full corruption plan, with stable names for test reporting.
pub const CORRUPTIONS: &[(&str, Corruption)] = &[
    ("flip_witness_fact", flip_witness_fact),
    ("swap_block_evidence", swap_block_evidence),
    ("truncate_mapping", truncate_mapping),
    ("flip_verdict_kind", flip_verdict_kind),
    ("drop_priority_edge", drop_priority_edge),
    ("drop_candidate_fact", drop_candidate_fact),
];

fn parse(text: &str) -> Option<CertValue> {
    parse_certificate(text).ok()
}

fn verdict_kind(doc: &CertValue) -> Option<&str> {
    doc.get("verdict")?.get("kind")?.as_str()
}

/// Replaces one fact id inside a witness with a wrong one: the
/// `inconsistent` partner becomes the fact itself, an improvement
/// justification claims the lost fact beats itself, a maximality
/// blocker becomes the excluded fact (which is outside the repair).
pub fn flip_witness_fact(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    match verdict_kind(&doc)? {
        "inconsistent" => {
            let f = doc.get("verdict")?.get("f")?.clone();
            *doc.get_mut("verdict")?.get_mut("g")? = f;
        }
        "improvable" => {
            let verdict = doc.get_mut("verdict")?;
            let has_justification = !verdict.get("justification")?.as_arr()?.is_empty();
            if has_justification {
                // (lost, by) → (lost, lost): the "beating" fact is no
                // longer gained, so the cover is bogus.
                let CertValue::Arr(pairs) = verdict.get_mut("justification")? else {
                    return None;
                };
                let CertValue::Arr(pair) = &mut pairs[0] else { return None };
                pair[1] = pair[0].clone();
            } else {
                // Nothing was lost; lie by claiming the improvement
                // changes nothing.
                let from = verdict.get("from")?.clone();
                *verdict.get_mut("to")? = from;
            }
        }
        "optimal" => {
            let verdict = doc.get_mut("verdict")?;
            if !verdict.get("maximality")?.as_arr()?.is_empty() {
                let CertValue::Arr(pairs) = verdict.get_mut("maximality")? else {
                    return None;
                };
                let CertValue::Arr(pair) = &mut pairs[0] else { return None };
                pair[1] = pair[0].clone(); // blocker := excluded (∉ J)
            } else {
                // No excluded facts; corrupt a block's no-swap evidence
                // instead: the "unbeaten selected fact" becomes the
                // alternative block's own representative.
                let CertValue::Arr(blocks) = verdict.get_mut("blocks")? else {
                    return None;
                };
                let pairs = blocks.iter_mut().find_map(|b| match b.get_mut("maximality") {
                    Some(CertValue::Arr(p)) if !p.is_empty() => Some(p),
                    _ => None,
                })?;
                let CertValue::Arr(pair) = &mut pairs[0] else { return None };
                pair[1] = pair[0].clone();
            }
        }
        _ => return None,
    }
    Some(render_value(&doc))
}

/// Swaps the `consistency` lists of two block-evidence entries. Groups
/// are disjoint, so each swapped list stops being `J ∩ group`.
pub fn swap_block_evidence(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    if verdict_kind(&doc)? != "optimal" {
        return None;
    }
    let CertValue::Arr(blocks) = doc.get_mut("verdict")?.get_mut("blocks")? else {
        return None;
    };
    if blocks.len() < 2 {
        return None;
    }
    let last = blocks.len() - 1;
    let (head, tail) = blocks.split_at_mut(last);
    std::mem::swap(head[0].get_mut("consistency")?, tail[0].get_mut("consistency")?);
    Some(render_value(&doc))
}

fn pop_arr(v: &mut CertValue) -> bool {
    match v {
        CertValue::Arr(items) if !items.is_empty() => {
            items.pop();
            true
        }
        _ => false,
    }
}

/// Truncates an evidence mapping so its cover is incomplete: the last
/// maximality entry, block entry, or justification entry disappears —
/// or, for classification certificates, the last per-relation entry.
pub fn truncate_mapping(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    if doc.get("kind")?.as_str()? == "classification" {
        let class = doc.get_mut("classification")?;
        for key in ["relations", "keys", "consts"] {
            if let Some(v) = class.get_mut(key) {
                if pop_arr(v) {
                    return Some(render_value(&doc));
                }
            }
        }
        return None;
    }
    match verdict_kind(&doc)? {
        "optimal" => {
            let verdict = doc.get_mut("verdict")?;
            if pop_arr(verdict.get_mut("maximality")?) {
                return Some(render_value(&doc));
            }
            if pop_arr(verdict.get_mut("blocks")?) {
                return Some(render_value(&doc));
            }
            None
        }
        "improvable" => {
            let verdict = doc.get_mut("verdict")?;
            if pop_arr(verdict.get_mut("justification")?) {
                return Some(render_value(&doc));
            }
            // No justification means nothing was lost; truncating `to`
            // is only guaranteed-invalidating when the dropped fact is
            // also in `from` (it becomes an unjustified loss).
            let from: Vec<i64> =
                verdict.get("from")?.as_arr()?.iter().filter_map(CertValue::as_int).collect();
            let CertValue::Arr(to) = verdict.get_mut("to")? else { return None };
            let last = to.last()?.as_int()?;
            if from.contains(&last) {
                to.pop();
                return Some(render_value(&doc));
            }
            None
        }
        _ => None,
    }
}

/// Relabels the verdict (or a classification certificate) as a
/// different kind while keeping its fields — a structural lie.
pub fn flip_verdict_kind(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    if doc.get("kind")?.as_str()? == "classification" {
        *doc.get_mut("kind")? = CertValue::Str("check".to_string());
        return Some(render_value(&doc));
    }
    let next = match verdict_kind(&doc)? {
        "inconsistent" => "improvable",
        "improvable" => "optimal",
        "optimal" => "inconsistent",
        _ => return None,
    };
    *doc.get_mut("verdict")?.get_mut("kind")? = CertValue::Str(next.to_string());
    Some(render_value(&doc))
}

/// Removes the priority edge cited by the first justification entry,
/// so the witness claims a preference the relation never had.
pub fn drop_priority_edge(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    if verdict_kind(&doc)? != "improvable" {
        return None;
    }
    let justification = doc.get("verdict")?.get("justification")?.as_arr()?;
    let first = justification.first()?.as_arr()?;
    let (lost, by) = (first[0].as_int()?, first[1].as_int()?);
    let CertValue::Arr(edges) = doc.get_mut("priority")? else { return None };
    let before = edges.len();
    edges.retain(|e| {
        e.as_arr().is_none_or(|p| {
            !(p.len() == 2 && p[0].as_int() == Some(by) && p[1].as_int() == Some(lost))
        })
    });
    (edges.len() < before).then(|| render_value(&doc))
}

/// Deletes a candidate member the evidence depends on: the
/// inconsistent pair's first fact, or the last listed member (whose
/// exclusion the maximality cover cannot account for).
pub fn drop_candidate_fact(text: &str) -> Option<String> {
    let mut doc = parse(text)?;
    let kind = verdict_kind(&doc)?;
    let target = match kind {
        "inconsistent" => doc.get("verdict")?.get("f")?.as_int()?,
        "improvable" | "optimal" => doc.get("candidate")?.as_arr()?.last()?.as_int()?,
        _ => return None,
    };
    let CertValue::Arr(candidate) = doc.get_mut("candidate")? else { return None };
    let before = candidate.len();
    candidate.retain(|c| c.as_int() != Some(target));
    if candidate.len() == before {
        return None;
    }
    // An improvable witness must keep `from == candidate` *looking*
    // plausible as a certificate while actually lying about the
    // candidate the session checked — so `from` stays untouched.
    Some(render_value(&doc))
}
