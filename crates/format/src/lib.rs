//! # rpr-format — workspace file formats and canonical fingerprints
//!
//! The serialization layer of the preferred-repairs system, extracted
//! from `rpr-cli` so that non-CLI front ends (notably the `rpr-serve`
//! HTTP service) can parse workspaces without depending on the binary
//! crate:
//!
//! * [`format`] — the textual `.rpr` workspace grammar
//!   (`relation`/`fd`/`fact`/`prefer`/`mode`/`repair` directives) and
//!   its renderer;
//! * [`store`] — the `.rprb` binary codec;
//! * [`json_slice`] — a shallow, zero-copy JSON scanner used by the
//!   serving layer to pull workspace bodies out of request JSON
//!   without building a document tree;
//! * [`delta`] — the delta-op grammar (`insert`/`delete`/`prefer`/
//!   `unprefer` lines) shared by `POST /delta` bodies and `rpr delta`
//!   ops files, plus the brute-force mutation oracle;
//! * [`query_parse`] — conjunctive-query parsing for the CQA commands;
//! * [`fingerprint`] — the canonical 128-bit content fingerprint of a
//!   whole workspace, used as the serving layer's session-cache key.
//!
//! `rpr-cli` re-exports these modules under their old paths, so
//! `rpr_cli::format::Workspace` keeps working for existing callers.

#![warn(missing_docs)]

pub mod certificate_json;
#[cfg(feature = "faults")]
pub mod corrupt;
pub mod delta;
pub mod fingerprint;
pub mod format;
pub mod json_slice;
pub mod query_parse;
pub mod store;

pub use certificate_json::{parse_certificate, render_certificate, render_value, CertValue};
pub use delta::{
    apply_ops_to_workspace, delta_ops_from_strings, parse_delta_op, parse_delta_script,
};
pub use fingerprint::{schema_fingerprint, workspace_fingerprint};
pub use format::{parse_workspace, render_workspace, FormatError, Workspace};
pub use json_slice::{parse_workspace_raw, scan_object, RawStr, SliceError, SliceValue};
pub use query_parse::{parse_query, QueryError};
pub use store::{decode, encode, is_binary, StoreError};
