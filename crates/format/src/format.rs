//! The `.rpr` workspace file format.
//!
//! A single text file declares a schema, an instance, a priority and
//! optional named candidate repairs:
//!
//! ```text
//! # The paper's running example (fragment).
//! relation BookLoc/3
//! relation LibLoc/2
//!
//! fd BookLoc: 1 -> 2
//! fd LibLoc: 1 -> 2
//! fd LibLoc: 2 -> 1
//!
//! fact BookLoc(b1, fiction, lib1)
//! fact LibLoc(lib1, almaden)
//! fact LibLoc(lib1, edenvale)
//!
//! prefer LibLoc(lib1, edenvale) > LibLoc(lib1, almaden)
//!
//! # mode ccp            # uncomment for cross-conflict priorities
//!
//! repair J: BookLoc(b1, fiction, lib1); LibLoc(lib1, edenvale)
//! ```
//!
//! Grammar, line-oriented (blank lines and `#` comments ignored):
//!
//! * `relation NAME/ARITY`
//! * `fd NAME: a1 a2 -> b1 b2` (attribute indices, 1-based; an empty
//!   left side is written `∅` or `-`)
//! * `fact NAME(v1, …, vn)` (integers parse as ints, everything else
//!   as symbols)
//! * `prefer FACT > FACT` (both facts must be declared)
//! * `mode ccp` / `mode conflict` (default `conflict`)
//! * `repair NAME: FACT; FACT; …`

use rpr_data::{AttrSet, DataError, Fact, FactId, FactSet, Instance, Signature, Value};
use rpr_fd::{Fd, Schema};
use rpr_priority::{PrioritizedInstance, PriorityMode, PriorityRelation};
use std::fmt;

/// A parsed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// The declared schema.
    pub schema: Schema,
    /// The declared instance `I`.
    pub instance: Instance,
    /// The declared priority `≻`.
    pub priority: PriorityRelation,
    /// The priority mode.
    pub mode: PriorityMode,
    /// Named candidate repairs, in declaration order.
    pub repairs: Vec<(String, FactSet)>,
}

impl Workspace {
    /// Wraps the workspace as a validated prioritizing instance.
    ///
    /// # Errors
    /// Propagates conflict-restriction violations in classical mode.
    pub fn prioritized(&self) -> Result<PrioritizedInstance, FormatError> {
        match self.mode {
            PriorityMode::ConflictRestricted => PrioritizedInstance::conflict_restricted(
                &self.schema,
                self.instance.clone(),
                self.priority.clone(),
            )
            .map_err(|e| FormatError::new(0, format!("priority not conflict-restricted: {e}"))),
            PriorityMode::CrossConflict => Ok(PrioritizedInstance::cross_conflict(
                self.instance.clone(),
                self.priority.clone(),
            )),
        }
    }

    /// Looks a named repair up.
    pub fn repair(&self, name: &str) -> Option<&FactSet> {
        self.repairs.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// A parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line (0 for whole-file problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl FormatError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        FormatError { line, message: message.into() }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FormatError {}

fn parse_value(token: &str) -> Value {
    match token.parse::<i64>() {
        Ok(n) => Value::Int(n),
        Err(_) => Value::sym(token),
    }
}

/// Parses `NAME(v1, …, vn)` into a fact.
pub(crate) fn parse_fact(sig: &Signature, text: &str, line: usize) -> Result<Fact, FormatError> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| FormatError::new(line, format!("expected Relation(...), got `{text}`")))?;
    if !text.ends_with(')') {
        return Err(FormatError::new(line, "missing `)`"));
    }
    let rel = text[..open].trim();
    let body = &text[open + 1..text.len() - 1];
    let values: Vec<Value> = body.split(',').map(|t| parse_value(t.trim())).collect();
    Fact::parse_new(sig, rel, values).map_err(|e: DataError| FormatError::new(line, e.to_string()))
}

fn parse_attr_list(text: &str, line: usize) -> Result<AttrSet, FormatError> {
    let text = text.trim();
    if text.is_empty() || text == "∅" || text == "-" {
        return Ok(AttrSet::EMPTY);
    }
    let mut out = AttrSet::EMPTY;
    for tok in text.split_whitespace() {
        for piece in tok.split(',') {
            if piece.is_empty() {
                continue;
            }
            let n: usize = piece
                .parse()
                .map_err(|_| FormatError::new(line, format!("bad attribute index `{piece}`")))?;
            if n == 0 || n > 64 {
                return Err(FormatError::new(line, format!("attribute {n} out of range")));
            }
            out = out.insert(n);
        }
    }
    Ok(out)
}

/// Parses a workspace file.
///
/// # Errors
/// [`FormatError`] with a line number on the first problem.
pub fn parse_workspace(text: &str) -> Result<Workspace, FormatError> {
    // Pass 1: relations.
    let mut rels: Vec<(String, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let l = raw.trim();
        if let Some(rest) = l.strip_prefix("relation ") {
            let (name, arity) = rest
                .rsplit_once('/')
                .ok_or_else(|| FormatError::new(line, "expected `relation NAME/ARITY`"))?;
            let arity: usize = arity
                .trim()
                .parse()
                .map_err(|_| FormatError::new(line, format!("bad arity `{arity}`")))?;
            rels.push((name.trim().to_owned(), arity));
        }
    }
    if rels.is_empty() {
        return Err(FormatError::new(0, "no `relation` declarations"));
    }
    let sig = Signature::new(rels.iter().map(|(n, a)| (n.as_str(), *a)))
        .map_err(|e| FormatError::new(0, e.to_string()))?;

    // Pass 2: everything else.
    let mut fds: Vec<Fd> = Vec::new();
    let mut instance = Instance::new(sig.clone());
    let mut prefer_lines: Vec<(usize, Fact, Fact)> = Vec::new();
    let mut mode = PriorityMode::ConflictRestricted;
    let mut repairs: Vec<(String, Vec<Fact>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') || l.starts_with("relation ") {
            continue;
        }
        if let Some(rest) = l.strip_prefix("fd ") {
            let (rel_name, spec) = rest
                .split_once(':')
                .ok_or_else(|| FormatError::new(line, "expected `fd NAME: lhs -> rhs`"))?;
            let rel =
                sig.require(rel_name.trim()).map_err(|e| FormatError::new(line, e.to_string()))?;
            let (lhs, rhs) = spec
                .split_once("->")
                .ok_or_else(|| FormatError::new(line, "expected `lhs -> rhs`"))?;
            let fd = Fd::new(rel, parse_attr_list(lhs, line)?, parse_attr_list(rhs, line)?);
            if !fd.fits_arity(sig.arity(rel)) {
                return Err(FormatError::new(line, "FD mentions attributes beyond the arity"));
            }
            fds.push(fd);
        } else if let Some(rest) = l.strip_prefix("fact ") {
            let fact = parse_fact(&sig, rest, line)?;
            instance.insert(fact);
        } else if let Some(rest) = l.strip_prefix("prefer ") {
            let (a, b) = rest
                .split_once('>')
                .ok_or_else(|| FormatError::new(line, "expected `prefer FACT > FACT`"))?;
            prefer_lines.push((line, parse_fact(&sig, a, line)?, parse_fact(&sig, b, line)?));
        } else if let Some(rest) = l.strip_prefix("mode ") {
            mode = match rest.trim() {
                "ccp" | "cross-conflict" => PriorityMode::CrossConflict,
                "conflict" | "conflict-restricted" => PriorityMode::ConflictRestricted,
                other => return Err(FormatError::new(line, format!("unknown mode `{other}`"))),
            };
        } else if let Some(rest) = l.strip_prefix("repair ") {
            let (name, body) = rest
                .split_once(':')
                .ok_or_else(|| FormatError::new(line, "expected `repair NAME: FACT; …`"))?;
            let mut facts = Vec::new();
            for part in body.split(';') {
                let part = part.trim();
                if !part.is_empty() {
                    facts.push(parse_fact(&sig, part, line)?);
                }
            }
            repairs.push((name.trim().to_owned(), facts));
        } else {
            return Err(FormatError::new(line, format!("unrecognized directive `{l}`")));
        }
    }

    let schema = Schema::new(sig, fds).map_err(|e| FormatError::new(0, e.to_string()))?;

    let mut edges: Vec<(FactId, FactId)> = Vec::new();
    for (line, a, b) in prefer_lines {
        let ai = instance
            .id_of(&a)
            .ok_or_else(|| FormatError::new(line, "preferred fact not declared with `fact`"))?;
        let bi = instance
            .id_of(&b)
            .ok_or_else(|| FormatError::new(line, "dominated fact not declared with `fact`"))?;
        edges.push((ai, bi));
    }
    let priority = PriorityRelation::new(instance.len(), edges)
        .map_err(|e| FormatError::new(0, format!("priority rejected: {e}")))?;

    let mut repair_sets = Vec::new();
    for (name, facts) in repairs {
        let mut set = instance.empty_set();
        for f in &facts {
            let id = instance.id_of(f).ok_or_else(|| {
                FormatError::new(0, format!("repair `{name}` uses a fact not declared with `fact`"))
            })?;
            set.insert(id);
        }
        repair_sets.push((name, set));
    }

    Ok(Workspace { schema, instance, priority, mode, repairs: repair_sets })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sample
relation R/2
relation S/2

fd R: 1 -> 2
fd S: - -> 1

fact R(a, 1)
fact R(a, 2)
fact S(x, 0)

prefer R(a, 2) > R(a, 1)

repair best: R(a, 2); S(x, 0)
";

    #[test]
    fn parses_the_sample() {
        let ws = parse_workspace(SAMPLE).unwrap();
        assert_eq!(ws.instance.len(), 3);
        assert_eq!(ws.schema.fds().len(), 2);
        assert_eq!(ws.priority.edge_count(), 1);
        assert_eq!(ws.mode, PriorityMode::ConflictRestricted);
        let j = ws.repair("best").unwrap();
        assert_eq!(j.len(), 2);
        assert!(ws.prioritized().is_ok());
        // The empty-lhs FD parsed as constant-attribute.
        assert!(ws.schema.fds()[1].is_constant_attribute());
    }

    #[test]
    fn mode_ccp_allows_cross_edges() {
        let text = "\
relation R/2
fd R: 1 -> 2
fact R(a, 1)
fact R(b, 2)
mode ccp
prefer R(a, 1) > R(b, 2)
";
        let ws = parse_workspace(text).unwrap();
        assert_eq!(ws.mode, PriorityMode::CrossConflict);
        assert!(ws.prioritized().is_ok());
        // The same file in classical mode fails validation.
        let classical = text.replace("mode ccp\n", "");
        let ws = parse_workspace(&classical).unwrap();
        assert!(ws.prioritized().is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "relation R/2\nfd R 1 -> 2\n";
        let err = parse_workspace(bad).unwrap_err();
        assert_eq!(err.line, 2);

        let bad = "relation R/2\nfact R(a)\n";
        let err = parse_workspace(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("arity"));

        let bad = "relation R/2\nprefer R(a,1) > R(a,2)\n";
        let err = parse_workspace(bad).unwrap_err();
        assert!(err.message.contains("not declared"));

        let bad = "relation R/2\nbanana\n";
        assert!(parse_workspace(bad).unwrap_err().message.contains("unrecognized"));

        assert!(parse_workspace("fact R(a,b)\n").unwrap_err().message.contains("relation"));
    }

    #[test]
    fn cyclic_priorities_are_rejected() {
        let text = "\
relation R/2
fd R: 1 -> 2
fact R(a, 1)
fact R(a, 2)
prefer R(a, 1) > R(a, 2)
prefer R(a, 2) > R(a, 1)
";
        let err = parse_workspace(text).unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn multi_attribute_fd_sides() {
        let text = "\
relation T/4
fd T: 1 -> 2 3 4
fd T: 2, 3 -> 1
fact T(a, b, c, d)
";
        let ws = parse_workspace(text).unwrap();
        assert_eq!(ws.schema.fds()[0].rhs, AttrSet::from_attrs([2, 3, 4]));
        assert_eq!(ws.schema.fds()[1].lhs, AttrSet::from_attrs([2, 3]));
    }
}

/// Renders a workspace back to the `.rpr` text format (the inverse of
/// [`parse_workspace`] up to whitespace and ordering). Used by
/// `rpr export file.rprb out.rpr` to turn binary workspaces back into
/// human-editable form.
pub fn render_workspace(ws: &Workspace) -> String {
    use std::fmt::Write as _;
    let sig = ws.schema.signature();
    let mut out = String::new();
    for (_, sym) in sig.iter() {
        let _ = writeln!(out, "relation {}/{}", sym.name(), sym.arity());
    }
    out.push('\n');
    let attrs = |a: AttrSet| -> String {
        if a.is_empty() {
            "-".to_owned()
        } else {
            a.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
        }
    };
    for fd in ws.schema.fds() {
        let _ = writeln!(
            out,
            "fd {}: {} -> {}",
            sig.symbol(fd.rel).name(),
            attrs(fd.lhs),
            attrs(fd.rhs)
        );
    }
    if ws.mode == PriorityMode::CrossConflict {
        let _ = writeln!(out, "\nmode ccp");
    }
    out.push('\n');
    for (_, fact) in ws.instance.iter() {
        let _ = writeln!(out, "fact {}", fact.display(sig));
    }
    out.push('\n');
    for &(a, b) in ws.priority.edges() {
        let _ = writeln!(
            out,
            "prefer {} > {}",
            ws.instance.fact(a).display(sig),
            ws.instance.fact(b).display(sig)
        );
    }
    for (name, set) in &ws.repairs {
        let members: Vec<String> =
            set.iter().map(|id| ws.instance.fact(id).display(sig).to_string()).collect();
        let _ = writeln!(out, "repair {name}: {}", members.join("; "));
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;

    const SAMPLE: &str = "\
relation R/2
relation S/3
fd R: 1 -> 2
fd S: - -> 3
mode ccp
fact R(a, 1)
fact R(a, 2)
fact S(x, y, 0)
prefer R(a, 2) > S(x, y, 0)
repair best: R(a, 2); S(x, y, 0)
";

    #[test]
    fn render_parse_roundtrip() {
        let ws = parse_workspace(SAMPLE).unwrap();
        let text = render_workspace(&ws);
        let back = parse_workspace(&text).unwrap();
        assert_eq!(back.instance.len(), ws.instance.len());
        for (_, f) in ws.instance.iter() {
            assert!(back.instance.contains(f));
        }
        assert_eq!(back.schema.fds(), ws.schema.fds());
        assert_eq!(back.priority.edges(), ws.priority.edges());
        assert_eq!(back.mode, ws.mode);
        assert_eq!(back.repairs.len(), ws.repairs.len());
        assert_eq!(back.repairs[0].1.len(), 2);
    }

    #[test]
    fn rendered_text_uses_the_documented_directives() {
        let ws = parse_workspace(SAMPLE).unwrap();
        let text = render_workspace(&ws);
        assert!(text.contains("relation R/2"));
        assert!(text.contains("fd S: - -> 3"));
        assert!(text.contains("mode ccp"));
        assert!(text.contains("prefer R(a,2) > S(x,y,0)"));
        assert!(text.contains("repair best:"));
    }
}
