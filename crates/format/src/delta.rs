//! The delta-op grammar: textual mutations of a workspace.
//!
//! One op per line (or per JSON array element on the wire), reusing the
//! `.rpr` fact syntax:
//!
//! ```text
//! insert R(a, b)
//! delete R(a, b)
//! prefer R(a, x) > R(a, y)
//! unprefer R(a, x) > R(a, y)
//! ```
//!
//! Every front end — `POST /delta` bodies (whether materialized through
//! a DOM or pulled from the raw bytes by `json_slice`), `rpr delta` ops
//! files — funnels each op string through the single
//! [`parse_delta_op`] entry point, so diagnostics are byte-identical
//! across paths by construction.
//!
//! [`apply_ops_to_workspace`] is the *oracle*: it applies ops to a
//! parsed [`Workspace`] by brute data manipulation (no incremental
//! structures), producing the workspace a cold rebuild sees. The
//! differential suites check `DeltaSession::apply_delta` against it
//! bit-for-bit.

use crate::format::{parse_fact, FormatError, Workspace};
use rpr_core::DeltaOp;
use rpr_data::{FactId, Signature};
use rpr_priority::PriorityRelation;

/// Parses one delta op. `line` is the 1-based line (script files) or
/// op index + 1 (JSON arrays) used in diagnostics.
///
/// # Errors
/// [`FormatError`] naming the offending line/op.
pub fn parse_delta_op(sig: &Signature, text: &str, line: usize) -> Result<DeltaOp, FormatError> {
    let l = text.trim();
    if let Some(rest) = l.strip_prefix("insert ") {
        return Ok(DeltaOp::InsertFact(parse_fact(sig, rest, line)?));
    }
    if let Some(rest) = l.strip_prefix("delete ") {
        return Ok(DeltaOp::DeleteFact(parse_fact(sig, rest, line)?));
    }
    let (prefer, rest) = if let Some(rest) = l.strip_prefix("prefer ") {
        (true, rest)
    } else if let Some(rest) = l.strip_prefix("unprefer ") {
        (false, rest)
    } else {
        return Err(FormatError {
            line,
            message: format!("expected `insert`/`delete`/`prefer`/`unprefer`, got `{l}`"),
        });
    };
    let (a, b) = rest.split_once('>').ok_or_else(|| FormatError {
        line,
        message: format!("expected `{} FACT > FACT`", if prefer { "prefer" } else { "unprefer" }),
    })?;
    Ok(DeltaOp::SetPriority {
        better: parse_fact(sig, a, line)?,
        worse: parse_fact(sig, b, line)?,
        prefer,
    })
}

/// Parses a line-oriented ops script (blank lines and `#` comments
/// ignored), as consumed by `rpr delta FILE OPSFILE`.
///
/// # Errors
/// [`FormatError`] with the 1-based line of the first bad op.
pub fn parse_delta_script(sig: &Signature, text: &str) -> Result<Vec<DeltaOp>, FormatError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        ops.push(parse_delta_op(sig, l, idx + 1)?);
    }
    Ok(ops)
}

/// Parses the op strings of a JSON `"ops"` array. Diagnostics number
/// ops from 1, mirroring script line numbers.
///
/// # Errors
/// [`FormatError`] with `line` = 1-based index of the first bad op.
pub fn delta_ops_from_strings<S: AsRef<str>>(
    sig: &Signature,
    ops: &[S],
) -> Result<Vec<DeltaOp>, FormatError> {
    ops.iter().enumerate().map(|(i, s)| parse_delta_op(sig, s.as_ref(), i + 1)).collect()
}

/// The oracle: applies `ops` to a parsed workspace by plain data
/// manipulation, with the same semantics and the same resulting id
/// layout as `DeltaSession::apply_delta` (deletes renumber survivors
/// densely, inserts append, edge order is base-minus-removals then
/// additions). Named repairs are remapped; a deleted fact simply drops
/// out of any repair containing it.
///
/// # Errors
/// [`FormatError`] (line = op index + 1) on the first invalid op —
/// the same classes `DeltaSession` rejects, minus the acyclicity /
/// conflict-restriction checks, which surface when the resulting
/// workspace is re-validated.
pub fn apply_ops_to_workspace(ws: &Workspace, ops: &[DeltaOp]) -> Result<Workspace, FormatError> {
    let mut instance = ws.instance.clone();
    let mut edges: Vec<(FactId, FactId)> = ws.priority.edges().to_vec();
    let mut repairs = ws.repairs.clone();
    for (i, op) in ops.iter().enumerate() {
        let line = i + 1;
        let sig = instance.signature();
        match op {
            DeltaOp::InsertFact(f) => {
                if instance.id_of(f).is_some() {
                    return Err(FormatError {
                        line,
                        message: format!("insert of fact already present: {}", f.display(sig)),
                    });
                }
                instance.insert(f.clone());
                for (_, set) in &mut repairs {
                    set.grow(instance.len());
                }
            }
            DeltaOp::DeleteFact(f) => {
                let id = instance.id_of(f).ok_or_else(|| FormatError {
                    line,
                    message: format!("fact not in the instance: {}", f.display(sig)),
                })?;
                if edges.iter().any(|&(a, b)| a == id || b == id) {
                    return Err(FormatError {
                        line,
                        message: format!(
                            "delete of fact with incident priority edges: {}",
                            f.display(sig)
                        ),
                    });
                }
                instance.remove_fact(id);
                let shift = |x: FactId| if x > id { FactId(x.0 - 1) } else { x };
                for (a, b) in edges.iter_mut() {
                    *a = shift(*a);
                    *b = shift(*b);
                }
                for (_, set) in &mut repairs {
                    set.remove_shift(id);
                }
            }
            DeltaOp::SetPriority { better, worse, prefer } => {
                let bi = instance.id_of(better).ok_or_else(|| FormatError {
                    line,
                    message: format!("fact not in the instance: {}", better.display(sig)),
                })?;
                let wi = instance.id_of(worse).ok_or_else(|| FormatError {
                    line,
                    message: format!("fact not in the instance: {}", worse.display(sig)),
                })?;
                if *prefer {
                    if edges.contains(&(bi, wi)) {
                        return Err(FormatError {
                            line,
                            message: "preference already present".to_owned(),
                        });
                    }
                    edges.push((bi, wi));
                } else {
                    let Some(pos) = edges.iter().position(|&e| e == (bi, wi)) else {
                        return Err(FormatError {
                            line,
                            message: "unprefer of preference not present".to_owned(),
                        });
                    };
                    edges.remove(pos);
                }
            }
        }
    }
    let priority = PriorityRelation::new(instance.len(), edges)
        .map_err(|e| FormatError { line: 0, message: format!("priority rejected: {e}") })?;
    Ok(Workspace { schema: ws.schema.clone(), instance, priority, mode: ws.mode, repairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::workspace_fingerprint;
    use crate::format::{parse_workspace, render_workspace};
    use rpr_core::DeltaSession;
    use std::sync::Arc;

    const WS: &str = "\
relation R/2
relation S/2
fd R: 1 -> 2
fd S: 1 -> 2
fact R(a, x)
fact R(a, y)
fact R(b, x)
fact S(k, 1)
fact S(k, 2)
prefer R(a, x) > R(a, y)
repair J: R(a, x); R(b, x); S(k, 1)
";

    #[test]
    fn grammar_round_trips_all_op_kinds() {
        let ws = parse_workspace(WS).unwrap();
        let sig = ws.instance.signature();
        let script = "\
# churn
insert R(c, z)
delete S(k, 2)

prefer S(k, 1) > R(a, x)
unprefer R(a, x) > R(a, y)
";
        let ops = parse_delta_script(sig, script).unwrap();
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], DeltaOp::InsertFact(_)));
        assert!(matches!(&ops[1], DeltaOp::DeleteFact(_)));
        assert!(matches!(&ops[2], DeltaOp::SetPriority { prefer: true, .. }));
        assert!(matches!(&ops[3], DeltaOp::SetPriority { prefer: false, .. }));
        // The JSON-array front end parses identically.
        let strings: Vec<&str> = script
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert_eq!(delta_ops_from_strings(sig, &strings).unwrap(), ops);
    }

    #[test]
    fn diagnostics_name_the_op() {
        let ws = parse_workspace(WS).unwrap();
        let sig = ws.instance.signature();
        let err = parse_delta_script(sig, "insert R(a, x)\nbanana\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected `insert`"));
        let err = delta_ops_from_strings(sig, &["insert R(a)"]).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("arity"));
        let err = delta_ops_from_strings(sig, &["prefer R(a, x)"]).unwrap_err();
        assert!(err.message.contains("FACT > FACT"));
    }

    #[test]
    fn oracle_matches_delta_session_bit_for_bit() {
        let ws = parse_workspace(WS).unwrap();
        let sig = ws.instance.signature().clone();
        let ops = parse_delta_script(
            &sig,
            "unprefer R(a, x) > R(a, y)\ndelete R(a, y)\ninsert S(m, 7)\nprefer S(k, 2) > S(k, 1)\n",
        )
        .unwrap();

        // Oracle: plain data manipulation, then render → reparse.
        let mutated = apply_ops_to_workspace(&ws, &ops).unwrap();
        let reparsed = parse_workspace(&render_workspace(&mutated)).unwrap();

        // Patched session over the original workspace.
        let mut ds = DeltaSession::prepare(Arc::new(ws.schema.clone()), ws.prioritized().unwrap());
        ds.apply_delta(&ops).unwrap();

        assert_eq!(ds.fingerprint(), workspace_fingerprint(&reparsed));
        // Same id layout: the fact tables agree position by position.
        for (id, f) in reparsed.instance.iter() {
            assert_eq!(ds.prioritized().instance().fact(id), f);
        }
        assert_eq!(ds.prioritized().priority().edges(), reparsed.priority.edges());
    }

    #[test]
    fn oracle_remaps_named_repairs() {
        let ws = parse_workspace(WS).unwrap();
        let sig = ws.instance.signature().clone();
        // Delete a repair member (S(k,1) = id 3): it drops out and ids shift.
        let ops = parse_delta_script(&sig, "delete S(k, 1)\ninsert R(d, q)\n").unwrap();
        let mutated = apply_ops_to_workspace(&ws, &ops).unwrap();
        let j = mutated.repair("J").unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.universe(), mutated.instance.len());
        for id in j.iter() {
            let f = mutated.instance.fact(id);
            assert!(ws.instance.contains(f), "repair member {f:?} not from the base");
        }
    }

    #[test]
    fn oracle_rejects_invalid_ops() {
        let ws = parse_workspace(WS).unwrap();
        let sig = ws.instance.signature().clone();
        let cases = [
            ("insert R(a, x)", "already present"),
            ("delete R(z, z)", "not in the instance"),
            ("delete R(a, x)", "incident priority edges"),
            ("prefer R(a, x) > R(a, y)", "already present"),
            ("unprefer R(a, y) > R(a, x)", "not present"),
        ];
        for (script, needle) in cases {
            let ops = parse_delta_script(&sig, script).unwrap();
            let err = apply_ops_to_workspace(&ws, &ops).unwrap_err();
            assert!(err.message.contains(needle), "{script}: {err}");
        }
    }
}
