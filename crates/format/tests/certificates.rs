//! Differential certificate suite (`--features faults`): every genuine
//! certificate must round-trip byte-identically and pass `rpr-audit`;
//! every injected corruption from the fault plan must be rejected.
//!
//! The corpus is the checked-in workloads (PTIME and coNP-hard cases
//! alike) plus synthetic workspaces covering the classification shapes
//! the workloads miss: two incomparable keys, the three-keys hard case,
//! and all three ccp classes of Theorem 7.1.

#![cfg(feature = "faults")]

use rpr_core::{Budget, CheckSession, Outcome};
use rpr_format::corrupt::CORRUPTIONS;
use rpr_format::{parse_certificate, parse_workspace, render_certificate, render_value, Workspace};
use std::collections::HashMap;

const WORKLOADS: &[(&str, &str)] = &[
    ("running_example", include_str!("../../../workloads/running_example.rpr")),
    ("hard_s4", include_str!("../../../workloads/hard_s4.rpr")),
    ("hard_blowup", include_str!("../../../workloads/hard_blowup.rpr")),
    ("source_trust", include_str!("../../../workloads/source_trust.rpr")),
    (
        "two_keys",
        "relation R/2\n\
         fd R: 1 -> 2\n\
         fd R: 2 -> 1\n\
         fact R(a, x)\n\
         fact R(a, y)\n\
         fact R(b, y)\n\
         fact R(c, z)\n\
         prefer R(a, x) > R(a, y)\n\
         prefer R(b, y) > R(a, y)\n\
         repair J: R(a, x); R(c, z)\n",
    ),
    (
        "three_keys_hard",
        "relation T/3\n\
         fd T: 1 2 -> 3\n\
         fd T: 2 3 -> 1\n\
         fd T: 1 3 -> 2\n\
         fact T(a, b, c)\n\
         fact T(a, b, d)\n\
         fact T(e, b, d)\n\
         prefer T(a, b, c) > T(a, b, d)\n\
         repair J: T(a, b, c); T(e, b, d)\n",
    ),
    (
        "two_groups",
        "relation G/2\n\
         fd G: 1 -> 2\n\
         fact G(a, x)\n\
         fact G(a, y)\n\
         fact G(b, u)\n\
         fact G(b, v)\n\
         prefer G(a, x) > G(a, y)\n\
         prefer G(b, u) > G(b, v)\n\
         repair J: G(a, x); G(b, u)\n",
    ),
    (
        "ccp_primary_key",
        "mode ccp\n\
         relation S/2\n\
         fd S: 1 -> 2\n\
         fact S(a, x)\n\
         fact S(a, y)\n\
         fact S(b, x)\n\
         prefer S(a, x) > S(b, x)\n\
         prefer S(a, x) > S(a, y)\n\
         repair J: S(a, x); S(b, x)\n",
    ),
    (
        "ccp_constant_attribute",
        "mode ccp\n\
         relation C/2\n\
         fd C: - -> 2\n\
         fact C(a, x)\n\
         fact C(b, x)\n\
         fact C(b, y)\n\
         prefer C(a, x) > C(b, y)\n\
         repair J: C(a, x); C(b, x)\n",
    ),
    (
        "ccp_hard",
        "mode ccp\n\
         relation R4/3\n\
         fd R4: 1 -> 2\n\
         fd R4: 2 -> 3\n\
         fact R4(a, x, 1)\n\
         fact R4(a, y, 1)\n\
         fact R4(b, x, 1)\n\
         fact R4(b, x, 2)\n\
         prefer R4(a, x, 1) > R4(b, x, 1)\n\
         prefer R4(b, x, 2) > R4(a, y, 1)\n\
         repair J: R4(a, x, 1); R4(b, x, 2)\n",
    ),
];

/// Candidate repairs worth certifying: every declared repair plus
/// mutations that push the checker into all three verdicts.
fn candidates(ws: &Workspace) -> Vec<rpr_data::FactSet> {
    let mut out = vec![ws.instance.full_set(), ws.instance.empty_set()];
    for (_, j) in &ws.repairs {
        out.push(j.clone());
        if let Some(first) = j.first() {
            let mut smaller = j.clone();
            smaller.remove(first);
            out.push(smaller);
        }
        if let Some(missing) = ws.instance.fact_ids().find(|id| !j.contains(*id)) {
            let mut larger = j.clone();
            larger.insert(missing);
            out.push(larger);
        }
    }
    out
}

struct Tally {
    genuine: usize,
    verdicts: HashMap<String, usize>,
    applied: HashMap<&'static str, usize>,
}

/// One genuine certificate: audit must accept, serialization must
/// round-trip byte-identically, and every applicable corruption must
/// be rejected.
fn exercise(name: &str, text: &str, tally: &mut Tally) {
    let report = match rpr_audit::audit(text) {
        Ok(r) => r,
        Err(e) => panic!("{name}: audit rejected a genuine certificate: {e}\n{text}"),
    };
    tally.genuine += 1;
    if let Some(v) = &report.verdict {
        *tally.verdicts.entry(v.clone()).or_default() += 1;
    }

    let doc = parse_certificate(text).expect("genuine certificates parse");
    assert_eq!(render_value(&doc), text, "{name}: round-trip is not byte-identical");

    for (op, corrupt) in CORRUPTIONS {
        let Some(corrupted) = corrupt(text) else { continue };
        assert_ne!(corrupted, text, "{name}/{op}: corruption was a no-op");
        *tally.applied.entry(op).or_default() += 1;
        if let Ok(report) = rpr_audit::audit(&corrupted) {
            panic!(
                "{name}/{op}: audit ACCEPTED a corrupted certificate ({report:?})\n\
                 genuine:   {text}\ncorrupted: {corrupted}"
            );
        }
    }
}

#[test]
fn audit_accepts_every_genuine_and_rejects_every_corrupted_certificate() {
    let mut tally = Tally { genuine: 0, verdicts: HashMap::new(), applied: HashMap::new() };
    // Enough for the tiny hard workloads' exact search while keeping
    // hard_blowup's deliberately exponential candidates bounded.
    let budget = || Budget::unlimited().with_max_work(2_000_000);

    for (name, source) in WORKLOADS {
        let ws = parse_workspace(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let pi = ws.prioritized().unwrap_or_else(|e| panic!("{name}: {e}"));
        let session = CheckSession::new(&ws.schema, &pi);

        let class_cert = session.certify_classification();
        let text = render_certificate(&ws.schema, &ws.instance, &ws.priority, &class_cert);
        exercise(&format!("{name}/classification"), &text, &mut tally);

        for (i, j) in candidates(&ws).into_iter().enumerate() {
            let Outcome::Done(outcome) = session.check_bounded(&j, &budget()) else {
                continue; // budget-tripped hard candidates have no verdict to certify
            };
            let cert = session.certify(&j, &outcome);
            let text = render_certificate(&ws.schema, &ws.instance, &ws.priority, &cert);
            exercise(&format!("{name}/candidate{i}"), &text, &mut tally);
        }
    }

    assert!(tally.genuine >= 30, "corpus too small: {} certificates", tally.genuine);
    for verdict in ["optimal", "improvable", "inconsistent"] {
        assert!(
            tally.verdicts.get(verdict).copied().unwrap_or(0) > 0,
            "corpus never produced an {verdict} verdict: {:?}",
            tally.verdicts
        );
    }
    for (op, _) in CORRUPTIONS {
        assert!(
            tally.applied.get(op).copied().unwrap_or(0) > 0,
            "corruption {op} never applied: {:?}",
            tally.applied
        );
    }
}
