//! Differential property test: `json_slice::parse_workspace_raw` (the
//! zero-copy serve path, fed a JSON-escaped `workspace` field) must
//! agree with the plain text parser `parse_workspace` on every input —
//! identical interned workspaces on valid texts, byte-identical
//! diagnostics on malformed ones. The JSON wrapper is built with
//! deliberately varied escapes (`\n`, `\t`, `\uXXXX`…) so the
//! owned-unescape path is exercised, not just the borrowed fast path.

use proptest::prelude::*;
use rpr_format::{
    parse_workspace, parse_workspace_raw, render_workspace, scan_object, workspace_fingerprint,
    SliceValue,
};

/// JSON-escapes `text`, escaping more aggressively as `style` grows:
/// style 0 uses the shortest escapes, style 1 escapes tabs/newlines as
/// `\uXXXX`, style 2 additionally `\uXXXX`-escapes ASCII letters ending
/// in an odd nibble — all decode to the same bytes, through different
/// unescape paths.
fn json_escape(text: &str, style: u8) -> String {
    let mut out = String::with_capacity(text.len() + 16);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' if style == 0 => out.push_str("\\n"),
            '\t' if style == 0 => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if style == 2 && c.is_ascii_alphabetic() && (c as u32) % 2 == 1 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs both parsers on the same text (one via the JSON-escaped raw
/// path) and asserts equivalence of results or of diagnostics.
fn assert_parsers_agree(text: &str, style: u8) {
    let body = format!("{{\"workspace\":{}}}", json_escape(text, style));
    let mut raw_result = None;
    let is_obj = scan_object(&body, |key, value| {
        if key.is("workspace") {
            if let SliceValue::Str(raw) = value {
                raw_result = Some(parse_workspace_raw(&raw));
            }
        }
    })
    .expect("wrapper JSON is well-formed");
    assert!(is_obj);
    let raw_result = raw_result.expect("workspace field was scanned");
    let dom_result = parse_workspace(text);

    match (raw_result, dom_result) {
        (Ok(raw_ws), Ok(dom_ws)) => {
            assert_eq!(render_workspace(&raw_ws), render_workspace(&dom_ws));
            assert_eq!(workspace_fingerprint(&raw_ws), workspace_fingerprint(&dom_ws));
            assert_eq!(raw_ws.mode, dom_ws.mode);
            assert_eq!(raw_ws.repairs, dom_ws.repairs);
        }
        (Err(raw_err), Err(dom_err)) => {
            assert_eq!(raw_err.to_string(), dom_err.to_string());
        }
        (raw, dom) => {
            panic!("parsers disagree on validity: raw={raw:?} dom={dom:?}\ntext: {text}");
        }
    }
}

/// A generated workspace text: mostly valid lines with occasional junk
/// so both the success and the diagnostic paths are covered.
fn workspace_text() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..8),
        proptest::collection::vec(any::<bool>(), 8),
        any::<u64>(),
        0usize..12,
    )
        .prop_map(|(rows, in_repair, bits, twist)| {
            let mut text = String::from(
                "# generated: tabs\tand unicode … exercise escapes\nrelation R/3\nfd R: 1 -> 2\n",
            );
            if bits & 1 == 1 {
                text.push_str("fd R: 2 -> 3\n");
            }
            for (a, b, c) in &rows {
                text.push_str(&format!("fact R({a}, {b}, {c})\n"));
            }
            // Prefer edges between facts sharing the first column (FD
            // 1→2 conflicts when the second differs).
            for pair in rows.windows(2) {
                let ((a1, b1, c1), (a2, b2, c2)) = (pair[0], pair[1]);
                if a1 == a2 && b1 != b2 && bits & 2 == 2 {
                    text.push_str(&format!("prefer R({a1}, {b1}, {c1}) > R({a2}, {b2}, {c2})\n"));
                    break;
                }
            }
            let members: Vec<String> = rows
                .iter()
                .zip(&in_repair)
                .filter(|(_, keep)| **keep)
                .map(|((a, b, c), _)| format!("R({a}, {b}, {c})"))
                .collect();
            if !members.is_empty() {
                text.push_str(&format!("repair J: {}\n", members.join("; ")));
            }
            // A twist makes some cases malformed, with the error
            // surfaced at different line numbers.
            match twist {
                0 => text.push_str("relation R/3\n"),      // duplicate relation
                1 => text.push_str("fd Q: 1 -> 2\n"),      // unknown relation
                2 => text.push_str("fact R(a, b)\n"),      // arity mismatch
                3 => text.push_str("prefer R(0, 0, 0)\n"), // missing `>`
                4 => text.push_str("fd R: 9 -> 2\n"),      // attribute out of range
                5 => text.push_str("repair K: R(9, 9, 9)\n"), // undeclared fact
                6 => text.push_str("nonsense line\n"),
                _ => {}
            }
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn raw_and_dom_parsers_agree(text in workspace_text(), style in 0u8..3) {
        assert_parsers_agree(&text, style);
    }

    #[test]
    fn truncations_yield_identical_diagnostics(text in workspace_text(), cut in any::<u16>()) {
        // Truncate at an arbitrary char boundary: both parsers must
        // fail (or succeed) identically on the prefix.
        let mut cut = (cut as usize) % (text.len() + 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_parsers_agree(&text[..cut], 0);
    }
}
