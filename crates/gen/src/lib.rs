//! # rpr-gen — workload generation
//!
//! Everything the tests, examples and benchmarks feed to the checkers:
//!
//! * [`running_example`] — Figure 1, the Example 2.3 priority, and the
//!   `J1..J4` subinstances of Example 2.5, with named fact handles;
//! * [`schemas`] — the full named schema corpus of the paper (the
//!   running example, Example 3.3, the six hard schemas `S1..S6`, the
//!   ccp-hard `Sa..Sd`) plus parametric and random schema builders;
//! * [`synthetic`] — seeded random instances with tunable conflict
//!   density, random acyclic priorities (conflict-restricted and ccp),
//!   and random repairs.

#![warn(missing_docs)]

pub mod feeds;
pub mod running_example;
pub mod schemas;
pub mod synthetic;

pub use feeds::{simulate_feed, trust_then_recency_priority, Feed, FeedSpec, SourceSpec};
pub use running_example::{Facts, RunningExample};
pub use schemas::{
    ccp_hard_schema, example_3_3_schema, hard_schema, random_schema, running_example_schema,
    single_fd_schema, two_keys_schema,
};
pub use synthetic::{
    chain_components, random_ccp_priority, random_conflict_priority, random_instance,
    random_repair, InstanceSpec,
};
