//! Named schema corpus: every concrete schema the paper mentions, plus
//! random schema generation for classifier benchmarks.

use rand::Rng;
use rpr_data::{AttrSet, RelId, Signature};
use rpr_fd::{Fd, Schema};

/// The running-example schema (Examples 2.1/2.2):
/// `BookLoc(isbn, genre, lib)` with `1→2`, `LibLoc(lib, loc)` with
/// `{1→2, 2→1}`.
pub fn running_example_schema() -> Schema {
    let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
    Schema::from_named(
        sig,
        [
            ("BookLoc", &[1][..], &[2][..]),
            ("LibLoc", &[1][..], &[2][..]),
            ("LibLoc", &[2][..], &[1][..]),
        ],
    )
    .unwrap()
}

/// The schema of Example 3.3: `R/3` with `1→2`; `S/3` with no FDs;
/// `T/4` with `{1→{2,3,4}, {2,3}→1}`.
pub fn example_3_3_schema() -> Schema {
    let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
    Schema::from_named(
        sig,
        [("R", &[1][..], &[2][..]), ("T", &[1][..], &[2, 3, 4][..]), ("T", &[2, 3][..], &[1][..])],
    )
    .unwrap()
}

/// The six hard schemas of Example 3.4, `S1 … S6`, each a single
/// ternary relation `R1 … R6`.
///
/// # Panics
/// Panics unless `1 ≤ i ≤ 6`.
pub fn hard_schema(i: usize) -> Schema {
    let name = ["R1", "R2", "R3", "R4", "R5", "R6"][i - 1];
    let sig = Signature::new([(name, 3)]).unwrap();
    let fds: &[(&[usize], &[usize])] = match i {
        1 => &[(&[1, 2], &[3]), (&[1, 3], &[2]), (&[2, 3], &[1])],
        2 => &[(&[1], &[2]), (&[2], &[1])],
        3 => &[(&[1, 2], &[3]), (&[3], &[2])],
        4 => &[(&[1], &[2]), (&[2], &[3])],
        5 => &[(&[1], &[3]), (&[2], &[3])],
        6 => &[(&[], &[1]), (&[2], &[3])],
        _ => panic!("hard schemas are S1..S6"),
    };
    let named: Vec<(&str, &[usize], &[usize])> = fds.iter().map(|&(l, r)| (name, l, r)).collect();
    Schema::from_named(sig, named).unwrap()
}

/// The §7.3 ccp hard schemas `Sa … Sd` (`x ∈ {'a','b','c','d'}`):
/// * `Sa`: `R/2` with `1→2` and `S/2` with `∅→1`;
/// * `Sb`: one ternary relation with `{1→2}`;
/// * `Sc`: one ternary relation with `{1→2, ∅→3}`;
/// * `Sd`: one binary relation with `{1→2, 2→1}`.
///
/// # Panics
/// Panics on other letters.
pub fn ccp_hard_schema(x: char) -> Schema {
    match x {
        'a' => {
            let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
            Schema::from_named(sig, [("R", &[1][..], &[2][..]), ("S", &[][..], &[1][..])]).unwrap()
        }
        'b' => {
            let sig = Signature::new([("R", 3)]).unwrap();
            Schema::from_named(sig, [("R", &[1][..], &[2][..])]).unwrap()
        }
        'c' => {
            let sig = Signature::new([("R", 3)]).unwrap();
            Schema::from_named(sig, [("R", &[1][..], &[2][..]), ("R", &[][..], &[3][..])]).unwrap()
        }
        'd' => {
            let sig = Signature::new([("R", 2)]).unwrap();
            Schema::from_named(sig, [("R", &[1][..], &[2][..]), ("R", &[2][..], &[1][..])]).unwrap()
        }
        other => panic!("ccp hard schemas are Sa..Sd, got S{other}"),
    }
}

/// A single-relation schema with one FD `A → B` (the `GRepCheck1FD`
/// workload).
pub fn single_fd_schema(arity: usize, lhs: &[usize], rhs: &[usize]) -> Schema {
    let sig = Signature::new([("R", arity)]).unwrap();
    Schema::from_named(sig, [("R", lhs, rhs)]).unwrap()
}

/// A single-relation schema with two key constraints (the
/// `GRepCheck2Keys` workload).
pub fn two_keys_schema(arity: usize, key1: &[usize], key2: &[usize]) -> Schema {
    let sig = Signature::new([("R", arity)]).unwrap();
    let full: Vec<usize> = (1..=arity).collect();
    Schema::from_named(sig, [("R", key1, &full[..]), ("R", key2, &full[..])]).unwrap()
}

/// A random single-relation schema: `n_fds` FDs with lhs/rhs drawn
/// uniformly from the non-full subsets (sizes ≤ `max_side`). Used by
/// the classifier benchmarks and the classifier-vs-oracle differential
/// experiment.
pub fn random_schema<R: Rng>(rng: &mut R, arity: usize, n_fds: usize, max_side: usize) -> Schema {
    let sig = Signature::new([("R", arity)]).unwrap();
    let rel = RelId(0);
    let mut fds = Vec::with_capacity(n_fds);
    for _ in 0..n_fds {
        let lhs_size = rng.random_range(0..=max_side.min(arity));
        let rhs_size = rng.random_range(1..=max_side.min(arity));
        let lhs = random_attrs(rng, arity, lhs_size);
        let rhs = random_attrs(rng, arity, rhs_size);
        fds.push(Fd::new(rel, lhs, rhs));
    }
    Schema::new(sig, fds).unwrap()
}

fn random_attrs<R: Rng>(rng: &mut R, arity: usize, size: usize) -> AttrSet {
    let mut s = AttrSet::EMPTY;
    while s.len() < size {
        s = s.insert(rng.random_range(1..=arity));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpr_classify::{classify_schema, classify_schema_ccp, Complexity};

    #[test]
    fn corpus_classifications_match_the_paper() {
        assert_eq!(
            classify_schema(&running_example_schema()).complexity(),
            Complexity::PolynomialTime
        );
        assert_eq!(classify_schema(&example_3_3_schema()).complexity(), Complexity::PolynomialTime);
        for i in 1..=6 {
            assert_eq!(
                classify_schema(&hard_schema(i)).complexity(),
                Complexity::ConpComplete,
                "S{i}"
            );
        }
        for x in ['a', 'b', 'c', 'd'] {
            assert_eq!(
                classify_schema_ccp(&ccp_hard_schema(x)).complexity(),
                Complexity::ConpComplete,
                "S{x}"
            );
        }
    }

    #[test]
    fn workload_schema_builders() {
        let s = single_fd_schema(3, &[1], &[2]);
        assert_eq!(s.fds().len(), 1);
        let t = two_keys_schema(3, &[1], &[2]);
        assert_eq!(t.fds().len(), 2);
        assert!(t.fds().iter().all(|fd| fd.is_key_constraint(3)));
    }

    #[test]
    fn random_schemas_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let s = random_schema(&mut rng, 4, 3, 2);
            assert_eq!(s.signature().len(), 1);
            for fd in s.fds() {
                assert!(fd.fits_arity(4));
            }
            // Classification must never panic.
            let _ = classify_schema(&s);
            let _ = classify_schema_ccp(&s);
        }
    }
}
