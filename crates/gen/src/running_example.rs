//! The paper's running example: the library database of Figure 1, the
//! priority of Example 2.3, and the four subinstances of Example 2.5.
//!
//! Fact names follow the paper's mnemonic encoding (`g1f1` = a `g`-fact
//! for book `b1`, genre `fiction`, library `lib1`; `d1a` = a `d`-fact
//! for `lib1`/`almaden`, …). The priority is `g_y ≻ f_x` and
//! `e_y ≻ d_x` for conflicting pairs.
//!
//! **Fidelity note.** Example 2.5 as printed lists `J3` with exactly the
//! facts of `J1`, while claiming `J1` has a Pareto improvement and `J3`
//! has none — which no single priority can satisfy. We expose the
//! printed sets verbatim; the claims that are mutually consistent
//! (`J2` improves `J1` Pareto-wise, `J2` is globally optimal, `J4` is a
//! global but not Pareto improvement of `J3`, `J3` is not globally
//! optimal) all hold and are verified in tests and the experiment
//! harness; the lone "J3 is Pareto-optimal" claim holds under the
//! variant priority without the two `g2a` edges, which
//! [`RunningExample::priority_without_g2a_edges`] provides.

use rpr_data::{FactId, FactSet, Instance, Signature, Value};
use rpr_fd::Schema;
use rpr_priority::{PrioritizedInstance, PriorityRelation};

/// The assembled running example.
pub struct RunningExample {
    /// The schema of Example 2.2.
    pub schema: Schema,
    /// The instance of Figure 1.
    pub instance: Instance,
    /// The priority of Example 2.3.
    pub priority: PriorityRelation,
}

/// The named facts of Figure 1, as ids into
/// [`RunningExample::instance`].
#[allow(missing_docs)]
#[derive(Clone, Copy)]
pub struct Facts {
    pub g1f1: FactId,
    pub g1f2: FactId,
    pub f1d3: FactId,
    pub f2p1: FactId,
    pub h3h2: FactId,
    pub d1a: FactId,
    pub d1e: FactId,
    pub g2a: FactId,
    pub f2b: FactId,
    pub f3a: FactId,
    pub f3c: FactId,
    pub e1b: FactId,
    pub e3b: FactId,
}

impl RunningExample {
    /// Builds the example.
    pub fn new() -> Self {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [
                ("BookLoc", &[1][..], &[2][..]), // δ1
                ("LibLoc", &[1][..], &[2][..]),  // δ2
                ("LibLoc", &[2][..], &[1][..]),  // δ3
            ],
        )
        .expect("running-example schema is well-formed");

        let mut instance = Instance::new(sig);
        let v = Value::sym;
        for (a, b, c) in [
            ("b1", "fiction", "lib1"),
            ("b1", "fiction", "lib2"),
            ("b1", "drama", "lib3"),
            ("b2", "poetry", "lib1"),
            ("b3", "horror", "lib2"),
        ] {
            instance.insert_named("BookLoc", [v(a), v(b), v(c)]).expect("BookLoc fact");
        }
        for (a, b) in [
            ("lib1", "almaden"),
            ("lib1", "edenvale"),
            ("lib2", "almaden"),
            ("lib2", "bascom"),
            ("lib3", "almaden"),
            ("lib3", "cambrian"),
            ("lib1", "bascom"),
            ("lib3", "bascom"),
        ] {
            instance.insert_named("LibLoc", [v(a), v(b)]).expect("LibLoc fact");
        }

        // Example 2.3: g_y ≻ f_x and e_y ≻ d_x on conflicting pairs.
        let f = Self::fact_ids();
        let priority = PriorityRelation::new(
            instance.len(),
            [
                (f.g1f1, f.f1d3), // g ≻ f in BookLoc (book b1)
                (f.g1f2, f.f1d3),
                (f.g2a, f.f2b), // g ≻ f in LibLoc (lib2)
                (f.g2a, f.f3a), // g ≻ f in LibLoc (almaden)
                (f.e1b, f.d1a), // e ≻ d in LibLoc (lib1)
                (f.e1b, f.d1e),
            ],
        )
        .expect("example priority is acyclic");

        RunningExample { schema, instance, priority }
    }

    /// The named fact ids (stable: insertion order above).
    pub fn fact_ids() -> Facts {
        Facts {
            g1f1: FactId(0),
            g1f2: FactId(1),
            f1d3: FactId(2),
            f2p1: FactId(3),
            h3h2: FactId(4),
            d1a: FactId(5),
            d1e: FactId(6),
            g2a: FactId(7),
            f2b: FactId(8),
            f3a: FactId(9),
            f3c: FactId(10),
            e1b: FactId(11),
            e3b: FactId(12),
        }
    }

    /// Wraps the example as a validated conflict-restricted
    /// prioritizing instance.
    pub fn prioritized(&self) -> PrioritizedInstance {
        PrioritizedInstance::conflict_restricted(
            &self.schema,
            self.instance.clone(),
            self.priority.clone(),
        )
        .expect("Example 2.3 priority is conflict-restricted")
    }

    /// `J1` of Example 2.5: `{g1f1, g1f2, f2p1, h3h2, d1e, f2b, f3a}`.
    pub fn j1(&self) -> FactSet {
        let f = Self::fact_ids();
        self.instance.set_of([f.g1f1, f.g1f2, f.f2p1, f.h3h2, f.d1e, f.f2b, f.f3a])
    }

    /// `J2` of Example 2.5: `{g1f1, g1f2, f2p1, h3h2, d1e, g2a, e3b}`.
    pub fn j2(&self) -> FactSet {
        let f = Self::fact_ids();
        self.instance.set_of([f.g1f1, f.g1f2, f.f2p1, f.h3h2, f.d1e, f.g2a, f.e3b])
    }

    /// `J3` of Example 2.5, as printed (the same facts as `J1` — see
    /// the module-level fidelity note).
    pub fn j3(&self) -> FactSet {
        self.j1()
    }

    /// `J4` of Example 2.5: `{g1f1, g1f2, f2p1, h3h2, e1b, g2a, f3c}`.
    pub fn j4(&self) -> FactSet {
        let f = Self::fact_ids();
        self.instance.set_of([f.g1f1, f.g1f2, f.f2p1, f.h3h2, f.e1b, f.g2a, f.f3c])
    }

    /// The Example 2.3 priority *without* the two `g2a ≻ …` edges —
    /// the variant under which the printed "J3 is Pareto-optimal"
    /// claim holds (see the module docs).
    pub fn priority_without_g2a_edges(&self) -> PriorityRelation {
        let f = Self::fact_ids();
        PriorityRelation::new(
            self.instance.len(),
            [(f.g1f1, f.f1d3), (f.g1f2, f.f1d3), (f.e1b, f.d1a), (f.e1b, f.d1e)],
        )
        .expect("variant priority is acyclic")
    }
}

impl Default for RunningExample {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_fd::ConflictGraph;

    #[test]
    fn figure_1_shape() {
        let ex = RunningExample::new();
        assert_eq!(ex.instance.len(), 13);
        let b = ex.schema.signature().rel_id("BookLoc").unwrap();
        let l = ex.schema.signature().rel_id("LibLoc").unwrap();
        assert_eq!(ex.instance.facts_of(b).len(), 5);
        assert_eq!(ex.instance.facts_of(l).len(), 8);
        // The instance is inconsistent, as the paper requires.
        assert!(!ex.schema.is_consistent(&ex.instance));
    }

    #[test]
    fn example_2_2_conflicts_present() {
        let ex = RunningExample::new();
        let f = RunningExample::fact_ids();
        let cg = ConflictGraph::new(&ex.schema, &ex.instance);
        // {g1f1, f1d3} is a δ1-conflict, {d1a, d1e} a δ2-conflict,
        // {d1a, g2a} a δ3-conflict.
        assert!(cg.conflicting(f.g1f1, f.f1d3));
        assert!(cg.conflicting(f.d1a, f.d1e));
        assert!(cg.conflicting(f.d1a, f.g2a));
        assert!(!cg.conflicting(f.g1f1, f.d1a));
    }

    #[test]
    fn example_2_3_priority_is_legal() {
        let ex = RunningExample::new();
        // Conflict-restricted validation must succeed.
        let _ = ex.prioritized();
        assert_eq!(ex.priority.edge_count(), 6);
    }

    #[test]
    fn example_2_5_sets_are_repairs() {
        let ex = RunningExample::new();
        let cg = ConflictGraph::new(&ex.schema, &ex.instance);
        for (name, j) in [("J1", ex.j1()), ("J2", ex.j2()), ("J3", ex.j3()), ("J4", ex.j4())] {
            assert!(cg.is_repair(&j), "{name} must be a repair");
            assert_eq!(j.len(), 7, "{name} has 7 facts");
        }
    }
}
