//! Multi-source feed simulation with ground truth.
//!
//! The paper's motivating scenario (§1): several sources report facts
//! about the same entities; sources differ in reliability, and newer
//! reports supersede older ones. This generator synthesizes such a
//! feed *together with the ground truth*, so experiments can measure
//! how much of the truth a cleaning strategy recovers — the
//! quantitative version of "preferences pick the right repair".
//!
//! Schema: `Record(entity, value, source, ts)` with the key
//! `entity → value source ts`. Each source reports each entity with
//! some probability; a report carries the true value unless the source
//! errs (per-source error rate), and error values are drawn from a
//! noise pool. Timestamps are per-report; the latest correct report
//! semantics make "prefer trusted sources, then newer" a sensible
//! policy.

use rand::Rng;
use rpr_data::{FactId, Instance, Signature, Value};
use rpr_fd::Schema;

/// One simulated source.
#[derive(Clone, Debug)]
pub struct SourceSpec {
    /// Source name (becomes the third column).
    pub name: String,
    /// Probability that the source reports a given entity.
    pub coverage: f64,
    /// Probability that a report carries a wrong value.
    pub error_rate: f64,
}

/// Parameters for [`simulate_feed`].
#[derive(Clone, Debug)]
pub struct FeedSpec {
    /// Number of entities.
    pub entities: usize,
    /// The sources, in an arbitrary order (reliability is implied by
    /// their error rates, not their position).
    pub sources: Vec<SourceSpec>,
}

/// The simulated feed.
pub struct Feed {
    /// The schema `Record(entity, value, source, ts)` with key 1.
    pub schema: Schema,
    /// The dirty instance.
    pub instance: Instance,
    /// Ground truth: `truth[e]` is the true value of entity `e`.
    pub truth: Vec<Value>,
}

impl Feed {
    /// The fraction of entities whose surviving record in `repair`
    /// carries the true value (entities with no surviving record count
    /// as misses).
    pub fn accuracy(&self, repair: &rpr_data::FactSet) -> f64 {
        let mut hit = 0usize;
        for id in repair.iter() {
            let fact = self.instance.fact(id);
            let e = fact.get(1).as_int().expect("entity ids are ints") as usize;
            if fact.get(2) == &self.truth[e] {
                hit += 1;
            }
        }
        hit as f64 / self.truth.len() as f64
    }
}

/// Simulates a feed.
///
/// # Panics
/// Panics if `spec.sources` is empty or `spec.entities` is zero.
pub fn simulate_feed<R: Rng>(spec: &FeedSpec, rng: &mut R) -> Feed {
    assert!(!spec.sources.is_empty(), "need at least one source");
    assert!(spec.entities > 0, "need at least one entity");
    let sig = Signature::new([("Record", 4)]).unwrap();
    let schema = Schema::from_named(sig.clone(), [("Record", &[1][..], &[2, 3, 4][..])]).unwrap();
    let mut instance = Instance::new(sig);
    let mut truth = Vec::with_capacity(spec.entities);
    let mut ts = 0i64;
    for e in 0..spec.entities {
        let true_value = Value::Int(1000 + e as i64);
        truth.push(true_value.clone());
        for src in &spec.sources {
            if !rng.random_bool(src.coverage) {
                continue;
            }
            ts += 1;
            let value = if rng.random_bool(src.error_rate) {
                Value::Int(9_000_000 + rng.random_range(0..1000i64))
            } else {
                true_value.clone()
            };
            instance
                .insert_named(
                    "Record",
                    [Value::Int(e as i64), value, Value::sym(&src.name), Value::Int(ts)],
                )
                .expect("record fits schema");
        }
    }
    Feed { schema, instance, truth }
}

/// Convenience: priority edges implementing "rank sources by the given
/// order, break ties by recency", restricted to conflicts. (The richer
/// policy DSL lives in `rpr-policy`; this helper keeps `rpr-gen`
/// dependency-light for the benches.)
pub fn trust_then_recency_priority(
    feed: &Feed,
    source_order: &[&str],
) -> rpr_priority::PriorityRelation {
    let rank = |f: &rpr_data::Fact| -> (i64, i64) {
        let src = f.get(3).as_sym().unwrap_or("");
        let r = source_order
            .iter()
            .position(|s| *s == src)
            .map(|p| source_order.len() as i64 - p as i64)
            .unwrap_or(0);
        let ts = f.get(4).as_int().unwrap_or(0);
        (r, ts)
    };
    let cg = rpr_fd::ConflictGraph::new(&feed.schema, &feed.instance);
    let mut edges: Vec<(FactId, FactId)> = Vec::new();
    for (a, b) in cg.edges() {
        let (ra, rb) = (rank(feed.instance.fact(a)), rank(feed.instance.fact(b)));
        match ra.cmp(&rb) {
            std::cmp::Ordering::Greater => edges.push((a, b)),
            std::cmp::Ordering::Less => edges.push((b, a)),
            std::cmp::Ordering::Equal => {}
        }
    }
    rpr_priority::PriorityRelation::new(feed.instance.len(), edges)
        .expect("rank-oriented edges are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> FeedSpec {
        FeedSpec {
            entities: 40,
            sources: vec![
                SourceSpec { name: "gold".into(), coverage: 0.9, error_rate: 0.02 },
                SourceSpec { name: "bulk".into(), coverage: 0.8, error_rate: 0.30 },
                SourceSpec { name: "scrape".into(), coverage: 0.7, error_rate: 0.60 },
            ],
        }
    }

    #[test]
    fn feed_shape_and_conflicts() {
        let mut rng = StdRng::seed_from_u64(70);
        let feed = simulate_feed(&spec(), &mut rng);
        assert_eq!(feed.truth.len(), 40);
        assert!(feed.instance.len() > 40, "multiple reports per entity expected");
        // Entities reported by ≥2 sources conflict (same key, different
        // source/ts at least).
        let cg = rpr_fd::ConflictGraph::new(&feed.schema, &feed.instance);
        assert!(!cg.edges().is_empty());
    }

    #[test]
    fn trusted_policy_beats_random_repairs_on_accuracy() {
        let mut rng = StdRng::seed_from_u64(71);
        let feed = simulate_feed(&spec(), &mut rng);
        let cg = rpr_fd::ConflictGraph::new(&feed.schema, &feed.instance);
        let priority = trust_then_recency_priority(&feed, &["gold", "bulk", "scrape"]);
        // Clean with the policy priority.
        let order = priority.topological_order();
        let mut cleaned = feed.instance.empty_set();
        for f in order {
            if !cg.conflicts_with_set(f, &cleaned) {
                cleaned.insert(f);
            }
        }
        let policy_acc = feed.accuracy(&cleaned);
        // Average accuracy of random repairs.
        let mut rand_acc = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let r = crate::synthetic::random_repair(&cg, &mut rng);
            rand_acc += feed.accuracy(&r);
        }
        rand_acc /= trials as f64;
        assert!(
            policy_acc > rand_acc + 0.05,
            "policy accuracy {policy_acc:.2} should clearly beat random {rand_acc:.2}"
        );
        assert!(policy_acc > 0.8, "gold-first cleaning should be mostly right");
    }

    #[test]
    fn accuracy_of_ground_truth_selection_is_high() {
        // Selecting exactly the true-valued facts (one per entity where
        // available) scores the coverage-weighted maximum.
        let mut rng = StdRng::seed_from_u64(72);
        let feed = simulate_feed(&spec(), &mut rng);
        let mut best = feed.instance.empty_set();
        let mut seen = vec![false; feed.truth.len()];
        for (id, fact) in feed.instance.iter() {
            let e = fact.get(1).as_int().unwrap() as usize;
            if !seen[e] && fact.get(2) == &feed.truth[e] {
                best.insert(id);
                seen[e] = true;
            }
        }
        let acc = feed.accuracy(&best);
        assert!(acc > 0.85);
        // And it bounds the policy accuracy from above structurally:
        // accuracy never exceeds 1.
        assert!(acc <= 1.0);
    }

    #[test]
    fn determinism_per_seed() {
        let a = simulate_feed(&spec(), &mut StdRng::seed_from_u64(99));
        let b = simulate_feed(&spec(), &mut StdRng::seed_from_u64(99));
        assert_eq!(a.instance.len(), b.instance.len());
    }
}
