//! Synthetic workload generation: random instances with tunable
//! conflict structure, random acyclic priorities (conflict-restricted
//! and cross-conflict), and random repairs.
//!
//! The generators are deliberately simple and fully seeded: every
//! experiment in the harness records its seed, so all reported numbers
//! are reproducible.

use rand::Rng;
use rpr_data::{FactId, FactSet, Instance, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::PriorityRelation;

/// Parameters for random instance generation.
#[derive(Clone, Copy, Debug)]
pub struct InstanceSpec {
    /// Facts to generate per relation.
    pub facts_per_relation: usize,
    /// Domain size per attribute: values are drawn uniformly from
    /// `0..domain`. Smaller domains ⇒ more collisions ⇒ more conflicts.
    pub domain: u32,
}

/// Generates a random instance over the schema's signature.
///
/// Duplicates are deduplicated by the instance, so the actual size may
/// be slightly below `facts_per_relation × #relations` for tiny
/// domains.
pub fn random_instance<R: Rng>(schema: &Schema, spec: InstanceSpec, rng: &mut R) -> Instance {
    let sig = schema.signature();
    let mut instance = Instance::new(sig.clone());
    for rel in sig.rel_ids() {
        let arity = sig.arity(rel);
        for _ in 0..spec.facts_per_relation {
            let values: Vec<Value> =
                (0..arity).map(|_| Value::Int(rng.random_range(0..spec.domain) as i64)).collect();
            let fact = rpr_data::Fact::new(sig, rel, rpr_data::Tuple::new(values))
                .expect("generated tuple fits arity");
            instance.insert(fact);
        }
    }
    instance
}

/// Generates a random acyclic **conflict-restricted** priority: each
/// conflicting pair is oriented (from a hidden random total order) with
/// probability `density`.
pub fn random_conflict_priority<R: Rng>(
    cg: &ConflictGraph,
    density: f64,
    rng: &mut R,
) -> PriorityRelation {
    let rank = random_ranks(cg.len(), rng);
    let mut edges = Vec::new();
    for (a, b) in cg.edges() {
        if rng.random_bool(density) {
            edges.push(orient(a, b, &rank));
        }
    }
    PriorityRelation::new(cg.len(), edges).expect("rank-oriented edges are acyclic")
}

/// Generates a random acyclic **cross-conflict** priority: conflict
/// pairs as above, plus `extra_cross` uniformly random (possibly
/// non-conflicting) pairs, all oriented by a hidden total order.
pub fn random_ccp_priority<R: Rng>(
    cg: &ConflictGraph,
    density: f64,
    extra_cross: usize,
    rng: &mut R,
) -> PriorityRelation {
    let n = cg.len();
    let rank = random_ranks(n, rng);
    let mut edges = Vec::new();
    for (a, b) in cg.edges() {
        if rng.random_bool(density) {
            edges.push(orient(a, b, &rank));
        }
    }
    if n >= 2 {
        for _ in 0..extra_cross {
            let a = FactId(rng.random_range(0..n as u32));
            let b = FactId(rng.random_range(0..n as u32));
            if a != b {
                edges.push(orient(a, b, &rank));
            }
        }
    }
    PriorityRelation::new(n, edges).expect("rank-oriented edges are acyclic")
}

fn random_ranks<R: Rng>(n: usize, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.random()).collect()
}

fn orient(a: FactId, b: FactId, rank: &[u64]) -> (FactId, FactId) {
    // Break rank ties by id so the orientation is always antisymmetric.
    let key = |f: FactId| (rank[f.index()], f.0);
    if key(a) > key(b) {
        (a, b)
    } else {
        (b, a)
    }
}

/// Builds the deterministic chain-component workload: `components`
/// disjoint conflict *chains* (paths) of `size` facts each over the
/// hard schema S4 = {1→2, 2→3}.
///
/// Within a chain, facts `2t` and `2t+1` share the first attribute
/// (conflict under 1→2) and facts `2t+1` and `2t+2` share the second
/// with distinct third attributes (conflict under 2→3); all values are
/// namespaced per chain, so the conflict graph is exactly `components`
/// path components. A path of `m` facts has `Fib(m+2)` maximal
/// independent sets, so per-component exact search stays exponential
/// in `size` while the instance itself only grows linearly — the knob
/// for session-sharding experiments (`components` ⇒ available
/// parallelism and shard-reuse granularity, `size` ⇒ per-shard cost).
///
/// Fact ids are contiguous per chain (`k*size..(k+1)*size`); the
/// even-offset facts of every chain together form a repair.
pub fn chain_components(components: usize, size: usize) -> (Schema, Instance) {
    let schema = crate::schemas::hard_schema(4);
    let sig = schema.signature().clone();
    let name = sig.iter().next().expect("S4 has one relation").1.name().to_owned();
    let mut instance = Instance::new(sig);
    for k in 0..components {
        for i in 0..size {
            instance
                .insert_named(
                    &name,
                    [
                        Value::sym(format!("a{k}_{}", i / 2)),
                        Value::sym(format!("b{k}_{}", i.div_ceil(2))),
                        Value::sym(format!("c{k}_{i}")),
                    ],
                )
                .expect("chain tuples are ternary");
        }
    }
    (schema, instance)
}

/// Draws a random repair: greedy completion over a random fact order.
pub fn random_repair<R: Rng>(cg: &ConflictGraph, rng: &mut R) -> FactSet {
    let mut order: Vec<FactId> = (0..cg.len() as u32).map(FactId).collect();
    // Fisher–Yates shuffle.
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut kept = FactSet::empty(cg.len());
    for f in order {
        if !cg.conflicts_with_set(f, &kept) {
            kept.insert(f);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::{single_fd_schema, two_keys_schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_instances_respect_the_signature() {
        let schema = single_fd_schema(3, &[1], &[2]);
        let mut rng = StdRng::seed_from_u64(1);
        let i =
            random_instance(&schema, InstanceSpec { facts_per_relation: 50, domain: 5 }, &mut rng);
        assert!(i.len() <= 50);
        assert!(i.len() > 10, "domain 5^3 = 125 values, few duplicates expected");
    }

    #[test]
    fn small_domains_create_conflicts() {
        let schema = single_fd_schema(2, &[1], &[2]);
        let mut rng = StdRng::seed_from_u64(2);
        let i =
            random_instance(&schema, InstanceSpec { facts_per_relation: 40, domain: 4 }, &mut rng);
        let cg = ConflictGraph::new(&schema, &i);
        assert!(!cg.edges().is_empty());
    }

    #[test]
    fn generated_priorities_are_conflict_restricted_and_acyclic() {
        let schema = two_keys_schema(2, &[1], &[2]);
        let mut rng = StdRng::seed_from_u64(3);
        let i =
            random_instance(&schema, InstanceSpec { facts_per_relation: 30, domain: 6 }, &mut rng);
        let cg = ConflictGraph::new(&schema, &i);
        let p = random_conflict_priority(&cg, 0.8, &mut rng);
        for &(a, b) in p.edges() {
            assert!(cg.conflicting(a, b), "edge must join conflicting facts");
        }
        // Construction would have panicked on a cycle; also sanity-check
        // via topological order.
        assert_eq!(p.topological_order().len(), i.len());
    }

    #[test]
    fn ccp_priorities_may_cross() {
        let schema = single_fd_schema(2, &[1], &[2]);
        let mut rng = StdRng::seed_from_u64(4);
        let i =
            random_instance(&schema, InstanceSpec { facts_per_relation: 30, domain: 4 }, &mut rng);
        let cg = ConflictGraph::new(&schema, &i);
        let p = random_ccp_priority(&cg, 0.5, 40, &mut rng);
        assert!(p.edge_count() > 0);
        assert_eq!(p.topological_order().len(), i.len());
    }

    #[test]
    fn random_repairs_are_repairs() {
        let schema = single_fd_schema(2, &[1], &[2]);
        let mut rng = StdRng::seed_from_u64(5);
        let i =
            random_instance(&schema, InstanceSpec { facts_per_relation: 40, domain: 4 }, &mut rng);
        let cg = ConflictGraph::new(&schema, &i);
        for _ in 0..20 {
            let j = random_repair(&cg, &mut rng);
            assert!(cg.is_repair(&j));
        }
    }

    #[test]
    fn chain_components_are_disjoint_paths() {
        let (schema, i) = chain_components(5, 7);
        assert_eq!(i.len(), 35);
        let cg = ConflictGraph::new(&schema, &i);
        // A path of m facts has exactly m-1 edges; chains are disjoint.
        assert_eq!(cg.edges().len(), 5 * 6);
        let layout = rpr_fd::ComponentLayout::from_csr(&rpr_fd::CsrConflictGraph::from_graph(&cg));
        assert_eq!(layout.nontrivial().len(), 5);
        for &c in layout.nontrivial() {
            assert_eq!(layout.component(c as usize).len(), 7);
        }
        // Even offsets form a maximal independent set of every path.
        let evens = i.fact_ids().filter(|f| f.index() % 7 % 2 == 0).collect::<Vec<_>>();
        let j = i.set_of(evens);
        assert!(cg.is_repair(&j));
    }

    #[test]
    fn determinism_per_seed() {
        let schema = single_fd_schema(2, &[1], &[2]);
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let i = random_instance(
                &schema,
                InstanceSpec { facts_per_relation: 20, domain: 4 },
                &mut rng,
            );
            let cg = ConflictGraph::new(&schema, &i);
            let p = random_conflict_priority(&cg, 0.7, &mut rng);
            (i.len(), p.edges().to_vec())
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }
}
