//! Building priorities from real-world signals.
//!
//! The paper motivates priorities with two scenarios (§1): "one source
//! is regarded to be more reliable than another", and "timestamp
//! information implies that a more recent fact should be preferred over
//! an earlier fact". This module turns such per-fact scores into
//! priority relations, in either mode:
//!
//! * [`from_scores_conflict_restricted`] — orient only conflicting
//!   pairs (the classical §2.3 model);
//! * [`from_scores_ccp`] — orient every strictly-ranked pair (the §7
//!   cross-conflict model, e.g. whole-source trust).
//!
//! Scores orient edges from the strictly higher-scored fact to the
//! lower; ties are left unordered, which keeps the result acyclic by
//! construction. Utilities for transitive closure and conflict
//! restriction round the module out.

use crate::relation::PriorityRelation;
use rpr_data::{FactId, Instance};
use rpr_fd::{ConflictGraph, Schema};

/// Builds a conflict-restricted priority from per-fact scores (higher
/// score = preferred): `f ≻ g` iff `f` and `g` conflict and
/// `score(f) > score(g)`.
///
/// # Panics
/// Panics if `scores.len()` differs from the instance size.
pub fn from_scores_conflict_restricted(
    schema: &Schema,
    instance: &Instance,
    scores: &[i64],
) -> PriorityRelation {
    assert_eq!(scores.len(), instance.len(), "one score per fact");
    let cg = ConflictGraph::new(schema, instance);
    let mut edges = Vec::new();
    for (a, b) in cg.edges() {
        match scores[a.index()].cmp(&scores[b.index()]) {
            std::cmp::Ordering::Greater => edges.push((a, b)),
            std::cmp::Ordering::Less => edges.push((b, a)),
            std::cmp::Ordering::Equal => {}
        }
    }
    PriorityRelation::new(instance.len(), edges).expect("score-oriented edges are acyclic")
}

/// Builds a cross-conflict priority from per-fact scores: `f ≻ g` iff
/// `score(f) > score(g)` — every strictly-ranked pair is ordered,
/// conflicting or not (quadratic in the instance size; the §7 model).
///
/// # Panics
/// Panics if `scores.len()` differs from the instance size.
pub fn from_scores_ccp(instance: &Instance, scores: &[i64]) -> PriorityRelation {
    assert_eq!(scores.len(), instance.len(), "one score per fact");
    let n = instance.len();
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if scores[a] > scores[b] {
                edges.push((FactId(a as u32), FactId(b as u32)));
            }
        }
    }
    PriorityRelation::new(n, edges).expect("score-oriented edges are acyclic")
}

/// Timestamp preference: newer facts beat conflicting older facts.
/// (Alias of [`from_scores_conflict_restricted`] with timestamps as
/// scores, named for call-site readability.)
pub fn from_timestamps(
    schema: &Schema,
    instance: &Instance,
    timestamps: &[i64],
) -> PriorityRelation {
    from_scores_conflict_restricted(schema, instance, timestamps)
}

/// Restricts an arbitrary (ccp) priority to its conflicting pairs,
/// yielding a legal classical priority.
pub fn restrict_to_conflicts(
    schema: &Schema,
    instance: &Instance,
    priority: &PriorityRelation,
) -> PriorityRelation {
    let cg = ConflictGraph::new(schema, instance);
    let edges: Vec<(FactId, FactId)> =
        priority.edges().iter().copied().filter(|&(a, b)| cg.conflicting(a, b)).collect();
    PriorityRelation::new(instance.len(), edges)
        .expect("a subset of an acyclic relation is acyclic")
}

/// The transitive closure of a priority (still acyclic; useful when a
/// workload treats `≻` as an order rather than a raw relation).
pub fn transitive_closure(priority: &PriorityRelation) -> PriorityRelation {
    let n = priority.len();
    // DFS from every node over the "worse" adjacency.
    let mut edges = Vec::new();
    for start in 0..n {
        let s = FactId(start as u32);
        let mut seen = vec![false; n];
        let mut stack: Vec<FactId> = priority.worse_than(s).to_vec();
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            edges.push((s, t));
            stack.extend_from_slice(priority.worse_than(t));
        }
    }
    PriorityRelation::new(n, edges).expect("transitive closure of acyclic is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Signature, Value};

    fn setup() -> (Schema, Instance) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        let v = Value::sym;
        i.insert_named("R", [v("a"), v("x")]).unwrap(); // 0
        i.insert_named("R", [v("a"), v("y")]).unwrap(); // 1 (conflicts 0)
        i.insert_named("R", [v("b"), v("z")]).unwrap(); // 2 (conflicts none)
        (schema, i)
    }

    #[test]
    fn timestamps_orient_only_conflicts() {
        let (schema, i) = setup();
        let p = from_timestamps(&schema, &i, &[10, 20, 30]);
        assert!(p.prefers(FactId(1), FactId(0))); // newer conflicting fact wins
        assert!(!p.prefers(FactId(2), FactId(0))); // non-conflicting: unordered
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn ties_stay_unordered() {
        let (schema, i) = setup();
        let p = from_scores_conflict_restricted(&schema, &i, &[5, 5, 5]);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn ccp_scores_order_everything_strictly_ranked() {
        let (_, i) = setup();
        let p = from_scores_ccp(&i, &[2, 1, 1]);
        assert!(p.prefers(FactId(0), FactId(1)));
        assert!(p.prefers(FactId(0), FactId(2)));
        assert!(!p.prefers(FactId(1), FactId(2))); // tie
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn restriction_produces_a_legal_classical_priority() {
        let (schema, i) = setup();
        let ccp = from_scores_ccp(&i, &[3, 2, 1]);
        assert_eq!(ccp.edge_count(), 3);
        let restricted = restrict_to_conflicts(&schema, &i, &ccp);
        assert_eq!(restricted.edge_count(), 1);
        assert!(restricted.prefers(FactId(0), FactId(1)));
        // It validates in conflict-restricted mode.
        let pi = crate::instance::PrioritizedInstance::conflict_restricted(
            &schema,
            i.clone(),
            restricted,
        );
        assert!(pi.is_ok());
    }

    #[test]
    fn transitive_closure_adds_chains_only() {
        let p = PriorityRelation::new(4, [(FactId(0), FactId(1)), (FactId(1), FactId(2))]).unwrap();
        let tc = transitive_closure(&p);
        assert!(tc.prefers(FactId(0), FactId(2)));
        assert!(tc.prefers(FactId(0), FactId(1)));
        assert!(!tc.prefers(FactId(2), FactId(0)));
        assert!(!tc.prefers(FactId(0), FactId(3)));
        assert_eq!(tc.edge_count(), 3);
        // Closure is idempotent.
        assert_eq!(transitive_closure(&tc).edge_count(), 3);
    }
}
