//! Completions of a priority relation.
//!
//! Following Staworko, Chomicki and Marcinkowski [14], a *completion* of
//! a priority `≻` (w.r.t. an instance's conflict graph) is an acyclic
//! priority `≻′ ⊇ ≻` that is **total on conflicts**: for every
//! conflicting pair `{f, g}`, either `f ≻′ g` or `g ≻′ f`. Completions
//! define the completion-optimal repairs that the paper contrasts with
//! globally-optimal ones (§1, §3, §4.1).
//!
//! Enumeration is exponential in the number of unordered conflict pairs;
//! it exists as the *oracle* against which the polynomial
//! completion-optimal checker in `rpr-core` is differential-tested, so
//! every function takes an explicit budget.

use crate::relation::PriorityRelation;
use rpr_data::FactId;
use rpr_fd::ConflictGraph;

/// Error returned when an enumeration exceeds its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The budget that was exhausted.
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enumeration budget of {} exceeded", self.budget)
    }
}

impl std::error::Error for BudgetExceeded {}

/// The unordered conflict pairs not yet ordered by `priority`.
pub fn unordered_conflicts(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
) -> Vec<(FactId, FactId)> {
    cg.edges()
        .into_iter()
        .filter(|&(a, b)| !priority.prefers(a, b) && !priority.prefers(b, a))
        .collect()
}

/// Is `candidate` a completion of `base` w.r.t. the conflict graph?
pub fn is_completion(
    cg: &ConflictGraph,
    base: &PriorityRelation,
    candidate: &PriorityRelation,
) -> bool {
    // Extends the base…
    base.edges().iter().all(|&(f, g)| candidate.prefers(f, g))
        // …and is total on conflicts. (Acyclicity is intrinsic to
        // `PriorityRelation`.)
        && cg
            .edges()
            .into_iter()
            .all(|(a, b)| candidate.prefers(a, b) || candidate.prefers(b, a))
}

/// Enumerates **all** completions of `priority`.
///
/// # Errors
/// [`BudgetExceeded`] if more than `budget` orientation assignments
/// would have to be explored.
pub fn completions(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: usize,
) -> Result<Vec<PriorityRelation>, BudgetExceeded> {
    let free = unordered_conflicts(cg, priority);
    if free.len() >= usize::BITS as usize - 1 || (1usize << free.len()) > budget {
        return Err(BudgetExceeded { budget });
    }
    let mut out = Vec::new();
    let base: Vec<(FactId, FactId)> = priority.edges().to_vec();
    for mask in 0u64..(1u64 << free.len()) {
        let mut edges = base.clone();
        for (i, &(a, b)) in free.iter().enumerate() {
            if mask >> i & 1 == 1 {
                edges.push((a, b));
            } else {
                edges.push((b, a));
            }
        }
        if let Ok(rel) = PriorityRelation::new(priority.len(), edges) {
            out.push(rel);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// Three facts R(a,1), R(a,2), R(a,3) under R:1→2 — a conflict
    /// triangle.
    fn triangle() -> (ConflictGraph, usize) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for x in ["1", "2", "3"] {
            i.insert_named("R", [v("a"), v(x)]).unwrap();
        }
        (ConflictGraph::new(&schema, &i), i.len())
    }

    #[test]
    fn unordered_pairs_shrink_with_priority() {
        let (cg, n) = triangle();
        let empty = PriorityRelation::empty(n);
        assert_eq!(unordered_conflicts(&cg, &empty).len(), 3);
        let p = PriorityRelation::new(n, [(FactId(0), FactId(1))]).unwrap();
        assert_eq!(unordered_conflicts(&cg, &p).len(), 2);
    }

    #[test]
    fn triangle_has_six_completions() {
        // 3 unordered pairs → 8 orientations, of which the 2 cyclic
        // triangles are rejected: 6 completions (the linear orders).
        let (cg, n) = triangle();
        let empty = PriorityRelation::empty(n);
        let all = completions(&cg, &empty, 1 << 20).unwrap();
        assert_eq!(all.len(), 6);
        for c in &all {
            assert!(is_completion(&cg, &empty, c));
        }
    }

    #[test]
    fn completions_respect_base_edges() {
        let (cg, n) = triangle();
        let base = PriorityRelation::new(n, [(FactId(2), FactId(0))]).unwrap();
        let all = completions(&cg, &base, 1 << 20).unwrap();
        // Fixing one edge of the triangle leaves 4 orientations, minus
        // the 1 that closes a cycle: 3 completions.
        assert_eq!(all.len(), 3);
        for c in &all {
            assert!(c.prefers(FactId(2), FactId(0)));
            assert!(is_completion(&cg, &base, c));
        }
    }

    #[test]
    fn is_completion_rejects_partial_orders() {
        let (cg, n) = triangle();
        let empty = PriorityRelation::empty(n);
        let partial = PriorityRelation::new(n, [(FactId(0), FactId(1))]).unwrap();
        assert!(!is_completion(&cg, &empty, &partial));
    }

    #[test]
    fn budget_is_enforced() {
        let (cg, n) = triangle();
        let empty = PriorityRelation::empty(n);
        assert!(matches!(completions(&cg, &empty, 4), Err(BudgetExceeded { budget: 4 })));
    }
}
