//! # rpr-priority — priority relations and prioritizing instances
//!
//! Implements §2.3 and the §7 relaxation of *Dichotomies in the
//! Complexity of Preferred Repairs*:
//!
//! * [`PriorityRelation`] — acyclic binary relations `f ≻ g` over the
//!   facts of an instance, with cycle *witnesses* on rejection;
//! * [`PrioritizedInstance`] — an instance plus a priority, validated
//!   either in the classical conflict-restricted mode (§2.3) or the
//!   cross-conflict (ccp) mode (§7);
//! * [`completion`](crate::completion) — completions of a priority
//!   (total on conflicts), the basis of completion-optimal repairs.

#![warn(missing_docs)]

pub mod completion;
pub mod instance;
pub mod relation;
pub mod sources;

pub use completion::{completions, is_completion, unordered_conflicts, BudgetExceeded};
pub use instance::{PrioritizedInstance, PriorityBuilder, PriorityMode};
pub use relation::{PriorityError, PriorityRelation};
pub use sources::{
    from_scores_ccp, from_scores_conflict_restricted, from_timestamps, restrict_to_conflicts,
    transitive_closure,
};
