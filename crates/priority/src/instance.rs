//! Prioritizing instances (§2.3, §7).
//!
//! The classical model requires every priority edge to join *conflicting*
//! facts; §7 relaxes this to *cross-conflict-prioritizing* (ccp)
//! instances, where any acyclic relation is allowed. The two modes have
//! different dichotomies (Theorem 3.1 vs Theorem 7.1), so the mode is
//! carried in the type and checked at construction.

use crate::relation::{PriorityError, PriorityRelation};
use rpr_data::{Fact, FactId, Instance};
use rpr_fd::Schema;
use std::fmt;

/// Whether priorities are restricted to conflicting facts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PriorityMode {
    /// §2.3: `f ≻ g` only for conflicting `f`, `g`.
    ConflictRestricted,
    /// §7: `f ≻ g` for arbitrary facts (ccp-instances).
    CrossConflict,
}

/// An instance together with a priority relation on its facts.
#[derive(Clone)]
pub struct PrioritizedInstance {
    instance: Instance,
    priority: PriorityRelation,
    mode: PriorityMode,
}

impl PrioritizedInstance {
    /// Builds a classical (conflict-restricted) prioritizing instance,
    /// verifying that every edge joins facts conflicting under `schema`.
    ///
    /// # Errors
    /// [`PriorityError::NotConflicting`] if an edge joins facts that do
    /// not conflict. (Acyclicity was already enforced when `priority`
    /// was built.)
    pub fn conflict_restricted(
        schema: &Schema,
        instance: Instance,
        priority: PriorityRelation,
    ) -> Result<Self, PriorityError> {
        assert_eq!(instance.len(), priority.len(), "priority sized to a different instance");
        for &(f, g) in priority.edges() {
            if !schema.conflicting(instance.fact(f), instance.fact(g)) {
                return Err(PriorityError::NotConflicting(f, g));
            }
        }
        Ok(PrioritizedInstance { instance, priority, mode: PriorityMode::ConflictRestricted })
    }

    /// Builds a ccp-instance (§7): any acyclic priority is legal.
    pub fn cross_conflict(instance: Instance, priority: PriorityRelation) -> Self {
        assert_eq!(instance.len(), priority.len(), "priority sized to a different instance");
        PrioritizedInstance { instance, priority, mode: PriorityMode::CrossConflict }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The priority relation.
    pub fn priority(&self) -> &PriorityRelation {
        &self.priority
    }

    /// The mode this instance was validated under.
    pub fn mode(&self) -> PriorityMode {
        self.mode
    }

    /// Appends a fact, growing the priority universe with it. Returns
    /// the new fact's id (or the existing id if the fact was already
    /// present — callers rejecting duplicates check membership first).
    pub fn insert_fact(&mut self, fact: Fact) -> FactId {
        let id = self.instance.insert(fact);
        self.priority.grow(self.instance.len());
        id
    }

    /// Removes a fact, renumbering ids above it down by one.
    ///
    /// # Panics
    /// Panics if the fact still participates in priority edges — the
    /// delta layer rejects such deletes with a typed error first.
    pub fn remove_fact(&mut self, id: FactId) -> Fact {
        let fact = self.instance.remove_fact(id);
        self.priority.remove_fact(id);
        fact
    }

    /// Adds the priority edge `f ≻ g`, preserving the mode invariant:
    /// in conflict-restricted mode the endpoints must conflict under
    /// `schema`.
    ///
    /// # Errors
    /// [`PriorityError::NotConflicting`], [`PriorityError::Cyclic`], or
    /// [`PriorityError::OutOfRange`]; the instance is unchanged on error.
    pub fn add_edge(&mut self, schema: &Schema, f: FactId, g: FactId) -> Result<(), PriorityError> {
        if f.index() >= self.instance.len() {
            return Err(PriorityError::OutOfRange(f));
        }
        if g.index() >= self.instance.len() {
            return Err(PriorityError::OutOfRange(g));
        }
        if self.mode == PriorityMode::ConflictRestricted
            && !schema.conflicting(self.instance.fact(f), self.instance.fact(g))
        {
            return Err(PriorityError::NotConflicting(f, g));
        }
        self.priority.insert_edge(f, g)
    }

    /// Removes the priority edge `f ≻ g`; returns whether it existed.
    pub fn remove_edge(&mut self, f: FactId, g: FactId) -> bool {
        self.priority.remove_edge(f, g)
    }
}

impl fmt::Debug for PrioritizedInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?} mode={:?}", self.instance, self.mode)?;
        let sig = self.instance.signature();
        for &(a, b) in self.priority.edges() {
            writeln!(
                f,
                "  {} ≻ {}",
                self.instance.fact(a).display(sig),
                self.instance.fact(b).display(sig)
            )?;
        }
        Ok(())
    }
}

/// Builder collecting priority edges by [`Fact`] value before freezing
/// them into a [`PriorityRelation`].
pub struct PriorityBuilder<'a> {
    instance: &'a Instance,
    edges: Vec<(FactId, FactId)>,
}

impl<'a> PriorityBuilder<'a> {
    /// Starts an empty builder over an instance.
    pub fn new(instance: &'a Instance) -> Self {
        PriorityBuilder { instance, edges: Vec::new() }
    }

    /// Records `f ≻ g` by fact id.
    pub fn prefer_ids(&mut self, f: FactId, g: FactId) -> &mut Self {
        self.edges.push((f, g));
        self
    }

    /// Records `f ≻ g` by fact value.
    ///
    /// # Panics
    /// Panics if either fact is not in the instance (programming error
    /// in test/workload construction — the ids-based API returns errors
    /// instead).
    pub fn prefer(&mut self, f: &Fact, g: &Fact) -> &mut Self {
        let fi = self.instance.id_of(f).expect("preferred fact not in instance");
        let gi = self.instance.id_of(g).expect("dominated fact not in instance");
        self.prefer_ids(fi, gi)
    }

    /// Freezes the builder into an acyclic [`PriorityRelation`].
    ///
    /// # Errors
    /// [`PriorityError::Cyclic`] if the recorded edges form a cycle.
    pub fn build(&self) -> Result<PriorityRelation, PriorityError> {
        PriorityRelation::new(self.instance.len(), self.edges.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn setup() -> (Schema, Instance) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("x")]).unwrap(); // 0
        i.insert_named("R", [v("a"), v("y")]).unwrap(); // 1: conflicts with 0
        i.insert_named("R", [v("b"), v("x")]).unwrap(); // 2: conflicts with none
        (schema, i)
    }

    #[test]
    fn conflict_restricted_accepts_conflicting_edges() {
        let (schema, i) = setup();
        let p = PriorityRelation::new(3, [(FactId(0), FactId(1))]).unwrap();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap();
        assert_eq!(pi.mode(), PriorityMode::ConflictRestricted);
        assert!(pi.priority().prefers(FactId(0), FactId(1)));
    }

    #[test]
    fn conflict_restricted_rejects_cross_edges() {
        let (schema, i) = setup();
        let p = PriorityRelation::new(3, [(FactId(0), FactId(2))]).unwrap();
        let err = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap_err();
        assert!(matches!(err, PriorityError::NotConflicting(FactId(0), FactId(2))));
    }

    #[test]
    fn ccp_accepts_cross_edges() {
        let (_, i) = setup();
        let p = PriorityRelation::new(3, [(FactId(0), FactId(2))]).unwrap();
        let pi = PrioritizedInstance::cross_conflict(i, p);
        assert_eq!(pi.mode(), PriorityMode::CrossConflict);
    }

    #[test]
    fn builder_by_fact_value() {
        let (schema, i) = setup();
        let f0 = i.fact(FactId(0)).clone();
        let f1 = i.fact(FactId(1)).clone();
        let mut b = PriorityBuilder::new(&i);
        b.prefer(&f1, &f0);
        let p = b.build().unwrap();
        assert!(p.prefers(FactId(1), FactId(0)));
        assert!(PrioritizedInstance::conflict_restricted(&schema, i, p).is_ok());
    }

    #[test]
    fn mutators_preserve_mode_invariant() {
        let (schema, i) = setup();
        let p = PriorityRelation::empty(3);
        let mut pi = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap();
        // Cross edges stay forbidden through the mutator.
        let err = pi.add_edge(&schema, FactId(0), FactId(2)).unwrap_err();
        assert!(matches!(err, PriorityError::NotConflicting(..)));
        pi.add_edge(&schema, FactId(0), FactId(1)).unwrap();
        assert!(pi.priority().prefers(FactId(0), FactId(1)));
        // A new fact grows the universe; edges to it work once it conflicts.
        let sig = pi.instance().signature().clone();
        let id = pi.insert_fact(Fact::parse_new(&sig, "R", [v("a"), v("z")]).unwrap());
        assert_eq!(id, FactId(3));
        pi.add_edge(&schema, FactId(3), FactId(0)).unwrap();
        assert!(matches!(
            pi.add_edge(&schema, FactId(1), FactId(3)),
            Err(PriorityError::Cyclic { .. })
        ));
        // Deleting requires shedding edges first; then ids renumber.
        assert!(pi.remove_edge(FactId(0), FactId(1)));
        assert!(pi.remove_edge(FactId(3), FactId(0)));
        let removed = pi.remove_fact(FactId(0));
        assert_eq!(*removed.get(2), v("x"));
        assert_eq!(pi.instance().len(), 3);
        assert_eq!(pi.priority().len(), 3);
    }

    #[test]
    fn builder_detects_cycles() {
        let (_, i) = setup();
        let mut b = PriorityBuilder::new(&i);
        b.prefer_ids(FactId(0), FactId(1)).prefer_ids(FactId(1), FactId(0));
        assert!(matches!(b.build(), Err(PriorityError::Cyclic { .. })));
    }
}
