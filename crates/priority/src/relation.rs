//! Priority relations (§2.3).
//!
//! A priority on an instance `I` is an **acyclic** binary relation `≻`
//! on the facts of `I`; `f ≻ g` reads "`f` has higher priority than
//! `g`". Acyclicity is part of the definition — a cyclic relation is
//! rejected at construction time.

use rpr_data::{FactId, FactSet, FxHashSet};
use std::fmt;

/// Errors raised while building priority relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityError {
    /// The relation has a cycle `f1 ≻ f2 ≻ … ≻ fk ≻ f1` (including
    /// self-loops `f ≻ f`).
    Cyclic {
        /// One cycle witnessing the violation, in order.
        cycle: Vec<FactId>,
    },
    /// An edge referred to a fact id outside the instance.
    OutOfRange(FactId),
    /// A priority edge joins two non-conflicting facts, which the
    /// classical (conflict-restricted) model of §2.3 forbids.
    NotConflicting(FactId, FactId),
}

impl fmt::Display for PriorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityError::Cyclic { cycle } => {
                write!(f, "priority relation has a cycle through {} facts", cycle.len())
            }
            PriorityError::OutOfRange(id) => {
                write!(f, "priority edge mentions fact id {} outside the instance", id.0)
            }
            PriorityError::NotConflicting(a, b) => write!(
                f,
                "priority edge {} ≻ {} joins non-conflicting facts (use a ccp-instance for that)",
                a.0, b.0
            ),
        }
    }
}

impl std::error::Error for PriorityError {}

/// An acyclic priority relation over the facts `0..n` of an instance.
///
/// ```
/// use rpr_data::FactId;
/// use rpr_priority::{PriorityError, PriorityRelation};
///
/// let p = PriorityRelation::new(3, [(FactId(0), FactId(1))]).unwrap();
/// assert!(p.prefers(FactId(0), FactId(1)));
/// assert!(!p.prefers(FactId(1), FactId(0)));
///
/// // Cycles are rejected with a witness (§2.3 demands acyclicity).
/// let err = PriorityRelation::new(2, [(FactId(0), FactId(1)), (FactId(1), FactId(0))]);
/// assert!(matches!(err, Err(PriorityError::Cyclic { .. })));
/// ```
#[derive(Clone)]
pub struct PriorityRelation {
    n: usize,
    /// `worse[f]` = facts `g` with `f ≻ g`.
    worse: Vec<Vec<FactId>>,
    /// `better[g]` = facts `f` with `f ≻ g`.
    better: Vec<Vec<FactId>>,
    /// All edges as a hash set for O(1) `prefers` queries.
    edge_set: FxHashSet<(u32, u32)>,
    /// Canonical edge list in insertion order.
    edges: Vec<(FactId, FactId)>,
}

impl PriorityRelation {
    /// Builds a priority relation from edges `f ≻ g`, rejecting cycles
    /// and out-of-range ids.
    ///
    /// # Errors
    /// [`PriorityError::Cyclic`] or [`PriorityError::OutOfRange`].
    pub fn new<I>(n: usize, edge_iter: I) -> Result<Self, PriorityError>
    where
        I: IntoIterator<Item = (FactId, FactId)>,
    {
        let mut rel = PriorityRelation {
            n,
            worse: vec![Vec::new(); n],
            better: vec![Vec::new(); n],
            edge_set: FxHashSet::default(),
            edges: Vec::new(),
        };
        for (f, g) in edge_iter {
            if f.index() >= n {
                return Err(PriorityError::OutOfRange(f));
            }
            if g.index() >= n {
                return Err(PriorityError::OutOfRange(g));
            }
            if rel.edge_set.insert((f.0, g.0)) {
                rel.worse[f.index()].push(g);
                rel.better[g.index()].push(f);
                rel.edges.push((f, g));
            }
        }
        if let Some(cycle) = rel.find_cycle() {
            return Err(PriorityError::Cyclic { cycle });
        }
        Ok(rel)
    }

    /// The empty priority over `n` facts.
    pub fn empty(n: usize) -> Self {
        PriorityRelation::new(n, []).expect("empty relation is acyclic")
    }

    /// Number of facts the relation ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the relation over an empty instance?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Does `f ≻ g` hold?
    pub fn prefers(&self, f: FactId, g: FactId) -> bool {
        self.edge_set.contains(&(f.0, g.0))
    }

    /// The facts worse than `f` (i.e. `{g : f ≻ g}`).
    pub fn worse_than(&self, f: FactId) -> &[FactId] {
        &self.worse[f.index()]
    }

    /// The facts better than `g` (i.e. `{f : f ≻ g}`).
    pub fn better_than(&self, g: FactId) -> &[FactId] {
        &self.better[g.index()]
    }

    /// All edges `(f, g)` with `f ≻ g`, in insertion order.
    pub fn edges(&self) -> &[(FactId, FactId)] {
        &self.edges
    }

    /// Is some member of `set` better than `g`?
    pub fn set_improves(&self, set: &FactSet, g: FactId) -> bool {
        self.better[g.index()].iter().any(|f| set.contains(*f))
    }

    /// Does `f` beat every member of `set`?
    pub fn beats_all(&self, f: FactId, set: &FactSet) -> bool {
        set.iter().all(|g| self.prefers(f, g))
    }

    /// Is `f` maximal within `set` (no member of `set` is better)?
    pub fn is_maximal_in(&self, f: FactId, set: &FactSet) -> bool {
        !self.better[f.index()].iter().any(|g| set.contains(*g))
    }

    /// Extends the relation's universe to `n` facts (new facts carry no
    /// edges). Used by the delta path when a fact is appended.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.n, "grow cannot shrink the relation");
        self.worse.resize(n, Vec::new());
        self.better.resize(n, Vec::new());
        self.n = n;
    }

    /// Adds the edge `f ≻ g`, preserving acyclicity.
    ///
    /// A duplicate edge is a silent no-op (callers wanting to reject
    /// duplicates should consult [`prefers`](Self::prefers) first).
    ///
    /// # Errors
    /// [`PriorityError::OutOfRange`] for ids outside the universe;
    /// [`PriorityError::Cyclic`] (with a witness) if `g` already
    /// reaches `f`, in which case the relation is unchanged.
    pub fn insert_edge(&mut self, f: FactId, g: FactId) -> Result<(), PriorityError> {
        if f.index() >= self.n {
            return Err(PriorityError::OutOfRange(f));
        }
        if g.index() >= self.n {
            return Err(PriorityError::OutOfRange(g));
        }
        if self.edge_set.contains(&(f.0, g.0)) {
            return Ok(());
        }
        if let Some(path) = self.path_between(g, f) {
            // path = g ≻ … ≻ f; the new edge f ≻ g closes the cycle.
            return Err(PriorityError::Cyclic { cycle: path });
        }
        self.edge_set.insert((f.0, g.0));
        self.worse[f.index()].push(g);
        self.better[g.index()].push(f);
        self.edges.push((f, g));
        Ok(())
    }

    /// Removes the edge `f ≻ g`; returns whether it was present.
    pub fn remove_edge(&mut self, f: FactId, g: FactId) -> bool {
        if !self.edge_set.remove(&(f.0, g.0)) {
            return false;
        }
        self.worse[f.index()].retain(|&x| x != g);
        self.better[g.index()].retain(|&x| x != f);
        self.edges.retain(|&e| e != (f, g));
        true
    }

    /// Removes fact `d` from the universe, renumbering ids above `d`
    /// down by one — the same dense layout a rebuild over the shrunken
    /// instance produces.
    ///
    /// # Panics
    /// Panics if `d` still has incident edges; the delta layer rejects
    /// such deletes before getting here.
    pub fn remove_fact(&mut self, d: FactId) {
        assert!(d.index() < self.n, "remove_fact: id out of range");
        assert!(
            self.worse[d.index()].is_empty() && self.better[d.index()].is_empty(),
            "remove_fact: fact {} still has priority edges",
            d.0
        );
        let shift = |id: FactId| if id > d { FactId(id.0 - 1) } else { id };
        self.worse.remove(d.index());
        self.better.remove(d.index());
        for row in self.worse.iter_mut().chain(self.better.iter_mut()) {
            for id in row.iter_mut() {
                *id = shift(*id);
            }
        }
        for (a, b) in self.edges.iter_mut() {
            *a = shift(*a);
            *b = shift(*b);
        }
        self.edge_set = self.edges.iter().map(|&(a, b)| (a.0, b.0)).collect();
        self.n -= 1;
    }

    /// A directed path `from ≻ … ≻ to`, if one exists.
    fn path_between(&self, from: FactId, to: FactId) -> Option<Vec<FactId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: Vec<Option<FactId>> = vec![None; self.n];
        let mut stack = vec![from];
        parent[from.index()] = Some(from);
        while let Some(node) = stack.pop() {
            for &succ in &self.worse[node.index()] {
                if parent[succ.index()].is_none() {
                    parent[succ.index()] = Some(node);
                    if succ == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[cur.index()].expect("reached chain");
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    stack.push(succ);
                }
            }
        }
        None
    }

    /// A topological order of the facts (better facts first). `None` is
    /// impossible for a constructed relation (acyclicity is enforced),
    /// so this returns the order directly.
    pub fn topological_order(&self) -> Vec<FactId> {
        self.try_topological_order().expect("constructed relations are acyclic")
    }

    fn try_topological_order(&self) -> Option<Vec<FactId>> {
        let mut indegree: Vec<usize> = vec![0; self.n];
        for &(_, g) in &self.edges {
            indegree[g.index()] += 1;
        }
        let mut queue: Vec<FactId> =
            (0..self.n as u32).map(FactId).filter(|f| indegree[f.index()] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(f) = queue.pop() {
            order.push(f);
            for &g in &self.worse[f.index()] {
                indegree[g.index()] -= 1;
                if indegree[g.index()] == 0 {
                    queue.push(g);
                }
            }
        }
        if order.len() == self.n {
            Some(order)
        } else {
            None
        }
    }

    /// Finds a cycle, if any (used during construction).
    fn find_cycle(&self) -> Option<Vec<FactId>> {
        // Iterative DFS with colors; parent chain recovers the cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.n];
        let mut parent: Vec<Option<FactId>> = vec![None; self.n];
        for start in 0..self.n {
            if color[start] != WHITE {
                continue;
            }
            let mut stack: Vec<(FactId, usize)> = vec![(FactId(start as u32), 0)];
            color[start] = GRAY;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.worse[node.index()].len() {
                    let succ = self.worse[node.index()][*next];
                    *next += 1;
                    match color[succ.index()] {
                        WHITE => {
                            color[succ.index()] = GRAY;
                            parent[succ.index()] = Some(node);
                            stack.push((succ, 0));
                        }
                        GRAY => {
                            // Found a back edge node → succ; walk parents.
                            let mut cycle = vec![node];
                            let mut cur = node;
                            while cur != succ {
                                cur = parent[cur.index()].expect("gray chain");
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[node.index()] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }
}

impl fmt::Debug for PriorityRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Priority[{} facts; ", self.n)?;
        for (i, (a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}≻{}", a.0, b.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FactId {
        FactId(i)
    }

    #[test]
    fn basic_queries() {
        let p = PriorityRelation::new(4, [(f(0), f(1)), (f(0), f(2)), (f(3), f(1))]).unwrap();
        assert!(p.prefers(f(0), f(1)));
        assert!(!p.prefers(f(1), f(0)));
        assert_eq!(p.worse_than(f(0)), &[f(1), f(2)]);
        assert_eq!(p.better_than(f(1)), &[f(0), f(3)]);
        assert_eq!(p.edge_count(), 3);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let p = PriorityRelation::new(2, [(f(0), f(1)), (f(0), f(1))]).unwrap();
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let err = PriorityRelation::new(1, [(f(0), f(0))]).unwrap_err();
        assert!(matches!(err, PriorityError::Cyclic { cycle } if cycle == vec![f(0)]));
    }

    #[test]
    fn long_cycle_rejected_with_witness() {
        let err =
            PriorityRelation::new(4, [(f(0), f(1)), (f(1), f(2)), (f(2), f(0)), (f(2), f(3))])
                .unwrap_err();
        match err {
            PriorityError::Cyclic { cycle } => {
                assert_eq!(cycle.len(), 3);
                // Verify the cycle is genuine edge-wise.
                let p =
                    PriorityRelation::new(4, [(f(0), f(1)), (f(1), f(2)), (f(2), f(3))]).unwrap();
                let _ = p; // edges of the reported cycle come from the input
                for w in cycle.windows(2) {
                    assert!([(0, 1), (1, 2), (2, 0)].contains(&(w[0].0 as usize, w[1].0 as usize)));
                }
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            PriorityRelation::new(2, [(f(0), f(5))]),
            Err(PriorityError::OutOfRange(_))
        ));
    }

    #[test]
    fn set_queries() {
        let p = PriorityRelation::new(4, [(f(0), f(1)), (f(0), f(2))]).unwrap();
        let mut set = FactSet::empty(4);
        set.insert(f(1));
        set.insert(f(2));
        assert!(p.beats_all(f(0), &set));
        assert!(!p.beats_all(f(3), &set));
        assert!(p.set_improves(
            &{
                let mut s = FactSet::empty(4);
                s.insert(f(0));
                s
            },
            f(1)
        ));
        assert!(p.is_maximal_in(f(0), &set));
        assert!(!p.is_maximal_in(f(1), &{
            let mut s = FactSet::empty(4);
            s.insert(f(0));
            s
        }));
    }

    #[test]
    fn topological_order_respects_edges() {
        let p = PriorityRelation::new(5, [(f(0), f(1)), (f(1), f(2)), (f(3), f(2)), (f(2), f(4))])
            .unwrap();
        let order = p.topological_order();
        assert_eq!(order.len(), 5);
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (i, id) in order.iter().enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        for &(a, b) in p.edges() {
            assert!(pos[a.index()] < pos[b.index()], "{a:?} must precede {b:?}");
        }
    }

    #[test]
    fn incremental_edges_match_fresh_build() {
        let mut p = PriorityRelation::empty(4);
        p.insert_edge(f(0), f(1)).unwrap();
        p.insert_edge(f(2), f(1)).unwrap();
        p.insert_edge(f(1), f(3)).unwrap();
        let fresh = PriorityRelation::new(4, [(f(0), f(1)), (f(2), f(1)), (f(1), f(3))]).unwrap();
        assert_eq!(p.edges(), fresh.edges());
        // Closing a cycle is rejected and leaves the relation unchanged.
        let err = p.insert_edge(f(3), f(0)).unwrap_err();
        assert!(matches!(err, PriorityError::Cyclic { cycle } if cycle == vec![f(0), f(1), f(3)]));
        assert_eq!(p.edges(), fresh.edges());
        // Self-loops too.
        assert!(matches!(p.insert_edge(f(2), f(2)), Err(PriorityError::Cyclic { .. })));
        // Duplicates are a no-op.
        p.insert_edge(f(0), f(1)).unwrap();
        assert_eq!(p.edge_count(), 3);
    }

    #[test]
    fn remove_edge_and_reinsert() {
        let mut p = PriorityRelation::new(3, [(f(0), f(1)), (f(1), f(2))]).unwrap();
        assert!(p.remove_edge(f(0), f(1)));
        assert!(!p.remove_edge(f(0), f(1)));
        assert!(!p.prefers(f(0), f(1)));
        assert_eq!(p.edges(), &[(f(1), f(2))]);
        // Removal re-enables the reverse direction.
        p.insert_edge(f(2), f(0)).unwrap();
        p.insert_edge(f(1), f(0)).unwrap();
        assert_eq!(p.worse_than(f(1)), &[f(2), f(0)]);
    }

    #[test]
    fn grow_and_remove_fact_renumber() {
        let mut p = PriorityRelation::new(3, [(f(0), f(2))]).unwrap();
        p.grow(5);
        p.insert_edge(f(4), f(3)).unwrap();
        // Remove fact 1 (no incident edges): ids above shift down.
        p.remove_fact(f(1));
        let fresh = PriorityRelation::new(4, [(f(0), f(1)), (f(3), f(2))]).unwrap();
        assert_eq!(p.edges(), fresh.edges());
        assert!(p.prefers(f(0), f(1)));
        assert!(p.prefers(f(3), f(2)));
        assert_eq!(p.len(), 4);
        assert_eq!(p.better_than(f(1)), &[f(0)]);
    }

    #[test]
    #[should_panic(expected = "still has priority edges")]
    fn remove_fact_with_edges_panics() {
        let mut p = PriorityRelation::new(2, [(f(0), f(1))]).unwrap();
        p.remove_fact(f(0));
    }

    #[test]
    fn empty_relation() {
        let p = PriorityRelation::empty(3);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.topological_order().len(), 3);
        assert!(PriorityRelation::empty(0).is_empty());
    }
}
