//! Property-based tests for priority relations: rank-oriented edge
//! sets are always accepted, cycles are always rejected with genuine
//! witnesses, topological orders respect every edge, and completions
//! are exactly the acyclic total-on-conflict extensions.

use proptest::prelude::*;
use rpr_data::{FactId, Instance, Signature, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::{completions, is_completion, unordered_conflicts, PriorityRelation};

const N: usize = 10;

/// Random edges oriented by a hidden total rank — guaranteed acyclic.
fn rank_oriented_edges() -> impl Strategy<Value = Vec<(FactId, FactId)>> {
    (
        proptest::collection::vec(0u64..u64::MAX, N),
        proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..25),
    )
        .prop_map(|(ranks, pairs)| {
            pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| {
                    let key = |x: u32| (ranks[x as usize], x);
                    if key(a) > key(b) {
                        (FactId(a), FactId(b))
                    } else {
                        (FactId(b), FactId(a))
                    }
                })
                .collect()
        })
}

proptest! {
    #[test]
    fn rank_oriented_edge_sets_are_accepted(edges in rank_oriented_edges()) {
        let p = PriorityRelation::new(N, edges.clone()).expect("rank-oriented is acyclic");
        // Every input edge is queryable.
        for (a, b) in edges {
            prop_assert!(p.prefers(a, b));
            prop_assert!(!p.prefers(b, a));
        }
    }

    #[test]
    fn topological_order_respects_every_edge(edges in rank_oriented_edges()) {
        let p = PriorityRelation::new(N, edges).unwrap();
        let order = p.topological_order();
        prop_assert_eq!(order.len(), N);
        let mut pos = [0usize; N];
        for (i, f) in order.iter().enumerate() {
            pos[f.index()] = i;
        }
        for &(a, b) in p.edges() {
            prop_assert!(pos[a.index()] < pos[b.index()]);
        }
    }

    #[test]
    fn closing_any_path_into_a_cycle_is_rejected(edges in rank_oriented_edges()) {
        let p = PriorityRelation::new(N, edges.clone()).unwrap();
        // Pick any edge a ≻ b and add b ≻ a: must be rejected with a
        // genuine cycle witness.
        if let Some(&(a, b)) = p.edges().first() {
            let mut bad = edges;
            bad.push((b, a));
            let err = PriorityRelation::new(N, bad).unwrap_err();
            match err {
                rpr_priority::PriorityError::Cyclic { cycle } => {
                    prop_assert!(cycle.len() >= 2);
                }
                other => prop_assert!(false, "expected cycle, got {other:?}"),
            }
        }
    }

    #[test]
    fn completions_are_exactly_the_valid_extensions(
        rows in proptest::collection::vec((0i64..3, 0i64..3), 2..7),
        edge_bits in any::<u64>(),
    ) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut instance = Instance::new(sig);
        for (a, b) in rows {
            instance.insert_named("R", [Value::Int(a), Value::Int(b)]).unwrap();
        }
        let cg = ConflictGraph::new(&schema, &instance);
        let conflict_edges = cg.edges();
        prop_assume!(conflict_edges.len() <= 8);
        // Base priority: orient a bitmask-selected subset by id.
        let base_edges: Vec<(FactId, FactId)> = conflict_edges
            .iter()
            .enumerate()
            .filter(|(i, _)| edge_bits >> i & 1 == 1)
            .map(|(_, &(a, b))| (a, b))
            .collect();
        let base = PriorityRelation::new(instance.len(), base_edges).unwrap();
        let all = completions(&cg, &base, 1 << 16).unwrap();
        // Each completion is valid and extends the base.
        for c in &all {
            prop_assert!(is_completion(&cg, &base, c));
        }
        // Count: orientations of the free pairs minus cyclic ones,
        // which equals the number of acyclic orientation assignments.
        let free = unordered_conflicts(&cg, &base);
        prop_assert!(all.len() <= 1 << free.len());
        // The base itself is a completion iff there are no free pairs.
        prop_assert_eq!(
            is_completion(&cg, &base, &base),
            free.is_empty()
        );
    }
}
