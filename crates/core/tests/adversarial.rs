//! Adversarial blowup corpus: instances engineered to trigger the
//! worst-case exponential behaviour of the hard side (the Theorem 3.1
//! schemas S1..S6 and the Theorem 7.1 ccp-hard schemas), run under
//! tight budgets. The engine contract under attack: the run answers
//! `Exceeded` — with the deadline observed promptly (within 2× the
//! requested deadline) — instead of hanging.

use rpr_core::{
    construct_globally_optimal_repair, enumerate_repairs_bounded, Budget, CcpChecker, ExceedReason,
    GRepairChecker, Outcome,
};
use rpr_data::{Instance, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_gen::{ccp_hard_schema, hard_schema};
use rpr_priority::{PrioritizedInstance, PriorityRelation};
use std::time::{Duration, Instant};

/// Fills a single ternary relation with the full value cube
/// `g × b × {c0, c1}` — dense conflicts under every S1..S6 FD set, so
/// the repair space (and with it the exact confirmation search) blows
/// up exponentially.
fn dense_ternary(schema: &Schema, groups: usize, members: usize) -> Instance {
    let name = schema.signature().symbol(rpr_data::RelId(0)).name().to_owned();
    let mut i = Instance::new(schema.signature().clone());
    let v = |s: String| Value::sym(&s);
    for g in 0..groups {
        for b in 0..members {
            i.insert_named(
                &name,
                [v(format!("g{g}")), v(format!("b{b}")), v(format!("c{}", g % 2))],
            )
            .unwrap();
        }
    }
    i
}

/// Asserts that the outcome is a deadline trip and that the observed
/// latency stayed within 2× the requested deadline.
#[track_caller]
fn assert_prompt_deadline_trip<T: std::fmt::Debug>(
    outcome: &Outcome<T>,
    elapsed: Duration,
    deadline: Duration,
    label: &str,
) {
    match outcome {
        Outcome::Exceeded { report, .. } => {
            assert_eq!(report.reason, ExceedReason::DeadlineExpired, "{label}: {report}");
        }
        other => panic!("{label}: expected a deadline trip, got {other:?}"),
    }
    assert!(
        elapsed <= deadline * 2,
        "{label}: deadline {deadline:?} observed only after {elapsed:?} (> 2x)"
    );
}

/// Fills a ternary relation from explicit symbolic rows.
fn ternary_rows(schema: &Schema, rows: impl IntoIterator<Item = [String; 3]>) -> Instance {
    let name = schema.signature().symbol(rpr_data::RelId(0)).name().to_owned();
    let mut i = Instance::new(schema.signature().clone());
    for [a, b, c] in rows {
        i.insert_named(&name, [Value::sym(&a), Value::sym(&b), Value::sym(&c)]).unwrap();
    }
    i
}

/// A blowup instance whose exponential search space lives inside ONE
/// conflict component. The session checker decomposes the exact search
/// per component, so a blowup spread across many small components
/// (a product of cheap per-component searches) no longer blows up —
/// the corpus must concentrate it.
fn single_component_blowup(i: usize, schema: &Schema) -> Instance {
    match i {
        // S3 = {12→3, 3→2}: per-group cliques over `c` (12→3) glued
        // together by shared `c` values across groups (3→2). Maximal
        // repairs pick a near-injective group → c assignment.
        3 => ternary_rows(
            schema,
            (0..18).flat_map(|g| {
                (0..6).map(move |c| [format!("a{g}"), format!("b{g}"), format!("c{c}")])
            }),
        ),
        // S5 = {1→3, 2→3}: a single K_{50,50} under 2→3 (same `b`,
        // two `c` classes); `a` unique so 1→3 stays silent.
        5 => ternary_rows(
            schema,
            (0..100).map(|n| [format!("a{n}"), "b".to_owned(), format!("c{}", n % 2)]),
        ),
        // S6 = {∅→1, 2→3}: two `a` values join everything into one
        // component via ∅→1; within a side, per-`b` cliques under 2→3
        // keep `members^groups` maximal choices.
        6 => ternary_rows(
            schema,
            (0..18).flat_map(|g| {
                (0..6).map(move |c| [format!("k{}", g % 2), format!("b{g}"), format!("c{c}")])
            }),
        ),
        _ => dense_ternary(schema, 18, 6),
    }
}

#[test]
fn hard_schemas_trip_the_deadline_promptly() {
    let deadline = Duration::from_millis(60);
    for i in 1..=6 {
        let schema = hard_schema(i);
        // Sized so even the release-mode exact search cannot finish
        // inside the deadline, with the blowup concentrated in a
        // single conflict component (see `single_component_blowup`).
        let instance = single_component_blowup(i, &schema);
        let cg = ConflictGraph::new(&schema, &instance);
        // An empty priority makes every repair globally optimal, so
        // confirming the candidate forces the full exponential search.
        let priority = PriorityRelation::empty(instance.len());
        let j = construct_globally_optimal_repair(&cg, &priority);
        let pi = PrioritizedInstance::conflict_restricted(&schema, instance, priority).unwrap();
        let checker = GRepairChecker::new(schema.clone());
        let budget = Budget::unlimited().with_deadline(deadline);
        let start = Instant::now();
        let outcome = checker.check_bounded(&pi, &j, &budget);
        assert_prompt_deadline_trip(&outcome, start.elapsed(), deadline, &format!("S{i}"));
    }
}

#[test]
fn ccp_hard_schemas_trip_the_deadline_promptly() {
    let deadline = Duration::from_millis(60);
    for x in ['b', 'c'] {
        let schema = ccp_hard_schema(x);
        // Sb = {1→2} alone splits `dense_ternary` into per-`a` cliques
        // that the per-component search polishes off instantly; a
        // single K_{50,50} (one `a` group, two `b` classes told apart
        // by unique `c`s) keeps the blowup inside one component.
        let instance = if x == 'b' {
            ternary_rows(
                &schema,
                (0..100).map(|n| ["a".to_owned(), format!("b{}", n % 2), format!("c{n}")]),
            )
        } else {
            dense_ternary(&schema, 18, 6)
        };
        let cg = ConflictGraph::new(&schema, &instance);
        let priority = PriorityRelation::empty(instance.len());
        let j = construct_globally_optimal_repair(&cg, &priority);
        let pi = PrioritizedInstance::cross_conflict(instance, priority);
        let checker = CcpChecker::new(schema.clone());
        let budget = Budget::unlimited().with_deadline(deadline);
        let start = Instant::now();
        let outcome = checker.check_bounded(&pi, &j, &budget);
        assert_prompt_deadline_trip(&outcome, start.elapsed(), deadline, &format!("S{x}"));
    }
}

#[test]
fn blowup_enumeration_trips_the_deadline_with_a_partial_prefix() {
    let schema = hard_schema(4);
    let instance = dense_ternary(&schema, 14, 4);
    let cg = ConflictGraph::new(&schema, &instance);
    let deadline = Duration::from_millis(50);
    let budget = Budget::unlimited().with_deadline(deadline);
    let start = Instant::now();
    let outcome = enumerate_repairs_bounded(&cg, &budget);
    let elapsed = start.elapsed();
    match &outcome {
        Outcome::Exceeded { partial: Some(prefix), report } => {
            assert_eq!(report.reason, ExceedReason::DeadlineExpired, "{report}");
            assert!(!prefix.is_empty(), "the prefix gathered before the trip is a valid partial");
            for j in prefix {
                let consistent =
                    j.iter().all(|f| j.iter().all(|g| f == g || !cg.conflicting(f, g)));
                assert!(consistent, "every partial member must be a true repair");
            }
        }
        other => panic!("expected Exceeded with a prefix, got {other:?}"),
    }
    assert!(elapsed <= deadline * 2, "deadline {deadline:?} observed only after {elapsed:?}");
}

#[test]
fn work_budgets_trip_near_the_requested_allowance() {
    let schema = hard_schema(4);
    let instance = dense_ternary(&schema, 12, 4);
    let cg = ConflictGraph::new(&schema, &instance);
    let priority = PriorityRelation::empty(instance.len());
    let j = construct_globally_optimal_repair(&cg, &priority);
    let pi = PrioritizedInstance::conflict_restricted(&schema, instance, priority).unwrap();
    let checker = GRepairChecker::new(schema);
    for max_work in [100u64, 10_000, 1_000_000] {
        let budget = Budget::unlimited().with_max_work(max_work);
        match checker.check_bounded(&pi, &j, &budget) {
            Outcome::Exceeded { report, .. } => {
                assert_eq!(report.reason, ExceedReason::WorkExhausted);
                // Sequential checking overshoots the allowance by at
                // most the final charge.
                assert!(
                    report.work_done <= max_work + 2,
                    "work_done {} far beyond allowance {max_work}",
                    report.work_done
                );
            }
            other => panic!("max_work={max_work}: expected Exceeded, got {other:?}"),
        }
    }
}
