//! Property-based tests for the checking layer: improvement-predicate
//! laws, witness validity, and cross-algorithm agreement on randomly
//! generated inputs.

use proptest::prelude::*;
use rpr_core::{
    check_global_1fd, enumerate_repairs, find_pareto_improvement, is_global_improvement,
    is_globally_optimal_brute, is_pareto_improvement, Improvement,
};
use rpr_data::{FactId, FactSet, Instance, Signature, Value};
use rpr_fd::{ConflictGraph, Schema};
use rpr_priority::PriorityRelation;

/// A complete random single-FD input: instance, conflict-restricted
/// priority, and the conflict graph.
#[derive(Debug, Clone)]
struct Input {
    schema: Schema,
    instance: Instance,
    priority: PriorityRelation,
}

fn input() -> impl Strategy<Value = Input> {
    (
        proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 2..10),
        proptest::collection::vec(0u64..u64::MAX, 10),
        any::<u64>(),
    )
        .prop_map(|(rows, ranks, edge_bits)| {
            let sig = Signature::new([("R", 3)]).unwrap();
            let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
            let mut instance = Instance::new(sig);
            for (a, b, c) in rows {
                instance.insert_named("R", [Value::Int(a), Value::Int(b), Value::Int(c)]).unwrap();
            }
            let cg = ConflictGraph::new(&schema, &instance);
            let edges: Vec<(FactId, FactId)> = cg
                .edges()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| edge_bits >> (i % 64) & 1 == 1)
                .map(|(_, (a, b))| {
                    let key = |f: FactId| (ranks[f.index() % 10], f.0);
                    if key(a) > key(b) {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect();
            let priority = PriorityRelation::new(instance.len(), edges).unwrap();
            Input { schema, instance, priority }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pareto_improvement_implies_global_improvement(inp in input()) {
        let cg = ConflictGraph::new(&inp.schema, &inp.instance);
        let repairs = enumerate_repairs(&cg, 1 << 20).unwrap();
        for j in &repairs {
            for j2 in &repairs {
                if is_pareto_improvement(&inp.priority, j, j2) && j != j2 {
                    prop_assert!(is_global_improvement(&inp.priority, j, j2));
                }
            }
        }
    }

    #[test]
    fn improvement_is_irreflexive_and_acyclic_on_pairs(inp in input()) {
        // ≻-based improvement can never hold in both directions between
        // the same pair (that would need f ≻ g and g ≻ f chains that
        // contradict acyclicity on the swapped difference)… the cheap
        // checkable part: irreflexivity and one-directionality for
        // singleton swaps.
        let cg = ConflictGraph::new(&inp.schema, &inp.instance);
        let repairs = enumerate_repairs(&cg, 1 << 20).unwrap();
        for j in &repairs {
            prop_assert!(!is_global_improvement(&inp.priority, j, j));
            prop_assert!(!is_pareto_improvement(&inp.priority, j, j));
        }
    }

    #[test]
    fn pareto_witness_validates_and_flags_match(inp in input()) {
        let cg = ConflictGraph::new(&inp.schema, &inp.instance);
        let full = FactSet::full(inp.instance.len());
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            match find_pareto_improvement(&cg, &inp.priority, &j, &full) {
                Some(imp) => {
                    prop_assert!(imp.is_valid_global_improvement(&cg, &inp.priority, &j));
                    let j2 = imp.apply(&j);
                    prop_assert!(is_pareto_improvement(&inp.priority, &j, &j2));
                }
                None => {
                    // No repair Pareto-improves it either.
                    for r in enumerate_repairs(&cg, 1 << 20).unwrap() {
                        prop_assert!(!is_pareto_improvement(&inp.priority, &j, &r));
                    }
                }
            }
        }
    }

    #[test]
    fn single_fd_checker_matches_oracle(inp in input()) {
        let cg = ConflictGraph::new(&inp.schema, &inp.instance);
        let fd = inp.schema.fds()[0];
        let full = FactSet::full(inp.instance.len());
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = check_global_1fd(&inp.instance, &cg, &inp.priority, fd, &full, &j)
                .is_optimal();
            let slow = is_globally_optimal_brute(&cg, &inp.priority, &j, 1 << 20).unwrap();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn improvement_apply_roundtrip(inp in input()) {
        let cg = ConflictGraph::new(&inp.schema, &inp.instance);
        let repairs = enumerate_repairs(&cg, 1 << 20).unwrap();
        for j in &repairs {
            for j2 in &repairs {
                let imp = Improvement {
                    removed: j.difference(j2),
                    added: j2.difference(j),
                };
                prop_assert_eq!(&imp.apply(j), j2);
            }
        }
    }
}
