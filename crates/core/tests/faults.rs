//! Fault-injection suite (requires `--features faults`).
//!
//! Drives the engine's deterministic fault plans through the check
//! session's batch path and asserts the central isolation property:
//! a worker panic, a mid-batch cancellation, or an injected slowdown
//! degrades *only* the affected candidates — every surviving verdict is
//! bit-identical to the verdict an unfaulted run produces.

#![cfg(feature = "faults")]

use rpr_core::{enumerate_repairs, Budget, CheckSession, ExceedReason, Outcome};
use rpr_data::{FactId, FactSet, Instance, Value};
use rpr_engine::FaultPlan;
use rpr_fd::Schema;
use rpr_gen::hard_schema;
use rpr_priority::{PrioritizedInstance, PriorityRelation};
use std::time::Duration;

/// A prioritized instance over the hard schema S4 = {1→2, 2→3} with a
/// few groups, so the batch has several candidates and every check
/// dispatches to the exponential exact search.
fn s4_input() -> (Schema, PrioritizedInstance) {
    let schema = hard_schema(4);
    let mut i = Instance::new(schema.signature().clone());
    let v = |s: String| Value::sym(&s);
    for g in 0..3 {
        for b in 0..3 {
            i.insert_named(
                "R4",
                [v(format!("g{g}")), v(format!("b{b}")), v(format!("c{}", g % 2))],
            )
            .unwrap();
        }
    }
    // Prefer the first member of each group over the second (edges join
    // conflicting facts: same group, different b).
    let edges: Vec<(FactId, FactId)> = (0..3).map(|g| (FactId(g * 3), FactId(g * 3 + 1))).collect();
    let p = PriorityRelation::new(i.len(), edges).unwrap();
    let pi = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap();
    (schema, pi)
}

/// All repairs of the instance — the batch of candidates to check.
fn candidates(schema: &Schema, pi: &PrioritizedInstance) -> Vec<FactSet> {
    let cg = rpr_fd::ConflictGraph::new(schema, pi.instance());
    enumerate_repairs(&cg, 1 << 20).unwrap()
}

fn baseline(session: &CheckSession<'_>, js: &[FactSet]) -> Vec<Outcome<rpr_core::CheckOutcome>> {
    let outcomes = session.check_batch_bounded(js, &Budget::unlimited());
    assert!(outcomes.iter().all(Outcome::is_done), "baseline must complete unfaulted");
    outcomes
}

#[test]
fn injected_worker_panic_degrades_only_its_candidate() {
    let (schema, pi) = s4_input();
    let js = candidates(&schema, &pi);
    assert!(js.len() >= 4, "need a real batch, got {}", js.len());
    let session = CheckSession::new(&schema, &pi).with_jobs(1);
    let reference = baseline(&session, &js);

    for victim in [0, js.len() / 2, js.len() - 1] {
        let budget = Budget::unlimited().with_faults(FaultPlan::new().panic_on_candidate(victim));
        let outcomes = session.check_batch_bounded(&js, &budget);
        for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
            if i == victim {
                match got {
                    Outcome::Panicked { report, .. } => {
                        assert!(report.message.contains("injected fault"), "{report}");
                        assert!(report.context.contains(&format!("candidate {victim}")));
                    }
                    other => panic!("candidate {i}: expected Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(got, want, "surviving candidate {i} must match the unfaulted run");
            }
        }
    }
}

#[test]
fn injected_panic_is_isolated_across_parallel_workers() {
    let (schema, pi) = s4_input();
    let js = candidates(&schema, &pi);
    let session = CheckSession::new(&schema, &pi).with_jobs(4);
    let reference = baseline(&session, &js);

    let victim = 1;
    let budget = Budget::unlimited().with_faults(FaultPlan::new().panic_on_candidate(victim));
    let outcomes = session.check_batch_bounded(&js, &budget);
    for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
        if i == victim {
            assert!(matches!(got, Outcome::Panicked { .. }), "candidate {i}: {got:?}");
        } else {
            assert_eq!(got, want, "parallel sibling {i} must be unaffected by the panic");
        }
    }
}

#[test]
fn mid_batch_cancellation_preserves_completed_verdicts() {
    let (schema, pi) = s4_input();
    let js = candidates(&schema, &pi);
    let session = CheckSession::new(&schema, &pi).with_jobs(1);
    let reference = baseline(&session, &js);

    // Cancel once roughly half the baseline work is charged.
    let full_work = {
        let b = Budget::unlimited();
        let _ = session.check_batch_bounded(&js, &b);
        b.work_done()
    };
    let budget = Budget::unlimited().with_faults(FaultPlan::new().cancel_after_work(full_work / 2));
    let outcomes = session.check_batch_bounded(&js, &budget);

    let cancelled = outcomes.iter().filter(|o| matches!(o, Outcome::Cancelled { .. })).count();
    assert!(cancelled > 0, "the cancellation must interrupt at least one candidate");
    assert!(cancelled < js.len(), "some candidates must have completed first");
    for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
        match got {
            Outcome::Cancelled { .. } => {}
            _ => assert_eq!(got, want, "completed candidate {i} must match the unfaulted run"),
        }
    }
    // Sequential batches stop charging after the observation point.
    assert!(
        budget.work_done() <= full_work,
        "a cancelled batch must not keep working: {} > {full_work}",
        budget.work_done()
    );
}

#[test]
fn injected_slowdown_drives_the_deadline_deterministically() {
    let (schema, pi) = s4_input();
    let js = candidates(&schema, &pi);
    let session = CheckSession::new(&schema, &pi).with_jobs(1);
    let reference = baseline(&session, &js);

    // Every work unit sleeps 2ms against a 30ms deadline: the run can
    // complete only a handful of units before the deadline trips.
    let budget = Budget::unlimited()
        .with_deadline(Duration::from_millis(30))
        .with_faults(FaultPlan::new().slow_every(1, Duration::from_millis(2)));
    let outcomes = session.check_batch_bounded(&js, &budget);

    let exceeded = outcomes
        .iter()
        .filter_map(Outcome::budget_report)
        .filter(|r| r.reason == ExceedReason::DeadlineExpired)
        .count();
    assert!(exceeded > 0, "the slowdown must push the run past its deadline");
    for (i, (got, want)) in outcomes.iter().zip(&reference).enumerate() {
        match got {
            Outcome::Exceeded { .. } | Outcome::Cancelled { .. } => {}
            _ => assert_eq!(got, want, "fast candidate {i} must match the unfaulted run"),
        }
    }
}
