//! `GRepCheck1FD` — globally-optimal repair checking for a single FD
//! (§4.1, Figure 2, Lemma 4.2).
//!
//! When `Δ|R` is equivalent to a single FD `A → B`, the paper shows that
//! `J` has a global improvement iff it has one of the special form
//! `J[f ↔ g]`: pick conflicting `f ∈ J`, `g ∈ I \ J`, remove from `J`
//! all facts agreeing with `f` on `A` (equivalently on `A ∪ B`, since
//! `J` is consistent), and add all facts of `I` agreeing with `g` on
//! `A` and `B` (Lemma 4.2). There are only quadratically many such
//! candidates, and each is consistent by construction, so the check is
//! polynomial.
//!
//! Our implementation works block-wise rather than fact-wise: group the
//! facts of the relation by their `A`-projection, and within a group by
//! their `B`-projection. `J[f ↔ g]` depends only on the blocks of `f`
//! and `g`, so we test each ordered pair of blocks once. §4.1 notes
//! that this procedure also subsumes the non-maximality and Pareto
//! cases, because a proper consistent superset is itself a global
//! improvement — we still pre-check maximality to give the cheaper
//! witness first.
//!
//! The block structure depends only on `(instance, fd, domain)`, never
//! on the candidate `J` — so amortized callers
//! ([`CheckSession`](crate::session::CheckSession)) build [`FdBlocks`]
//! once and call [`check_global_1fd_with_blocks`] per candidate, which
//! also runs the repair pre-checks block-wise instead of via bitset
//! scans (same witnesses, linear work).

use crate::improvement::{CheckOutcome, Improvement};
use rpr_data::{FactId, FactSet, Instance};
use rpr_fd::{ConflictGraph, Fd};
use rpr_priority::PriorityRelation;

/// The block structure of one relation's facts under a single FD:
/// groups share the `A`-projection; blocks within a group share the
/// `B`-projection. Facts in different blocks of one group conflict;
/// facts in the same block, or in different groups, never do.
pub struct FdBlocks {
    /// `groups[g]` = list of blocks; each block is a list of fact ids.
    groups: Vec<Vec<Vec<FactId>>>,
}

impl FdBlocks {
    /// The group/block structure: `groups()[g]` lists the blocks of
    /// group `g`, each a list of fact ids (certificate emission walks
    /// this to package per-block evidence).
    pub(crate) fn groups(&self) -> &[Vec<Vec<FactId>>] {
        &self.groups
    }

    /// Renumbers the ids after a base-instance delete at `d`: every id
    /// above `d` shifts down by one. `d` itself must not appear in the
    /// blocks (deletes of this relation rebuild its blocks instead).
    /// Ids inside blocks stay ascending under the uniform shift, so the
    /// remapped structure is exactly what [`FdBlocks::build`] over the
    /// shrunken instance produces.
    pub(crate) fn remap_remove(&mut self, d: FactId) {
        for group in &mut self.groups {
            for block in group {
                for id in block.iter_mut() {
                    debug_assert_ne!(*id, d, "deleted fact still present in untouched blocks");
                    if *id > d {
                        id.0 -= 1;
                    }
                }
            }
        }
    }

    /// Groups `domain`'s facts by `A`- then `B`-projection.
    ///
    /// Grouping is sort-based with in-place attribute comparisons (no
    /// projection tuples are materialized), and the resulting group and
    /// block order is *canonical* — groups sorted by `A`-projection,
    /// blocks within a group by `B`-projection, ids within a block
    /// ascending — so two builds over equal content produce identical
    /// structures, and [`insert`](Self::insert) /
    /// [`remove`](Self::remove) can patch the structure in place while
    /// staying bit-identical to a from-scratch build.
    pub fn build(instance: &Instance, fd: Fd, domain: &FactSet) -> FdBlocks {
        use std::cmp::Ordering;
        let cmp_on = |x: FactId, y: FactId, attrs| Self::cmp_facts(instance, x, y, attrs);
        let mut ids: Vec<FactId> = domain.iter().collect();
        ids.sort_unstable_by(|&x, &y| {
            cmp_on(x, y, fd.lhs).then_with(|| cmp_on(x, y, fd.rhs)).then(x.cmp(&y))
        });
        let mut groups: Vec<Vec<Vec<FactId>>> = Vec::new();
        for id in ids {
            debug_assert_eq!(instance.fact(id).rel(), fd.rel, "domain contains foreign facts");
            if let Some(group) = groups.last_mut() {
                let rep = group[0][0];
                if cmp_on(rep, id, fd.lhs) == Ordering::Equal {
                    let block = group.last_mut().expect("groups hold at least one block");
                    if cmp_on(block[0], id, fd.rhs) == Ordering::Equal {
                        block.push(id);
                    } else {
                        group.push(vec![id]);
                    }
                    continue;
                }
            }
            groups.push(vec![vec![id]]);
        }
        FdBlocks { groups }
    }

    /// Compares two facts on an attribute set, value-wise in place.
    fn cmp_facts(
        instance: &Instance,
        x: FactId,
        y: FactId,
        attrs: rpr_data::AttrSet,
    ) -> std::cmp::Ordering {
        let (f, g) = (instance.fact(x), instance.fact(y));
        for a in attrs.iter() {
            match f.get(a).cmp(g.get(a)) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Patches in the fact `id`, freshly appended to `instance` (so it
    /// carries the maximal id). Binary-searches the canonical order for
    /// its group and block; the result is exactly what
    /// [`build`](Self::build) over the grown domain produces.
    pub(crate) fn insert(&mut self, instance: &Instance, fd: Fd, id: FactId) {
        match self.groups.binary_search_by(|g| Self::cmp_facts(instance, g[0][0], id, fd.lhs)) {
            Ok(gi) => {
                let group = &mut self.groups[gi];
                match group.binary_search_by(|b| Self::cmp_facts(instance, b[0], id, fd.rhs)) {
                    // The appended id is maximal, so a push keeps the
                    // block's ids ascending.
                    Ok(bi) => group[bi].push(id),
                    Err(bi) => group.insert(bi, vec![id]),
                }
            }
            Err(gi) => self.groups.insert(gi, vec![vec![id]]),
        }
    }

    /// Patches out the fact `id` (still present in `instance`), dropping
    /// its block and group if they become empty. The caller follows up
    /// with [`remap_remove`](Self::remap_remove) once the instance has
    /// shrunk. The result is exactly what [`build`](Self::build) over
    /// the shrunken domain produces.
    pub(crate) fn remove(&mut self, instance: &Instance, fd: Fd, id: FactId) {
        let gi = self
            .groups
            .binary_search_by(|g| Self::cmp_facts(instance, g[0][0], id, fd.lhs))
            .expect("deleted fact's group is present");
        let group = &mut self.groups[gi];
        let bi = group
            .binary_search_by(|b| Self::cmp_facts(instance, b[0], id, fd.rhs))
            .expect("deleted fact's block is present");
        let block = &mut group[bi];
        let pos = block.iter().position(|&x| x == id).expect("deleted fact is in its block");
        block.remove(pos);
        if block.is_empty() {
            group.remove(bi);
        }
        if self.groups[gi].is_empty() {
            self.groups.remove(gi);
        }
    }

    /// The minimal `f ∈ j` conflicting inside `j`, with its minimal
    /// conflict partner — the witness the sequential bitset scan
    /// `for f in j { cg.conflicts_in(f, j).first() }` finds. Two
    /// `j`-facts conflict iff they sit in different blocks of one
    /// group.
    fn consistency_witness(&self, j: &FactSet) -> Option<(FactId, FactId)> {
        let mut best: Option<(FactId, FactId)> = None;
        for group in &self.groups {
            if group.len() < 2 {
                continue;
            }
            // The two minimal j-members in distinct blocks, if any.
            let mut lo: Option<FactId> = None;
            let mut hi: Option<FactId> = None;
            for block in group {
                let Some(&m) = block.iter().find(|id| j.contains(**id)) else {
                    continue;
                };
                // Each block is visited once, so `m` is always from a
                // block other than `lo`'s: the loser goes into `hi`.
                match lo {
                    None => lo = Some(m),
                    Some(f0) if m < f0 => {
                        lo = Some(m);
                        hi = Some(hi.map_or(f0, |h| h.min(f0)));
                    }
                    Some(_) => hi = Some(hi.map_or(m, |h| h.min(m))),
                }
            }
            if let (Some(f), Some(g)) = (lo, hi) {
                if best.is_none_or(|(bf, _)| f < bf) {
                    best = Some((f, g));
                }
            }
        }
        best
    }

    /// The minimal fact of the domain addable to `j` without conflict
    /// (`j` assumed consistent): any fact of a group without j-members,
    /// or a fact of the j-block itself that is missing from `j`.
    fn maximality_witness(&self, j: &FactSet) -> Option<FactId> {
        let mut best: Option<FactId> = None;
        for group in &self.groups {
            let j_block = group.iter().position(|b| b.iter().any(|id| j.contains(*id)));
            let candidate = match j_block {
                // No j-members: every fact of the group is addable.
                None => group.iter().flatten().copied().min(),
                // Same-block facts agree on A and B — no conflict.
                Some(bf) => group[bf].iter().copied().find(|id| !j.contains(*id)),
            };
            if let Some(c) = candidate {
                if best.is_none_or(|b| c < b) {
                    best = Some(c);
                }
            }
        }
        best
    }
}

/// Per-group-range evaluation of the three 1FD phases, produced by
/// [`eval_1fd_groups`] so sessions can fan the group axis out over
/// workers and reduce deterministically (see
/// `CheckSession::check_1fd_sharded`).
pub(crate) struct GroupRangeEval {
    /// Minimal-`f` consistency witness among the range's groups.
    pub incons: Option<(FactId, FactId)>,
    /// Minimal addable fact among the range's groups.
    pub max_wit: Option<FactId>,
    /// First improvable `(group index, witness)` in the range, in group
    /// then block order.
    pub improvable: Option<(usize, Improvement)>,
}

/// Evaluates consistency, maximality, and the block-swap scan for the
/// groups in `range` only. Reducing range results hierarchically —
/// min-by-`f` inconsistency first, then min maximality witness, then
/// the improvable hit with the smallest group index — reproduces the
/// sequential [`check_global_1fd_with_blocks`] verdict and witness
/// exactly, because that function's phases are themselves global
/// min-reductions (consistency, maximality) or first-in-group-order
/// scans (improvability).
pub(crate) fn eval_1fd_groups(
    priority: &PriorityRelation,
    blocks: &FdBlocks,
    j: &FactSet,
    range: std::ops::Range<usize>,
) -> GroupRangeEval {
    let mut out = GroupRangeEval { incons: None, max_wit: None, improvable: None };
    for gi in range {
        let group = &blocks.groups[gi];
        // Phase 1: the two minimal j-members in distinct blocks.
        if group.len() >= 2 {
            let mut lo: Option<FactId> = None;
            let mut hi: Option<FactId> = None;
            for block in group {
                let Some(&m) = block.iter().find(|id| j.contains(**id)) else {
                    continue;
                };
                match lo {
                    None => lo = Some(m),
                    Some(f0) if m < f0 => {
                        lo = Some(m);
                        hi = Some(hi.map_or(f0, |h| h.min(f0)));
                    }
                    Some(_) => hi = Some(hi.map_or(m, |h| h.min(m))),
                }
            }
            if let (Some(f), Some(g)) = (lo, hi) {
                if out.incons.is_none_or(|(bf, _)| f < bf) {
                    out.incons = Some((f, g));
                }
            }
        }
        // Phase 2: minimal addable fact (meaningful only when the
        // reduce finds no inconsistency anywhere).
        let j_block = group.iter().position(|b| b.iter().any(|id| j.contains(*id)));
        let candidate = match j_block {
            None => group.iter().flatten().copied().min(),
            Some(bf) => group[bf].iter().copied().find(|id| !j.contains(*id)),
        };
        if let Some(c) = candidate {
            if out.max_wit.is_none_or(|b| c < b) {
                out.max_wit = Some(c);
            }
        }
        // Phase 3: first improvable block swap in this group.
        if out.improvable.is_some() || group.len() < 2 {
            continue;
        }
        let Some(bf) = j_block else { continue };
        let removed: Vec<FactId> = group[bf].iter().copied().filter(|id| j.contains(*id)).collect();
        for (bg, block) in group.iter().enumerate() {
            if bg == bf {
                continue;
            }
            let improves =
                removed.iter().all(|&f_prime| block.iter().any(|&g| priority.prefers(g, f_prime)));
            if improves {
                let mut rem = FactSet::empty(j.universe());
                for &f in &removed {
                    rem.insert(f);
                }
                let mut add = FactSet::empty(j.universe());
                for &g in block {
                    add.insert(g);
                }
                out.improvable = Some((gi, Improvement { removed: rem, added: add }));
                break;
            }
        }
    }
    out
}

/// Runs `GRepCheck1FD` for the facts in `domain` (one relation), under
/// the single FD `fd` to which `Δ|R` is equivalent.
///
/// `j` is the candidate repair restricted to `domain`; `cg` is the
/// conflict graph of the whole instance (used only to validate
/// witnesses in debug builds). Returns the outcome with a checked
/// witness. One-shot convenience over [`check_global_1fd_with_blocks`].
pub fn check_global_1fd(
    instance: &Instance,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    fd: Fd,
    domain: &FactSet,
    j: &FactSet,
) -> CheckOutcome {
    let blocks = FdBlocks::build(instance, fd, domain);
    check_global_1fd_with_blocks(cg, priority, &blocks, j)
}

/// [`check_global_1fd`] against a prebuilt block structure — the
/// amortized path: no hashing, no bitset-row scans, `O(|domain|)` per
/// call. Outcomes and witnesses are identical to the one-shot entry
/// point.
pub fn check_global_1fd_with_blocks(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    blocks: &FdBlocks,
    j: &FactSet,
) -> CheckOutcome {
    let _ = cg; // only read by debug assertions

    // Repair pre-checks: J must be consistent and maximal in `domain`.
    if let Some((f, g)) = blocks.consistency_witness(j) {
        debug_assert!(cg.conflicting(f, g));
        return CheckOutcome::Inconsistent(f, g);
    }
    if let Some(g) = blocks.maximality_witness(j) {
        debug_assert!(!cg.conflicts_with_set(g, j));
        let mut added = FactSet::empty(j.universe());
        added.insert(g);
        return CheckOutcome::Improvable(Improvement {
            removed: FactSet::empty(j.universe()),
            added,
        });
    }

    for group in &blocks.groups {
        if group.len() < 2 {
            continue; // no conflicts inside a single block
        }
        // J ∩ group lives in exactly one block (J is consistent).
        let j_block: Option<usize> = group.iter().position(|b| b.iter().any(|id| j.contains(*id)));
        let Some(bf) = j_block else { continue };
        let removed: Vec<FactId> = group[bf].iter().copied().filter(|id| j.contains(*id)).collect();
        for (bg, block) in group.iter().enumerate() {
            if bg == bf {
                continue;
            }
            // J[f↔g]: remove `removed`, add the whole candidate block.
            // Global improvement ⇔ every removed fact is beaten by some
            // added fact.
            let improves =
                removed.iter().all(|&f_prime| block.iter().any(|&g| priority.prefers(g, f_prime)));
            if improves {
                let mut rem = FactSet::empty(j.universe());
                for &f in &removed {
                    rem.insert(f);
                }
                let mut add = FactSet::empty(j.universe());
                for &g in block {
                    add.insert(g);
                }
                let witness = Improvement { removed: rem, added: add };
                debug_assert!(witness.is_valid_global_improvement(cg, priority, j));
                return CheckOutcome::Improvable(witness);
            }
        }
    }
    CheckOutcome::Optimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::is_globally_optimal_brute;
    use rpr_data::{Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// BookLoc fragment of the running example under 1→2 (Example 4.1).
    fn bookloc() -> (Schema, Instance, Fd) {
        let sig = Signature::new([("BookLoc", 3)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("BookLoc", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in [
            ("b1", "fiction", "lib1"), // 0 g1f1
            ("b1", "fiction", "lib2"), // 1 g1f2
            ("b1", "drama", "lib3"),   // 2 f1d3
            ("b2", "poetry", "lib1"),  // 3 f2p1
            ("b3", "horror", "lib2"),  // 4 h3h2
        ] {
            i.insert_named("BookLoc", [v(a), v(b), v(c)]).unwrap();
        }
        let fd = schema.fds()[0];
        (schema, i, fd)
    }

    #[test]
    fn example_4_1_swap_semantics() {
        // J = {g1f1, g1f2, f2p1}; J[g1f1 ↔ f1d3] must drop BOTH g1f1 and
        // g1f2 and add f1d3.
        let (schema, i, fd) = bookloc();
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0)), (FactId(2), FactId(1))])
            .unwrap();
        // With f1d3 preferred over both g-facts, J (completed to a
        // repair with h3h2) is improvable by the block swap.
        let j = i.set_of([0, 1, 3, 4].map(FactId));
        match check_global_1fd(&i, &cg, &p, fd, &i.full_set(), &j) {
            CheckOutcome::Improvable(imp) => {
                assert_eq!(imp.removed.iter().collect::<Vec<_>>(), vec![FactId(0), FactId(1)]);
                assert_eq!(imp.added.iter().collect::<Vec<_>>(), vec![FactId(2)]);
            }
            other => panic!("expected improvement, got {other:?}"),
        }
    }

    #[test]
    fn running_example_priority_makes_g_block_optimal() {
        // Example 2.3's priority: g ≻ f ⇒ J containing the g-block is
        // optimal, J' containing f1d3 is improvable.
        let (schema, i, fd) = bookloc();
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(2)), (FactId(1), FactId(2))])
            .unwrap();
        let j_good = i.set_of([0, 1, 3, 4].map(FactId));
        assert!(check_global_1fd(&i, &cg, &p, fd, &i.full_set(), &j_good).is_optimal());
        let j_bad = i.set_of([2, 3, 4].map(FactId));
        match check_global_1fd(&i, &cg, &p, fd, &i.full_set(), &j_bad) {
            CheckOutcome::Improvable(imp) => {
                assert!(imp.is_valid_global_improvement(&cg, &p, &j_bad));
            }
            other => panic!("expected improvement, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_and_non_maximal_inputs() {
        let (schema, i, fd) = bookloc();
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::empty(i.len());
        let bad = i.set_of([0, 2].map(FactId));
        assert!(matches!(
            check_global_1fd(&i, &cg, &p, fd, &i.full_set(), &bad),
            CheckOutcome::Inconsistent(..)
        ));
        let partial = i.set_of([0, 1].map(FactId));
        match check_global_1fd(&i, &cg, &p, fd, &i.full_set(), &partial) {
            CheckOutcome::Improvable(imp) => assert!(imp.removed.is_empty()),
            other => panic!("expected vacuous improvement, got {other:?}"),
        }
    }

    #[test]
    fn block_wise_prechecks_match_bitset_scans() {
        // The cached path's consistency/maximality witnesses must be
        // exactly what the sequential bitset scans produce, on every
        // subset of a small instance.
        let (schema, i, fd) = bookloc();
        let cg = ConflictGraph::new(&schema, &i);
        let blocks = FdBlocks::build(&i, fd, &i.full_set());
        for bits in 0u32..(1 << i.len()) {
            let j = i.set_of((0..i.len() as u32).filter(|b| bits >> b & 1 == 1).map(FactId));
            let scan_incons = j.iter().find_map(|f| cg.conflicts_in(f, &j).first().map(|g| (f, g)));
            assert_eq!(blocks.consistency_witness(&j), scan_incons, "J = {bits:b}");
            if scan_incons.is_none() {
                let scan_max =
                    i.full_set().difference(&j).iter().find(|&g| !cg.conflicts_with_set(g, &j));
                assert_eq!(blocks.maximality_witness(&j), scan_max, "J = {bits:b}");
            }
        }
    }

    #[test]
    fn range_eval_reduce_matches_sequential_on_every_subset() {
        // Split the groups into every possible two-range partition and
        // check that the hierarchical reduce reproduces the sequential
        // verdict and witness on every candidate subset.
        let (schema, i, fd) = bookloc();
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0)), (FactId(2), FactId(1))])
            .unwrap();
        let blocks = FdBlocks::build(&i, fd, &i.full_set());
        let n_groups = blocks.groups().len();
        for bits in 0u32..(1 << i.len()) {
            let j = i.set_of((0..i.len() as u32).filter(|b| bits >> b & 1 == 1).map(FactId));
            let sequential = check_global_1fd_with_blocks(&cg, &p, &blocks, &j);
            for split in 0..=n_groups {
                let parts = [
                    eval_1fd_groups(&p, &blocks, &j, 0..split),
                    eval_1fd_groups(&p, &blocks, &j, split..n_groups),
                ];
                let incons = parts.iter().filter_map(|e| e.incons).min_by_key(|&(f, _)| f);
                let reduced = if let Some((f, g)) = incons {
                    CheckOutcome::Inconsistent(f, g)
                } else if let Some(g) = parts.iter().filter_map(|e| e.max_wit).min() {
                    let mut added = FactSet::empty(j.universe());
                    added.insert(g);
                    CheckOutcome::Improvable(Improvement {
                        removed: FactSet::empty(j.universe()),
                        added,
                    })
                } else if let Some((_, imp)) =
                    parts.into_iter().filter_map(|e| e.improvable).min_by_key(|&(gi, _)| gi)
                {
                    CheckOutcome::Improvable(imp)
                } else {
                    CheckOutcome::Optimal
                };
                assert_eq!(reduced, sequential, "J = {bits:b}, split at {split}");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_dense_conflicts() {
        // 3 groups of sizes 3/2/2 with a half-ordered priority; check
        // every repair's verdict against the oracle.
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for (a, b) in [
            ("g1", "x"),
            ("g1", "y"),
            ("g1", "z"),
            ("g2", "x"),
            ("g2", "y"),
            ("g3", "x"),
            ("g3", "y"),
        ] {
            i.insert_named("R", [v(a), v(b)]).unwrap();
        }
        let fd = schema.fds()[0];
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(1)), // g1: x ≻ y
                (FactId(1), FactId(2)), // g1: y ≻ z
                (FactId(4), FactId(3)), // g2: y ≻ x
            ],
        )
        .unwrap();
        let repairs = crate::brute::enumerate_repairs(&cg, 1 << 20).unwrap();
        assert_eq!(repairs.len(), 3 * 2 * 2);
        for j in &repairs {
            let fast = check_global_1fd(&i, &cg, &p, fd, &i.full_set(), j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, j, 1 << 20).unwrap();
            assert_eq!(fast, slow, "disagreement on {j:?}");
        }
    }
}
