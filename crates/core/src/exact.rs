//! Exact (exponential) globally-optimal repair checking for hard
//! schemas.
//!
//! On the coNP-complete side of the dichotomy nothing polynomial exists
//! unless P = NP, so the dispatching checker falls back to exhaustive
//! search over repairs with early termination. Compared to the plain
//! oracle in [`crate::brute`], this search prunes with the one cheap
//! sound test available — the Pareto pre-check — and runs under an
//! [`rpr_engine::Budget`], so callers can bound it by work units, by a
//! wall-clock deadline, or cancel it cooperatively. The benchmark
//! `dichotomy_gap` measures exactly this fall-back against the
//! polynomial algorithms.

use crate::improvement::{is_global_improvement, BudgetExceeded, CheckOutcome, Improvement};
use crate::pareto::find_pareto_improvement;
use rpr_data::FactSet;
use rpr_engine::{Budget, Outcome, Stop};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Exhaustively searches for a global improvement of `j` among the
/// repairs contained in `domain` (pass the full set for whole-instance
/// checking).
///
/// Legacy step-budget interface; [`check_global_exact_bounded`] is the
/// same search under a full [`Budget`] (deadline + cancellation).
///
/// # Errors
/// [`BudgetExceeded`] if the enumeration exceeds `budget` steps.
pub fn check_global_exact(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    domain: &FactSet,
    j: &FactSet,
    budget: usize,
) -> Result<CheckOutcome, BudgetExceeded> {
    let b = Budget::unlimited().with_max_work(budget as u64);
    check_global_exact_stop(cg, priority, domain, j, &b).map_err(|stop| match stop {
        Stop::Exceeded(_) => BudgetExceeded { budget },
        Stop::Cancelled => unreachable!("a private work-only budget is never cancelled"),
    })
}

/// [`check_global_exact`] under a caller-supplied [`Budget`]: the
/// search charges one work unit per recursion node and honours the
/// budget's deadline and cancellation token.
pub fn check_global_exact_bounded(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    domain: &FactSet,
    j: &FactSet,
    budget: &Budget,
) -> Outcome<CheckOutcome> {
    match check_global_exact_stop(cg, priority, domain, j, budget) {
        Ok(o) => Outcome::Done(o),
        Err(stop) => Outcome::from_stop(stop, None),
    }
}

/// The search proper, with [`Stop`] as the control-flow error so the
/// session dispatch can propagate it with `?`.
pub(crate) fn check_global_exact_stop(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    domain: &FactSet,
    j: &FactSet,
    budget: &Budget,
) -> Result<CheckOutcome, Stop> {
    // Repair pre-checks.
    for f in j.iter() {
        if let Some(g) = cg.conflicts_in(f, j).first() {
            return Ok(CheckOutcome::Inconsistent(f, g));
        }
    }
    // Cheap sound pre-check: a Pareto improvement is a global
    // improvement (and covers non-maximality).
    if let Some(imp) = find_pareto_improvement(cg, priority, j, domain) {
        return Ok(CheckOutcome::Improvable(imp));
    }

    // Exhaustive search over repairs within the domain. We enumerate
    // maximal consistent subsets of `domain` by branching over its
    // facts; each leaf is tested as a global improvement.
    let facts: Vec<_> = domain.iter().collect();
    Ok(match exhaustive_improvement(cg, priority, &facts, j, budget)? {
        Some(imp) => {
            debug_assert!(imp.is_valid_global_improvement(cg, priority, j));
            CheckOutcome::Improvable(imp)
        }
        None => CheckOutcome::Optimal,
    })
}

/// The exhaustive core: branches over `facts` (sorted ascending),
/// enumerating the maximal consistent subsets of that universe, and
/// returns the first global improvement of `j` found, if any.
///
/// `j` must be the candidate restricted to the same universe as
/// `facts`. Sessions call this once per conflict component (`facts` =
/// the component's members, `j` = the candidate ∩ component):
/// improvements never span components, so a component-local hit is a
/// valid global improvement, and the search pays `2^|component|`
/// instead of `2^|domain|`. One work unit is charged per recursion
/// node.
pub(crate) fn exhaustive_improvement(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    facts: &[rpr_data::FactId],
    j: &FactSet,
    budget: &Budget,
) -> Result<Option<Improvement>, Stop> {
    struct Search<'a> {
        cg: &'a ConflictGraph,
        priority: &'a PriorityRelation,
        j: &'a FactSet,
        facts: &'a [rpr_data::FactId],
        budget: &'a Budget,
        found: Option<Improvement>,
    }

    impl Search<'_> {
        fn recurse(&mut self, idx: usize, current: &mut FactSet) -> Result<(), Stop> {
            if self.found.is_some() {
                return Ok(());
            }
            self.budget.step()?;
            if idx == self.facts.len() {
                // Maximality within the branching universe.
                let maximal = self
                    .facts
                    .iter()
                    .all(|&f| current.contains(f) || self.cg.conflicts_with_set(f, current));
                if maximal && is_global_improvement(self.priority, self.j, current) {
                    self.found = Some(Improvement {
                        removed: self.j.difference(current),
                        added: current.difference(self.j),
                    });
                }
                return Ok(());
            }
            let f = self.facts[idx];
            if self.cg.conflicts_with_set(f, current) {
                return self.recurse(idx + 1, current);
            }
            current.insert(f);
            self.recurse(idx + 1, current)?;
            current.remove(f);
            if !self.cg.conflicts_of(f).is_empty() {
                self.recurse(idx + 1, current)?;
            }
            Ok(())
        }
    }

    let mut current = FactSet::empty(j.universe());
    let mut search = Search { cg, priority, j, facts, budget, found: None };
    search.recurse(0, &mut current)?;
    Ok(search.found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::Schema;
    use std::time::Duration;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// S4 = {1→2, 2→3} over a ternary relation — a hard schema.
    fn s4_instance() -> (ConflictGraph, Instance) {
        let sig = Signature::new([("R", 3)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("R", &[2][..], &[3][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in
            [("a", "x", "1"), ("a", "y", "1"), ("b", "x", "1"), ("b", "x", "2"), ("c", "y", "2")]
        {
            i.insert_named("R", [v(a), v(b), v(c)]).unwrap();
        }
        (ConflictGraph::new(&schema, &i), i)
    }

    #[test]
    fn agrees_with_plain_oracle_on_a_hard_schema() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1)), (FactId(3), FactId(2))])
            .unwrap();
        let domain = i.full_set();
        for j in enumerate_repairs(&cg, 1 << 22).unwrap() {
            let fast = check_global_exact(&cg, &p, &domain, &j, 1 << 22).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 22).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(&j));
        }
    }

    #[test]
    fn budget_is_respected() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::empty(i.len());
        let j = {
            let r = enumerate_repairs(&cg, 1 << 22).unwrap();
            r[0].clone()
        };
        // With an empty priority every repair is optimal, so the search
        // must run to exhaustion — and trip a tiny budget.
        assert!(check_global_exact(&cg, &p, &i.full_set(), &j, 2).is_err());
    }

    #[test]
    fn bounded_variant_agrees_and_degrades() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::empty(i.len());
        let j = enumerate_repairs(&cg, 1 << 22).unwrap()[0].clone();
        let domain = i.full_set();
        // Unlimited budget: identical verdict to the legacy interface.
        let full = check_global_exact_bounded(&cg, &p, &domain, &j, &Budget::unlimited())
            .expect_done("unlimited budget");
        assert_eq!(Ok(full), check_global_exact(&cg, &p, &domain, &j, 1 << 22));
        // Tiny work allowance: Exceeded with a work-exhausted report.
        let tight = Budget::unlimited().with_max_work(2);
        match check_global_exact_bounded(&cg, &p, &domain, &j, &tight) {
            Outcome::Exceeded { report, .. } => {
                assert_eq!(report.max_work, Some(2));
            }
            other => panic!("expected Exceeded, got {other:?}"),
        }
        // Pre-cancelled token: the search stops before exploring.
        let cancelled = Budget::unlimited();
        cancelled.cancel_token().cancel();
        assert!(matches!(
            check_global_exact_bounded(&cg, &p, &domain, &j, &cancelled),
            Outcome::Cancelled { .. }
        ));
        // Expired deadline behaves like Exceeded(DeadlineExpired).
        let expired = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        match check_global_exact_bounded(&cg, &p, &domain, &j, &expired) {
            Outcome::Exceeded { report, .. } => {
                assert_eq!(report.reason, rpr_engine::ExceedReason::DeadlineExpired);
            }
            other => panic!("expected Exceeded(DeadlineExpired), got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_input_short_circuits() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::empty(i.len());
        let bad = i.set_of([0, 1].map(FactId));
        assert!(matches!(
            check_global_exact(&cg, &p, &i.full_set(), &bad, 1024).unwrap(),
            CheckOutcome::Inconsistent(..)
        ));
    }
}
