//! Exact (exponential) globally-optimal repair checking for hard
//! schemas.
//!
//! On the coNP-complete side of the dichotomy nothing polynomial exists
//! unless P = NP, so the dispatching checker falls back to exhaustive
//! search over repairs with early termination. Compared to the plain
//! oracle in [`crate::brute`], this search prunes with the one cheap
//! sound test available — the Pareto pre-check — and carries an
//! explicit step budget so callers can bound worst-case behaviour.
//! The benchmark `dichotomy_gap` measures exactly this fall-back
//! against the polynomial algorithms.

use crate::improvement::{is_global_improvement, BudgetExceeded, CheckOutcome, Improvement};
use crate::pareto::find_pareto_improvement;
use rpr_data::FactSet;
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Exhaustively searches for a global improvement of `j` among the
/// repairs contained in `domain` (pass the full set for whole-instance
/// checking).
///
/// # Errors
/// [`BudgetExceeded`] if the enumeration exceeds `budget` steps.
pub fn check_global_exact(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    domain: &FactSet,
    j: &FactSet,
    budget: usize,
) -> Result<CheckOutcome, BudgetExceeded> {
    // Repair pre-checks.
    for f in j.iter() {
        if let Some(g) = cg.conflicts_in(f, j).first() {
            return Ok(CheckOutcome::Inconsistent(f, g));
        }
    }
    // Cheap sound pre-check: a Pareto improvement is a global
    // improvement (and covers non-maximality).
    if let Some(imp) = find_pareto_improvement(cg, priority, j, domain) {
        return Ok(CheckOutcome::Improvable(imp));
    }

    // Exhaustive search over repairs within the domain. We enumerate
    // maximal consistent subsets of `domain` by branching over its
    // facts; each leaf is tested as a global improvement.
    let facts: Vec<_> = domain.iter().collect();
    let mut current = FactSet::empty(j.universe());
    let mut steps = 0usize;
    let mut found: Option<Improvement> = None;

    #[allow(clippy::too_many_arguments)] // internal recursion carries the whole search state
    fn recurse(
        cg: &ConflictGraph,
        priority: &PriorityRelation,
        j: &FactSet,
        facts: &[rpr_data::FactId],
        idx: usize,
        current: &mut FactSet,
        steps: &mut usize,
        budget: usize,
        found: &mut Option<Improvement>,
    ) -> Result<(), BudgetExceeded> {
        if found.is_some() {
            return Ok(());
        }
        *steps += 1;
        if *steps > budget {
            return Err(BudgetExceeded { budget });
        }
        if idx == facts.len() {
            // Maximality within the domain.
            let maximal =
                facts.iter().all(|&f| current.contains(f) || cg.conflicts_with_set(f, current));
            if maximal && is_global_improvement(priority, j, current) {
                *found = Some(Improvement {
                    removed: j.difference(current),
                    added: current.difference(j),
                });
            }
            return Ok(());
        }
        let f = facts[idx];
        if cg.conflicts_with_set(f, current) {
            return recurse(cg, priority, j, facts, idx + 1, current, steps, budget, found);
        }
        current.insert(f);
        recurse(cg, priority, j, facts, idx + 1, current, steps, budget, found)?;
        current.remove(f);
        if !cg.conflicts_of(f).is_empty() {
            recurse(cg, priority, j, facts, idx + 1, current, steps, budget, found)?;
        }
        Ok(())
    }

    recurse(cg, priority, j, &facts, 0, &mut current, &mut steps, budget, &mut found)?;
    Ok(match found {
        Some(imp) => {
            debug_assert!(imp.is_valid_global_improvement(cg, priority, j));
            CheckOutcome::Improvable(imp)
        }
        None => CheckOutcome::Optimal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// S4 = {1→2, 2→3} over a ternary relation — a hard schema.
    fn s4_instance() -> (ConflictGraph, Instance) {
        let sig = Signature::new([("R", 3)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("R", &[2][..], &[3][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in
            [("a", "x", "1"), ("a", "y", "1"), ("b", "x", "1"), ("b", "x", "2"), ("c", "y", "2")]
        {
            i.insert_named("R", [v(a), v(b), v(c)]).unwrap();
        }
        (ConflictGraph::new(&schema, &i), i)
    }

    #[test]
    fn agrees_with_plain_oracle_on_a_hard_schema() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1)), (FactId(3), FactId(2))])
            .unwrap();
        let domain = i.full_set();
        for j in enumerate_repairs(&cg, 1 << 22).unwrap() {
            let fast = check_global_exact(&cg, &p, &domain, &j, 1 << 22).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 22).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(&j));
        }
    }

    #[test]
    fn budget_is_respected() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::empty(i.len());
        let j = {
            let r = enumerate_repairs(&cg, 1 << 22).unwrap();
            r[0].clone()
        };
        // With an empty priority every repair is optimal, so the search
        // must run to exhaustion — and trip a tiny budget.
        assert!(check_global_exact(&cg, &p, &i.full_set(), &j, 2).is_err());
    }

    #[test]
    fn inconsistent_input_short_circuits() {
        let (cg, i) = s4_instance();
        let p = PriorityRelation::empty(i.len());
        let bad = i.set_of([0, 1].map(FactId));
        assert!(matches!(
            check_global_exact(&cg, &p, &i.full_set(), &bad, 1024).unwrap(),
            CheckOutcome::Inconsistent(..)
        ));
    }
}
