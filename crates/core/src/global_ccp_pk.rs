//! Globally-optimal repair checking for primary-key assignments over
//! ccp-instances (§7.2.1, Lemma 7.3, Proposition 7.4).
//!
//! When every `Δ|R` is equivalent to a single key constraint and
//! priorities may cross conflicts (and relations!), Lemma 7.3 reduces
//! the check to cycle detection in the bipartite directed graph
//! `G_{J, I\J}`: vertices are the facts of `I`; `f → g` for `f ∈ J`,
//! `g ∈ I \ J` when `f` and `g` conflict, and `g → f` when `g ≻ f`.
//! A simple cycle `f1 → g1 → … → gk → f1` encodes the improvement
//! `(J \ {f1..fk}) ∪ {g1..gk}`, consistent because all FDs are keys.

use crate::improvement::{CheckOutcome, Improvement};
use rpr_data::{FactId, FactSet};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Runs the Lemma 7.3 check on the whole instance.
///
/// Precondition (checked by the dispatching
/// [`CcpChecker`](crate::checker::CcpChecker)): the schema is a
/// primary-key assignment, so every conflict is a key-agreement.
pub fn check_global_ccp_pk(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
) -> CheckOutcome {
    // Repair pre-checks ("We assume that J is a repair, since the
    // problem is straightforward otherwise").
    for f in j.iter() {
        if let Some(g) = cg.conflicts_in(f, j).first() {
            return CheckOutcome::Inconsistent(f, g);
        }
    }
    let outside = j.complement();
    for g in outside.iter() {
        if !cg.conflicts_with_set(g, j) {
            let mut added = FactSet::empty(j.universe());
            added.insert(g);
            return CheckOutcome::Improvable(Improvement {
                removed: FactSet::empty(j.universe()),
                added,
            });
        }
    }

    // DFS over G_{J, I\J}, walking J-facts; each move goes
    // f —conflict→ g —≻→ f′ in one step.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = j.universe();
    let mut color = vec![WHITE; n];
    // parent[f′] = (f, g): reached f′ from f via outside fact g.
    let mut parent: Vec<Option<(FactId, FactId)>> = vec![None; n];

    for start in j.iter() {
        if color[start.index()] != WHITE {
            continue;
        }
        // Stack entries: (J-fact, successor list, next index).
        type Frame = (FactId, Vec<(FactId, FactId)>, usize);
        let mut stack: Vec<Frame> = vec![(start, successors(cg, priority, j, start), 0)];
        color[start.index()] = GRAY;
        while let Some((f, succs, idx)) = stack.last_mut() {
            if *idx < succs.len() {
                let (g, f2) = succs[*idx];
                *idx += 1;
                match color[f2.index()] {
                    WHITE => {
                        color[f2.index()] = GRAY;
                        parent[f2.index()] = Some((*f, g));
                        let next = successors(cg, priority, j, f2);
                        stack.push((f2, next, 0));
                    }
                    GRAY => {
                        // Cycle f2 ⇒ … ⇒ f ⇒(g) f2.
                        let mut removed = FactSet::empty(n);
                        let mut added = FactSet::empty(n);
                        removed.insert(*f);
                        added.insert(g);
                        let mut cur = *f;
                        while cur != f2 {
                            let (prev, via) = parent[cur.index()].expect("gray chain");
                            removed.insert(prev);
                            added.insert(via);
                            cur = prev;
                        }
                        let witness = Improvement { removed, added };
                        debug_assert!(witness.is_valid_global_improvement(cg, priority, j));
                        return CheckOutcome::Improvable(witness);
                    }
                    _ => {}
                }
            } else {
                color[f.index()] = BLACK;
                stack.pop();
            }
        }
    }
    CheckOutcome::Optimal
}

/// Two-step successors of a `J`-fact in `G_{J, I\J}`: pairs `(g, f′)`
/// where `f` conflicts with `g ∈ I \ J` and `g ≻ f′ ∈ J`.
fn successors(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    f: FactId,
) -> Vec<(FactId, FactId)> {
    let mut out = Vec::new();
    for g in cg.conflicts_of(f).difference(j).iter() {
        for &f2 in priority.worse_than(g) {
            if j.contains(f2) {
                out.push((g, f2));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// Example 7.2: R binary, Δ = {R : 1→2},
    /// I = {(0,1),(0,2),(0,c),(1,a),(1,b),(1,3)},
    /// priorities R(0,c) ≻ R(1,b) ≻ R(1,c)… (the second chain is
    /// R(1,3) ≻ R(0,2) ≻ R(0,1)), J = {R(0,2), R(1,b)}.
    fn example_7_2() -> (ConflictGraph, Instance, PriorityRelation) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for (a, b) in [("0", "1"), ("0", "2"), ("0", "c"), ("1", "a"), ("1", "b"), ("1", "3")] {
            i.insert_named("R", [v(a), v(b)]).unwrap();
        }
        // ids: 0:(0,1) 1:(0,2) 2:(0,c) 3:(1,a) 4:(1,b) 5:(1,3)
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(2), FactId(4)), // R(0,c) ≻ R(1,b)   — cross-conflict!
                (FactId(5), FactId(1)), // R(1,3) ≻ R(0,2)   — cross-conflict!
                (FactId(5), FactId(0)), // R(1,3) ≻ R(0,1)
                (FactId(1), FactId(0)), // R(0,2) ≻ R(0,1)
            ],
        )
        .unwrap();
        (cg, i, p)
    }

    #[test]
    fn example_7_2_j_is_improvable_via_the_cycle() {
        // Figure 6: J = {R(0,2), R(1,b)}; the graph has the cycle
        // R(0,2) → R(1,3) → … : R(0,2) conflicts R(0,c), R(0,c) ≻ R(1,b);
        // R(1,b) conflicts R(1,3), R(1,3) ≻ R(0,2). Cycle of length 2.
        let (cg, i, p) = example_7_2();
        let j = i.set_of([1, 4].map(FactId));
        assert!(cg.is_repair(&j));
        match check_global_ccp_pk(&cg, &p, &j) {
            CheckOutcome::Improvable(imp) => {
                assert_eq!(imp.removed.iter().collect::<Vec<_>>(), vec![FactId(1), FactId(4)]);
                assert_eq!(imp.added.iter().collect::<Vec<_>>(), vec![FactId(2), FactId(5)]);
                assert!(imp.is_valid_global_improvement(&cg, &p, &j));
            }
            other => panic!("expected cycle improvement, got {other:?}"),
        }
    }

    #[test]
    fn agrees_with_brute_force_on_example_7_2() {
        let (cg, _, p) = example_7_2();
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = check_global_ccp_pk(&cg, &p, &j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow, "disagreement on {j:?}");
        }
    }

    #[test]
    fn cross_relation_priorities_are_respected() {
        // Two relations, each with key 1: a priority from an S-fact to
        // an R-fact lets improving S enable improving R.
        let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("S", &[1][..], &[2][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("k"), v("x")]).unwrap(); // 0
        i.insert_named("R", [v("k"), v("y")]).unwrap(); // 1
        i.insert_named("S", [v("m"), v("u")]).unwrap(); // 2
        i.insert_named("S", [v("m"), v("w")]).unwrap(); // 3
        let cg = ConflictGraph::new(&schema, &i);
        // R(k,y) ≻ S(m,u) and S(m,w) ≻ R(k,x): improving J={R(k,x),S(m,u)}
        // requires swapping both relations at once.
        let p = PriorityRelation::new(i.len(), [(FactId(1), FactId(2)), (FactId(3), FactId(0))])
            .unwrap();
        let j = i.set_of([0, 2].map(FactId));
        match check_global_ccp_pk(&cg, &p, &j) {
            CheckOutcome::Improvable(imp) => {
                assert_eq!(imp.removed.len(), 2);
                assert_eq!(imp.added.len(), 2);
                assert!(imp.is_valid_global_improvement(&cg, &p, &j));
            }
            other => panic!("expected cross-relation improvement, got {other:?}"),
        }
        // The swapped repair is optimal, as are the mixed ones.
        for ids in [[1u32, 3], [0, 3], [1, 2]] {
            let jj = i.set_of(ids.map(FactId));
            let fast = check_global_ccp_pk(&cg, &p, &jj).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &jj, 1 << 20).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn non_repairs_rejected() {
        let (cg, i, p) = example_7_2();
        let bad = i.set_of([0, 1].map(FactId));
        assert!(matches!(check_global_ccp_pk(&cg, &p, &bad), CheckOutcome::Inconsistent(..)));
        let partial = i.set_of([1].map(FactId));
        match check_global_ccp_pk(&cg, &p, &partial) {
            CheckOutcome::Improvable(imp) => assert!(imp.removed.is_empty()),
            other => panic!("expected vacuous improvement, got {other:?}"),
        }
    }
}
