//! Global and Pareto improvements (Definition 2.4) and checked
//! improvement witnesses.

use rpr_data::{FactId, FactSet};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// A proposed exchange turning `J` into `J′ = (J \ removed) ∪ added`.
///
/// Every "not optimal" verdict produced by the checkers carries one of
/// these, and the verdict can be re-validated from first principles
/// with [`Improvement::is_valid_global_improvement`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Improvement {
    /// Facts removed from `J` (a subset of `J`).
    pub removed: FactSet,
    /// Facts added (a subset of `I \ J`).
    pub added: FactSet,
}

impl Improvement {
    /// Applies the exchange to `j`.
    pub fn apply(&self, j: &FactSet) -> FactSet {
        j.difference(&self.removed).union(&self.added)
    }

    /// Validates from the definition that applying this exchange to `j`
    /// yields a consistent global improvement of `j`.
    pub fn is_valid_global_improvement(
        &self,
        cg: &ConflictGraph,
        priority: &PriorityRelation,
        j: &FactSet,
    ) -> bool {
        if !self.removed.is_subset(j) || !self.added.is_disjoint(j) {
            return false;
        }
        let j2 = self.apply(j);
        cg.is_consistent_set(&j2) && is_global_improvement(priority, j, &j2)
    }
}

/// Definition 2.4: is `j2` a **global improvement** of `j`?
///
/// `j2 ≠ j`, and every fact of `j \ j2` is beaten by some fact of
/// `j2 \ j`. Consistency of `j2` is *not* part of this predicate (the
/// definition quantifies over consistent subinstances; callers check
/// consistency where it is not structurally guaranteed).
pub fn is_global_improvement(priority: &PriorityRelation, j: &FactSet, j2: &FactSet) -> bool {
    if j == j2 {
        return false;
    }
    let lost = j.difference(j2);
    let gained = j2.difference(j);
    lost.iter().all(|f_prime| priority.set_improves(&gained, f_prime))
}

/// Definition 2.4: is `j2` a **Pareto improvement** of `j`?
///
/// Some fact of `j2 \ j` beats *every* fact of `j \ j2`. (When
/// `j ⊊ j2`, the condition holds vacuously for any added fact —
/// consistent proper supersets are always Pareto improvements.)
pub fn is_pareto_improvement(priority: &PriorityRelation, j: &FactSet, j2: &FactSet) -> bool {
    let lost = j.difference(j2);
    let gained = j2.difference(j);
    gained.iter().any(|f| priority.beats_all(f, &lost))
}

/// The outcome of a globally-optimal repair check.
///
/// `#[must_use]`: dropping a check verdict silently is almost always a
/// bug — an `Improvable`/`Inconsistent` answer carries the witness the
/// caller asked the checker to produce.
#[must_use = "a check verdict carries the optimality answer and its witness — inspect it"]
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckOutcome {
    /// `J` is a globally-optimal repair of `I`.
    Optimal,
    /// `J` is consistent but has a global improvement (hence is not a
    /// globally-optimal repair); the witness is attached.
    Improvable(Improvement),
    /// `J` is not even consistent; the conflicting pair is attached.
    Inconsistent(FactId, FactId),
}

impl CheckOutcome {
    /// Is the answer to "is `J` a globally-optimal repair?" *yes*?
    pub fn is_optimal(&self) -> bool {
        matches!(self, CheckOutcome::Optimal)
    }
}

/// Budget error for the exponential fall-back paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The exhausted budget (number of search steps).
    pub budget: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "search budget of {} steps exceeded", self.budget)
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// Example 2.5's improvements, restricted to the LibLoc relation
    /// where all the action happens:
    /// J1 ∩ LibLoc = {d1e, f2b, f3a}, J2 ∩ LibLoc = {d1e, g2a, e3b}.
    fn setup() -> (ConflictGraph, Instance, PriorityRelation) {
        let sig = Signature::new([("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [("LibLoc", &[1][..], &[2][..]), ("LibLoc", &[2][..], &[1][..])],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        for (a, b) in [
            ("lib1", "almaden"),  // 0 d1a
            ("lib1", "edenvale"), // 1 d1e
            ("lib2", "almaden"),  // 2 g2a
            ("lib2", "bascom"),   // 3 f2b
            ("lib3", "almaden"),  // 4 f3a
            ("lib3", "cambrian"), // 5 f3c
            ("lib1", "bascom"),   // 6 e1b
            ("lib3", "bascom"),   // 7 e3b
        ] {
            i.insert_named("LibLoc", [v(a), v(b)]).unwrap();
        }
        let cg = ConflictGraph::new(&schema, &i);
        // Example 2.3: g ≻ f and e ≻ d for conflicting pairs.
        let edges = [
            (FactId(2), FactId(3)), // g2a ≻ f2b
            (FactId(2), FactId(4)), // g2a ≻ f3a
            (FactId(6), FactId(0)), // e1b ≻ d1a
            (FactId(7), FactId(4)), // e3b ≻ f3a
        ];
        let p = PriorityRelation::new(i.len(), edges).unwrap();
        (cg, i, p)
    }

    #[test]
    fn example_2_5_global_and_pareto() {
        let (cg, i, p) = setup();
        let j1 = i.set_of([FactId(1), FactId(3), FactId(4)]); // d1e, f2b, f3a
        let j2 = i.set_of([FactId(1), FactId(2), FactId(7)]); // d1e, g2a, e3b
                                                              // J1 \ J2 = {f2b, f3a}; g2a ≻ both → Pareto and global improvement.
        assert!(cg.is_consistent_set(&j2));
        assert!(is_global_improvement(&p, &j1, &j2));
        assert!(is_pareto_improvement(&p, &j1, &j2));
        // Not the other way.
        assert!(!is_global_improvement(&p, &j2, &j1));
        assert!(!is_pareto_improvement(&p, &j2, &j1));
    }

    #[test]
    fn global_but_not_pareto() {
        // Build J3/J4-style sets: lost {d1a→?}: use lost = {f2b, f3a, d1a}
        // improved by distinct facts, none dominating all.
        let (cg, i, p) = setup();
        let j3 = i.set_of([FactId(0), FactId(3), FactId(4)]); // d1a, f2b, f3a
        let j4 = i.set_of([FactId(6), FactId(2)]); // e1b, g2a
        assert!(cg.is_consistent_set(&j4));
        // e1b ≻ d1a, g2a ≻ f2b, g2a ≻ f3a: global improvement.
        assert!(is_global_improvement(&p, &j3, &j4));
        // But no single added fact beats all three: not Pareto.
        assert!(!is_pareto_improvement(&p, &j3, &j4));
    }

    #[test]
    fn proper_supersets_improve_vacuously() {
        let (_, i, p) = setup();
        let small = i.set_of([FactId(1)]);
        let big = i.set_of([FactId(1), FactId(3)]);
        assert!(is_global_improvement(&p, &small, &big));
        assert!(is_pareto_improvement(&p, &small, &big));
        // Equal sets never improve.
        assert!(!is_global_improvement(&p, &small, &small));
        assert!(!is_pareto_improvement(&p, &small, &small));
    }

    #[test]
    fn improvement_witness_validation() {
        let (cg, i, p) = setup();
        let j1 = i.set_of([FactId(1), FactId(3), FactId(4)]);
        let imp = Improvement {
            removed: i.set_of([FactId(3), FactId(4)]),
            added: i.set_of([FactId(2), FactId(7)]),
        };
        assert_eq!(
            imp.apply(&j1).iter().collect::<Vec<_>>(),
            vec![FactId(1), FactId(2), FactId(7)]
        );
        assert!(imp.is_valid_global_improvement(&cg, &p, &j1));
        // Removing something not in J invalidates the witness.
        let bad = Improvement { removed: i.set_of([FactId(5)]), added: i.set_of([FactId(2)]) };
        assert!(!bad.is_valid_global_improvement(&cg, &p, &j1));
        // Adding something already in J invalidates it too.
        let bad2 = Improvement { removed: i.empty_set(), added: i.set_of([FactId(1)]) };
        assert!(!bad2.is_valid_global_improvement(&cg, &p, &j1));
    }

    #[test]
    fn outcome_accessor() {
        assert!(CheckOutcome::Optimal.is_optimal());
        assert!(!CheckOutcome::Inconsistent(FactId(0), FactId(1)).is_optimal());
    }
}
