//! Brute-force oracles.
//!
//! Definitional, exponential-time implementations of every notion the
//! polynomial algorithms compute. These are first-class library members
//! (guarded by explicit budgets) because the differential tests and the
//! experiment harness check every fast path against them, and because
//! on the hard side of the dichotomy nothing better than exponential
//! search exists unless P = NP.
//!
//! Every oracle exists in two forms: the legacy step-budget interface
//! (`Result<_, BudgetExceeded>`, counting recursion steps against a
//! plain `usize`) and a `_bounded` variant running under an
//! [`rpr_engine::Budget`] — same search, same step charging, but with a
//! wall-clock deadline, cooperative cancellation, and an
//! [`Outcome`] that carries whatever partial answer had accumulated
//! when a limit tripped. The legacy functions are thin wrappers over
//! the bounded implementations, so there is exactly one search.
//!
//! A useful reduction keeps the search space small: if `J` has a global
//! (resp. Pareto) improvement, it has one that is a *repair* — extend
//! any improving `J′` to a maximal consistent `J″ ⊇ J′`; then
//! `J \ J″ ⊆ J \ J′` and `J′ \ J ⊆ J″ \ J`, so the improvement
//! condition transfers. The oracles therefore only enumerate repairs,
//! i.e. the maximal independent sets of the conflict graph.

use crate::improvement::{is_global_improvement, BudgetExceeded, Improvement};
use crate::session::CheckSession;
use rpr_data::{FactId, FactSet};
use rpr_engine::{Budget, Outcome, Stop};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Maps a [`Stop`] from a private work-only budget back to the legacy
/// error. Such budgets have no deadline and an unshared token, so the
/// only reachable stop is work exhaustion.
fn legacy_stop(stop: Stop, budget: usize) -> BudgetExceeded {
    match stop {
        Stop::Exceeded(_) => BudgetExceeded { budget },
        Stop::Cancelled => unreachable!("a private work-only budget is never cancelled"),
    }
}

/// Enumerates all repairs (maximal consistent subinstances) of the
/// instance underlying `cg`.
///
/// # Errors
/// [`BudgetExceeded`] when more than `budget` recursion steps are
/// needed.
pub fn enumerate_repairs(
    cg: &ConflictGraph,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    let b = Budget::unlimited().with_max_work(budget as u64);
    let mut out = Vec::new();
    for_each_repair_stop(cg, &b, |r| {
        out.push(r.clone());
        true
    })
    .map_err(|stop| legacy_stop(stop, budget))?;
    Ok(out)
}

/// [`enumerate_repairs`] under a caller-supplied [`Budget`]. On
/// [`Outcome::Exceeded`]/[`Outcome::Cancelled`] the partial answer is
/// the repairs enumerated before the limit tripped.
pub fn enumerate_repairs_bounded(cg: &ConflictGraph, budget: &Budget) -> Outcome<Vec<FactSet>> {
    let mut out = Vec::new();
    match for_each_repair_stop(cg, budget, |r| {
        out.push(r.clone());
        true
    }) {
        Ok(()) => Outcome::Done(out),
        Err(stop) => Outcome::from_stop(stop, Some(out)),
    }
}

/// Streams every repair to `visit`; stop early by returning `false`.
///
/// # Errors
/// [`BudgetExceeded`] when more than `budget` recursion steps are
/// needed.
pub fn for_each_repair(
    cg: &ConflictGraph,
    budget: usize,
    visit: impl FnMut(&FactSet) -> bool,
) -> Result<(), BudgetExceeded> {
    let b = Budget::unlimited().with_max_work(budget as u64);
    for_each_repair_stop(cg, &b, visit).map_err(|stop| legacy_stop(stop, budget))
}

/// [`for_each_repair`] under a caller-supplied [`Budget`]: streams
/// every repair to `visit` until exhaustion, early visitor stop, or a
/// budget stop. Any partial answer lives in the visitor's state.
pub fn for_each_repair_bounded(
    cg: &ConflictGraph,
    budget: &Budget,
    visit: impl FnMut(&FactSet) -> bool,
) -> Outcome<()> {
    match for_each_repair_stop(cg, budget, visit) {
        Ok(()) => Outcome::Done(()),
        Err(stop) => Outcome::from_stop(stop, None),
    }
}

/// The enumeration proper: depth-first in/out branching over facts in
/// id order, one work unit per recursion node.
fn for_each_repair_stop(
    cg: &ConflictGraph,
    budget: &Budget,
    mut visit: impl FnMut(&FactSet) -> bool,
) -> Result<(), Stop> {
    let n = cg.len();
    let mut current = FactSet::empty(n);
    // A fact conflicting with the current set is forced out; at the
    // leaves we keep exactly the maximal sets (every excluded fact must
    // conflict).
    fn recurse(
        cg: &ConflictGraph,
        i: usize,
        current: &mut FactSet,
        budget: &Budget,
        visit: &mut impl FnMut(&FactSet) -> bool,
    ) -> Result<bool, Stop> {
        budget.step()?;
        let n = cg.len();
        if i == n {
            // Maximality check: every fact outside `current` conflicts.
            let maximal = (0..n).all(|k| {
                let id = FactId(k as u32);
                current.contains(id) || cg.conflicts_with_set(id, current)
            });
            if maximal {
                return Ok(visit(current));
            }
            return Ok(true);
        }
        let id = FactId(i as u32);
        if cg.conflicts_with_set(id, current) {
            return recurse(cg, i + 1, current, budget, visit);
        }
        // Branch: include id…
        current.insert(id);
        if !recurse(cg, i + 1, current, budget, visit)? {
            current.remove(id);
            return Ok(false);
        }
        current.remove(id);
        // …or exclude it. Pruning: excluding is only useful if some
        // later or earlier fact conflicts with it (otherwise the leaf
        // fails the maximality check anyway).
        if !cg.conflicts_of(id).is_empty() && !recurse(cg, i + 1, current, budget, visit)? {
            return Ok(false);
        }
        Ok(true)
    }
    recurse(cg, 0, &mut current, budget, &mut visit).map(|_| ())
}

/// Finds a global improvement of `j` by scanning all repairs
/// (definitional oracle).
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn find_global_improvement_brute(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: usize,
) -> Result<Option<Improvement>, BudgetExceeded> {
    let b = Budget::unlimited().with_max_work(budget as u64);
    find_global_improvement_stop(cg, priority, j, &b).map_err(|stop| legacy_stop(stop, budget))
}

/// [`find_global_improvement_brute`] under a caller-supplied
/// [`Budget`]. No improvement had been found when a limit trips (the
/// scan stops at the first one), so degraded outcomes carry no partial.
pub fn find_global_improvement_brute_bounded(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: &Budget,
) -> Outcome<Option<Improvement>> {
    match find_global_improvement_stop(cg, priority, j, budget) {
        Ok(found) => Outcome::Done(found),
        Err(stop) => Outcome::from_stop(stop, None),
    }
}

fn find_global_improvement_stop(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: &Budget,
) -> Result<Option<Improvement>, Stop> {
    let mut found = None;
    for_each_repair_stop(cg, budget, |r| {
        if is_global_improvement(priority, j, r) {
            found = Some(Improvement { removed: j.difference(r), added: r.difference(j) });
            false
        } else {
            true
        }
    })?;
    Ok(found)
}

/// Is `j` a globally-optimal repair, by definition (oracle)?
///
/// # Errors
/// [`BudgetExceeded`] if repair enumeration exceeds the budget.
pub fn is_globally_optimal_brute(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: usize,
) -> Result<bool, BudgetExceeded> {
    let b = Budget::unlimited().with_max_work(budget as u64);
    is_globally_optimal_stop(cg, priority, j, &b).map_err(|stop| legacy_stop(stop, budget))
}

/// [`is_globally_optimal_brute`] under a caller-supplied [`Budget`].
pub fn is_globally_optimal_brute_bounded(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: &Budget,
) -> Outcome<bool> {
    match is_globally_optimal_stop(cg, priority, j, budget) {
        Ok(ans) => Outcome::Done(ans),
        Err(stop) => Outcome::from_stop(stop, None),
    }
}

fn is_globally_optimal_stop(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: &Budget,
) -> Result<bool, Stop> {
    if !cg.is_consistent_set(j) {
        return Ok(false);
    }
    if !cg.is_repair(j) {
        return Ok(false);
    }
    Ok(find_global_improvement_stop(cg, priority, j, budget)?.is_none())
}

/// Enumerates all globally-optimal repairs (oracle).
///
/// # Errors
/// [`BudgetExceeded`] if the doubly-nested enumeration exceeds the
/// budget.
pub fn globally_optimal_repairs(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    let repairs = enumerate_repairs(cg, budget)?;
    let mut out = Vec::new();
    for j in &repairs {
        if !repairs.iter().any(|r| is_global_improvement(priority, j, r)) {
            out.push(j.clone());
        }
    }
    Ok(out)
}

/// [`globally_optimal_repairs`] under a caller-supplied [`Budget`].
/// The pairwise filter charges one work unit per compared pair, so the
/// quadratic post-pass is bounded too; on degradation the partial
/// answer is the prefix of repairs already confirmed optimal.
pub fn globally_optimal_repairs_bounded(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: &Budget,
) -> Outcome<Vec<FactSet>> {
    let repairs = match enumerate_repairs_bounded(cg, budget) {
        Outcome::Done(r) => r,
        // A prefix of the repairs cannot *confirm* optimality (every
        // later repair is a potential improvement), so an incomplete
        // enumeration degrades with no partial answer.
        Outcome::Exceeded { report, .. } => return Outcome::Exceeded { partial: None, report },
        Outcome::Cancelled { .. } => return Outcome::Cancelled { partial: None },
        Outcome::Panicked { report, .. } => return Outcome::Panicked { partial: None, report },
    };
    let mut out = Vec::new();
    for j in &repairs {
        let mut improvable = false;
        for r in &repairs {
            if let Err(stop) = budget.step() {
                return Outcome::from_stop(stop, Some(out));
            }
            if is_global_improvement(priority, j, r) {
                improvable = true;
                break;
            }
        }
        if !improvable {
            out.push(j.clone());
        }
    }
    Outcome::Done(out)
}

/// Counts globally-optimal repairs; `unique` is a common special case
/// (the "unambiguous cleaning" question of the concluding remarks).
///
/// # Errors
/// [`BudgetExceeded`] if enumeration exceeds the budget.
pub fn count_globally_optimal_repairs(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: usize,
) -> Result<usize, BudgetExceeded> {
    Ok(globally_optimal_repairs(cg, priority, budget)?.len())
}

/// [`count_globally_optimal_repairs`] under a caller-supplied
/// [`Budget`]; the partial count on degradation is a lower bound.
pub fn count_globally_optimal_repairs_bounded(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    budget: &Budget,
) -> Outcome<usize> {
    globally_optimal_repairs_bounded(cg, priority, budget).map(|r| r.len())
}

/// Enumerates all repairs against a [`CheckSession`]'s cached conflict
/// graph (no per-call graph construction).
///
/// # Errors
/// [`BudgetExceeded`] when more than `budget` recursion steps are
/// needed.
pub fn enumerate_repairs_session(
    session: &CheckSession<'_>,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    enumerate_repairs(session.conflict_graph(), budget)
}

/// Streams every repair of the session's instance to `visit`; stop
/// early by returning `false`.
///
/// # Errors
/// [`BudgetExceeded`] when more than `budget` recursion steps are
/// needed.
pub fn for_each_repair_session(
    session: &CheckSession<'_>,
    budget: usize,
    visit: impl FnMut(&FactSet) -> bool,
) -> Result<(), BudgetExceeded> {
    for_each_repair(session.conflict_graph(), budget, visit)
}

/// Enumerates the globally-optimal repairs by filtering the repair
/// enumeration through the session's dispatched (polynomial where
/// possible) checker, fanning the checks out across the session's
/// workers. Agrees with [`globally_optimal_repairs`] and keeps the
/// enumeration order.
///
/// # Errors
/// [`BudgetExceeded`] if enumeration or a hard-side check exceeds its
/// budget.
pub fn globally_optimal_repairs_session(
    session: &CheckSession<'_>,
    budget: usize,
) -> Result<Vec<FactSet>, BudgetExceeded> {
    let repairs = enumerate_repairs_session(session, budget)?;
    let outcomes = session.check_batch(&repairs);
    let mut out = Vec::new();
    for (j, outcome) in repairs.into_iter().zip(outcomes) {
        if outcome?.is_optimal() {
            out.push(j);
        }
    }
    Ok(out)
}

/// [`globally_optimal_repairs_session`] under a caller-supplied
/// [`Budget`]: bounded enumeration, then a bounded parallel batch
/// check. On degradation — a tripped limit, a cancellation, or a
/// panicking candidate — the partial answer is every repair whose check
/// *did* complete with an optimal verdict; the first non-`Done`
/// candidate outcome (in enumeration order) determines the variant.
pub fn globally_optimal_repairs_session_bounded(
    session: &CheckSession<'_>,
    budget: &Budget,
) -> Outcome<Vec<FactSet>> {
    let (repairs, enumeration_stopped) =
        match enumerate_repairs_bounded(session.conflict_graph(), budget) {
            Outcome::Done(r) => (r, None),
            Outcome::Exceeded { partial, report } => {
                (partial.unwrap_or_default(), Some(Stop::Exceeded(report)))
            }
            Outcome::Cancelled { partial } => (partial.unwrap_or_default(), Some(Stop::Cancelled)),
            Outcome::Panicked { partial, report } => return Outcome::Panicked { partial, report },
        };
    let outcomes = session.check_batch_bounded(&repairs, budget);
    let mut out = Vec::new();
    let mut degraded: Option<Outcome<Vec<FactSet>>> = None;
    for (j, outcome) in repairs.into_iter().zip(outcomes) {
        match outcome {
            Outcome::Done(o) if o.is_optimal() => out.push(j),
            Outcome::Done(_) => {}
            other if degraded.is_none() => degraded = Some(other.map(|_| Vec::new())),
            _ => {}
        }
    }
    match degraded {
        Some(d) => d.with_partial(out),
        None => match enumeration_stopped {
            Some(stop) => Outcome::from_stop(stop, Some(out)),
            None => Outcome::Done(out),
        },
    }
}

/// Counts globally-optimal repairs via
/// [`globally_optimal_repairs_session`].
///
/// # Errors
/// [`BudgetExceeded`] if enumeration or a hard-side check exceeds its
/// budget.
pub fn count_globally_optimal_repairs_session(
    session: &CheckSession<'_>,
    budget: usize,
) -> Result<usize, BudgetExceeded> {
    Ok(globally_optimal_repairs_session(session, budget)?.len())
}

/// [`count_globally_optimal_repairs_session`] under a caller-supplied
/// [`Budget`]; the partial count on degradation is a lower bound.
pub fn count_globally_optimal_repairs_session_bounded(
    session: &CheckSession<'_>,
    budget: &Budget,
) -> Outcome<usize> {
    globally_optimal_repairs_session_bounded(session, budget).map(|r| r.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// R(a,1..3) ∪ R(b,1..2) under R:1→2: repairs pick one fact per group.
    fn grouped() -> (ConflictGraph, Instance) {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for x in ["1", "2", "3"] {
            i.insert_named("R", [v("a"), v(x)]).unwrap();
        }
        for x in ["1", "2"] {
            i.insert_named("R", [v("b"), v(x)]).unwrap();
        }
        (ConflictGraph::new(&schema, &i), i)
    }

    #[test]
    fn repair_enumeration_counts() {
        let (cg, _) = grouped();
        let repairs = enumerate_repairs(&cg, 1 << 20).unwrap();
        // 3 choices × 2 choices.
        assert_eq!(repairs.len(), 6);
        for r in &repairs {
            assert!(cg.is_repair(r));
            assert_eq!(r.len(), 2);
        }
        // All distinct.
        let uniq: std::collections::HashSet<_> = repairs.iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn conflict_free_instance_has_one_repair() {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("1")]).unwrap();
        i.insert_named("R", [v("b"), v("1")]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let repairs = enumerate_repairs(&cg, 1 << 20).unwrap();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0], i.full_set());
    }

    #[test]
    fn empty_instance_has_the_empty_repair() {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let i = Instance::new(sig);
        let cg = ConflictGraph::new(&schema, &i);
        let repairs = enumerate_repairs(&cg, 1024).unwrap();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_empty());
    }

    #[test]
    fn budget_is_enforced() {
        let (cg, _) = grouped();
        assert!(enumerate_repairs(&cg, 3).is_err());
    }

    #[test]
    fn bounded_enumeration_degrades_with_a_partial_prefix() {
        let (cg, _) = grouped();
        let full = enumerate_repairs(&cg, 1 << 20).unwrap();
        // Unlimited: identical to the legacy interface.
        assert_eq!(
            enumerate_repairs_bounded(&cg, &Budget::unlimited()).expect_done("unlimited"),
            full
        );
        // Tight allowance: the partial is a strict prefix of the full
        // enumeration (same depth-first order).
        let tight = Budget::unlimited().with_max_work(12);
        match enumerate_repairs_bounded(&cg, &tight) {
            Outcome::Exceeded { partial: Some(prefix), report } => {
                assert!(prefix.len() < full.len());
                assert_eq!(prefix[..], full[..prefix.len()]);
                assert_eq!(report.max_work, Some(12));
            }
            other => panic!("expected Exceeded with partial, got {other:?}"),
        }
        // Cancellation mid-run surfaces as Cancelled (with a partial).
        let b = Budget::unlimited();
        b.cancel_token().cancel();
        assert!(matches!(
            enumerate_repairs_bounded(&cg, &b),
            Outcome::Cancelled { partial: Some(_) }
        ));
    }

    #[test]
    fn bounded_oracles_agree_with_legacy_on_full_budgets() {
        let (cg, i) = grouped();
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(1)),
                (FactId(1), FactId(2)),
                (FactId(0), FactId(2)),
                (FactId(3), FactId(4)),
            ],
        )
        .unwrap();
        let best = i.set_of([FactId(0), FactId(3)]);
        let b = Budget::unlimited();
        assert!(is_globally_optimal_brute_bounded(&cg, &p, &best, &b).expect_done("unlimited"));
        assert_eq!(
            globally_optimal_repairs_bounded(&cg, &p, &b).expect_done("unlimited"),
            globally_optimal_repairs(&cg, &p, 1 << 20).unwrap()
        );
        assert_eq!(count_globally_optimal_repairs_bounded(&cg, &p, &b).expect_done("unlimited"), 1);
        let j = i.set_of([FactId(1), FactId(3)]);
        assert_eq!(
            find_global_improvement_brute_bounded(&cg, &p, &j, &b).expect_done("unlimited"),
            find_global_improvement_brute(&cg, &p, &j, 1 << 20).unwrap()
        );
    }

    #[test]
    fn global_optimality_with_a_chain_priority() {
        let (cg, i) = grouped();
        // Prefer R(a,1) ≻ R(a,2) ≻ R(a,3) and R(b,1) ≻ R(b,2):
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(1)),
                (FactId(1), FactId(2)),
                (FactId(0), FactId(2)),
                (FactId(3), FactId(4)),
            ],
        )
        .unwrap();
        // The unique globally-optimal repair is {R(a,1), R(b,1)}.
        let best = i.set_of([FactId(0), FactId(3)]);
        assert!(is_globally_optimal_brute(&cg, &p, &best, 1 << 20).unwrap());
        let worse = i.set_of([FactId(1), FactId(3)]);
        assert!(!is_globally_optimal_brute(&cg, &p, &worse, 1 << 20).unwrap());
        let opt = globally_optimal_repairs(&cg, &p, 1 << 20).unwrap();
        assert_eq!(opt, vec![best]);
        assert_eq!(count_globally_optimal_repairs(&cg, &p, 1 << 20).unwrap(), 1);
    }

    #[test]
    fn empty_priority_makes_every_repair_optimal() {
        let (cg, i) = grouped();
        let p = PriorityRelation::empty(i.len());
        let opt = globally_optimal_repairs(&cg, &p, 1 << 20).unwrap();
        assert_eq!(opt.len(), 6);
    }

    #[test]
    fn non_repairs_are_never_optimal() {
        let (cg, i) = grouped();
        let p = PriorityRelation::empty(i.len());
        // Consistent but not maximal.
        let partial = i.set_of([FactId(0)]);
        assert!(!is_globally_optimal_brute(&cg, &p, &partial, 1 << 20).unwrap());
        // Inconsistent.
        let bad = i.set_of([FactId(0), FactId(1)]);
        assert!(!is_globally_optimal_brute(&cg, &p, &bad, 1 << 20).unwrap());
    }

    #[test]
    fn improvement_witness_from_brute_force_is_valid() {
        let (cg, i) = grouped();
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        let j = i.set_of([FactId(1), FactId(3)]);
        let imp = find_global_improvement_brute(&cg, &p, &j, 1 << 20).unwrap().unwrap();
        assert!(imp.is_valid_global_improvement(&cg, &p, &j));
    }
}
