//! Content-addressed shard store: the shared tier of the two-tier
//! session cache.
//!
//! A **shard** is the per-component unit of exact checking: the local
//! conflict adjacency of one conflict component (or one union
//! component in ccp mode), its intra-component priority edges, the
//! dispatch metadata needed to run the exhaustive search of
//! [`crate::exact`] *in local coordinates*, and a memo of shard
//! verdicts already computed. Shards are immutable and keyed by the
//! canonical 128-bit fingerprint of their content
//! ([`rpr_fd::ComponentLayout::shard_fingerprint`]): component facts,
//! incident FDs, and intra-component priority edges. Because conflicts
//! and (intra-component) priorities never leave a component, two
//! workspaces whose fact ids differ wildly but whose component
//! *content* agrees map to the same key and share one
//! [`ShardData`] — the renumbering is absorbed by the local
//! coordinate system (local id = rank of the fact in the component's
//! ascending member list).
//!
//! The [`ShardStore`] is the global tier: a ref-counted
//! (`Arc`-backed) map from shard fingerprint to [`ShardData`] with
//! per-shard LRU stamps, byte accounting, and an optional
//! `--cache-bytes-max` ceiling. Sessions hold `Arc` handles to their
//! shards; eviction only ever removes *cold* shards (entries whose
//! only owner is the store itself, i.e. `Arc::strong_count == 1`), so
//! a hot shard pinned by a live session can never be dropped out from
//! under it — "evicts cold, never hot" is structural, not a policy.
//!
//! ## Bit-identity discipline
//!
//! The local search in [`ShardData`] replicates
//! [`crate::exact::exhaustive_improvement`] *exactly*: same branch
//! order (include first, exclude only for facts with conflicts), one
//! budget step per recursion node, same maximality and
//! global-improvement leaf tests. The verdict memo is consulted only
//! when replaying the recorded search could not possibly trip the
//! caller's budget:
//!
//! - legacy step budgets use a memo entry only when the recorded node
//!   count fits the allowance (`steps_recorded <= steps_allowed`);
//! - engine budgets bulk-charge the recorded node count via
//!   [`Budget::try_charge`], which rolls back and reports `false`
//!   when the charge would trip — the caller then falls back to the
//!   real search, which re-charges step-by-step and trips exactly
//!   where a cold session would.
//!
//! Either way a memo hit charges the same total work and returns the
//! same verdict and witness as a cold run, so store-backed sessions
//! are bit-identical to private-shard builds.

use crate::improvement::Improvement;
use rpr_data::{FactId, FactSet, Fingerprint, FxHashMap};
use rpr_engine::{Budget, Stop};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A component-local improvement witness, in local coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
struct LocalImprovement {
    removed: FactSet,
    added: FactSet,
}

/// One memoized shard verdict: the search result for a candidate
/// restricted to this shard, plus the exact number of recursion nodes
/// the search visited (= budget work units it charged).
#[derive(Clone, Debug)]
struct MemoEntry {
    found: Option<LocalImprovement>,
    steps: u64,
}

/// Immutable per-component shard artifact, shared across sessions and
/// across workspace fingerprints.
///
/// Local coordinates: local id `l` ∈ `0..k` is the rank of the fact in
/// the component's ascending global member list. Mapping a global
/// candidate in and a witness back out through the member slice is the
/// only per-session work a shard requires.
pub struct ShardData {
    fingerprint: Fingerprint,
    /// Component size `k`.
    k: usize,
    /// CSR offsets into `neighbors`: the conflict neighbors of local
    /// fact `l` are `neighbors[offsets[l]..offsets[l + 1]]`.
    offsets: Vec<u32>,
    /// Conflict adjacency in local ids, ascending within each row.
    neighbors: Vec<u32>,
    /// Intra-component priority edges `(f, g)` meaning `f ≻ g`, local.
    priority_edges: Vec<(u32, u32)>,
    /// `better[l]` = local facts preferred over `l` (dispatch plan for
    /// the improvement test at search leaves).
    better: Vec<Vec<u32>>,
    /// Verdict memo: candidate ∩ component (local) → search result.
    memo: Mutex<FxHashMap<FactSet, MemoEntry>>,
    /// Estimated resident bytes of the immutable part.
    base_bytes: usize,
    /// Estimated resident bytes of the memo (grows as verdicts cache).
    memo_bytes: AtomicUsize,
}

impl ShardData {
    /// Slices component `c`'s shard out of the global structures.
    ///
    /// `members` must be the component's member list, ascending — the
    /// slice `layout.component(c)` is. Conflict neighbors of a member
    /// never leave its component, so every edge maps to a local pair.
    pub fn build(
        fingerprint: Fingerprint,
        members: &[FactId],
        cg: &ConflictGraph,
        priority: &PriorityRelation,
    ) -> ShardData {
        let k = members.len();
        let local = |g: FactId| -> Option<u32> { members.binary_search(&g).ok().map(|i| i as u32) };
        let mut offsets = Vec::with_capacity(k + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for &f in members {
            for g in cg.conflicts_of(f).iter() {
                let l = local(g).expect("conflict neighbor escapes its component");
                neighbors.push(l);
            }
            offsets.push(neighbors.len() as u32);
        }
        let mut priority_edges = Vec::new();
        let mut better = vec![Vec::new(); k];
        for &(f, g) in priority.edges() {
            if let (Some(lf), Some(lg)) = (local(f), local(g)) {
                priority_edges.push((lf, lg));
                better[lg as usize].push(lf);
            }
        }
        let base_bytes = 4 * offsets.len()
            + 4 * neighbors.len()
            + 8 * priority_edges.len()
            + better.iter().map(|b| 4 * b.len() + 24).sum::<usize>()
            + 160;
        ShardData {
            fingerprint,
            k,
            offsets,
            neighbors,
            priority_edges,
            better,
            memo: Mutex::new(FxHashMap::default()),
            base_bytes,
            memo_bytes: AtomicUsize::new(0),
        }
    }

    /// The shard's content address.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Component size.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Is the shard over an empty component? (Never true in practice —
    /// only nontrivial components are sharded.)
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Number of memoized shard verdicts.
    pub fn memo_len(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Estimated resident bytes (immutable slice + verdict memo).
    pub fn bytes(&self) -> usize {
        self.base_bytes + self.memo_bytes.load(Ordering::Relaxed)
    }

    /// Intra-component priority edge count (local dispatch metadata).
    pub fn priority_edge_count(&self) -> usize {
        self.priority_edges.len()
    }

    fn row(&self, l: u32) -> &[u32] {
        &self.neighbors[self.offsets[l as usize] as usize..self.offsets[l as usize + 1] as usize]
    }

    fn conflicts_with_set(&self, l: u32, set: &FactSet) -> bool {
        self.row(l).iter().any(|&g| set.contains(FactId(g)))
    }

    /// Restricts a global candidate to this shard's local universe.
    fn localize(&self, members: &[FactId], j: &FactSet) -> FactSet {
        let mut local = FactSet::empty(self.k);
        for (l, &g) in members.iter().enumerate() {
            if j.contains(g) {
                local.insert(FactId(l as u32));
            }
        }
        local
    }

    /// Maps a local witness back to global ids.
    fn globalize(
        &self,
        members: &[FactId],
        universe: usize,
        imp: &LocalImprovement,
    ) -> Improvement {
        let lift = |set: &FactSet| {
            let mut out = FactSet::empty(universe);
            for l in set.iter() {
                out.insert(members[l.index()]);
            }
            out
        };
        Improvement { removed: lift(&imp.removed), added: lift(&imp.added) }
    }

    /// The exhaustive search of [`crate::exact::exhaustive_improvement`]
    /// in local coordinates: identical branch order, one budget step
    /// per recursion node, identical leaf tests. Returns the witness
    /// (if any) and the exact node count for the memo.
    fn search_local(
        &self,
        j: &FactSet,
        budget: &Budget,
    ) -> Result<(Option<LocalImprovement>, u64), Stop> {
        struct Search<'a> {
            shard: &'a ShardData,
            j: &'a FactSet,
            budget: &'a Budget,
            nodes: u64,
            found: Option<LocalImprovement>,
        }
        impl Search<'_> {
            fn recurse(&mut self, idx: usize, current: &mut FactSet) -> Result<(), Stop> {
                if self.found.is_some() {
                    return Ok(());
                }
                self.budget.step()?;
                self.nodes += 1;
                if idx == self.shard.k {
                    let maximal = (0..self.shard.k as u32).all(|l| {
                        current.contains(FactId(l)) || self.shard.conflicts_with_set(l, current)
                    });
                    if maximal && self.is_improvement(current) {
                        self.found = Some(LocalImprovement {
                            removed: self.j.difference(current),
                            added: current.difference(self.j),
                        });
                    }
                    return Ok(());
                }
                let l = idx as u32;
                if self.shard.conflicts_with_set(l, current) {
                    return self.recurse(idx + 1, current);
                }
                current.insert(FactId(l));
                self.recurse(idx + 1, current)?;
                current.remove(FactId(l));
                if !self.shard.row(l).is_empty() {
                    self.recurse(idx + 1, current)?;
                }
                Ok(())
            }

            /// `is_global_improvement` in local coordinates.
            fn is_improvement(&self, j2: &FactSet) -> bool {
                if self.j == j2 {
                    return false;
                }
                let lost = self.j.difference(j2);
                let gained = j2.difference(self.j);
                lost.iter().all(|f_prime| {
                    self.shard.better[f_prime.index()].iter().any(|&g| gained.contains(FactId(g)))
                })
            }
        }
        let mut current = FactSet::empty(self.k);
        let mut search = Search { shard: self, j, budget, nodes: 0, found: None };
        search.recurse(0, &mut current)?;
        Ok((search.found, search.nodes))
    }

    fn memoize(&self, key: FactSet, found: Option<LocalImprovement>, steps: u64) {
        let words = self.k.div_ceil(64);
        let witness_bytes = match &found {
            Some(_) => 2 * (8 * words + 40),
            None => 0,
        };
        let entry_bytes = 8 * words + 96 + witness_bytes;
        let mut memo = self.memo.lock().unwrap();
        if memo.insert(key, MemoEntry { found, steps }).is_none() {
            self.memo_bytes.fetch_add(entry_bytes, Ordering::Relaxed);
        }
    }

    /// Checks a candidate against this shard under a legacy step
    /// budget, exactly as a fresh
    /// `Budget::unlimited().with_max_work(steps)` search would.
    ///
    /// A memo entry is used only when its recorded node count fits the
    /// allowance; otherwise the search re-runs and trips identically.
    ///
    /// # Errors
    /// [`Stop::Exceeded`] when the search exceeds `steps` nodes.
    pub fn check_legacy(
        &self,
        members: &[FactId],
        j: &FactSet,
        steps: usize,
    ) -> Result<Option<Improvement>, Stop> {
        let local_j = self.localize(members, j);
        if let Some(entry) = self.memo.lock().unwrap().get(&local_j) {
            if entry.steps <= steps as u64 {
                return Ok(entry
                    .found
                    .as_ref()
                    .map(|imp| self.globalize(members, j.universe(), imp)));
            }
        }
        let budget = Budget::unlimited().with_max_work(steps as u64);
        let (found, nodes) = self.search_local(&local_j, &budget)?;
        let out = found.as_ref().map(|imp| self.globalize(members, j.universe(), imp));
        self.memoize(local_j, found, nodes);
        Ok(out)
    }

    /// Checks a candidate against this shard under a caller-supplied
    /// engine [`Budget`].
    ///
    /// A memo hit bulk-charges the recorded node count via
    /// [`Budget::try_charge`]; when the charge would trip, the charge
    /// rolls back and the real search runs instead, re-charging
    /// step-by-step and tripping exactly where a cold session would.
    ///
    /// # Errors
    /// Propagates the budget's [`Stop`] (work, deadline, cancel).
    pub fn check_engine(
        &self,
        members: &[FactId],
        j: &FactSet,
        budget: &Budget,
    ) -> Result<Option<Improvement>, Stop> {
        let local_j = self.localize(members, j);
        let memo_hit = {
            let memo = self.memo.lock().unwrap();
            memo.get(&local_j).map(|e| (e.found.clone(), e.steps))
        };
        if let Some((found, steps)) = memo_hit {
            if budget.try_charge(steps)? {
                return Ok(found.as_ref().map(|imp| self.globalize(members, j.universe(), imp)));
            }
        }
        let (found, nodes) = self.search_local(&local_j, budget)?;
        let out = found.as_ref().map(|imp| self.globalize(members, j.universe(), imp));
        self.memoize(local_j, found, nodes);
        Ok(out)
    }
}

/// A thin per-workspace index: the workspace fingerprint plus the
/// ordered list of shard keys its exact path dispatches to. This is
/// the second tier of the cache — everything heavy lives behind the
/// keys in the [`ShardStore`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionIndex {
    workspace: Fingerprint,
    shard_keys: Vec<Fingerprint>,
}

impl SessionIndex {
    pub(crate) fn new(workspace: Fingerprint, shard_keys: Vec<Fingerprint>) -> SessionIndex {
        SessionIndex { workspace, shard_keys }
    }

    /// The workspace content fingerprint this index belongs to.
    pub fn workspace(&self) -> Fingerprint {
        self.workspace
    }

    /// Shard keys in dispatch order (ascending minimal member).
    pub fn shard_keys(&self) -> &[Fingerprint] {
        &self.shard_keys
    }
}

struct StoreEntry {
    data: Arc<ShardData>,
    stamp: u64,
}

struct StoreInner {
    entries: FxHashMap<u128, StoreEntry>,
    tick: u64,
}

/// Aggregate counters for metrics export and reconciliation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStoreStats {
    /// Shards currently resident.
    pub entries: u64,
    /// Estimated resident bytes across all shards (memo included).
    pub bytes: u64,
    /// `get_or_insert` calls answered from the store.
    pub hits: u64,
    /// `get_or_insert` calls that had to build.
    pub misses: u64,
    /// Cold shards dropped by the byte ceiling.
    pub evictions: u64,
}

/// The global content-addressed shard cache (tier one).
///
/// Thread-safe; `get_or_insert` builds under the lock so concurrent
/// requests for the same key observe exactly one miss.
pub struct ShardStore {
    inner: Mutex<StoreInner>,
    bytes_max: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ShardStore {
    fn default() -> Self {
        ShardStore::new()
    }
}

impl ShardStore {
    /// An unbounded store.
    pub fn new() -> ShardStore {
        ShardStore::with_bytes_max(None)
    }

    /// A store that evicts cold shards (LRU) once estimated resident
    /// bytes exceed `bytes_max`.
    pub fn with_bytes_max(bytes_max: Option<u64>) -> ShardStore {
        ShardStore {
            inner: Mutex::new(StoreInner { entries: FxHashMap::default(), tick: 0 }),
            bytes_max,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured byte ceiling, if any.
    pub fn bytes_max(&self) -> Option<u64> {
        self.bytes_max
    }

    /// Fetches the shard at `key`, building and inserting it on miss.
    pub fn get_or_insert(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> ShardData,
    ) -> Arc<ShardData> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key.0) {
            entry.stamp = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&entry.data);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(build());
        debug_assert_eq!(data.fingerprint(), key, "shard built under the wrong key");
        inner.entries.insert(key.0, StoreEntry { data: Arc::clone(&data), stamp: tick });
        self.evict_cold(&mut inner);
        data
    }

    /// Re-applies the byte ceiling, evicting cold shards LRU-first.
    /// Cheap; serve calls this after requests since memos grow shards
    /// in place.
    pub fn enforce_ceiling(&self) {
        let mut inner = self.inner.lock().unwrap();
        self.evict_cold(&mut inner);
    }

    fn evict_cold(&self, inner: &mut StoreInner) {
        let Some(max) = self.bytes_max else { return };
        loop {
            let resident: u64 = inner.entries.values().map(|e| e.data.bytes() as u64).sum();
            if resident <= max {
                return;
            }
            // Oldest cold shard: unreferenced outside the store.
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.data) == 1)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    inner.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything is pinned by live sessions: nothing we
                // may evict. Hot shards are never dropped.
                None => return,
            }
        }
    }

    /// Number of resident shards.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes across all shards, each counted once.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().entries.values().map(|e| e.data.bytes() as u64).sum()
    }

    /// Counter snapshot for metrics export.
    pub fn stats(&self) -> ShardStoreStats {
        let inner = self.inner.lock().unwrap();
        ShardStoreStats {
            entries: inner.entries.len() as u64,
            bytes: inner.entries.values().map(|e| e.data.bytes() as u64).sum(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}
