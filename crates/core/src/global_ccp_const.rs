//! Globally-optimal repair checking for constant-attribute assignments
//! over ccp-instances (§7.2.2, Proposition 7.5).
//!
//! When every `Δ|R` is equivalent to `∅ → B_R`, two facts of `R`
//! conflict iff they disagree on `B_R = ⟦R.∅^Δ⟧`. A *consistent
//! partition* of `R^I` is a maximal subset agreeing on `B_R`; a
//! subinstance is a repair iff it consists of exactly one consistent
//! partition per non-empty relation. There are therefore only
//! `∏_R (#partitions of R)` repairs — polynomially many for a fixed
//! schema — and the checker simply enumerates them and tests each as a
//! global improvement of `J`.

use crate::improvement::{is_global_improvement, CheckOutcome, Improvement};
use rpr_data::{AttrSet, FactSet, FxHashMap, Instance, Tuple};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// The consistent partitions of each relation (§7.2.2), given the
/// per-relation constant attribute sets `B_R` (signature order).
pub fn consistent_partitions(instance: &Instance, constant_attrs: &[AttrSet]) -> Vec<Vec<FactSet>> {
    let sig = instance.signature();
    let mut out = Vec::with_capacity(sig.len());
    for rel in sig.rel_ids() {
        let b = constant_attrs[rel.index()];
        let mut groups: FxHashMap<Tuple, FactSet> = FxHashMap::default();
        for &id in instance.facts_of(rel) {
            groups
                .entry(instance.fact(id).project(b))
                .or_insert_with(|| instance.empty_set())
                .insert(id);
        }
        let mut parts: Vec<FactSet> = groups.into_values().collect();
        parts.sort(); // deterministic enumeration order
        out.push(parts);
    }
    out
}

/// Enumerates all repairs of a constant-attribute instance: the product
/// of one consistent partition per non-empty relation.
pub fn enumerate_const_attr_repairs(
    instance: &Instance,
    constant_attrs: &[AttrSet],
) -> Vec<FactSet> {
    let partitions = consistent_partitions(instance, constant_attrs);
    let nonempty: Vec<&Vec<FactSet>> = partitions.iter().filter(|p| !p.is_empty()).collect();
    let mut out = vec![instance.empty_set()];
    for parts in nonempty {
        let mut next = Vec::with_capacity(out.len() * parts.len());
        for base in &out {
            for p in parts {
                next.push(base.union(p));
            }
        }
        out = next;
    }
    out
}

/// Runs the Proposition 7.5 check on the whole instance.
pub fn check_global_ccp_const(
    instance: &Instance,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    constant_attrs: &[AttrSet],
    j: &FactSet,
) -> CheckOutcome {
    // Repair pre-checks.
    for f in j.iter() {
        if let Some(g) = cg.conflicts_in(f, j).first() {
            return CheckOutcome::Inconsistent(f, g);
        }
    }
    let outside = j.complement();
    for g in outside.iter() {
        if !cg.conflicts_with_set(g, j) {
            let mut added = FactSet::empty(j.universe());
            added.insert(g);
            return CheckOutcome::Improvable(Improvement {
                removed: FactSet::empty(j.universe()),
                added,
            });
        }
    }

    for candidate in enumerate_const_attr_repairs(instance, constant_attrs) {
        if is_global_improvement(priority, j, &candidate) {
            let witness =
                Improvement { removed: j.difference(&candidate), added: candidate.difference(j) };
            debug_assert!(witness.is_valid_global_improvement(cg, priority, j));
            return CheckOutcome::Improvable(witness);
        }
    }
    CheckOutcome::Optimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{FactId, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// Two relations: R with ∅→2 (all second components equal), S with
    /// ∅→1.
    fn setup() -> (Schema, Instance, Vec<AttrSet>) {
        let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[][..], &[2][..]), ("S", &[][..], &[1][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        // R partitions by attr 2: {x: 0,1}, {y: 2}.
        i.insert_named("R", [v("a"), v("x")]).unwrap(); // 0
        i.insert_named("R", [v("b"), v("x")]).unwrap(); // 1
        i.insert_named("R", [v("a"), v("y")]).unwrap(); // 2
                                                        // S partitions by attr 1: {s: 3}, {t: 4}.
        i.insert_named("S", [v("s"), v("1")]).unwrap(); // 3
        i.insert_named("S", [v("t"), v("1")]).unwrap(); // 4
        let consts = vec![AttrSet::singleton(2), AttrSet::singleton(1)];
        (schema, i, consts)
    }

    #[test]
    fn partitions_and_repair_enumeration() {
        let (schema, i, consts) = setup();
        let parts = consistent_partitions(&i, &consts);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        let repairs = enumerate_const_attr_repairs(&i, &consts);
        assert_eq!(repairs.len(), 4); // 2 × 2
                                      // They are exactly the brute-force repairs.
        let cg = ConflictGraph::new(&schema, &i);
        let mut brute = enumerate_repairs(&cg, 1 << 20).unwrap();
        let mut fast = repairs.clone();
        brute.sort();
        fast.sort();
        assert_eq!(brute, fast);
    }

    #[test]
    fn cross_relation_ccp_improvement() {
        let (schema, i, consts) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        // S(s,1) ≻ R(a,x) and R(a,y) ≻ S(t,1): improving the {x}-side
        // repair requires switching both relations.
        let p = PriorityRelation::new(i.len(), [(FactId(3), FactId(0)), (FactId(2), FactId(4))])
            .unwrap();
        // J = {R-x partition, S-t partition} = {0,1,4}: lost facts
        // {0,1,4}… check which repairs are optimal against brute force.
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = check_global_ccp_const(&i, &cg, &p, &consts, &j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(&j));
        }
    }

    #[test]
    fn witness_is_checked() {
        let (schema, i, consts) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        // Prefer the y-partition over each x-fact.
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0)), (FactId(2), FactId(1))])
            .unwrap();
        let j = i.set_of([0, 1, 3].map(FactId));
        match check_global_ccp_const(&i, &cg, &p, &consts, &j) {
            CheckOutcome::Improvable(imp) => {
                assert!(imp.is_valid_global_improvement(&cg, &p, &j));
                assert!(imp.added.contains(FactId(2)));
            }
            other => panic!("expected improvement, got {other:?}"),
        }
    }

    #[test]
    fn empty_relation_contributes_nothing() {
        let sig = Signature::new([("R", 2), ("Empty", 2)]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("x")]).unwrap();
        let consts = vec![AttrSet::singleton(2), AttrSet::singleton(1)];
        let repairs = enumerate_const_attr_repairs(&i, &consts);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].len(), 1);
    }

    #[test]
    fn non_repairs_rejected() {
        let (schema, i, consts) = setup();
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::empty(i.len());
        let bad = i.set_of([0, 2].map(FactId)); // x and y facts conflict
        assert!(matches!(
            check_global_ccp_const(&i, &cg, &p, &consts, &bad),
            CheckOutcome::Inconsistent(..)
        ));
        let partial = i.set_of([0, 1].map(FactId)); // missing the S choice
        match check_global_ccp_const(&i, &cg, &p, &consts, &partial) {
            CheckOutcome::Improvable(imp) => assert!(imp.removed.is_empty()),
            other => panic!("expected vacuous improvement, got {other:?}"),
        }
    }
}
