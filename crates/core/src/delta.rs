//! Incremental session mutation: patch cached workspaces instead of
//! rebuilding them.
//!
//! A [`CheckSession`](crate::CheckSession) amortizes the conflict
//! graph, CSR adjacency, and Lemma 4.2 block structures across many
//! candidate checks — but any change to the instance or priority
//! relation used to discard the whole session. A [`DeltaSession`] keeps
//! those artifacts *live* under mutation:
//!
//! * **Conflict graph** — deletes drop one adjacency row and shift the
//!   rest; inserts grow the universe and re-derive only the edges
//!   incident to the new fact (a per-FD scan of its relation).
//! * **CSR / components** — rebuilt once per batch from the patched
//!   bitset graph (the packing is cheap relative to conflict
//!   derivation), and only when the batch touched facts.
//! * **FD blocks** — the touched relation's blocks are edited in place
//!   (binary search on the canonical lhs/rhs projection order, so the
//!   patch is bit-identical to `FdBlocks::build`); untouched relations
//!   only remap ids, which preserves that order under dense renumbering.
//! * **Fingerprint** — the canonical 128-bit content fingerprint is
//!   maintained by two unordered accumulators (fact multiset, priority
//!   edge set) with O(1) add/remove, and cross-checked against the
//!   from-scratch [`content_fingerprint`] in debug builds.
//!
//! **Atomicity.** [`apply_delta`](DeltaSession::apply_delta) validates
//! the entire op sequence against a content-keyed simulation before
//! touching anything; on any [`DeltaError`] the session is unchanged.
//!
//! **Bit-identity.** The id layout after a delta matches a from-scratch
//! build over the mutated workspace: deletes renumber survivors densely
//! (relative order preserved), inserts append. The differential suite
//! checks verdicts, witnesses, certificates, and fingerprints of
//! patched sessions against cold rebuilds over randomized op sequences.
//!
//! **Rebuild threshold.** Batches whose structural churn (inserts +
//! deletes) reaches [`REBUILD_CHURN_PERCENT`] of the instance fall back
//! to a cold [`SessionArtifacts::build`] — above that point the
//! localized patches cost more than the rebuild they avoid. The report
//! says which path ran so operators can count rebuilds.

use crate::fingerprint::{
    content_fingerprint, mode_word, priority_edge_fingerprint, schema_fingerprint,
};
use crate::global_1fd::FdBlocks;
use crate::session::{CheckSession, Plan, SessionArtifacts};
use crate::shard_store::ShardStore;
use rpr_classify::{Complexity, RelationClass};
use rpr_data::fingerprint::{Fingerprint, FingerprintBuilder, UnorderedAccumulator};
use rpr_data::{
    fingerprint_fact, fingerprint_signature, Fact, FactId, FactSet, FxHashMap, FxHashSet,
};
use rpr_fd::{ComponentLayout, CsrConflictGraph, Fd, Schema};
use rpr_priority::{PrioritizedInstance, PriorityMode};
use std::fmt;
use std::sync::Arc;

/// Structural churn (inserts + deletes as a percentage of the base
/// instance) at or above which a batch cold-rebuilds the artifacts
/// instead of patching them.
pub const REBUILD_CHURN_PERCENT: usize = 25;

/// One mutation of a prioritized instance. Facts are identified by
/// *content*, not id — ids are an internal dense numbering that shifts
/// under deletes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Add a fact. Errors if the fact is already present.
    InsertFact(Fact),
    /// Remove a fact. Errors if absent or still referenced by priority
    /// edges (drop the edges first).
    DeleteFact(Fact),
    /// Add (`prefer: true`) or remove (`prefer: false`) the priority
    /// edge `better ≻ worse`.
    SetPriority {
        /// The preferred fact.
        better: Fact,
        /// The dominated fact.
        worse: Fact,
        /// Add the edge (`true`) or remove it (`false`).
        prefer: bool,
    },
}

/// Why a delta batch was rejected. The session is unchanged whenever
/// one of these is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Insert of a fact that is already present.
    AlreadyPresent {
        /// Index of the offending op in the batch.
        op: usize,
        /// The fact, rendered with its relation name.
        fact: String,
    },
    /// Delete or priority edge referencing a fact not in the instance.
    MissingFact {
        /// Index of the offending op in the batch.
        op: usize,
        /// The fact, rendered with its relation name.
        fact: String,
    },
    /// Delete of a fact that still has incident priority edges.
    HasEdges {
        /// Index of the offending op in the batch.
        op: usize,
        /// The fact, rendered with its relation name.
        fact: String,
    },
    /// Prefer of an edge that already exists.
    DuplicateEdge {
        /// Index of the offending op in the batch.
        op: usize,
    },
    /// Unprefer of an edge that does not exist.
    MissingEdge {
        /// Index of the offending op in the batch.
        op: usize,
    },
    /// Prefer joining non-conflicting facts in conflict-restricted
    /// mode (§2.3 forbids such edges).
    NotConflicting {
        /// Index of the offending op in the batch.
        op: usize,
    },
    /// Prefer that would close a priority cycle (§2.3 demands
    /// acyclicity).
    Cyclic {
        /// Index of the offending op in the batch.
        op: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::AlreadyPresent { op, fact } => {
                write!(f, "op {op}: insert of fact already present: {fact}")
            }
            DeltaError::MissingFact { op, fact } => {
                write!(f, "op {op}: fact not in the instance: {fact}")
            }
            DeltaError::HasEdges { op, fact } => {
                write!(f, "op {op}: delete of fact with incident priority edges: {fact}")
            }
            DeltaError::DuplicateEdge { op } => {
                write!(f, "op {op}: preference already present")
            }
            DeltaError::MissingEdge { op } => {
                write!(f, "op {op}: unprefer of preference not present")
            }
            DeltaError::NotConflicting { op } => {
                write!(f, "op {op}: preference joins non-conflicting facts (conflict mode)")
            }
            DeltaError::Cyclic { op } => {
                write!(f, "op {op}: preference would create a cycle")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// What a successful [`apply_delta`](DeltaSession::apply_delta) did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// Total ops applied (the batch length).
    pub applied: usize,
    /// Facts inserted.
    pub inserts: usize,
    /// Facts deleted.
    pub deletes: usize,
    /// Priority edges added or removed.
    pub priority_ops: usize,
    /// `true` when churn hit [`REBUILD_CHURN_PERCENT`] and the
    /// artifacts were cold-rebuilt instead of patched.
    pub rebuilt: bool,
    /// Nontrivial conflict components (session shards) after the batch.
    pub components_total: usize,
    /// Nontrivial pre-batch components the patched path carried over
    /// without re-deriving (renumber-only). `0` on the rebuild path;
    /// equal to `components_total` for batches that touched no facts.
    pub components_reused: usize,
}

/// A mutable, cache-resident check session: owned workspace plus live
/// artifacts and an incrementally-maintained content fingerprint.
/// See the module docs.
#[must_use = "a DeltaSession is the cached product of expensive preparation — store or use it"]
pub struct DeltaSession {
    schema: Arc<Schema>,
    pi: PrioritizedInstance,
    artifacts: SessionArtifacts,
    /// Fixed lane: schema fingerprint (the schema never mutates).
    schema_fp: Fingerprint,
    /// Fixed lane: signature fingerprint (prefix of the instance lane).
    sig_fp: Fingerprint,
    /// Live lane: the unordered fact-content multiset.
    fact_acc: UnorderedAccumulator,
    /// Live lane: the unordered priority-edge set.
    edge_acc: UnorderedAccumulator,
    mode_word: u64,
    /// The content-addressed shard store the session resolves its
    /// exact-path shards through; `None` keeps shards private.
    store: Option<Arc<ShardStore>>,
}

impl DeltaSession {
    /// Prepares a mutable session. This is the expensive step (conflict
    /// graph, CSR packing, classification, block structures, lane
    /// accumulators); [`apply_delta`](Self::apply_delta) afterwards
    /// costs work proportional to the ops, not the workspace.
    pub fn prepare(schema: Arc<Schema>, pi: PrioritizedInstance) -> Self {
        Self::prepare_with_store(schema, pi, None)
    }

    /// [`DeltaSession::prepare`] with exact-path shards resolved
    /// through a shared [`ShardStore`]: components already cached by
    /// any workspace are reused instead of rebuilt, and every
    /// [`apply_delta`](Self::apply_delta) re-points the session's
    /// shard index through the store so clean shards stay shared
    /// across fingerprints.
    pub fn prepare_with_store(
        schema: Arc<Schema>,
        pi: PrioritizedInstance,
        store: Option<Arc<ShardStore>>,
    ) -> Self {
        let artifacts = SessionArtifacts::build_with_store(&schema, &pi, store.as_deref());
        let sig = pi.instance().signature();
        let fact_acc = UnorderedAccumulator::from_items(
            pi.instance().iter().map(|(_, f)| fingerprint_fact(sig, f)),
        );
        let edge_acc =
            UnorderedAccumulator::from_items(pi.priority().edges().iter().map(|&(hi, lo)| {
                priority_edge_fingerprint(sig, pi.instance().fact(hi), pi.instance().fact(lo))
            }));
        DeltaSession {
            schema_fp: schema_fingerprint(&schema),
            sig_fp: fingerprint_signature(sig),
            mode_word: mode_word(pi.mode()),
            schema,
            pi,
            artifacts,
            fact_acc,
            edge_acc,
            store,
        }
    }

    /// The shard store the session is attached to, if any.
    pub fn store(&self) -> Option<&Arc<ShardStore>> {
        self.store.as_ref()
    }

    /// The schema the session was prepared under.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The prioritized instance in its current (post-delta) state.
    pub fn prioritized(&self) -> &PrioritizedInstance {
        &self.pi
    }

    /// The complexity of checking under the cached classification.
    pub fn complexity(&self) -> Complexity {
        self.artifacts.complexity()
    }

    /// A borrowing [`CheckSession`] view over the live artifacts.
    /// Views are cheap; create one per request and configure `jobs` /
    /// budgets on the view.
    pub fn session(&self) -> CheckSession<'_> {
        CheckSession::from_artifacts(&self.schema, &self.pi, &self.artifacts)
    }

    /// The canonical content fingerprint of the current state, composed
    /// from the incrementally-maintained lanes. Bit-identical to
    /// [`content_fingerprint`] over the same workspace.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut inst = FingerprintBuilder::new();
        inst.fingerprint(self.sig_fp);
        inst.fingerprint(self.fact_acc.finish());
        let mut b = FingerprintBuilder::new();
        b.fingerprint(self.schema_fp);
        b.fingerprint(inst.finish());
        b.fingerprint(self.edge_acc.finish());
        b.word(self.mode_word);
        b.finish()
    }

    /// Approximate resident bytes of the workspace plus artifacts
    /// (cache-sizing gauge; intentionally coarse).
    pub fn approx_bytes(&self) -> usize {
        let inst = self.pi.instance();
        let n = inst.len();
        let mut values = 0usize;
        for (_, f) in inst.iter() {
            values += 24 + 16 * f.tuple().len();
        }
        let graph = self.artifacts.cg.edges().len() * 12 + n * 16;
        let blocks: usize = self
            .artifacts
            .rel_blocks
            .iter()
            .flatten()
            .map(|b| b.groups().iter().flatten().flatten().count() * 4)
            .sum();
        let edges = self.pi.priority().edge_count() * 24;
        values + graph + blocks + edges + n * (n / 64 + 1) / 4
    }

    /// Applies a batch of ops atomically: the whole sequence is
    /// validated against the current state first, and on any error the
    /// session — artifacts, fingerprint, everything — is unchanged.
    ///
    /// # Errors
    /// The first [`DeltaError`] in op order.
    pub fn apply_delta(&mut self, ops: &[DeltaOp]) -> Result<DeltaReport, DeltaError> {
        let (inserts, deletes, priority_ops) = self.validate(ops)?;
        let structural = inserts + deletes;
        let rebuilt = structural * 100 >= self.pi.instance().len().max(4) * REBUILD_CHURN_PERCENT
            && structural > 0;
        let mut components_reused = 0;
        if rebuilt {
            for op in ops {
                self.apply_op_data(op);
            }
            self.artifacts =
                SessionArtifacts::build_with_store(&self.schema, &self.pi, self.store.as_deref());
        } else {
            let mut tracker = ShardTracker::new(&self.artifacts);
            for op in ops {
                self.apply_op_patched(op, &mut tracker);
            }
            if structural > 0 {
                components_reused = self.finish_structural_batch(tracker);
            } else {
                components_reused = self.artifacts.shard_count();
                if priority_ops > 0 && self.artifacts.ccp_union.is_some() {
                    // ccp Hard shards follow conflict ∪ priority
                    // connectivity, so priority edits alone can split
                    // or merge them.
                    self.artifacts.ccp_union = Some(SessionArtifacts::ccp_union_layout(
                        &self.artifacts.cg,
                        self.pi.priority(),
                    ));
                }
            }
            if structural > 0 || priority_ops > 0 {
                // Re-point the shard index: clean components resolve
                // to their existing store entries (hits); dirtied
                // components insert fresh shard entries under their
                // new content fingerprints.
                self.artifacts.attach_shards(&self.schema, &self.pi, self.store.as_deref());
            }
        }
        debug_assert_eq!(
            self.fingerprint(),
            content_fingerprint(&self.schema, &self.pi),
            "incremental fingerprint lanes diverged from the canonical composition"
        );
        Ok(DeltaReport {
            applied: ops.len(),
            inserts,
            deletes,
            priority_ops,
            rebuilt,
            components_total: self.artifacts.shard_count(),
            components_reused,
        })
    }

    /// Validates the op sequence against a content-keyed simulation of
    /// the current state without mutating anything. Returns the op
    /// class counts on success.
    fn validate(&self, ops: &[DeltaOp]) -> Result<(usize, usize, usize), DeltaError> {
        let inst = self.pi.instance();
        let sig = inst.signature();
        let classical = self.pi.mode() == PriorityMode::ConflictRestricted;
        // Membership overlay: absent key = defer to the base instance.
        let mut member: FxHashMap<Fact, bool> = FxHashMap::default();
        // Batches without priority ops (the structural fast path) never
        // mutate edges, so delete-degree checks can scan the base
        // priority by id instead of paying for a content-keyed copy of
        // every edge.
        if !ops.iter().any(|op| matches!(op, DeltaOp::SetPriority { .. })) {
            let (mut inserts, mut deletes) = (0usize, 0usize);
            for (i, op) in ops.iter().enumerate() {
                let present = |m: &FxHashMap<Fact, bool>, f: &Fact| {
                    *m.get(f).unwrap_or(&inst.id_of(f).is_some())
                };
                match op {
                    DeltaOp::InsertFact(f) => {
                        if present(&member, f) {
                            return Err(DeltaError::AlreadyPresent {
                                op: i,
                                fact: f.display(sig).to_string(),
                            });
                        }
                        member.insert(f.clone(), true);
                        inserts += 1;
                    }
                    DeltaOp::DeleteFact(f) => {
                        if !present(&member, f) {
                            return Err(DeltaError::MissingFact {
                                op: i,
                                fact: f.display(sig).to_string(),
                            });
                        }
                        // Batch-inserted facts have no base id and no
                        // edges; base facts keep their base degree.
                        if let Some(id) = inst.id_of(f) {
                            if member.get(f) != Some(&true)
                                && self
                                    .pi
                                    .priority()
                                    .edges()
                                    .iter()
                                    .any(|&(a, b)| a == id || b == id)
                            {
                                return Err(DeltaError::HasEdges {
                                    op: i,
                                    fact: f.display(sig).to_string(),
                                });
                            }
                        }
                        member.insert(f.clone(), false);
                        deletes += 1;
                    }
                    DeltaOp::SetPriority { .. } => unreachable!("checked above"),
                }
            }
            return Ok((inserts, deletes, 0));
        }
        // Priority edges and a worse-adjacency, both by fact content.
        let mut edges: FxHashSet<(Fact, Fact)> = FxHashSet::default();
        let mut worse_of: FxHashMap<Fact, Vec<Fact>> = FxHashMap::default();
        let mut degree: FxHashMap<Fact, usize> = FxHashMap::default();
        for &(hi, lo) in self.pi.priority().edges() {
            let (hi, lo) = (inst.fact(hi).clone(), inst.fact(lo).clone());
            *degree.entry(hi.clone()).or_default() += 1;
            *degree.entry(lo.clone()).or_default() += 1;
            worse_of.entry(hi.clone()).or_default().push(lo.clone());
            edges.insert((hi, lo));
        }
        let (mut inserts, mut deletes, mut priority_ops) = (0usize, 0usize, 0usize);
        for (i, op) in ops.iter().enumerate() {
            let present =
                |m: &FxHashMap<Fact, bool>, f: &Fact| *m.get(f).unwrap_or(&inst.id_of(f).is_some());
            match op {
                DeltaOp::InsertFact(f) => {
                    if present(&member, f) {
                        return Err(DeltaError::AlreadyPresent {
                            op: i,
                            fact: f.display(sig).to_string(),
                        });
                    }
                    member.insert(f.clone(), true);
                    inserts += 1;
                }
                DeltaOp::DeleteFact(f) => {
                    if !present(&member, f) {
                        return Err(DeltaError::MissingFact {
                            op: i,
                            fact: f.display(sig).to_string(),
                        });
                    }
                    if degree.get(f).copied().unwrap_or(0) > 0 {
                        return Err(DeltaError::HasEdges {
                            op: i,
                            fact: f.display(sig).to_string(),
                        });
                    }
                    member.insert(f.clone(), false);
                    deletes += 1;
                }
                DeltaOp::SetPriority { better, worse, prefer } => {
                    for f in [better, worse] {
                        if !present(&member, f) {
                            return Err(DeltaError::MissingFact {
                                op: i,
                                fact: f.display(sig).to_string(),
                            });
                        }
                    }
                    let key = (better.clone(), worse.clone());
                    if *prefer {
                        if edges.contains(&key) {
                            return Err(DeltaError::DuplicateEdge { op: i });
                        }
                        if classical && !self.schema.conflicting(better, worse) {
                            return Err(DeltaError::NotConflicting { op: i });
                        }
                        if Self::reaches(&worse_of, worse, better) {
                            return Err(DeltaError::Cyclic { op: i });
                        }
                        *degree.entry(better.clone()).or_default() += 1;
                        *degree.entry(worse.clone()).or_default() += 1;
                        worse_of.entry(better.clone()).or_default().push(worse.clone());
                        edges.insert(key);
                    } else {
                        if !edges.remove(&key) {
                            return Err(DeltaError::MissingEdge { op: i });
                        }
                        *degree.entry(better.clone()).or_default() -= 1;
                        *degree.entry(worse.clone()).or_default() -= 1;
                        if let Some(row) = worse_of.get_mut(better) {
                            if let Some(pos) = row.iter().position(|f| f == worse) {
                                row.remove(pos);
                            }
                        }
                    }
                    priority_ops += 1;
                }
            }
        }
        Ok((inserts, deletes, priority_ops))
    }

    /// Does `from ≻ … ≻ to` hold in the simulated adjacency (including
    /// the trivial `from == to` path, which rejects self-loops)?
    fn reaches(worse_of: &FxHashMap<Fact, Vec<Fact>>, from: &Fact, to: &Fact) -> bool {
        if from == to {
            return true;
        }
        let mut seen: FxHashSet<&Fact> = FxHashSet::default();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(node) = stack.pop() {
            for succ in worse_of.get(node).map_or(&[][..], |v| v) {
                if succ == to {
                    return true;
                }
                if seen.insert(succ) {
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// Applies one validated op to the workspace and fingerprint lanes
    /// only (cold-rebuild path: artifacts are rebuilt afterwards).
    fn apply_op_data(&mut self, op: &DeltaOp) {
        let sig = self.pi.instance().signature().clone();
        match op {
            DeltaOp::InsertFact(f) => {
                self.fact_acc.add(fingerprint_fact(&sig, f));
                self.pi.insert_fact(f.clone());
            }
            DeltaOp::DeleteFact(f) => {
                self.fact_acc.remove(fingerprint_fact(&sig, f));
                let id = self.pi.instance().id_of(f).expect("validated delete");
                self.pi.remove_fact(id);
            }
            DeltaOp::SetPriority { better, worse, prefer } => {
                let fp = priority_edge_fingerprint(&sig, better, worse);
                let (bi, wi) = (
                    self.pi.instance().id_of(better).expect("validated endpoint"),
                    self.pi.instance().id_of(worse).expect("validated endpoint"),
                );
                if *prefer {
                    self.edge_acc.add(fp);
                    self.pi.add_edge(&self.schema, bi, wi).expect("validated edge");
                } else {
                    self.edge_acc.remove(fp);
                    self.pi.remove_edge(bi, wi);
                }
            }
        }
    }

    /// Applies one validated op, patching the artifacts in place.
    /// Blocks of the touched single-FD relation are edited in place
    /// (canonical order makes the patch bit-identical to a rebuild);
    /// blocks of *other* relations are only id-remapped on deletes.
    /// `tracker` records which pre-batch components the op dirtied, so
    /// [`finish_structural_batch`](Self::finish_structural_batch) can
    /// skip the clean shards.
    fn apply_op_patched(&mut self, op: &DeltaOp, tracker: &mut ShardTracker) {
        match op {
            DeltaOp::InsertFact(f) => {
                let rel = f.rel();
                let fd = self.single_fd_of(rel);
                self.apply_op_data(op);
                let inst = self.pi.instance();
                let id = inst.id_of(f).expect("just inserted");
                self.artifacts.cg.insert_fact(&self.schema, inst, id);
                tracker.record_insert();
                for dom in &mut self.artifacts.rel_domains {
                    dom.grow(inst.len());
                }
                self.artifacts.rel_domains[rel.index()].insert(id);
                if let Some(fd) = fd {
                    if let Some(blocks) = self.artifacts.rel_blocks[rel.index()].as_mut() {
                        blocks.insert(inst, fd, id);
                    }
                }
            }
            DeltaOp::DeleteFact(f) => {
                let rel = f.rel();
                let fd = self.single_fd_of(rel);
                let id = self.pi.instance().id_of(f).expect("validated delete");
                if let Some(fd) = fd {
                    if let Some(blocks) = self.artifacts.rel_blocks[rel.index()].as_mut() {
                        blocks.remove(self.pi.instance(), fd, id);
                    }
                }
                tracker.record_delete(&self.artifacts, id);
                self.apply_op_data(op);
                self.artifacts.cg.remove_fact(id);
                for dom in &mut self.artifacts.rel_domains {
                    dom.remove_shift(id);
                }
                for blocks in self.artifacts.rel_blocks.iter_mut().flatten() {
                    blocks.remap_remove(id);
                }
            }
            DeltaOp::SetPriority { .. } => self.apply_op_data(op),
        }
    }

    /// The single FD the plan tracks blocks for on `rel`, if any.
    fn single_fd_of(&self, rel: rpr_data::RelId) -> Option<Fd> {
        if let Plan::Classical(class) = &self.artifacts.plan {
            for (r, rc) in class.per_relation() {
                if *r == rel {
                    if let RelationClass::SingleFd(fd) = rc {
                        return Some(*fd);
                    }
                }
            }
        }
        None
    }

    /// Re-derives the batch-amortized artifacts after structural ops,
    /// scoped to the shards the batch dirtied: CSR rows are remapped
    /// (not re-derived) for facts whose adjacency is unchanged, the
    /// component DFS re-runs only inside touched components, and clean
    /// shards are renumbered in place. Returns the number of nontrivial
    /// components reused without a re-derivation.
    fn finish_structural_batch(&mut self, tracker: ShardTracker) -> usize {
        let ShardTracker { new_to_old, mut touched } = tracker;
        let art = &mut self.artifacts;
        let n_new = art.cg.len();
        debug_assert_eq!(n_new, new_to_old.len());
        let n_old = art.components.universe();
        let mut old_to_new = vec![u32::MAX; n_old];
        for (i, &o) in new_to_old.iter().enumerate() {
            if o != u32::MAX {
                old_to_new[o as usize] = i as u32;
            }
        }
        // Rows that changed shape: inserted facts and their neighbors.
        // An inserted fact can also *merge* components, so its
        // surviving neighbors' old components count as touched.
        let mut rederive = FactSet::empty(n_new);
        for (i, &o) in new_to_old.iter().enumerate() {
            if o != u32::MAX {
                continue;
            }
            let id = FactId(i as u32);
            rederive.insert(id);
            for g in art.cg.conflicts_of(id).iter() {
                rederive.insert(g);
                let g_old = new_to_old[g.index()];
                if g_old != u32::MAX {
                    touched[art.components.component_of(FactId(g_old))] = true;
                }
            }
        }
        let csr = CsrConflictGraph::patched(&art.csr, &art.cg, &old_to_new, &new_to_old, &rederive);
        debug_assert!(
            csr == CsrConflictGraph::from_graph(&art.cg),
            "patched CSR diverged from a from-scratch packing"
        );
        let (components, reused) =
            ComponentLayout::patched(&art.components, &csr, &old_to_new, &new_to_old, &touched);
        debug_assert!(
            components == ComponentLayout::from_csr(&csr),
            "patched component layout diverged from a from-scratch derivation"
        );
        art.csr = csr;
        art.components = components;
        if art.ccp_union.is_some() {
            art.ccp_union = Some(SessionArtifacts::ccp_union_layout(&art.cg, self.pi.priority()));
        }
        if let Plan::Classical(class) = &art.plan {
            let inst = self.pi.instance();
            for (rel, rc) in class.per_relation() {
                if let RelationClass::SingleFd(fd) = rc {
                    if art.rel_blocks[rel.index()].is_none() {
                        art.rel_blocks[rel.index()] =
                            Some(FdBlocks::build(inst, *fd, &art.rel_domains[rel.index()]));
                    }
                }
            }
        }
        reused
    }

    /// Number of nontrivial conflict components (session shards) in the
    /// current state — the serve layer's `rpr_session_components`
    /// gauge.
    pub fn shard_count(&self) -> usize {
        self.artifacts.shard_count()
    }
}

/// Per-batch dirty-shard bookkeeping for the patched delta path: the
/// dense id renumbering accumulated so far (`new_to_old`) plus which
/// pre-batch components were structurally touched. Deletes dirty the
/// deleted fact's whole component (removing a bridge fact can split
/// it); inserts are resolved at batch finish from the final adjacency
/// (an insert can merge several components).
struct ShardTracker {
    /// Current id → pre-batch id; `u32::MAX` for facts inserted by
    /// this batch.
    new_to_old: Vec<u32>,
    /// Pre-batch component index → dirtied by this batch.
    touched: Vec<bool>,
}

impl ShardTracker {
    fn new(artifacts: &SessionArtifacts) -> Self {
        ShardTracker {
            new_to_old: (0..artifacts.components.universe() as u32).collect(),
            touched: vec![false; artifacts.components.len()],
        }
    }

    /// Records an append (the new fact holds the maximal id).
    fn record_insert(&mut self) {
        self.new_to_old.push(u32::MAX);
    }

    /// Records a delete of the *current* id `d`, before renumbering.
    fn record_delete(&mut self, artifacts: &SessionArtifacts, d: FactId) {
        let old = self.new_to_old.remove(d.index());
        if old != u32::MAX {
            self.touched[artifacts.components.component_of(FactId(old))] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{FactId, FactSet, Instance, Signature, Value};
    use rpr_priority::PriorityRelation;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn workspace() -> (Arc<Schema>, PrioritizedInstance) {
        let sig = Signature::new([("R", 2), ("S", 2)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("S", &[1][..], &[2][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("x")]).unwrap(); // 0
        i.insert_named("R", [v("a"), v("y")]).unwrap(); // 1
        i.insert_named("R", [v("b"), v("x")]).unwrap(); // 2
        i.insert_named("S", [v("k"), v("1")]).unwrap(); // 3
        i.insert_named("S", [v("k"), v("2")]).unwrap(); // 4
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap();
        (Arc::new(schema), pi)
    }

    fn fact(pi: &PrioritizedInstance, rel: &str, a: &str, b: &str) -> Fact {
        Fact::parse_new(pi.instance().signature(), rel, [v(a), v(b)]).unwrap()
    }

    /// The patched session must agree with a freshly-prepared one on
    /// fingerprint and on every check over every subset.
    fn assert_matches_cold(ds: &DeltaSession) {
        let cold = DeltaSession::prepare(Arc::clone(ds.schema()), ds.prioritized().clone());
        assert_eq!(ds.fingerprint(), cold.fingerprint());
        let n = ds.prioritized().instance().len();
        assert!(n <= 12, "exhaustive subset check needs a small instance");
        for bits in 0..(1u32 << n) {
            let mut j = FactSet::empty(n);
            for b in 0..n {
                if bits >> b & 1 == 1 {
                    j.insert(FactId(b as u32));
                }
            }
            assert_eq!(
                ds.session().check(&j),
                cold.session().check(&j),
                "candidate {j:?} diverged"
            );
        }
    }

    #[test]
    fn patched_inserts_and_deletes_match_cold_rebuild() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let f_new = fact(ds.prioritized(), "R", "b", "z");
        let f_old = fact(ds.prioritized(), "S", "k", "1");
        let report = ds
            .apply_delta(&[DeltaOp::InsertFact(f_new.clone()), DeltaOp::DeleteFact(f_old.clone())])
            .unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!((report.inserts, report.deletes), (1, 1));
        assert_matches_cold(&ds);
    }

    #[test]
    fn priority_ops_match_cold_rebuild() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let (s1, s2) =
            (fact(ds.prioritized(), "S", "k", "1"), fact(ds.prioritized(), "S", "k", "2"));
        let (r_x, r_y) =
            (fact(ds.prioritized(), "R", "a", "x"), fact(ds.prioritized(), "R", "a", "y"));
        let report = ds
            .apply_delta(&[
                DeltaOp::SetPriority { better: s2.clone(), worse: s1.clone(), prefer: true },
                DeltaOp::SetPriority { better: r_x, worse: r_y, prefer: false },
            ])
            .unwrap();
        assert_eq!(report.priority_ops, 2);
        assert!(!report.rebuilt, "priority-only batches never rebuild");
        assert_matches_cold(&ds);
    }

    #[test]
    fn delete_then_reinsert_round_trips_the_fingerprint() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let before = ds.fingerprint();
        let f = fact(ds.prioritized(), "S", "k", "1");
        ds.apply_delta(&[DeltaOp::DeleteFact(f.clone())]).unwrap();
        assert_ne!(ds.fingerprint(), before);
        ds.apply_delta(&[DeltaOp::InsertFact(f)]).unwrap();
        assert_eq!(ds.fingerprint(), before);
        assert_matches_cold(&ds);
    }

    #[test]
    fn failed_batches_leave_the_session_unchanged() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let before = ds.fingerprint();
        let good = fact(ds.prioritized(), "R", "c", "w");
        let dup = fact(ds.prioritized(), "R", "a", "x");
        let err =
            ds.apply_delta(&[DeltaOp::InsertFact(good), DeltaOp::InsertFact(dup)]).unwrap_err();
        assert!(matches!(err, DeltaError::AlreadyPresent { op: 1, .. }));
        assert_eq!(ds.fingerprint(), before);
        assert_eq!(ds.prioritized().instance().len(), 5);
        assert_matches_cold(&ds);
    }

    #[test]
    fn validation_rejects_every_error_class() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let (r_x, r_y) =
            (fact(ds.prioritized(), "R", "a", "x"), fact(ds.prioritized(), "R", "a", "y"));
        let r_b = fact(ds.prioritized(), "R", "b", "x");
        let ghost = fact(ds.prioritized(), "R", "q", "q");
        type ErrCase = (Vec<DeltaOp>, fn(&DeltaError) -> bool);
        let cases: Vec<ErrCase> = vec![
            (vec![DeltaOp::DeleteFact(ghost.clone())], |e| {
                matches!(e, DeltaError::MissingFact { op: 0, .. })
            }),
            // Fact 0 carries the seed edge 0 ≻ 1.
            (vec![DeltaOp::DeleteFact(r_x.clone())], |e| {
                matches!(e, DeltaError::HasEdges { op: 0, .. })
            }),
            (
                vec![DeltaOp::SetPriority {
                    better: r_x.clone(),
                    worse: r_y.clone(),
                    prefer: true,
                }],
                |e| matches!(e, DeltaError::DuplicateEdge { op: 0 }),
            ),
            (
                vec![DeltaOp::SetPriority {
                    better: r_y.clone(),
                    worse: r_x.clone(),
                    prefer: true,
                }],
                |e| matches!(e, DeltaError::Cyclic { op: 0 }),
            ),
            (
                vec![DeltaOp::SetPriority {
                    better: r_x.clone(),
                    worse: r_b.clone(),
                    prefer: true,
                }],
                |e| matches!(e, DeltaError::NotConflicting { op: 0 }),
            ),
            (
                vec![DeltaOp::SetPriority {
                    better: r_y.clone(),
                    worse: r_b.clone(),
                    prefer: false,
                }],
                |e| matches!(e, DeltaError::MissingEdge { op: 0 }),
            ),
            (vec![DeltaOp::InsertFact(r_b.clone())], |e| {
                matches!(e, DeltaError::AlreadyPresent { op: 0, .. })
            }),
        ];
        let before = ds.fingerprint();
        for (ops, check) in cases {
            let err = ds.apply_delta(&ops).unwrap_err();
            assert!(check(&err), "unexpected error {err:?} for {ops:?}");
            assert_eq!(ds.fingerprint(), before, "failed batch mutated state");
        }
    }

    #[test]
    fn heavy_churn_takes_the_rebuild_path() {
        let (schema, pi) = workspace();
        let mut ds = DeltaSession::prepare(schema, pi);
        let sig = ds.prioritized().instance().signature().clone();
        let ops: Vec<DeltaOp> = (0..4)
            .map(|k| {
                DeltaOp::InsertFact(
                    Fact::parse_new(&sig, "S", [v(&format!("n{k}")), v("1")]).unwrap(),
                )
            })
            .collect();
        let report = ds.apply_delta(&ops).unwrap();
        assert!(report.rebuilt, "4 inserts into 5 facts is 80% churn");
        assert_matches_cold(&ds);
        // A single follow-up op patches instead.
        let one = fact(ds.prioritized(), "S", "n9", "9");
        let report = ds.apply_delta(&[DeltaOp::InsertFact(one)]).unwrap();
        assert!(!report.rebuilt);
        assert_matches_cold(&ds);
    }
}
