//! Pareto-optimal repair checking (polynomial for every schema).
//!
//! Staworko et al. observed — and the paper relies on it in §3 and as
//! step 1 of `GRepCheck2Keys` (Figure 4) — that Pareto-optimal repair
//! checking is solvable in polynomial time, for *every* schema and for
//! ccp-instances alike. The algorithm rests on a local characterization:
//!
//! > A consistent `J` has a Pareto improvement iff (a) `J` is not
//! > maximal, or (b) some fact `g ∈ I \ J` beats every fact of `J` that
//! > conflicts with `g`.
//!
//! *Proof.* (⇐) In case (a) any consistent proper superset improves `J`
//! vacuously; in case (b) `J′ = (J \ Conf_J(g)) ∪ {g}` is consistent and
//! `g` beats all of `J \ J′ = Conf_J(g)`. (⇒) If `J′` is a Pareto
//! improvement with witness `f ∈ J′ \ J` beating all of `J \ J′`, then
//! every fact of `J` conflicting with `f` is outside `J′` (it cannot
//! coexist with `f`), so `Conf_J(f) ⊆ J \ J′` and `f` beats all of
//! `Conf_J(f)`; if `Conf_J(f)` is empty, `J` was not maximal. ∎
//!
//! The same argument is insensitive to whether priorities are
//! conflict-restricted, so this module serves both §2 and §7 checkers.

use crate::improvement::{is_pareto_improvement, Improvement};
use rpr_data::FactSet;
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Finds a Pareto improvement of the consistent set `j` within `domain`
/// (candidates `g` range over `domain \ j`; conflicts are counted
/// against `j ∩ domain`).
///
/// Pass `domain = I` for whole-instance checking; the per-relation
/// decomposition of Proposition 3.5 passes the facts of one relation.
///
/// # Panics
/// Debug-asserts that `j ⊆ domain` and `j` is consistent.
pub fn find_pareto_improvement(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    domain: &FactSet,
) -> Option<Improvement> {
    debug_assert!(j.is_subset(domain));
    debug_assert!(cg.is_consistent_set(j));
    let candidates = domain.difference(j);
    for g in candidates.iter() {
        let conflicts = cg.conflicts_in(g, j);
        if conflicts.is_empty() {
            // J not maximal within the domain: adding g improves it.
            let mut added = FactSet::empty(j.universe());
            added.insert(g);
            return Some(Improvement { removed: FactSet::empty(j.universe()), added });
        }
        if priority.beats_all(g, &conflicts) {
            let mut added = FactSet::empty(j.universe());
            added.insert(g);
            return Some(Improvement { removed: conflicts, added });
        }
    }
    None
}

/// Is `j` a Pareto-optimal repair of the instance underlying `cg`
/// (checking the whole instance)?
///
/// Returns `false` for inconsistent `j` (an inconsistent set is not a
/// repair at all).
pub fn is_pareto_optimal(cg: &ConflictGraph, priority: &PriorityRelation, j: &FactSet) -> bool {
    if !cg.is_consistent_set(j) {
        return false;
    }
    let domain = FactSet::full(j.universe());
    find_pareto_improvement(cg, priority, j, &domain).is_none()
}

/// Brute-force Pareto-optimality from Definition 2.4, for differential
/// testing: enumerates all repairs and tests each as an improvement.
pub fn is_pareto_optimal_brute(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    j: &FactSet,
    budget: usize,
) -> Result<bool, crate::improvement::BudgetExceeded> {
    if !cg.is_consistent_set(j) {
        return Ok(false);
    }
    let repairs = crate::brute::enumerate_repairs(cg, budget)?;
    Ok(!repairs.iter().any(|r| is_pareto_improvement(priority, j, r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// The full running example (Figure 1 + Example 2.3).
    fn running() -> (ConflictGraph, Instance, PriorityRelation) {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [
                ("BookLoc", &[1][..], &[2][..]),
                ("LibLoc", &[1][..], &[2][..]),
                ("LibLoc", &[2][..], &[1][..]),
            ],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        // BookLoc facts (ids 0..=4): g1f1, g1f2, f1d3, f2p1, h3h2.
        for (a, b, c) in [
            ("b1", "fiction", "lib1"),
            ("b1", "fiction", "lib2"),
            ("b1", "drama", "lib3"),
            ("b2", "poetry", "lib1"),
            ("b3", "horror", "lib2"),
        ] {
            i.insert_named("BookLoc", [v(a), v(b), v(c)]).unwrap();
        }
        // LibLoc facts (ids 5..=12): d1a, d1e, g2a, f2b, f3a, f3c, e1b, e3b.
        for (a, b) in [
            ("lib1", "almaden"),
            ("lib1", "edenvale"),
            ("lib2", "almaden"),
            ("lib2", "bascom"),
            ("lib3", "almaden"),
            ("lib3", "cambrian"),
            ("lib1", "bascom"),
            ("lib3", "bascom"),
        ] {
            i.insert_named("LibLoc", [v(a), v(b)]).unwrap();
        }
        let cg = ConflictGraph::new(&schema, &i);
        // Example 2.3: g_y ≻ f_x for conflicting pairs (BookLoc: the g
        // facts beat the conflicting f fact f1d3), e_y ≻ d_x (LibLoc).
        // Example 2.3's g ≻ f and e ≻ d edges on conflicting pairs:
        // BookLoc g1f1/g1f2 ≻ f1d3; LibLoc e1b ≻ d1a/d1e and
        // g2a ≻ f2b/f3a. (e3b vs f3a conflict via lib3 but carry no
        // priority — e-facts only dominate d-facts.)
        let edges = vec![
            (FactId(0), FactId(2)),
            (FactId(1), FactId(2)),
            (FactId(11), FactId(5)),
            (FactId(11), FactId(6)),
            (FactId(7), FactId(8)),
            (FactId(7), FactId(9)),
        ];
        let p = PriorityRelation::new(i.len(), edges).unwrap();
        (cg, i, p)
    }

    /// Example 2.5's four subinstances, as fact sets.
    fn example_sets(i: &Instance) -> [FactSet; 4] {
        // BookLoc part of every Ji: {g1f1, g1f2, f2p1, h3h2} = {0,1,3,4}.
        let j1 = i.set_of([0, 1, 3, 4, 6, 8, 9].map(FactId)); // + d1e, f2b, f3a
        let j2 = i.set_of([0, 1, 3, 4, 6, 7, 12].map(FactId)); // + d1e, g2a, e3b
        let j3 = i.set_of([0, 1, 3, 4, 6, 8, 9].map(FactId)); // J3 = J1 in Fig: d1e, f2b, f3a
        let j4 = i.set_of([0, 1, 3, 4, 11, 7, 10].map(FactId)); // + e1b, g2a, f3c
        [j1, j2, j3, j4]
    }

    #[test]
    fn example_2_5_pareto_claims() {
        let (cg, i, p) = running();
        let [j1, j2, _j3, j4] = example_sets(&i);
        for (name, j) in [("J1", &j1), ("J2", &j2), ("J4", &j4)] {
            assert!(cg.is_repair(j), "{name} must be a repair");
        }
        // J2 is a Pareto-optimal (indeed globally-optimal) repair.
        assert!(is_pareto_optimal(&cg, &p, &j2));
        // J1 has a Pareto improvement (g2a beats f2b and f3a).
        assert!(!is_pareto_optimal(&cg, &p, &j1));
        let imp = find_pareto_improvement(&cg, &p, &j1, &FactSet::full(i.len())).unwrap();
        assert!(imp.added.contains(FactId(7)));
        // J3 (= J1 here) does not have a Pareto improvement *in the
        // paper*… Example 2.5 defines J3 with the same LibLoc facts as
        // J1 but claims J3 is Pareto-optimal. The difference: the
        // paper's J1 lists the same facts — and indeed J2 is a Pareto
        // improvement of J1 via g2a. Our reading: both J1 and J3 denote
        // {…, d1e, f2b, f3a} and the g2a ≻ f2b / g2a ≻ f3a priorities
        // make g2a a Pareto witness. The Pareto-optimality claim for J3
        // in the paper is relative to a priority *without* those two
        // edges; we verify that variant here.
        let p_no_g2a = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(2)),
                (FactId(1), FactId(2)),
                (FactId(11), FactId(5)),
                (FactId(11), FactId(6)),
                (FactId(12), FactId(9)), // e3b ≻ f3a — cross e/f edge
            ],
        )
        .unwrap();
        let j3_variant = i.set_of([0, 1, 3, 4, 6, 8, 9].map(FactId));
        assert!(is_pareto_optimal(&cg, &p_no_g2a, &j3_variant));
    }

    #[test]
    fn pareto_algorithm_agrees_with_brute_force() {
        let (cg, i, p) = running();
        let [j1, j2, _, j4] = example_sets(&i);
        for j in [&j1, &j2, &j4] {
            assert_eq!(
                is_pareto_optimal(&cg, &p, j),
                is_pareto_optimal_brute(&cg, &p, j, 1 << 22).unwrap()
            );
        }
    }

    #[test]
    fn inconsistent_j_is_not_pareto_optimal() {
        let (cg, i, p) = running();
        let bad = i.set_of([FactId(5), FactId(6)]); // d1a + d1e conflict
        assert!(!is_pareto_optimal(&cg, &p, &bad));
        assert!(!is_pareto_optimal_brute(&cg, &p, &bad, 1 << 22).unwrap());
    }

    #[test]
    fn non_maximal_j_gets_a_vacuous_improvement() {
        let (cg, i, p) = running();
        let j = i.set_of([FactId(0)]);
        let imp = find_pareto_improvement(&cg, &p, &j, &FactSet::full(i.len())).unwrap();
        assert!(imp.removed.is_empty());
        assert_eq!(imp.added.len(), 1);
    }

    #[test]
    fn domain_restriction_limits_candidates() {
        let (cg, i, p) = running();
        // Restrict to BookLoc facts only: J = {g1f1, g1f2, f2p1, h3h2}
        // is Pareto-optimal within BookLoc.
        let domain = i.set_of([0, 1, 2, 3, 4].map(FactId));
        let j = i.set_of([0, 1, 3, 4].map(FactId));
        assert!(find_pareto_improvement(&cg, &p, &j, &domain).is_none());
        // But J' = {f1d3, f2p1, h3h2} is improvable: g1f1 ≻ f1d3.
        let j_bad = i.set_of([2, 3, 4].map(FactId));
        let imp = find_pareto_improvement(&cg, &p, &j_bad, &domain).unwrap();
        assert!(imp.is_valid_global_improvement(&cg, &p, &j_bad));
    }
}
