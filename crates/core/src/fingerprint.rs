//! Canonical content fingerprints of prioritized instances.
//!
//! The serving layer caches prepared sessions keyed by the *content* of
//! `(schema, FDs, instance, priority, mode)`. This module composes the
//! `rpr-data` fingerprint primitives into that key: every component is
//! hashed by content (relation names, tuple values, endpoint facts of
//! priority edges) and set-valued components are combined
//! order-insensitively, so two workspaces declaring the same data in
//! different orders — and therefore assigning different `FactId`s —
//! produce the same fingerprint.
//!
//! It lives in rpr-core (rather than the format crate, which re-exports
//! it for workspace files) because [`DeltaSession`](crate::DeltaSession)
//! maintains the same fingerprint *incrementally* across mutations and
//! must agree bit-for-bit with the from-scratch composition here.

use rpr_data::fingerprint::{combine_unordered, fingerprint_fact, Fingerprint, FingerprintBuilder};
use rpr_data::{Instance, Signature};
use rpr_fd::Schema;
use rpr_priority::{PrioritizedInstance, PriorityMode, PriorityRelation};

/// Fingerprint of a schema: its signature plus the *set* of FDs
/// (each hashed by relation name and attribute bitmasks).
pub fn schema_fingerprint(schema: &Schema) -> Fingerprint {
    let sig = schema.signature();
    let mut b = FingerprintBuilder::new();
    b.fingerprint(rpr_data::fingerprint_signature(sig));
    b.fingerprint(combine_unordered(schema.fds().iter().map(|fd| {
        let mut f = FingerprintBuilder::new();
        f.str(sig.symbol(fd.rel).name()).word(fd.lhs.bits()).word(fd.rhs.bits());
        f.finish()
    })));
    b.finish()
}

/// Fingerprint of one priority edge `hi ≻ lo`, hashed as the ordered
/// pair of its endpoint facts' content digests (so renumbering facts
/// does not change the result).
pub fn priority_edge_fingerprint(
    sig: &Signature,
    hi: &rpr_data::Fact,
    lo: &rpr_data::Fact,
) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.fingerprint(fingerprint_fact(sig, hi));
    b.fingerprint(fingerprint_fact(sig, lo));
    b.finish()
}

/// Fingerprint of a priority relation over a fixed instance: the *set*
/// of [`priority_edge_fingerprint`]s.
pub fn priority_fingerprint(instance: &Instance, priority: &PriorityRelation) -> Fingerprint {
    let sig: &Signature = instance.signature();
    combine_unordered(
        priority
            .edges()
            .iter()
            .map(|&(hi, lo)| priority_edge_fingerprint(sig, instance.fact(hi), instance.fact(lo))),
    )
}

/// The mode word mixed into the canonical fingerprint.
pub(crate) fn mode_word(mode: PriorityMode) -> u64 {
    match mode {
        PriorityMode::ConflictRestricted => 1,
        PriorityMode::CrossConflict => 2,
    }
}

/// The canonical 128-bit fingerprint of a prioritized instance under a
/// schema: schema (signature + FDs), instance facts, priority edges,
/// and priority mode. Declaration order of relations, FDs, facts and
/// preferences does not affect the result.
pub fn content_fingerprint(schema: &Schema, pi: &PrioritizedInstance) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.fingerprint(schema_fingerprint(schema));
    b.fingerprint(rpr_data::fingerprint_instance(pi.instance()));
    b.fingerprint(priority_fingerprint(pi.instance(), pi.priority()));
    b.word(mode_word(pi.mode()));
    b.finish()
}
