//! `GRepCheck2Keys` — globally-optimal repair checking for two key
//! constraints (§4.2, Figure 4, Lemma 4.4).
//!
//! When `Δ|R` is equivalent to two incomparable keys `A1 → ⟦R⟧` and
//! `A2 → ⟦R⟧`, Lemma 4.4 characterizes improvability: a consistent `J`
//! has a global improvement iff it has a Pareto improvement, or one of
//! two bipartite directed graphs has a cycle:
//!
//! * `G12_J`: left vertices are the `A1`-projections of `J`'s facts,
//!   right vertices the `A2`-projections; every `f ∈ J` contributes the
//!   edge `f[A1] → f[A2]`, and every `f′ ∈ I \ J` with `f′ ≻ f` for some
//!   `f ∈ J` sharing its `A2`-projection contributes the *reverse* edge
//!   `f′[A2] → f′[A1]`.
//! * `G21_J`: the same with the roles of `A1`/`A2` swapped.
//!
//! A cycle alternates `J`-edges and reverse edges; exchanging the `J`
//! facts on the cycle (`F`) for the reverse-edge facts (`F′`) yields a
//! global improvement, which this implementation extracts as the
//! witness. Keys make the exchange consistent: on a simple cycle all
//! `A1`-projections are distinct and all `A2`-projections are distinct,
//! and conflicts under two keys require agreeing on one of them.

use crate::improvement::{CheckOutcome, Improvement};
use crate::pareto::find_pareto_improvement;
use rpr_data::{AttrSet, FactId, FactSet, FxHashMap, Instance, Tuple};
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// One direction (`G12` or `G21`) of the Lemma 4.4 graph.
struct BipartiteGraph {
    /// `j_edge[left] = (right, fact)` — each left vertex carries the
    /// unique `J`-fact projecting to it (keys make it unique).
    j_edge: Vec<(usize, FactId)>,
    /// `reverse[right]` = list of `(left, fact)` edges induced by
    /// preferred outside facts.
    reverse: Vec<Vec<(usize, FactId)>>,
}

impl BipartiteGraph {
    /// Builds the graph for keys `(key_x, key_y)`; `G12` is
    /// `(A1, A2)`, `G21` is `(A2, A1)`.
    fn build(
        instance: &Instance,
        priority: &PriorityRelation,
        j: &FactSet,
        candidates: &FactSet,
        key_x: AttrSet,
        key_y: AttrSet,
    ) -> BipartiteGraph {
        let mut left_ids: FxHashMap<Tuple, usize> = FxHashMap::default();
        let mut right_ids: FxHashMap<Tuple, usize> = FxHashMap::default();
        // `J` must be consistent: one fact per X-projection and per
        // Y-projection.
        let mut right_fact: Vec<FactId> = Vec::new();
        let mut j_edge: Vec<(usize, FactId)> = Vec::new();
        for f in j.iter() {
            let fact = instance.fact(f);
            let lx = *left_ids.entry(fact.project(key_x)).or_insert(j_edge.len());
            let ry = *right_ids.entry(fact.project(key_y)).or_insert(right_fact.len());
            debug_assert_eq!(lx, j_edge.len(), "two J facts share an X-projection");
            debug_assert_eq!(ry, right_fact.len(), "two J facts share a Y-projection");
            j_edge.push((ry, f));
            right_fact.push(f);
        }
        let mut reverse: Vec<Vec<(usize, FactId)>> = vec![Vec::new(); right_fact.len()];
        for fp in candidates.iter() {
            let fact = instance.fact(fp);
            let Some(&ry) = right_ids.get(&fact.project(key_y)) else { continue };
            // The unique J fact sharing the Y-projection:
            let dominated = right_fact[ry];
            if !priority.prefers(fp, dominated) {
                continue;
            }
            // The reverse edge is useful only if it lands on a left
            // vertex of the graph (otherwise it cannot close a cycle).
            let Some(&lx) = left_ids.get(&fact.project(key_x)) else { continue };
            reverse[ry].push((lx, fp));
        }
        BipartiteGraph { j_edge, reverse }
    }

    /// Finds a cycle and returns the improvement `(F, F′)` it encodes.
    fn find_cycle_improvement(&self, universe: usize) -> Option<Improvement> {
        // DFS over left vertices. Every left vertex has out-degree 1
        // (its J-edge), so we walk left → right, then branch over the
        // right vertex's reverse edges.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.j_edge.len();
        let mut color = vec![WHITE; n]; // colors on left vertices
                                        // Parent chain over left vertices: parent[l2] = l1 when the path
                                        // l1 → r(l1) → l2 was taken, remembering the reverse-edge fact.
        let mut parent: Vec<Option<(usize, FactId)>> = vec![None; n];
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS: stack of (left_vertex, next_reverse_index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            while let Some(&mut (l, ref mut next)) = stack.last_mut() {
                let (r, _jf) = self.j_edge[l];
                if *next < self.reverse[r].len() {
                    let (l2, fp) = self.reverse[r][*next];
                    *next += 1;
                    match color[l2] {
                        WHITE => {
                            color[l2] = GRAY;
                            parent[l2] = Some((l, fp));
                            stack.push((l2, 0));
                        }
                        GRAY => {
                            // Cycle: l2 ⇒ … ⇒ l ⇒(fp) l2.
                            let mut removed = FactSet::empty(universe);
                            let mut added = FactSet::empty(universe);
                            added.insert(fp);
                            removed.insert(self.j_edge[l].1);
                            let mut cur = l;
                            while cur != l2 {
                                let (prev, via) = parent[cur].expect("gray chain");
                                added.insert(via);
                                removed.insert(self.j_edge[prev].1);
                                cur = prev;
                            }
                            return Some(Improvement { removed, added });
                        }
                        _ => {}
                    }
                } else {
                    color[l] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Runs `GRepCheck2Keys` for the facts in `domain` (one relation),
/// under the two incomparable keys `a1`, `a2` to which `Δ|R` is
/// equivalent.
pub fn check_global_2keys(
    instance: &Instance,
    cg: &ConflictGraph,
    priority: &PriorityRelation,
    a1: AttrSet,
    a2: AttrSet,
    domain: &FactSet,
    j: &FactSet,
) -> CheckOutcome {
    debug_assert!(j.is_subset(domain));

    // Repair pre-checks.
    for f in j.iter() {
        if let Some(g) = cg.conflicts_in(f, j).first() {
            return CheckOutcome::Inconsistent(f, g);
        }
    }
    // Step 1 of Figure 4: Pareto improvement (also covers
    // non-maximality via the vacuous-superset case).
    if let Some(imp) = find_pareto_improvement(cg, priority, j, domain) {
        debug_assert!(imp.is_valid_global_improvement(cg, priority, j));
        return CheckOutcome::Improvable(imp);
    }
    // Step 2: cycles in G12 and G21.
    let candidates = domain.difference(j);
    for (x, y) in [(a1, a2), (a2, a1)] {
        let graph = BipartiteGraph::build(instance, priority, j, &candidates, x, y);
        if let Some(imp) = graph.find_cycle_improvement(j.universe()) {
            debug_assert!(imp.is_valid_global_improvement(cg, priority, j));
            return CheckOutcome::Improvable(imp);
        }
    }
    CheckOutcome::Optimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{Signature, Value};
    use rpr_fd::Schema;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// The LibLoc fragment of the running example (Figure 1) under
    /// {1→2, 2→1}, with the Example 2.3 priority.
    fn libloc() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [("LibLoc", &[1][..], &[2][..]), ("LibLoc", &[2][..], &[1][..])],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        for (a, b) in [
            ("lib1", "almaden"),  // 0 d1a
            ("lib1", "edenvale"), // 1 d1e
            ("lib2", "almaden"),  // 2 g2a
            ("lib2", "bascom"),   // 3 f2b
            ("lib3", "almaden"),  // 4 f3a
            ("lib3", "cambrian"), // 5 f3c
            ("lib1", "bascom"),   // 6 e1b
            ("lib3", "bascom"),   // 7 e3b
        ] {
            i.insert_named("LibLoc", [v(a), v(b)]).unwrap();
        }
        // g ≻ f, e ≻ d on conflicting pairs:
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(2), FactId(3)), // g2a ≻ f2b   (lib2)
                (FactId(2), FactId(4)), // g2a ≻ f3a   (almaden)
                (FactId(6), FactId(0)), // e1b ≻ d1a   (lib1)
                (FactId(6), FactId(1)), // e1b ≻ d1e   (lib1)
            ],
        )
        .unwrap();
        (schema, i, p)
    }

    #[test]
    fn example_4_3_graph_edges() {
        // J = {d1a, f2b, f3c} (Figure 3). G12 has no reverse edges; G21
        // has exactly two: lib2 → almaden (g2a ≻ f2b) and lib1 → bascom
        // (e1b ≻ d1a).
        let (_, i, p) = libloc();
        let j = i.set_of([0, 3, 5].map(FactId));
        let candidates = i.full_set().difference(&j);
        let a1 = AttrSet::singleton(1);
        let a2 = AttrSet::singleton(2);
        let g12 = BipartiteGraph::build(&i, &p, &j, &candidates, a1, a2);
        assert_eq!(g12.reverse.iter().map(|r| r.len()).sum::<usize>(), 0);
        let g21 = BipartiteGraph::build(&i, &p, &j, &candidates, a2, a1);
        let mut edge_facts: Vec<u32> =
            g21.reverse.iter().flat_map(|r| r.iter().map(|&(_, f)| f.0)).collect();
        edge_facts.sort();
        assert_eq!(edge_facts, vec![2, 6]); // g2a and e1b
                                            // G12 is acyclic, but G21's two reverse edges close the cycle
                                            // almaden → lib1 → bascom → lib2 → almaden: swapping {d1a, f2b}
                                            // for {e1b, g2a} is a global improvement of J.
        assert!(g12.find_cycle_improvement(i.len()).is_none());
        let imp = g21.find_cycle_improvement(i.len()).unwrap();
        assert_eq!(imp.removed.iter().collect::<Vec<_>>(), vec![FactId(0), FactId(3)]);
        assert_eq!(imp.added.iter().collect::<Vec<_>>(), vec![FactId(2), FactId(6)]);
    }

    #[test]
    fn j2_is_globally_optimal_j1_is_not() {
        let (schema, i, p) = libloc();
        let cg = ConflictGraph::new(&schema, &i);
        let a1 = AttrSet::singleton(1);
        let a2 = AttrSet::singleton(2);
        // J2 ∩ LibLoc = {d1e, g2a, e3b}.
        let j2 = i.set_of([1, 2, 7].map(FactId));
        assert!(check_global_2keys(&i, &cg, &p, a1, a2, &i.full_set(), &j2).is_optimal());
        // J1 ∩ LibLoc = {d1e, f2b, f3a}: improvable (Pareto, via g2a).
        let j1 = i.set_of([1, 3, 4].map(FactId));
        match check_global_2keys(&i, &cg, &p, a1, a2, &i.full_set(), &j1) {
            CheckOutcome::Improvable(imp) => {
                assert!(imp.is_valid_global_improvement(&cg, &p, &j1));
            }
            other => panic!("expected improvement, got {other:?}"),
        }
    }

    #[test]
    fn cycle_improvement_without_pareto() {
        // Classic swap cycle: facts R(1,a), R(2,b) in J; preferred
        // R(2,a) ≻ R(2,b) and R(1,b) ≻ R(1,a) force a G21-style cycle
        // where the only improvement swaps both facts at once.
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("R", &[2][..], &[1][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("1"), v("a")]).unwrap(); // 0
        i.insert_named("R", [v("2"), v("b")]).unwrap(); // 1
        i.insert_named("R", [v("2"), v("a")]).unwrap(); // 2
        i.insert_named("R", [v("1"), v("b")]).unwrap(); // 3
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(1)), (FactId(3), FactId(0))])
            .unwrap();
        let j = i.set_of([0, 1].map(FactId));
        assert!(cg.is_repair(&j));
        // No Pareto improvement: R(2,a) conflicts with both J facts but
        // beats only R(2,b); R(1,b) beats only R(1,a).
        assert!(find_pareto_improvement(&cg, &p, &j, &i.full_set()).is_none());
        match check_global_2keys(
            &i,
            &cg,
            &p,
            AttrSet::singleton(1),
            AttrSet::singleton(2),
            &i.full_set(),
            &j,
        ) {
            CheckOutcome::Improvable(imp) => {
                assert_eq!(imp.removed.len(), 2);
                assert_eq!(imp.added.len(), 2);
                assert!(imp.is_valid_global_improvement(&cg, &p, &j));
            }
            other => panic!("expected cycle improvement, got {other:?}"),
        }
        // And the swapped repair is optimal.
        let swapped = i.set_of([2, 3].map(FactId));
        assert!(check_global_2keys(
            &i,
            &cg,
            &p,
            AttrSet::singleton(1),
            AttrSet::singleton(2),
            &i.full_set(),
            &swapped
        )
        .is_optimal());
    }

    #[test]
    fn agrees_with_brute_force_on_all_repairs() {
        let (schema, i, p) = libloc();
        let cg = ConflictGraph::new(&schema, &i);
        let repairs = enumerate_repairs(&cg, 1 << 22).unwrap();
        assert!(!repairs.is_empty());
        for j in &repairs {
            let fast = check_global_2keys(
                &i,
                &cg,
                &p,
                AttrSet::singleton(1),
                AttrSet::singleton(2),
                &i.full_set(),
                j,
            )
            .is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, j, 1 << 22).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(j));
        }
    }

    #[test]
    fn generalized_keys_with_overlap() {
        // Quaternary R with keys {1,2} and {2,3} (sharing attribute 2).
        let sig = Signature::new([("R", 4)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [("R", &[1, 2][..], &[3, 4][..]), ("R", &[2, 3][..], &[1, 4][..])],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        // Two "slots" sharing attribute-2 value m; a swap cycle like above.
        i.insert_named("R", [v("1"), v("m"), v("a"), v("p")]).unwrap(); // 0
        i.insert_named("R", [v("2"), v("m"), v("b"), v("q")]).unwrap(); // 1
        i.insert_named("R", [v("2"), v("m"), v("a"), v("r")]).unwrap(); // 2
        i.insert_named("R", [v("1"), v("m"), v("b"), v("s")]).unwrap(); // 3
        let cg = ConflictGraph::new(&schema, &i);
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(1)), (FactId(3), FactId(0))])
            .unwrap();
        let a1 = AttrSet::from_attrs([1, 2]);
        let a2 = AttrSet::from_attrs([2, 3]);
        let repairs = enumerate_repairs(&cg, 1 << 22).unwrap();
        for j in &repairs {
            let fast = check_global_2keys(&i, &cg, &p, a1, a2, &i.full_set(), j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, j, 1 << 22).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(j));
        }
    }
}
