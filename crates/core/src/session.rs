//! Amortized check sessions.
//!
//! [`GRepairChecker::check`](crate::checker::GRepairChecker::check)
//! rebuilds the conflict graph of the base instance on every call.
//! That is the right trade-off for a one-shot query, but enumeration,
//! counting, and CQA workloads check *thousands* of candidate repairs
//! against one fixed `(schema, instance, priority)` triple — and the
//! graph construction then dominates everything else.
//!
//! A [`CheckSession`] is constructed once per triple and amortizes the
//! invariant work across every subsequent [`check`](CheckSession::check):
//!
//! * the bitset [`ConflictGraph`] (consumed by the per-relation
//!   algorithms),
//! * its CSR packing ([`CsrConflictGraph`]) for cache-friendly
//!   adjacency probes in the consistency pre-pass,
//! * the connected components of the conflict graph (parallel
//!   scheduling units for the pre-pass),
//! * the per-relation fact partitions (`rel_set` bitsets), and
//! * the Theorem 3.1 / 7.1 classification driving the Prop 3.5
//!   dispatch.
//!
//! Sessions also parallelize: the `jobs` knob (default: available
//! parallelism) fans work out over dependency-free
//! [`std::thread::scope`] workers — across connected components in the
//! consistency pre-pass, across relation symbols in the classical
//! per-relation dispatch, and across candidates in
//! [`check_batch`](CheckSession::check_batch).
//!
//! **Bounded checking.** [`check_bounded`](CheckSession::check_bounded)
//! and [`check_batch_bounded`](CheckSession::check_batch_bounded) run
//! the same dispatch under an [`rpr_engine::Budget`]: work units are
//! charged per candidate, per relation, and per exact-search node; the
//! deadline and [`CancelToken`](rpr_engine::CancelToken) are observed
//! between candidates and inside the exponential fall-back; and each
//! batch candidate is panic-isolated with [`std::panic::catch_unwind`],
//! so one poisoned candidate yields
//! [`Outcome::Panicked`] for *that entry only* while its siblings'
//! verdicts survive. A cancelled batch stops charging work at the next
//! per-candidate checkpoint.
//!
//! **Bit-identity.** Every session result — outcome *and* witness — is
//! identical to what the corresponding one-shot checker returns, at
//! every `jobs` setting. This falls out of three invariants: CSR
//! neighbor lists are sorted ascending, so the first conflicting
//! partner matches the bitset `first()`; the parallel pre-pass reduces
//! to the *minimal* inconsistent fact, which is exactly the sequential
//! first hit; and the parallel per-relation fan-out scans its results
//! in `per_relation()` order, reproducing the sequential early exit.
//! The bounded paths share the implementation, so surviving candidates
//! of a degraded batch are bit-identical to an unbounded run too.

use crate::checker::DEFAULT_EXACT_BUDGET;
use crate::global_1fd::{check_global_1fd_with_blocks, eval_1fd_groups, FdBlocks};
use crate::global_2keys::check_global_2keys;
use crate::global_ccp_const::check_global_ccp_const;
use crate::global_ccp_pk::check_global_ccp_pk;
use crate::improvement::{BudgetExceeded, CheckOutcome, Improvement};
use crate::pareto::find_pareto_improvement;
use crate::shard_store::{SessionIndex, ShardData, ShardStore};
use rpr_classify::{
    classify_schema, classify_schema_ccp, CcpClass, Complexity, RelationClass, SchemaClass,
};
use rpr_data::{FactId, FactSet, Fingerprint, Instance};
use rpr_engine::{Budget, Outcome, PanicReport, Stop};
use rpr_fd::{ComponentLayout, ConflictGraph, CsrConflictGraph, Schema};
use rpr_priority::{PrioritizedInstance, PriorityMode, PriorityRelation};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Below this universe size a parallel consistency pre-pass costs more
/// in thread startup than it saves.
const PARALLEL_PREPASS_MIN_FACTS: usize = 4096;

/// A fan-out task result: the task's value, or the panic payload the
/// task unwound with. Captured per task so one panicking unit of work
/// never poisons the scope join of its siblings.
type TaskResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Runs `task` with panics captured as values.
fn run_isolated<T>(task: impl FnOnce() -> T) -> TaskResult<T> {
    catch_unwind(AssertUnwindSafe(task))
}

/// Unwraps fan-out results for the legacy (unbounded) entry points:
/// every sibling has already finished, so resuming the first captured
/// panic preserves the historical `check`/`check_batch` behaviour
/// without ever aborting a scope join.
fn rethrow<T>(results: Vec<TaskResult<T>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| match r {
            Ok(t) => t,
            Err(payload) => resume_unwind(payload),
        })
        .collect()
}

/// How the exponential fall-back is bounded on this code path.
#[derive(Clone, Copy)]
enum ExactCtl<'b> {
    /// Legacy semantics: each hard relation's exact search gets a fresh
    /// private allowance of this many steps (what the step-budget API
    /// always did).
    Legacy(usize),
    /// One shared engine budget meters the whole computation: work,
    /// deadline, and cancellation are global across relations, batch
    /// candidates, and workers.
    Engine(&'b Budget),
}

/// The cached dispatch plan: which dichotomy the session runs under.
pub(crate) enum Plan {
    /// Conflict-restricted priorities: Prop 3.5 per-relation dispatch.
    Classical(SchemaClass),
    /// Cross-conflict priorities: whole-instance dispatch (§7).
    Ccp(CcpClass),
}

/// The candidate-independent artifacts a session amortizes: the
/// conflict graph (bitset + CSR), the dichotomy classification, the
/// per-relation fact partitions and Lemma 4.2 block structures, and the
/// nontrivial connected components. Everything here is owned, so
/// artifacts can be built once and cached (e.g. keyed by workspace
/// fingerprint in the serving layer) independently of the borrowing
/// [`CheckSession`] views created from them.
#[must_use = "building session artifacts is the expensive step — use them in a CheckSession"]
pub struct SessionArtifacts {
    pub(crate) cg: ConflictGraph,
    pub(crate) csr: CsrConflictGraph,
    pub(crate) plan: Plan,
    /// `rel_domains[rel.index()]` is the fact partition of that
    /// relation (classical dispatch domains).
    pub(crate) rel_domains: Vec<FactSet>,
    /// `rel_blocks[rel.index()]` caches the Lemma 4.2 group/block
    /// structure for relations classified as a single FD — the hash
    /// grouping is candidate-independent, so it is built once here
    /// instead of on every check.
    pub(crate) rel_blocks: Vec<Option<FdBlocks>>,
    /// The connected components of the conflict graph, CSR-packed.
    /// Shards: the consistency pre-pass, the per-component exact
    /// fall-back, and the delta layer's dirty-component tracking all
    /// schedule over this partition.
    pub(crate) components: ComponentLayout,
    /// Components of the *union* graph (conflict ∪ priority edges),
    /// built only for cross-conflict Hard plans: ccp priorities may
    /// join facts that never conflict, so the exact fall-back must
    /// decompose along union connectivity to stay sound.
    pub(crate) ccp_union: Option<ComponentLayout>,
    /// Content-addressed shard handles for the exact fall-back,
    /// indexed by component id of the exact layout (`components`
    /// classically, `ccp_union` for ccp Hard plans); `Some` exactly at
    /// nontrivial components, empty when the plan has no hard path.
    /// Sessions attached to a [`ShardStore`] share these across
    /// workspace fingerprints; detached builds own them privately.
    pub(crate) exact_shards: Vec<Option<Arc<ShardData>>>,
}

impl SessionArtifacts {
    /// Builds the artifacts, classifying the schema under the dichotomy
    /// matching `pi.mode()`. Shards are private (detached from any
    /// store); [`SessionArtifacts::build_with_store`] shares them.
    pub fn build(schema: &Schema, pi: &PrioritizedInstance) -> Self {
        Self::build_with_store(schema, pi, None)
    }

    /// [`SessionArtifacts::build`] with the exact-path shards resolved
    /// through a content-addressed [`ShardStore`]: components whose
    /// content (facts, incident FDs, intra-component priority edges)
    /// is already cached — by *any* workspace — reuse the stored shard
    /// instead of rebuilding it.
    pub fn build_with_store(
        schema: &Schema,
        pi: &PrioritizedInstance,
        store: Option<&ShardStore>,
    ) -> Self {
        let plan = match pi.mode() {
            PriorityMode::ConflictRestricted => Plan::Classical(classify_schema(schema)),
            PriorityMode::CrossConflict => Plan::Ccp(classify_schema_ccp(schema)),
        };
        Self::build_with_plan_store(schema, pi, plan, store)
    }

    /// The one shared derivation of the candidate-independent graph
    /// structure: CSR packing plus the component shard layout. Both the
    /// cold build below and the delta layer's rebuild path go through
    /// here, so the shard layout has a single home.
    pub(crate) fn derive_structure(cg: &ConflictGraph) -> (CsrConflictGraph, ComponentLayout) {
        let csr = CsrConflictGraph::from_graph(cg);
        let components = ComponentLayout::from_csr(&csr);
        (csr, components)
    }

    /// The union-graph (conflict ∪ priority) component layout a ccp
    /// Hard plan decomposes its exact search over. Rebuilt by the delta
    /// layer whenever structure or priority changes.
    pub(crate) fn ccp_union_layout(
        cg: &ConflictGraph,
        priority: &PriorityRelation,
    ) -> ComponentLayout {
        ComponentLayout::from_edges(
            cg.len(),
            cg.edges().into_iter().chain(priority.edges().iter().copied()),
        )
    }

    fn build_with_plan(schema: &Schema, pi: &PrioritizedInstance, plan: Plan) -> Self {
        Self::build_with_plan_store(schema, pi, plan, None)
    }

    fn build_with_plan_store(
        schema: &Schema,
        pi: &PrioritizedInstance,
        plan: Plan,
        store: Option<&ShardStore>,
    ) -> Self {
        let instance = pi.instance();
        let cg = ConflictGraph::new(schema, instance);
        let (csr, components) = Self::derive_structure(&cg);
        let rel_domains: Vec<FactSet> =
            schema.signature().rel_ids().map(|rel| instance.rel_set(rel)).collect();
        let mut rel_blocks: Vec<Option<FdBlocks>> =
            schema.signature().rel_ids().map(|_| None).collect();
        if let Plan::Classical(class) = &plan {
            for (rel, rc) in class.per_relation() {
                if let RelationClass::SingleFd(fd) = rc {
                    rel_blocks[rel.index()] =
                        Some(FdBlocks::build(instance, *fd, &rel_domains[rel.index()]));
                }
            }
        }
        let ccp_union = match &plan {
            Plan::Ccp(CcpClass::Hard { .. }) => Some(Self::ccp_union_layout(&cg, pi.priority())),
            _ => None,
        };
        let mut art = SessionArtifacts {
            cg,
            csr,
            plan,
            rel_domains,
            rel_blocks,
            components,
            ccp_union,
            exact_shards: Vec::new(),
        };
        art.attach_shards(schema, pi, store);
        art
    }

    /// The component layout the exact fall-back decomposes over, if the
    /// plan has a hard path at all: plain conflict components
    /// classically, union components for ccp Hard plans.
    pub(crate) fn exact_layout(&self) -> Option<&ComponentLayout> {
        match &self.plan {
            Plan::Classical(class) => class
                .per_relation()
                .iter()
                .any(|(_, rc)| matches!(rc, RelationClass::Hard(_)))
                .then_some(&self.components),
            Plan::Ccp(CcpClass::Hard { .. }) => {
                Some(self.ccp_union.as_ref().expect("union layout cached for ccp Hard"))
            }
            Plan::Ccp(_) => None,
        }
    }

    /// (Re)resolves the exact-path shard handles, through `store` when
    /// attached. Both the cold build and the delta layer's
    /// re-pointing path come through here: a component whose content
    /// fingerprint is already resident — inserted by this workspace or
    /// any other — is reused as-is (a store *hit*); only changed
    /// components build new shard entries. Detached sessions get the
    /// same reuse against their own previous handles, so delta patches
    /// keep clean shards (and their verdict memos) either way.
    pub(crate) fn attach_shards(
        &mut self,
        schema: &Schema,
        pi: &PrioritizedInstance,
        store: Option<&ShardStore>,
    ) {
        let prev: rpr_data::FxHashMap<u128, Arc<ShardData>> =
            self.exact_shards.drain(..).flatten().map(|s| (s.fingerprint().0, s)).collect();
        let shards = match self.exact_layout() {
            None => Vec::new(),
            Some(layout) => {
                let instance = pi.instance();
                let priority = pi.priority();
                let mut shards: Vec<Option<Arc<ShardData>>> = vec![None; layout.len()];
                for &c in layout.nontrivial() {
                    let c = c as usize;
                    let fp = layout.shard_fingerprint(c, schema, instance, priority.edges());
                    let members = layout.component(c);
                    let build = || ShardData::build(fp, members, &self.cg, priority);
                    shards[c] = Some(match store {
                        Some(store) => store.get_or_insert(fp, build),
                        None => prev.get(&fp.0).cloned().unwrap_or_else(|| Arc::new(build())),
                    });
                }
                shards
            }
        };
        self.exact_shards = shards;
    }

    /// The thin per-workspace tier of the two-tier cache: the ordered
    /// shard keys this workspace's exact path dispatches to, bound to
    /// its content fingerprint.
    pub fn session_index(&self, workspace: Fingerprint) -> SessionIndex {
        let keys =
            self.exact_shards.iter().filter_map(|s| s.as_ref().map(|s| s.fingerprint())).collect();
        SessionIndex::new(workspace, keys)
    }

    /// Estimated resident bytes of the shard handles this session
    /// holds. With a store attached these bytes are *shared* — summing
    /// them across sessions double-counts, which is exactly what the
    /// deduplication-aware accounting in the serve layer avoids.
    pub fn shard_bytes(&self) -> usize {
        self.exact_shards.iter().flatten().map(|s| s.bytes()).sum()
    }

    /// The exact-path shard handles (component id → shard), for tests
    /// and diagnostics.
    pub fn exact_shards(&self) -> &[Option<Arc<ShardData>>] {
        &self.exact_shards
    }

    /// The complexity of checking under the cached classification.
    pub fn complexity(&self) -> Complexity {
        match &self.plan {
            Plan::Classical(c) => c.complexity(),
            Plan::Ccp(c) => c.complexity(),
        }
    }

    /// The cached dispatch plan (certificate emission re-states it as
    /// classification evidence).
    pub(crate) fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The cached Lemma 4.2 block structures, indexed by relation.
    pub(crate) fn rel_blocks(&self) -> &[Option<FdBlocks>] {
        &self.rel_blocks
    }

    /// The CSR conflict graph (maximality-cover emission).
    pub(crate) fn csr_graph(&self) -> &CsrConflictGraph {
        &self.csr
    }

    /// The component shard layout (conflict connectivity).
    pub fn components(&self) -> &ComponentLayout {
        &self.components
    }

    /// Number of nontrivial conflict components — the session's
    /// parallel scheduling units (the serve layer exports this as the
    /// `rpr_session_components` gauge).
    pub fn shard_count(&self) -> usize {
        self.components.nontrivial().len()
    }
}

/// Owned or borrowed artifacts: sessions built directly own theirs;
/// views vended by [`OwnedCheckSession`] (or over externally cached
/// artifacts) borrow.
enum ArtRef<'a> {
    Owned(Box<SessionArtifacts>),
    Borrowed(&'a SessionArtifacts),
}

impl std::ops::Deref for ArtRef<'_> {
    type Target = SessionArtifacts;

    fn deref(&self) -> &SessionArtifacts {
        match self {
            ArtRef::Owned(a) => a,
            ArtRef::Borrowed(a) => a,
        }
    }
}

/// An amortized checker for many `check(J)` calls against one
/// `(schema, instance, priority)` triple. See the module docs.
pub struct CheckSession<'a> {
    schema: &'a Schema,
    pi: &'a PrioritizedInstance,
    art: ArtRef<'a>,
    jobs: usize,
    exact_budget: usize,
}

impl<'a> CheckSession<'a> {
    /// Builds a session, classifying the schema under the dichotomy
    /// matching `pi.mode()`.
    pub fn new(schema: &'a Schema, pi: &'a PrioritizedInstance) -> Self {
        Self::from_artifacts_ref(
            schema,
            pi,
            ArtRef::Owned(Box::new(SessionArtifacts::build(schema, pi))),
        )
    }

    /// Builds a session over artifacts the caller prepared (and may be
    /// sharing — e.g. a serving-layer cache entry). The artifacts must
    /// have been built from the same `(schema, pi)` pair.
    pub fn from_artifacts(
        schema: &'a Schema,
        pi: &'a PrioritizedInstance,
        artifacts: &'a SessionArtifacts,
    ) -> Self {
        Self::from_artifacts_ref(schema, pi, ArtRef::Borrowed(artifacts))
    }

    fn from_artifacts_ref(
        schema: &'a Schema,
        pi: &'a PrioritizedInstance,
        art: ArtRef<'a>,
    ) -> Self {
        CheckSession { schema, pi, art, jobs: default_jobs(), exact_budget: DEFAULT_EXACT_BUDGET }
    }

    /// Builds a classical session from a precomputed classification
    /// (the [`GRepairChecker`](crate::checker::GRepairChecker) already
    /// holds one).
    ///
    /// # Panics
    /// Panics if `pi` was validated in ccp mode.
    pub fn with_classical_class(
        schema: &'a Schema,
        pi: &'a PrioritizedInstance,
        class: SchemaClass,
    ) -> Self {
        assert_eq!(
            pi.mode(),
            PriorityMode::ConflictRestricted,
            "ccp instances must use CcpChecker / a ccp session"
        );
        let art = SessionArtifacts::build_with_plan(schema, pi, Plan::Classical(class));
        Self::from_artifacts_ref(schema, pi, ArtRef::Owned(Box::new(art)))
    }

    /// Builds a ccp session from a precomputed classification.
    /// Classical instances are accepted too (they are a special case of
    /// ccp).
    pub fn with_ccp_class(
        schema: &'a Schema,
        pi: &'a PrioritizedInstance,
        class: CcpClass,
    ) -> Self {
        let art = SessionArtifacts::build_with_plan(schema, pi, Plan::Ccp(class));
        Self::from_artifacts_ref(schema, pi, ArtRef::Owned(Box::new(art)))
    }

    /// Sets the worker count for parallel fan-out. `0` restores the
    /// default (available parallelism); `1` forces sequential
    /// execution.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { default_jobs() } else { jobs };
        self
    }

    /// Overrides the step budget of the exponential fall-back.
    pub fn with_exact_budget(mut self, budget: usize) -> Self {
        self.exact_budget = budget;
        self
    }

    /// The worker count used for parallel fan-out.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cached bitset conflict graph.
    pub fn conflict_graph(&self) -> &ConflictGraph {
        &self.art.cg
    }

    /// The cached CSR packing of the conflict graph.
    pub fn csr(&self) -> &CsrConflictGraph {
        &self.art.csr
    }

    /// The schema the session was classified under.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    /// The base instance the session checks against.
    pub fn instance(&self) -> &Instance {
        self.pi.instance()
    }

    /// The priority relation.
    pub fn priority(&self) -> &PriorityRelation {
        self.pi.priority()
    }

    /// The priority mode the session dispatches under.
    pub fn mode(&self) -> PriorityMode {
        self.pi.mode()
    }

    /// The complexity of checking under the session's dichotomy.
    pub fn complexity(&self) -> Complexity {
        self.art.complexity()
    }

    /// The session's cached artifacts (certificate emission).
    pub(crate) fn artifacts(&self) -> &SessionArtifacts {
        &self.art
    }

    /// Checks whether `j` is a globally-optimal repair, with the
    /// session's cached invariants and parallel fan-out.
    ///
    /// # Errors
    /// [`BudgetExceeded`] only when a hard schema's exact search blows
    /// its budget; tractable schemas never fail.
    pub fn check(&self, j: &FactSet) -> Result<CheckOutcome, BudgetExceeded> {
        self.check_with_jobs(j, self.jobs)
    }

    /// Checks a batch of candidates, fanning out across them. Results
    /// are in input order and identical to calling
    /// [`check`](CheckSession::check) per candidate.
    pub fn check_batch(&self, js: &[FactSet]) -> Vec<Result<CheckOutcome, BudgetExceeded>> {
        // Inner checks stay sequential: the candidates themselves are
        // the parallel unit.
        rethrow(self.fan_out(js.len(), |i| self.check_with_jobs(&js[i], 1)))
    }

    /// [`check`](CheckSession::check) under a caller-supplied
    /// [`Budget`]: the whole dispatch — consistency pre-pass,
    /// per-relation algorithms, and the exponential fall-back — charges
    /// work against `budget` and observes its deadline and cancellation
    /// token. A panic anywhere inside the check is captured as
    /// [`Outcome::Panicked`] instead of unwinding the caller.
    pub fn check_bounded(&self, j: &FactSet, budget: &Budget) -> Outcome<CheckOutcome> {
        match run_isolated(|| self.check_stop(j, self.jobs, budget)) {
            Ok(Ok(outcome)) => Outcome::Done(outcome),
            Ok(Err(stop)) => Outcome::from_stop(stop, None),
            Err(payload) => Outcome::Panicked {
                partial: None,
                report: PanicReport::from_payload("bounded check", payload),
            },
        }
    }

    /// [`check_batch`](CheckSession::check_batch) under a shared
    /// [`Budget`]: one allowance meters the whole batch (workers charge
    /// into the same counter), the deadline/cancel token is
    /// checkpointed before every candidate, and each candidate runs
    /// panic-isolated — a poisoned candidate yields
    /// [`Outcome::Panicked`] for its slot only, siblings keep their
    /// verdicts. Results are in input order; candidates that complete
    /// are bit-identical to [`check`](CheckSession::check).
    pub fn check_batch_bounded(
        &self,
        js: &[FactSet],
        budget: &Budget,
    ) -> Vec<Outcome<CheckOutcome>> {
        let results = self.fan_out(js.len(), |i| {
            // Observe cancellation/deadline between candidates even if
            // the candidate itself would charge no work.
            budget.checkpoint()?;
            #[cfg(feature = "faults")]
            budget.fault_panic_point(i);
            self.check_stop(&js[i], 1, budget)
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(Ok(outcome)) => Outcome::Done(outcome),
                Ok(Err(stop)) => Outcome::from_stop(stop, None),
                Err(payload) => Outcome::Panicked {
                    partial: None,
                    report: PanicReport::from_payload(format!("batch candidate {i}"), payload),
                },
            })
            .collect()
    }

    fn check_with_jobs(&self, j: &FactSet, jobs: usize) -> Result<CheckOutcome, BudgetExceeded> {
        self.check_dispatch(j, jobs, ExactCtl::Legacy(self.exact_budget)).map_err(|stop| match stop
        {
            Stop::Exceeded(_) => BudgetExceeded { budget: self.exact_budget },
            Stop::Cancelled => unreachable!("legacy checks carry no cancellation token"),
        })
    }

    /// Engine-budgeted check: one work unit per candidate plus the
    /// per-relation and exact-search charges below.
    fn check_stop(&self, j: &FactSet, jobs: usize, budget: &Budget) -> Result<CheckOutcome, Stop> {
        budget.step()?;
        self.check_dispatch(j, jobs, ExactCtl::Engine(budget))
    }

    /// The single dispatch implementation behind both the legacy and
    /// the bounded entry points; `exact` decides how the exponential
    /// fall-back is metered.
    fn check_dispatch(
        &self,
        j: &FactSet,
        jobs: usize,
        exact: ExactCtl<'_>,
    ) -> Result<CheckOutcome, Stop> {
        // Global consistency first (gives the cheapest witnesses).
        if let Some((f, g)) = self.consistency_witness(j, jobs) {
            return Ok(CheckOutcome::Inconsistent(f, g));
        }
        match &self.art.plan {
            Plan::Classical(class) => self.check_classical(class, j, jobs, exact),
            Plan::Ccp(class) => self.check_ccp(class, j, jobs, exact),
        }
    }

    /// The minimal fact of `j` conflicting inside `j`, with its minimal
    /// conflict partner — exactly the witness the sequential loop
    /// `for f in j.iter() { cg.conflicts_in(f, j).first() }` finds.
    fn consistency_witness(&self, j: &FactSet, jobs: usize) -> Option<(FactId, FactId)> {
        let nontrivial = self.art.components.nontrivial();
        let parallel =
            jobs > 1 && j.universe() >= PARALLEL_PREPASS_MIN_FACTS && nontrivial.len() > 1;
        if !parallel {
            return j.iter().find_map(|f| self.art.csr.first_conflict_in(f, j).map(|g| (f, g)));
        }
        // Conflicts never leave a component, so each component can be
        // scanned independently; the global witness is the one with the
        // minimal inconsistent fact. Singleton components have no
        // conflicts and are skipped wholesale.
        let per_component = rethrow(self.fan_out_n(jobs, nontrivial.len(), |c| {
            self.art
                .components
                .component(nontrivial[c] as usize)
                .iter()
                .filter(|f| j.contains(**f))
                .find_map(|&f| self.art.csr.first_conflict_in(f, j).map(|g| (f, g)))
        }));
        per_component.into_iter().flatten().min_by_key(|&(f, _)| f)
    }

    fn check_classical(
        &self,
        class: &SchemaClass,
        j: &FactSet,
        jobs: usize,
        exact: ExactCtl<'_>,
    ) -> Result<CheckOutcome, Stop> {
        let rels = class.per_relation();
        if jobs > 1 && rels.len() > 1 {
            // Evaluate all relations concurrently, then scan in
            // `per_relation()` order: the first error or non-optimal
            // outcome is exactly what the sequential early exit
            // returns. Each relation task runs its shards sequentially
            // — the relations themselves are the parallel unit here.
            let outcomes = rethrow(
                self.fan_out_n(jobs, rels.len(), |i| self.check_relation(&rels[i], j, 1, exact)),
            );
            for outcome in outcomes {
                match outcome? {
                    o if !o.is_optimal() => return Ok(o),
                    _ => {}
                }
            }
        } else {
            // A single classified relation (or sequential mode): route
            // the jobs knob down so the relation's own shards fan out —
            // intra-candidate parallelism.
            for rc in rels {
                let outcome = self.check_relation(rc, j, jobs, exact)?;
                if !outcome.is_optimal() {
                    return Ok(outcome);
                }
            }
        }
        Ok(CheckOutcome::Optimal)
    }

    fn check_relation(
        &self,
        (rel, class): &(rpr_data::RelId, RelationClass),
        j: &FactSet,
        jobs: usize,
        exact: ExactCtl<'_>,
    ) -> Result<CheckOutcome, Stop> {
        let instance = self.pi.instance();
        let priority = self.pi.priority();
        let domain = &self.art.rel_domains[rel.index()];
        let j_rel = j.intersect(domain);
        if let ExactCtl::Engine(budget) = exact {
            // One unit per dispatched relation, so polynomial relations
            // still make the work counter reflect progress.
            budget.step()?;
        }
        Ok(match class {
            RelationClass::SingleFd(_) => {
                let blocks = self.art.rel_blocks[rel.index()]
                    .as_ref()
                    .expect("blocks cached for every single-FD relation");
                self.check_1fd_sharded(priority, blocks, &j_rel, jobs)
            }
            RelationClass::TwoKeys(a1, a2) => {
                check_global_2keys(instance, &self.art.cg, priority, *a1, *a2, domain, &j_rel)
            }
            RelationClass::Hard(_) => self.check_exact_sharded(
                priority,
                domain,
                &j_rel,
                exact,
                jobs,
                &self.art.components,
            )?,
        })
    }

    fn check_ccp(
        &self,
        class: &CcpClass,
        j: &FactSet,
        jobs: usize,
        exact: ExactCtl<'_>,
    ) -> Result<CheckOutcome, Stop> {
        let instance = self.pi.instance();
        let priority = self.pi.priority();
        if let ExactCtl::Engine(budget) = exact {
            budget.step()?;
        }
        Ok(match class {
            CcpClass::PrimaryKeyAssignment(_) => check_global_ccp_pk(&self.art.cg, priority, j),
            CcpClass::ConstantAttributeAssignment(consts) => {
                check_global_ccp_const(instance, &self.art.cg, priority, consts, j)
            }
            CcpClass::Hard { .. } => {
                // Plain conflict components are NOT sound shards here:
                // ccp priority edges may cross them, and a lost fact's
                // beater could then live in another conflict component.
                // The union layout (conflict ∪ priority connectivity)
                // restores locality.
                let layout = self
                    .art
                    .ccp_union
                    .as_ref()
                    .expect("union layout cached for every ccp Hard plan");
                self.check_exact_sharded(priority, &instance.full_set(), j, exact, jobs, layout)?
            }
        })
    }

    /// The single-FD check with its group axis fanned out: each worker
    /// evaluates a contiguous group range, and the hierarchical reduce
    /// (min-`f` inconsistency, then min maximality witness, then the
    /// improvable hit with the smallest group index) reproduces the
    /// sequential verdict and witness exactly.
    fn check_1fd_sharded(
        &self,
        priority: &PriorityRelation,
        blocks: &FdBlocks,
        j_rel: &FactSet,
        jobs: usize,
    ) -> CheckOutcome {
        let n_groups = blocks.groups().len();
        let parallel = jobs > 1 && n_groups > 1 && j_rel.universe() >= PARALLEL_PREPASS_MIN_FACTS;
        if !parallel {
            return check_global_1fd_with_blocks(&self.art.cg, priority, blocks, j_rel);
        }
        let workers = jobs.min(n_groups);
        let chunk = n_groups.div_ceil(workers);
        let ranges: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (w * chunk).min(n_groups)..((w + 1) * chunk).min(n_groups))
            .collect();
        let parts = rethrow(self.fan_out_n(jobs, ranges.len(), |i| {
            eval_1fd_groups(priority, blocks, j_rel, ranges[i].clone())
        }));
        if let Some((f, g)) = parts.iter().filter_map(|e| e.incons).min_by_key(|&(f, _)| f) {
            debug_assert!(self.art.cg.conflicting(f, g));
            return CheckOutcome::Inconsistent(f, g);
        }
        if let Some(g) = parts.iter().filter_map(|e| e.max_wit).min() {
            debug_assert!(!self.art.cg.conflicts_with_set(g, j_rel));
            let mut added = FactSet::empty(j_rel.universe());
            added.insert(g);
            return CheckOutcome::Improvable(Improvement {
                removed: FactSet::empty(j_rel.universe()),
                added,
            });
        }
        match parts.into_iter().filter_map(|e| e.improvable).min_by_key(|&(gi, _)| gi) {
            Some((_, imp)) => {
                debug_assert!(imp.is_valid_global_improvement(&self.art.cg, priority, j_rel));
                CheckOutcome::Improvable(imp)
            }
            None => CheckOutcome::Optimal,
        }
    }

    /// The exponential fall-back, decomposed over `layout`'s nontrivial
    /// components and metered per `exact`.
    ///
    /// Soundness: after the whole-domain consistency and Pareto
    /// pre-checks pass, any global improvement exchanges facts inside a
    /// single component (conflict components classically; union
    /// components in ccp mode, where priority edges also bind), so the
    /// search runs per shard — `2^(max component size)` instead of
    /// `2^(domain size)` — and a component-local hit is returned as the
    /// global witness.
    ///
    /// Legacy metering arms a fresh private allowance per *shard*
    /// (mirroring the historical per-relation semantics one level
    /// down), which keeps `Exceeded` deterministic at every `jobs`
    /// setting; engine metering charges the one shared budget, so the
    /// exact trip point under parallelism is as scheduling-dependent as
    /// it already was across relations and batch candidates.
    fn check_exact_sharded(
        &self,
        priority: &PriorityRelation,
        domain: &FactSet,
        j_rel: &FactSet,
        exact: ExactCtl<'_>,
        jobs: usize,
        layout: &ComponentLayout,
    ) -> Result<CheckOutcome, Stop> {
        // Whole-domain pre-checks, bit-identical to the one-shot
        // `check_global_exact` witnesses.
        for f in j_rel.iter() {
            if let Some(g) = self.art.cg.conflicts_in(f, j_rel).first() {
                return Ok(CheckOutcome::Inconsistent(f, g));
            }
        }
        if let Some(imp) = find_pareto_improvement(&self.art.cg, priority, j_rel, domain) {
            return Ok(CheckOutcome::Improvable(imp));
        }
        // Components never span relations, so a shard is relevant iff
        // its lead fact lies in this relation's domain (ccp passes the
        // full set and keeps every shard). Trivial components cannot
        // host an improvement: a conflict-free (and, in ccp, priority-
        // free) fact belongs to every repair and beats nothing.
        let shards: Vec<usize> = layout
            .nontrivial()
            .iter()
            .map(|&c| c as usize)
            .filter(|&c| domain.contains(layout.component(c)[0]))
            .collect();
        let search = |c: usize| -> Result<Option<Improvement>, Stop> {
            // The per-component searches run on content-addressed
            // shards in local coordinates: identical recursion, but the
            // artifact (and its verdict memo) is shared across every
            // session whose component content matches.
            let shard = self.art.exact_shards[c]
                .as_ref()
                .expect("shard attached for every nontrivial exact component");
            let members = layout.component(c);
            match exact {
                ExactCtl::Legacy(steps) => shard.check_legacy(members, j_rel, steps),
                ExactCtl::Engine(budget) => shard.check_engine(members, j_rel, budget),
            }
        };
        if jobs > 1 && shards.len() > 1 {
            // All shards run concurrently; scanning the results in
            // component order reproduces the sequential early exit.
            let results = rethrow(self.fan_out_n(jobs, shards.len(), |i| search(shards[i])));
            for r in results {
                if let Some(imp) = r? {
                    debug_assert!(imp.is_valid_global_improvement(&self.art.cg, priority, j_rel));
                    return Ok(CheckOutcome::Improvable(imp));
                }
            }
        } else {
            for &c in &shards {
                if let Some(imp) = search(c)? {
                    debug_assert!(imp.is_valid_global_improvement(&self.art.cg, priority, j_rel));
                    return Ok(CheckOutcome::Improvable(imp));
                }
            }
        }
        Ok(CheckOutcome::Optimal)
    }

    /// Runs `task(0..n_tasks)` on up to `self.jobs` scoped workers and
    /// returns the results in task order, each panic-isolated.
    fn fan_out<T, F>(&self, n_tasks: usize, task: F) -> Vec<TaskResult<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fan_out_n(self.jobs, n_tasks, task)
    }

    fn fan_out_n<T, F>(&self, jobs: usize, n_tasks: usize, task: F) -> Vec<TaskResult<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = jobs.min(n_tasks);
        if workers <= 1 {
            return (0..n_tasks).map(|i| run_isolated(|| task(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<TaskResult<T>>> = (0..n_tasks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_tasks {
                                break;
                            }
                            local.push((i, run_isolated(|| task(i))));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                // Worker bodies only move captured task results around
                // (the tasks themselves are caught above), so the join
                // cannot observe a panic.
                for (i, t) in h.join().expect("worker closures are panic-isolated") {
                    slots[i] = Some(t);
                }
            }
        });
        slots.into_iter().map(|t| t.expect("every task ran")).collect()
    }
}

/// The default `jobs` value: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The one shared `--jobs` resolution rule: an explicit setting wins,
/// absent or `0` means [`default_jobs`]. Every front end (CLI flags,
/// server knobs, bench harnesses) resolves through here so the
/// convention cannot drift.
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => default_jobs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::enumerate_repairs;
    use crate::checker::{CcpChecker, GRepairChecker};
    use rpr_data::{Signature, Value};

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn running() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [
                ("BookLoc", &[1][..], &[2][..]),
                ("LibLoc", &[1][..], &[2][..]),
                ("LibLoc", &[2][..], &[1][..]),
            ],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in [
            ("b1", "fiction", "lib1"),
            ("b1", "fiction", "lib2"),
            ("b1", "drama", "lib3"),
            ("b2", "poetry", "lib1"),
            ("b3", "horror", "lib2"),
        ] {
            i.insert_named("BookLoc", [v(a), v(b), v(c)]).unwrap();
        }
        for (a, b) in [
            ("lib1", "almaden"),
            ("lib1", "edenvale"),
            ("lib2", "almaden"),
            ("lib2", "bascom"),
            ("lib3", "almaden"),
            ("lib3", "cambrian"),
            ("lib1", "bascom"),
            ("lib3", "bascom"),
        ] {
            i.insert_named("LibLoc", [v(a), v(b)]).unwrap();
        }
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(2)),
                (FactId(1), FactId(2)),
                (FactId(7), FactId(8)),
                (FactId(7), FactId(9)),
                (FactId(11), FactId(5)),
                (FactId(11), FactId(6)),
            ],
        )
        .unwrap();
        (schema, i, p)
    }

    /// Candidate sets beyond repairs: inconsistent and non-maximal
    /// subsets, so witnesses of every flavor get compared.
    fn candidates(i: &Instance, cg: &ConflictGraph) -> Vec<FactSet> {
        let mut out = enumerate_repairs(cg, 1 << 20).unwrap();
        out.push(i.empty_set());
        out.push(i.full_set());
        out.push(i.set_of([FactId(0), FactId(1)]));
        out.push(i.set_of([FactId(i.len() as u32 - 1)]));
        out
    }

    #[test]
    fn session_is_bit_identical_to_checker_at_all_jobs() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let checker = GRepairChecker::new(schema.clone());
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        for jobs in [1, 2, 8] {
            let session = CheckSession::new(&schema, &pi).with_jobs(jobs);
            for j in candidates(&i, &cg) {
                assert_eq!(session.check(&j), checker.check(&pi, &j), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_matches_individual_checks() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi).with_jobs(4);
        let js = candidates(&i, &cg);
        let batch = session.check_batch(&js);
        assert_eq!(batch.len(), js.len());
        for (j, outcome) in js.iter().zip(&batch) {
            assert_eq!(outcome, &session.check(j));
        }
    }

    #[test]
    fn bounded_batch_matches_legacy_under_an_unlimited_budget() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi).with_jobs(4);
        let js = candidates(&i, &cg);
        let budget = Budget::unlimited();
        let bounded = session.check_batch_bounded(&js, &budget);
        let legacy = session.check_batch(&js);
        for ((b, l), j) in bounded.into_iter().zip(legacy).zip(&js) {
            assert_eq!(b.expect_done("unlimited budget"), l.unwrap(), "on {j:?}");
        }
        // The batch charged work: at least one unit per candidate.
        assert!(budget.work_done() >= js.len() as u64);
    }

    #[test]
    fn bounded_batch_observes_cancellation_between_candidates() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi).with_jobs(2);
        let js = candidates(&i, &cg);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let outcomes = session.check_batch_bounded(&js, &budget);
        assert_eq!(outcomes.len(), js.len());
        for o in outcomes {
            assert!(matches!(o, Outcome::Cancelled { .. }));
        }
        // The pre-candidate checkpoint stopped every check before it
        // charged anything.
        assert_eq!(budget.work_done(), 0);
    }

    #[test]
    fn bounded_check_exhausts_a_tiny_work_allowance() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi).with_jobs(1);
        let repair = enumerate_repairs(&cg, 1 << 20).unwrap()[0].clone();
        // 1 unit: the per-candidate charge consumes it, so the first
        // per-relation dispatch trips.
        let tight = Budget::unlimited().with_max_work(1);
        match session.check_bounded(&repair, &tight) {
            Outcome::Exceeded { report, .. } => assert_eq!(report.max_work, Some(1)),
            other => panic!("expected Exceeded, got {other:?}"),
        }
    }

    #[test]
    fn ccp_session_matches_ccp_checker() {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("1")]).unwrap();
        i.insert_named("R", [v("a"), v("2")]).unwrap();
        i.insert_named("R", [v("b"), v("1")]).unwrap();
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0))]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let checker = CcpChecker::new(schema.clone());
        let pi = PrioritizedInstance::cross_conflict(i.clone(), p);
        for jobs in [1, 4] {
            let session = CheckSession::new(&schema, &pi).with_jobs(jobs);
            for j in candidates(&i, &cg) {
                assert_eq!(session.check(&j), checker.check(&pi, &j), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn jobs_knob_defaults_and_overrides() {
        let (schema, i, p) = running();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i, p).unwrap();
        let session = CheckSession::new(&schema, &pi);
        assert_eq!(session.jobs(), default_jobs());
        assert_eq!(session.with_jobs(3).jobs(), 3);
        let session = CheckSession::new(&schema, &pi).with_jobs(0);
        assert_eq!(session.jobs(), default_jobs());
    }
}
