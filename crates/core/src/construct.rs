//! Constructing a globally-optimal repair in polynomial time.
//!
//! Checking globally-optimal repairs can be coNP-complete, but
//! *finding* one never is: process the facts in any linear extension
//! `L` of `≻` and keep every fact consistent with what was kept. The
//! result has no global improvement at all, in either priority mode:
//!
//! Let `J = greedy(L)` and suppose a consistent `J″ ≠ J` globally
//! improves it. Take the `L`-earliest fact `x` in the symmetric
//! difference. If `x ∈ J ∖ J″`, the improvement supplies `y ∈ J″ ∖ J`
//! with `y ≻ x`, so `y` precedes `x` in `L` — contradicting minimality
//! of `x`. If `x ∈ J″ ∖ J`, greedy dropped `x` because some kept `k`
//! conflicting with `x` precedes it; `k ∉ J″` (it conflicts with
//! `x ∈ J″`), so `k` is an earlier member of the difference —
//! contradiction. ∎
//!
//! The construction realizes the completion-optimal semantics (the
//! orientation of `L` is a completion), so it also witnesses the
//! inclusion chain C ⊆ G ⊆ P constructively: the returned repair is
//! simultaneously completion-, globally- and Pareto-optimal.

use crate::completion::greedy_repair_in_order;
use rpr_data::FactSet;
use rpr_fd::ConflictGraph;
use rpr_priority::PriorityRelation;

/// Builds a repair with **no global improvement** under `priority`
/// (hence globally-, Pareto- and completion-optimal), in polynomial
/// time, for any schema and either priority mode.
///
/// ```
/// use rpr_data::{Instance, Signature, Value};
/// use rpr_fd::{ConflictGraph, Schema};
/// use rpr_priority::PriorityRelation;
/// use rpr_core::construct_globally_optimal_repair;
///
/// let sig = Signature::new([("R", 2)]).unwrap();
/// let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
/// let mut i = Instance::new(sig);
/// let worse = i.insert_named("R", ["k".into(), "v1".into()]).unwrap();
/// let better = i.insert_named("R", ["k".into(), "v2".into()]).unwrap();
/// let p = PriorityRelation::new(2, [(better, worse)]).unwrap();
/// let cg = ConflictGraph::new(&schema, &i);
/// let j = construct_globally_optimal_repair(&cg, &p);
/// assert!(j.contains(better) && !j.contains(worse));
/// ```
pub fn construct_globally_optimal_repair(
    cg: &ConflictGraph,
    priority: &PriorityRelation,
) -> FactSet {
    let order = priority.topological_order();
    greedy_repair_in_order(cg, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::is_globally_optimal_brute;
    use crate::completion::is_completion_optimal;
    use crate::pareto::is_pareto_optimal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;
    use rpr_gen::{random_ccp_priority, random_conflict_priority, random_instance, InstanceSpec};

    fn schema() -> Schema {
        let sig = Signature::new([("R", 2)]).unwrap();
        Schema::from_named(sig, [("R", &[1][..], &[2][..])]).unwrap()
    }

    #[test]
    fn constructed_repair_is_optimal_randomized() {
        let schema = schema();
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let instance = random_instance(
                &schema,
                InstanceSpec { facts_per_relation: 9, domain: 3 },
                &mut rng,
            );
            let cg = rpr_fd::ConflictGraph::new(&schema, &instance);
            let p = random_conflict_priority(&cg, 0.6, &mut rng);
            let j = construct_globally_optimal_repair(&cg, &p);
            assert!(cg.is_repair(&j), "seed {seed}");
            assert!(
                is_globally_optimal_brute(&cg, &p, &j, 1 << 22).unwrap(),
                "seed {seed}: constructed repair not globally optimal"
            );
            assert!(is_pareto_optimal(&cg, &p, &j), "seed {seed}");
            assert!(is_completion_optimal(&cg, &p, &j), "seed {seed}");
        }
    }

    #[test]
    fn works_for_ccp_priorities_too() {
        let schema = schema();
        for seed in 100..130u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let instance = random_instance(
                &schema,
                InstanceSpec { facts_per_relation: 8, domain: 3 },
                &mut rng,
            );
            let cg = rpr_fd::ConflictGraph::new(&schema, &instance);
            let p = random_ccp_priority(&cg, 0.5, 10, &mut rng);
            let j = construct_globally_optimal_repair(&cg, &p);
            assert!(cg.is_repair(&j));
            assert!(
                is_globally_optimal_brute(&cg, &p, &j, 1 << 22).unwrap(),
                "seed {seed}: ccp construction not globally optimal"
            );
        }
    }

    #[test]
    fn respects_total_priorities_exactly() {
        // With a total per-group priority the construction must return
        // THE optimal repair.
        let schema = schema();
        let mut instance = Instance::new(schema.signature().clone());
        let v = Value::sym;
        instance.insert_named("R", [v("g"), v("best")]).unwrap(); // 0
        instance.insert_named("R", [v("g"), v("mid")]).unwrap(); // 1
        instance.insert_named("R", [v("g"), v("worst")]).unwrap(); // 2
        let cg = rpr_fd::ConflictGraph::new(&schema, &instance);
        let p = PriorityRelation::new(
            3,
            [
                (rpr_data::FactId(0), rpr_data::FactId(1)),
                (rpr_data::FactId(1), rpr_data::FactId(2)),
                (rpr_data::FactId(0), rpr_data::FactId(2)),
            ],
        )
        .unwrap();
        let j = construct_globally_optimal_repair(&cg, &p);
        assert!(j.contains(rpr_data::FactId(0)));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn empty_instance_and_empty_priority() {
        let schema = schema();
        let instance = Instance::new(schema.signature().clone());
        let cg = rpr_fd::ConflictGraph::new(&schema, &instance);
        let p = PriorityRelation::empty(0);
        assert!(construct_globally_optimal_repair(&cg, &p).is_empty());
    }
}
