//! Verdict certificates: machine-checkable witnesses for every answer.
//!
//! A [`Certificate`] packages, next to a verdict, exactly the evidence
//! an *independent* checker needs to re-validate it without trusting
//! any production code path:
//!
//! * [`CheckOutcome::Inconsistent`] carries the conflicting pair — the
//!   auditor re-evaluates the violated FD on the two tuples;
//! * [`CheckOutcome::Improvable`] carries an [`ImprovementWitness`]:
//!   the improved set `to` plus, for every lost fact, a gained fact
//!   that beats it (the §2.3 definition of a global improvement is
//!   checkable fact-by-fact);
//! * [`CheckOutcome::Optimal`] carries a maximality cover (a blocker
//!   in `J` for every fact outside `J`) and, for every Lemma 4.2 group
//!   of every single-FD relation, a [`BlockEvidence`] proving no block
//!   swap `J[f ↔ g]` improves `J`. When the whole schema is on the
//!   single-FD side of Theorem 3.1 (and priorities are
//!   conflict-restricted), Lemma 4.2 makes this a *complete* proof of
//!   global optimality ([`OptimalScope::Complete`]); otherwise the
//!   certificate still proves `J` is a repair but the optimality claim
//!   rests on the classification ([`OptimalScope::RepairOnly`]) —
//!   coNP-hardness rules out small witnesses there.
//!
//! Every certificate also embeds a [`ClassificationCert`]: the
//! Theorem 3.1 / 7.1 case per relation, including the §5.2 hard-case
//! gadget pair `(A, B)`, which the auditor re-derives from the FD list
//! with its own closure fixpoint.
//!
//! Serialization lives in `rpr-format::certificate_json`; the
//! independent validator is the dependency-free `rpr-audit` crate.

use crate::global_1fd::FdBlocks;
use crate::improvement::CheckOutcome;
use crate::session::{CheckSession, Plan};
use rpr_classify::{CcpClass, RelationClass};
use rpr_data::{FactId, FactSet, RelId};
use rpr_fd::Fd;
use rpr_priority::PriorityMode;

/// The dichotomy classification restated as evidence: which case each
/// relation (or the whole schema, for ccp) falls under.
#[derive(Clone, Debug)]
pub enum ClassificationCert {
    /// Conflict-restricted priorities: the Theorem 3.1 class per
    /// relation, in signature order.
    Classical(Vec<(RelId, RelationClass)>),
    /// Cross-conflict priorities: the Theorem 7.1 class of the schema.
    Ccp(CcpClass),
}

/// Witness that a candidate is *not* globally optimal: the improved
/// set, plus one beating fact per lost fact (§2.3).
#[derive(Clone, Debug)]
pub struct ImprovementWitness {
    /// The candidate `J` the verdict is about (sorted fact ids).
    pub from: Vec<FactId>,
    /// The improving set `J'` (sorted fact ids). The auditor re-checks
    /// consistency of `J'` with its own naive FD evaluation.
    pub to: Vec<FactId>,
    /// For every lost fact `f' ∈ J \ J'`, a gained fact `g ∈ J' \ J`
    /// with `g ≻ f'` — the edge is looked up in the embedded priority.
    pub justification: Vec<(FactId, FactId)>,
}

/// Per-group evidence that no Lemma 4.2 block swap improves `J`, for
/// one relation on the single-FD side of Theorem 3.1.
#[derive(Clone, Debug)]
pub struct BlockEvidence {
    /// The relation the group belongs to.
    pub rel: RelId,
    /// The single FD `A → B` the relation's `Δ|R` is equivalent to.
    pub fd: Fd,
    /// The group's minimal fact id — the auditor recomputes the group
    /// (facts agreeing on `A`) and its blocks (agreeing on `B`) from
    /// the embedded fact table.
    pub group: FactId,
    /// `J ∩ group`, which consistency of `J` confines to one block.
    pub consistency: Vec<FactId>,
    /// For every *other* block of the group (identified by its minimal
    /// member), a fact `u ∈ J ∩ group` that no member of that block
    /// beats — so the swap `J[u ↔ block]` is not an improvement.
    pub maximality: Vec<(FactId, FactId)>,
}

/// How much of the `Optimal` verdict the evidence covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimalScope {
    /// Consistency, maximality, *and* optimality are fully witnessed:
    /// every relation is single-FD under conflict-restricted
    /// priorities, so Lemma 4.2's swap space is exhaustive.
    Complete,
    /// Consistency and maximality are fully witnessed ("`J` is a
    /// repair"); optimality is attested by the classification because
    /// the coNP-hard (or two-keys / ccp) side admits no small witness.
    RepairOnly,
}

/// The evidence attached to one verdict.
#[derive(Clone, Debug)]
pub enum CertVerdict {
    /// The candidate violates an FD: `f` and `g` conflict.
    Inconsistent {
        /// First fact of the conflicting pair.
        f: FactId,
        /// Second fact of the conflicting pair.
        g: FactId,
    },
    /// The candidate admits a global improvement.
    Improvable(ImprovementWitness),
    /// The candidate is a globally-optimal repair (to the stated
    /// scope).
    Optimal {
        /// What the evidence proves; see [`OptimalScope`].
        scope: OptimalScope,
        /// For every fact outside `J`, a conflicting fact inside `J` —
        /// together with consistency this proves `J` is a repair.
        maximality: Vec<(FactId, FactId)>,
        /// Per-group no-improving-swap evidence for single-FD
        /// relations.
        blocks: Vec<BlockEvidence>,
    },
}

/// The check-specific half of a certificate.
#[derive(Clone, Debug)]
pub struct CheckCert {
    /// The candidate set the verdict is about (sorted fact ids).
    pub candidate: Vec<FactId>,
    /// The verdict plus its evidence.
    pub verdict: CertVerdict,
}

/// A self-contained, machine-checkable certificate. The serialized
/// form embeds the schema, fact table, and priority edges too, so the
/// auditor needs no other inputs.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The priority mode the session dispatched under.
    pub mode: PriorityMode,
    /// The dichotomy classification evidence.
    pub classification: ClassificationCert,
    /// Verdict evidence; `None` for a classification-only certificate.
    pub check: Option<CheckCert>,
}

impl CheckSession<'_> {
    /// Builds the classification half of a certificate from the cached
    /// plan.
    fn classification_cert(&self) -> ClassificationCert {
        match self.artifacts().plan() {
            Plan::Classical(class) => ClassificationCert::Classical(class.per_relation().to_vec()),
            Plan::Ccp(class) => ClassificationCert::Ccp(class.clone()),
        }
    }

    /// A certificate carrying only the dichotomy classification (the
    /// `/classify` analogue of a verdict certificate).
    pub fn certify_classification(&self) -> Certificate {
        Certificate { mode: self.mode(), classification: self.classification_cert(), check: None }
    }

    /// Packages `outcome` — a verdict this session produced for the
    /// candidate `j` — with the evidence an independent auditor
    /// re-validates.
    ///
    /// # Panics
    /// Panics if `outcome` is not a verdict this session would produce
    /// for `j` (e.g. an `Optimal` for an improvable candidate): the
    /// evidence search relies on the verdict being correct, and
    /// refusing to certify beats certifying a lie.
    pub fn certify(&self, j: &FactSet, outcome: &CheckOutcome) -> Certificate {
        let verdict = match outcome {
            CheckOutcome::Inconsistent(f, g) => CertVerdict::Inconsistent { f: *f, g: *g },
            CheckOutcome::Improvable(imp) => {
                let j2 = imp.apply(j);
                let lost = j.difference(&j2);
                let gained = j2.difference(j);
                let priority = self.priority();
                let justification = lost
                    .iter()
                    .map(|f_prime| {
                        let g = gained
                            .iter()
                            .find(|&g| priority.prefers(g, f_prime))
                            .expect("global improvements beat every lost fact");
                        (f_prime, g)
                    })
                    .collect();
                CertVerdict::Improvable(ImprovementWitness {
                    from: j.iter().collect(),
                    to: j2.iter().collect(),
                    justification,
                })
            }
            CheckOutcome::Optimal => self.optimal_evidence(j),
        };
        Certificate {
            mode: self.mode(),
            classification: self.classification_cert(),
            check: Some(CheckCert { candidate: j.iter().collect(), verdict }),
        }
    }

    fn optimal_evidence(&self, j: &FactSet) -> CertVerdict {
        let art = self.artifacts();
        // Maximality cover: J is maximal, so every outside fact has a
        // conflict partner inside J.
        let maximality: Vec<(FactId, FactId)> = self
            .instance()
            .fact_ids()
            .filter(|f| !j.contains(*f))
            .map(|f| {
                let blocker = art
                    .csr_graph()
                    .first_conflict_in(f, j)
                    .expect("optimal candidates are maximal");
                (f, blocker)
            })
            .collect();

        let mut blocks = Vec::new();
        let mut all_single_fd = true;
        match art.plan() {
            Plan::Classical(class) => {
                for (rel, rc) in class.per_relation() {
                    let RelationClass::SingleFd(fd) = rc else {
                        all_single_fd = false;
                        continue;
                    };
                    let fb = art.rel_blocks()[rel.index()]
                        .as_ref()
                        .expect("blocks cached for every single-FD relation");
                    blocks.extend(self.group_evidence(*rel, *fd, fb, j));
                }
            }
            Plan::Ccp(_) => all_single_fd = false,
        }
        let scope = if all_single_fd && self.mode() == PriorityMode::ConflictRestricted {
            OptimalScope::Complete
        } else {
            OptimalScope::RepairOnly
        };
        CertVerdict::Optimal { scope, maximality, blocks }
    }

    /// Evidence for every multi-block group of one single-FD relation:
    /// the selected block of `J` and, per alternative block, a selected
    /// fact the alternative cannot beat.
    fn group_evidence(&self, rel: RelId, fd: Fd, fb: &FdBlocks, j: &FactSet) -> Vec<BlockEvidence> {
        let priority = self.priority();
        let mut out = Vec::new();
        for group in fb.groups() {
            if group.len() < 2 {
                continue; // single-block groups admit no swap
            }
            // J is a repair, so every group has J-members and they all
            // sit in one block.
            let Some(bf) = group.iter().position(|b| b.iter().any(|id| j.contains(*id))) else {
                continue;
            };
            let selected: Vec<FactId> =
                group[bf].iter().copied().filter(|id| j.contains(*id)).collect();
            let maximality = group
                .iter()
                .enumerate()
                .filter(|(bg, _)| *bg != bf)
                .map(|(_, block)| {
                    let unbeaten = selected
                        .iter()
                        .copied()
                        .find(|&u| !block.iter().any(|&g| priority.prefers(g, u)))
                        .expect("optimal verdicts admit no improving block swap");
                    let rep =
                        block.iter().copied().min().expect("blocks are nonempty by construction");
                    (rep, unbeaten)
                })
                .collect();
            let group_id =
                group.iter().flatten().copied().min().expect("groups are nonempty by construction");
            out.push(BlockEvidence { rel, fd, group: group_id, consistency: selected, maximality });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Instance, Signature, Value};
    use rpr_fd::Schema;
    use rpr_priority::{PrioritizedInstance, PriorityRelation};

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn bookloc() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("BookLoc", 3)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("BookLoc", &[1][..], &[2][..])]).unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in [
            ("b1", "fiction", "lib1"),
            ("b1", "fiction", "lib2"),
            ("b1", "drama", "lib3"),
            ("b2", "poetry", "lib1"),
            ("b3", "horror", "lib2"),
        ] {
            i.insert_named("BookLoc", [v(a), v(b), v(c)]).unwrap();
        }
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(2)), (FactId(1), FactId(2))])
            .unwrap();
        (schema, i, p)
    }

    #[test]
    fn optimal_certificates_carry_full_evidence() {
        let (schema, i, p) = bookloc();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi);
        let j = i.set_of([0, 1, 3, 4].map(FactId));
        let outcome = session.check(&j).unwrap();
        assert!(outcome.is_optimal());
        let cert = session.certify(&j, &outcome);
        let check = cert.check.as_ref().unwrap();
        assert_eq!(check.candidate, vec![FactId(0), FactId(1), FactId(3), FactId(4)]);
        let CertVerdict::Optimal { scope, maximality, blocks } = &check.verdict else {
            panic!("expected optimal verdict");
        };
        assert_eq!(*scope, OptimalScope::Complete);
        // The only excluded fact (f1d3 = id 2) is blocked.
        assert_eq!(maximality.as_slice(), &[(FactId(2), FactId(0))]);
        // One multi-block group: b1 with blocks {0,1} and {2}.
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].consistency, vec![FactId(0), FactId(1)]);
        assert_eq!(blocks[0].maximality, vec![(FactId(2), FactId(0))]);
    }

    #[test]
    fn improvable_certificates_justify_every_lost_fact() {
        let (schema, i, p) = bookloc();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi);
        let j = i.set_of([2, 3, 4].map(FactId));
        let outcome = session.check(&j).unwrap();
        let cert = session.certify(&j, &outcome);
        let CertVerdict::Improvable(w) = &cert.check.unwrap().verdict else {
            panic!("expected improvable");
        };
        assert_eq!(w.from, vec![FactId(2), FactId(3), FactId(4)]);
        // Every lost fact is justified by a gained, preferred fact.
        let lost: Vec<FactId> = w.from.iter().copied().filter(|f| !w.to.contains(f)).collect();
        assert_eq!(lost.len(), w.justification.len());
        for (f_prime, g) in &w.justification {
            assert!(lost.contains(f_prime));
            assert!(w.to.contains(g) && !w.from.contains(g));
            assert!(pi.priority().prefers(*g, *f_prime));
        }
    }

    #[test]
    fn inconsistent_certificates_name_the_pair() {
        let (schema, i, p) = bookloc();
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p).unwrap();
        let session = CheckSession::new(&schema, &pi);
        let j = i.set_of([0, 2].map(FactId));
        let outcome = session.check(&j).unwrap();
        let cert = session.certify(&j, &outcome);
        match cert.check.unwrap().verdict {
            CertVerdict::Inconsistent { f, g } => assert_eq!((f, g), (FactId(0), FactId(2))),
            other => panic!("expected inconsistent, got {other:?}"),
        }
    }
}
