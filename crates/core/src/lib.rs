//! # rpr-core — preferred-repair checking
//!
//! The primary contribution of *Dichotomies in the Complexity of
//! Preferred Repairs* (Fagin, Kimelfeld, Kolaitis, PODS 2015), as a
//! library:
//!
//! * [`improvement`] — global/Pareto improvements (Definition 2.4) and
//!   checked improvement witnesses;
//! * [`pareto`] — polynomial Pareto-optimal repair checking (every
//!   schema, both priority modes);
//! * [`global_1fd`] — `GRepCheck1FD` (§4.1, Figure 2);
//! * [`global_2keys`] — `GRepCheck2Keys` (§4.2, Figure 4);
//! * [`global_ccp_pk`] — the §7.2.1 graph algorithm for primary-key
//!   assignments over ccp-instances;
//! * [`global_ccp_const`] — the §7.2.2 enumeration for
//!   constant-attribute assignments;
//! * [`completion`] — completion-optimal repair checking (polynomial
//!   AND/OR closure) and greedy C-repairs;
//! * [`brute`] — definitional exponential oracles (all repairs, all
//!   improvements, counting/uniqueness);
//! * [`exact`] — the budgeted exponential fall-back for the hard side;
//! * [`checker`] — [`GRepairChecker`]/[`CcpChecker`], which classify a
//!   schema once (via `rpr-classify`) and dispatch every check to the
//!   matching algorithm.
//!
//! Every polynomial algorithm is differential-tested against the brute
//! oracles, and every negative answer carries an [`Improvement`]
//! witness that is re-validated from Definition 2.4.

#![warn(missing_docs)]

pub mod brute;
pub mod certificate;
pub mod checker;
pub mod completion;
pub mod construct;
pub mod delta;
pub mod exact;
pub mod fingerprint;
pub mod global_1fd;
pub mod global_2keys;
pub mod global_ccp_const;
pub mod global_ccp_pk;
pub mod improvement;
pub mod owned;
pub mod pareto;
pub mod session;
pub mod shard_store;

pub use brute::{
    count_globally_optimal_repairs, count_globally_optimal_repairs_bounded,
    count_globally_optimal_repairs_session, count_globally_optimal_repairs_session_bounded,
    enumerate_repairs, enumerate_repairs_bounded, enumerate_repairs_session,
    find_global_improvement_brute, find_global_improvement_brute_bounded, for_each_repair,
    for_each_repair_bounded, for_each_repair_session, globally_optimal_repairs,
    globally_optimal_repairs_bounded, globally_optimal_repairs_session,
    globally_optimal_repairs_session_bounded, is_globally_optimal_brute,
    is_globally_optimal_brute_bounded,
};
pub use certificate::{
    BlockEvidence, CertVerdict, Certificate, CheckCert, ClassificationCert, ImprovementWitness,
    OptimalScope,
};
pub use checker::{CcpChecker, GRepairChecker, Method, DEFAULT_EXACT_BUDGET};
// The execution-control vocabulary of the bounded entry points, so
// downstream crates need not depend on rpr-engine directly.
pub use completion::{
    completion_optimal_repairs_brute, greedy_repair, greedy_repair_in_order, is_completion_optimal,
    is_completion_optimal_brute,
};
pub use construct::construct_globally_optimal_repair;
pub use delta::{DeltaError, DeltaOp, DeltaReport, DeltaSession, REBUILD_CHURN_PERCENT};
pub use exact::{check_global_exact, check_global_exact_bounded};
pub use fingerprint::{
    content_fingerprint, priority_edge_fingerprint, priority_fingerprint, schema_fingerprint,
};
pub use global_1fd::check_global_1fd;
pub use global_2keys::check_global_2keys;
pub use global_ccp_const::{
    check_global_ccp_const, consistent_partitions, enumerate_const_attr_repairs,
};
pub use global_ccp_pk::check_global_ccp_pk;
pub use improvement::{
    is_global_improvement, is_pareto_improvement, BudgetExceeded, CheckOutcome, Improvement,
};
pub use owned::OwnedCheckSession;
pub use pareto::{find_pareto_improvement, is_pareto_optimal, is_pareto_optimal_brute};
pub use rpr_engine::{Budget, BudgetReport, CancelToken, ExceedReason, Outcome, PanicReport, Stop};
pub use session::{default_jobs, resolve_jobs, CheckSession, SessionArtifacts};
pub use shard_store::{SessionIndex, ShardData, ShardStore, ShardStoreStats};
