//! The dispatching checkers: classify once, then route every check to
//! the matching algorithm.
//!
//! * [`GRepairChecker`] — classical (conflict-restricted) instances.
//!   Per Proposition 3.5 the problem decomposes by relation symbol:
//!   conflicts and priorities never cross relations, so `J` is a
//!   globally-optimal repair of `I` iff for every relation `R`,
//!   `J ∩ R^I` is a globally-optimal repair of `R^I`. Each relation is
//!   routed to `GRepCheck1FD`, `GRepCheck2Keys`, or (on the hard side)
//!   the exact exponential search.
//! * [`CcpChecker`] — cross-conflict instances (§7). No decomposition
//!   (priorities cross relations); routes whole instances to the
//!   primary-key graph algorithm, the constant-attribute enumeration,
//!   or the exact search.

use crate::improvement::{BudgetExceeded, CheckOutcome};
use crate::session::CheckSession;
use rpr_classify::{
    classify_schema, classify_schema_ccp, CcpClass, Complexity, RelationClass, SchemaClass,
};
use rpr_data::FactSet;
use rpr_engine::{Budget, Outcome};
use rpr_fd::Schema;
use rpr_priority::PrioritizedInstance;

/// Default budget for the exponential fall-back (search steps).
pub const DEFAULT_EXACT_BUDGET: usize = 1 << 22;

/// Which algorithm answered a check (for reporting and benchmarks).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// `GRepCheck1FD` (Figure 2).
    SingleFd,
    /// `GRepCheck2Keys` (Figure 4).
    TwoKeys,
    /// The ccp primary-key graph algorithm (Lemma 7.3).
    CcpPrimaryKey,
    /// The ccp constant-attribute enumeration (Proposition 7.5).
    CcpConstantAttribute,
    /// Exhaustive search (hard side of the dichotomy).
    Exact,
    /// Mixed per-relation methods (classical checker over a multi-
    /// relation schema).
    PerRelation,
}

/// Globally-optimal repair checker for classical (conflict-restricted)
/// prioritizing instances over a fixed schema.
pub struct GRepairChecker {
    schema: Schema,
    class: SchemaClass,
    exact_budget: usize,
}

impl GRepairChecker {
    /// Classifies the schema and prepares the dispatch table.
    pub fn new(schema: Schema) -> Self {
        let class = classify_schema(&schema);
        GRepairChecker { schema, class, exact_budget: DEFAULT_EXACT_BUDGET }
    }

    /// Overrides the step budget of the exponential fall-back.
    pub fn with_exact_budget(mut self, budget: usize) -> Self {
        self.exact_budget = budget;
        self
    }

    /// The classification driving the dispatch.
    pub fn class(&self) -> &SchemaClass {
        &self.class
    }

    /// The schema's complexity under Theorem 3.1.
    pub fn complexity(&self) -> Complexity {
        self.class.complexity()
    }

    /// Checks whether `j` is a globally-optimal repair of the instance.
    ///
    /// One-shot convenience: builds a transient single-threaded
    /// [`CheckSession`] for this call. Workloads that check many
    /// candidates against one instance should construct the session
    /// themselves (via [`GRepairChecker::session`]) to amortize the
    /// conflict-graph construction.
    ///
    /// # Errors
    /// [`BudgetExceeded`] only when a hard relation's exact search blows
    /// its budget; tractable schemas never fail.
    ///
    /// # Panics
    /// Panics if `pi` was validated in ccp mode (use [`CcpChecker`]).
    pub fn check(
        &self,
        pi: &PrioritizedInstance,
        j: &FactSet,
    ) -> Result<CheckOutcome, BudgetExceeded> {
        self.session(pi).with_jobs(1).check(j)
    }

    /// [`check`](GRepairChecker::check) under a caller-supplied
    /// [`Budget`]: honours its deadline, work allowance, and
    /// cancellation token, and degrades to a typed [`Outcome`] instead
    /// of failing. PTIME schemas complete under any reasonable budget;
    /// hard schemas surface `Exceeded` with a machine-readable report.
    ///
    /// # Panics
    /// Panics if `pi` was validated in ccp mode (use [`CcpChecker`]).
    pub fn check_bounded(
        &self,
        pi: &PrioritizedInstance,
        j: &FactSet,
        budget: &Budget,
    ) -> Outcome<CheckOutcome> {
        self.session(pi).with_jobs(1).check_bounded(j, budget)
    }

    /// Builds an amortized [`CheckSession`] over `pi`, reusing this
    /// checker's classification and budget.
    ///
    /// # Panics
    /// Panics if `pi` was validated in ccp mode (use [`CcpChecker`]).
    pub fn session<'a>(&'a self, pi: &'a PrioritizedInstance) -> CheckSession<'a> {
        CheckSession::with_classical_class(&self.schema, pi, self.class.clone())
            .with_exact_budget(self.exact_budget)
    }

    /// The method used for a given relation (reporting).
    pub fn method_for(&self, rel: rpr_data::RelId) -> Method {
        match self.class.class_of(rel) {
            RelationClass::SingleFd(_) => Method::SingleFd,
            RelationClass::TwoKeys(..) => Method::TwoKeys,
            RelationClass::Hard(_) => Method::Exact,
        }
    }
}

/// Globally-optimal repair checker for ccp-instances (§7) over a fixed
/// schema.
pub struct CcpChecker {
    schema: Schema,
    class: CcpClass,
    exact_budget: usize,
}

impl CcpChecker {
    /// Classifies the schema under Theorem 7.1 and prepares dispatch.
    pub fn new(schema: Schema) -> Self {
        let class = classify_schema_ccp(&schema);
        CcpChecker { schema, class, exact_budget: DEFAULT_EXACT_BUDGET }
    }

    /// Overrides the step budget of the exponential fall-back.
    pub fn with_exact_budget(mut self, budget: usize) -> Self {
        self.exact_budget = budget;
        self
    }

    /// The classification driving the dispatch.
    pub fn class(&self) -> &CcpClass {
        &self.class
    }

    /// The schema's complexity under Theorem 7.1.
    pub fn complexity(&self) -> Complexity {
        self.class.complexity()
    }

    /// The method this checker uses.
    pub fn method(&self) -> Method {
        match &self.class {
            CcpClass::PrimaryKeyAssignment(_) => Method::CcpPrimaryKey,
            CcpClass::ConstantAttributeAssignment(_) => Method::CcpConstantAttribute,
            CcpClass::Hard { .. } => Method::Exact,
        }
    }

    /// Checks whether `j` is a globally-optimal repair of the
    /// ccp-instance. Classical instances are accepted too (they are a
    /// special case of ccp).
    ///
    /// One-shot convenience over a transient [`CheckSession`]; see
    /// [`CcpChecker::session`] for amortized checking.
    ///
    /// # Errors
    /// [`BudgetExceeded`] only on the hard side.
    pub fn check(
        &self,
        pi: &PrioritizedInstance,
        j: &FactSet,
    ) -> Result<CheckOutcome, BudgetExceeded> {
        self.session(pi).with_jobs(1).check(j)
    }

    /// [`check`](CcpChecker::check) under a caller-supplied [`Budget`];
    /// see [`GRepairChecker::check_bounded`].
    pub fn check_bounded(
        &self,
        pi: &PrioritizedInstance,
        j: &FactSet,
        budget: &Budget,
    ) -> Outcome<CheckOutcome> {
        self.session(pi).with_jobs(1).check_bounded(j, budget)
    }

    /// Builds an amortized [`CheckSession`] over `pi`, reusing this
    /// checker's classification and budget.
    pub fn session<'a>(&'a self, pi: &'a PrioritizedInstance) -> CheckSession<'a> {
        CheckSession::with_ccp_class(&self.schema, pi, self.class.clone())
            .with_exact_budget(self.exact_budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{enumerate_repairs, is_globally_optimal_brute};
    use rpr_data::{FactId, Instance, Signature, Value};
    use rpr_fd::ConflictGraph;
    use rpr_priority::PriorityRelation;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    /// The full running example: BookLoc (single FD) + LibLoc (two keys).
    fn running() -> (Schema, Instance, PriorityRelation) {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        let schema = Schema::from_named(
            sig.clone(),
            [
                ("BookLoc", &[1][..], &[2][..]),
                ("LibLoc", &[1][..], &[2][..]),
                ("LibLoc", &[2][..], &[1][..]),
            ],
        )
        .unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in [
            ("b1", "fiction", "lib1"), // 0
            ("b1", "fiction", "lib2"), // 1
            ("b1", "drama", "lib3"),   // 2
            ("b2", "poetry", "lib1"),  // 3
            ("b3", "horror", "lib2"),  // 4
        ] {
            i.insert_named("BookLoc", [v(a), v(b), v(c)]).unwrap();
        }
        for (a, b) in [
            ("lib1", "almaden"),  // 5
            ("lib1", "edenvale"), // 6
            ("lib2", "almaden"),  // 7
            ("lib2", "bascom"),   // 8
            ("lib3", "almaden"),  // 9
            ("lib3", "cambrian"), // 10
            ("lib1", "bascom"),   // 11
            ("lib3", "bascom"),   // 12
        ] {
            i.insert_named("LibLoc", [v(a), v(b)]).unwrap();
        }
        let p = PriorityRelation::new(
            i.len(),
            [
                (FactId(0), FactId(2)),
                (FactId(1), FactId(2)),
                (FactId(7), FactId(8)),
                (FactId(7), FactId(9)),
                (FactId(11), FactId(5)),
                (FactId(11), FactId(6)),
            ],
        )
        .unwrap();
        (schema, i, p)
    }

    #[test]
    fn classical_checker_matches_oracle_on_every_repair() {
        let (schema, i, p) = running();
        let cg = ConflictGraph::new(&schema, &i);
        let checker = GRepairChecker::new(schema.clone());
        assert_eq!(checker.complexity(), Complexity::PolynomialTime);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i.clone(), p.clone()).unwrap();
        let repairs = enumerate_repairs(&cg, 1 << 22).unwrap();
        assert!(repairs.len() >= 8);
        let mut optimal_count = 0;
        for j in &repairs {
            let fast = checker.check(&pi, j).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, j, 1 << 22).unwrap();
            assert_eq!(fast, slow, "disagreement on {}", i.render_set(j));
            optimal_count += usize::from(fast);
        }
        assert!(optimal_count >= 1, "some repair must be optimal");
    }

    #[test]
    fn methods_reported_per_relation() {
        let (schema, _, _) = running();
        let checker = GRepairChecker::new(schema.clone());
        let b = schema.signature().rel_id("BookLoc").unwrap();
        let l = schema.signature().rel_id("LibLoc").unwrap();
        assert_eq!(checker.method_for(b), Method::SingleFd);
        assert_eq!(checker.method_for(l), Method::TwoKeys);
    }

    #[test]
    fn hard_schema_falls_back_to_exact() {
        let sig = Signature::new([("R", 3)]).unwrap();
        let schema =
            Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..]), ("R", &[2][..], &[3][..])])
                .unwrap();
        let mut i = Instance::new(sig);
        for (a, b, c) in [("a", "x", "1"), ("a", "y", "1"), ("b", "y", "2")] {
            i.insert_named("R", [v(a), v(b), v(c)]).unwrap();
        }
        let p = PriorityRelation::new(i.len(), [(FactId(0), FactId(1))]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let checker = GRepairChecker::new(schema.clone());
        assert_eq!(checker.complexity(), Complexity::ConpComplete);
        let pi = PrioritizedInstance::conflict_restricted(&schema, i, p.clone()).unwrap();
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = checker.check(&pi, &j).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn ccp_checker_dispatch() {
        // Primary-key assignment.
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let checker = CcpChecker::new(schema.clone());
        assert_eq!(checker.method(), Method::CcpPrimaryKey);
        assert_eq!(checker.complexity(), Complexity::PolynomialTime);

        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("1")]).unwrap();
        i.insert_named("R", [v("a"), v("2")]).unwrap();
        i.insert_named("R", [v("b"), v("1")]).unwrap();
        // ccp edge between non-conflicting facts:
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0))]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::cross_conflict(i, p.clone());
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = checker.check(&pi, &j).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn ccp_constant_attribute_dispatch() {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[][..], &[2][..])]).unwrap();
        let checker = CcpChecker::new(schema.clone());
        assert_eq!(checker.method(), Method::CcpConstantAttribute);
        let mut i = Instance::new(sig);
        i.insert_named("R", [v("a"), v("x")]).unwrap();
        i.insert_named("R", [v("b"), v("x")]).unwrap();
        i.insert_named("R", [v("c"), v("y")]).unwrap();
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0))]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::cross_conflict(i, p.clone());
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = checker.check(&pi, &j).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn ccp_hard_schema_uses_exact() {
        let sig = Signature::new([("R", 3)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let checker = CcpChecker::new(schema.clone());
        assert_eq!(checker.method(), Method::Exact);
        assert_eq!(checker.complexity(), Complexity::ConpComplete);
        let mut i = Instance::new(sig);
        for (a, b, c) in [("a", "x", "1"), ("a", "y", "2"), ("b", "z", "3")] {
            i.insert_named("R", [v(a), v(b), v(c)]).unwrap();
        }
        let p = PriorityRelation::new(i.len(), [(FactId(2), FactId(0))]).unwrap();
        let cg = ConflictGraph::new(&schema, &i);
        let pi = PrioritizedInstance::cross_conflict(i, p.clone());
        for j in enumerate_repairs(&cg, 1 << 20).unwrap() {
            let fast = checker.check(&pi, &j).unwrap().is_optimal();
            let slow = is_globally_optimal_brute(&cg, &p, &j, 1 << 20).unwrap();
            assert_eq!(fast, slow);
        }
    }
}
