//! Self-contained check sessions for long-lived caches.
//!
//! [`CheckSession`] borrows its schema and prioritized instance, which
//! is ideal for batch tools (build once on the stack, check thousands
//! of candidates, drop everything together) but rules out storing a
//! session in a cache that outlives the request that built it. An
//! [`OwnedCheckSession`] closes that gap: it holds the schema and
//! instance behind `Arc`s together with the prepared
//! [`SessionArtifacts`], and vends borrowing [`CheckSession`] views on
//! demand. The serving layer keeps these in its fingerprint-keyed LRU
//! cache and shares one across concurrent requests (`&self` checking
//! is thread-safe — sessions only read the artifacts).

use crate::session::{CheckSession, SessionArtifacts};
use rpr_classify::Complexity;
use rpr_fd::Schema;
use rpr_priority::PrioritizedInstance;
use std::sync::Arc;

/// A cache-resident check session: owned `(schema, instance, priority)`
/// plus prepared artifacts, vending [`CheckSession`] views.
#[must_use = "an OwnedCheckSession is the cached product of expensive preparation — store or use it"]
pub struct OwnedCheckSession {
    schema: Arc<Schema>,
    pi: Arc<PrioritizedInstance>,
    artifacts: SessionArtifacts,
}

impl OwnedCheckSession {
    /// Prepares a session that owns its inputs. This is the expensive
    /// step (conflict graph, CSR packing, classification, block
    /// structures); every [`session`](OwnedCheckSession::session) view
    /// afterwards is free.
    pub fn prepare(schema: Arc<Schema>, pi: Arc<PrioritizedInstance>) -> Self {
        let artifacts = SessionArtifacts::build(&schema, &pi);
        OwnedCheckSession { schema, pi, artifacts }
    }

    /// A borrowing [`CheckSession`] view over the cached artifacts.
    /// Views are cheap; create one per request and configure `jobs` /
    /// budgets on the view.
    pub fn session(&self) -> CheckSession<'_> {
        CheckSession::from_artifacts(&self.schema, &self.pi, &self.artifacts)
    }

    /// The schema the session was prepared under.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The prioritized instance the session checks against.
    pub fn prioritized(&self) -> &Arc<PrioritizedInstance> {
        &self.pi
    }

    /// The complexity of checking under the cached classification.
    pub fn complexity(&self) -> Complexity {
        self.artifacts.complexity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_data::{Instance, Signature, Value};
    use rpr_priority::PriorityRelation;

    fn owned_running_example() -> OwnedCheckSession {
        let sig = Signature::new([("R", 2)]).unwrap();
        let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
        let mut instance = Instance::new(sig);
        let a = instance.insert_named("R", [Value::sym("k"), Value::sym("x")]).unwrap();
        let b = instance.insert_named("R", [Value::sym("k"), Value::sym("y")]).unwrap();
        let priority = PriorityRelation::new(instance.len(), [(a, b)]).unwrap();
        let pi = PrioritizedInstance::conflict_restricted(&schema, instance, priority).unwrap();
        OwnedCheckSession::prepare(Arc::new(schema), Arc::new(pi))
    }

    #[test]
    fn views_share_artifacts_and_agree_with_fresh_sessions() {
        let owned = owned_running_example();
        let instance = owned.prioritized().instance();
        let preferred = instance.set_of([rpr_data::FactId(0)]);
        let dominated = instance.set_of([rpr_data::FactId(1)]);

        let via_view = owned.session().check(&preferred).unwrap();
        assert!(via_view.is_optimal());
        assert!(!owned.session().check(&dominated).unwrap().is_optimal());

        // Same verdicts as a session built from scratch.
        let fresh = CheckSession::new(owned.schema(), owned.prioritized());
        assert_eq!(fresh.check(&preferred).unwrap(), via_view);
    }

    #[test]
    fn concurrent_views_over_one_owned_session() {
        let owned = Arc::new(owned_running_example());
        let instance = owned.prioritized().instance();
        let j = instance.set_of([rpr_data::FactId(0)]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let owned = Arc::clone(&owned);
                let j = j.clone();
                s.spawn(move || {
                    assert!(owned.session().check(&j).unwrap().is_optimal());
                });
            }
        });
    }
}
