//! Tuples and facts (§2.1).
//!
//! A *fact* is `R(t)` for a relation symbol `R` and a tuple `t` of
//! constants whose width equals `arity(R)`. Instances are identified with
//! their sets of facts.

use crate::attrset::AttrSet;
use crate::error::DataError;
use crate::signature::{RelId, Signature};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A tuple of constants.
///
/// Stored as a boxed slice (two words, no spare capacity — facts are
/// immutable after construction).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new<I: IntoIterator<Item = Value>>(values: I) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Width of the tuple.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the tuple empty? (Never true for well-formed facts.)
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at (1-based) attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is `0` or exceeds the width.
    pub fn get(&self, attr: usize) -> &Value {
        &self.0[attr - 1]
    }

    /// All values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The projection onto an attribute set, in increasing attribute
    /// order. This is the paper's `f[A]` notation (§4.2).
    pub fn project(&self, attrs: AttrSet) -> Tuple {
        Tuple(attrs.iter().map(|a| self.0[a - 1].clone()).collect())
    }

    /// Do `self` and `other` agree on (have equal values for) every
    /// attribute in `attrs`? This is the paper's "agree on A" (§2.2).
    pub fn agrees_on(&self, other: &Tuple, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.0[a - 1] == other.0[a - 1])
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A fact `R(t)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    rel: RelId,
    tuple: Tuple,
}

impl Fact {
    /// Builds a fact, checking the tuple width against the signature.
    ///
    /// # Errors
    /// Fails if the tuple width differs from the relation's arity.
    pub fn new(sig: &Signature, rel: RelId, tuple: Tuple) -> Result<Self, DataError> {
        let expected = sig.arity(rel);
        if tuple.len() != expected {
            return Err(DataError::ArityMismatch {
                relation: sig.symbol(rel).name().to_owned(),
                expected,
                got: tuple.len(),
            });
        }
        Ok(Fact { rel, tuple })
    }

    /// Convenience constructor resolving the relation by name.
    ///
    /// # Errors
    /// Fails on unknown relation names or arity mismatches.
    pub fn parse_new<I>(sig: &Signature, rel_name: &str, values: I) -> Result<Self, DataError>
    where
        I: IntoIterator<Item = Value>,
    {
        let rel = sig.require(rel_name)?;
        Fact::new(sig, rel, Tuple::new(values))
    }

    /// The relation this fact belongs to.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The fact's tuple.
    pub fn tuple(&self) -> &Tuple {
        &self.tuple
    }

    /// The value at (1-based) attribute `attr`.
    pub fn get(&self, attr: usize) -> &Value {
        self.tuple.get(attr)
    }

    /// The projection `f[A]` (§4.2).
    pub fn project(&self, attrs: AttrSet) -> Tuple {
        self.tuple.project(attrs)
    }

    /// Do the two facts agree on all attributes of `attrs`?
    ///
    /// Facts of different relations never agree (they are incomparable in
    /// the paper's model because FDs are per-relation).
    pub fn agrees_on(&self, other: &Fact, attrs: AttrSet) -> bool {
        self.rel == other.rel && self.tuple.agrees_on(&other.tuple, attrs)
    }

    /// Renders the fact with its relation name.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> FactDisplay<'a> {
        FactDisplay { fact: self, sig }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}{}", self.rel.0, self.tuple)
    }
}

/// Helper for rendering a fact with its relation name resolved.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    sig: &'a Signature,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sig.symbol(self.fact.rel).name(), self.fact.tuple)
    }
}

/// Shared handle to a signature, used across facts/instances/schemas.
pub type SigRef = Arc<Signature>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> SigRef {
        Signature::new([("R", 3), ("S", 2)]).unwrap()
    }

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    #[test]
    fn tuple_projection_and_agreement() {
        let t = Tuple::new([v("a"), v("b"), v("c")]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2), &v("b"));
        assert_eq!(t.project(AttrSet::from_attrs([1, 3])), Tuple::new([v("a"), v("c")]));
        assert_eq!(t.project(AttrSet::EMPTY), Tuple::new([]));

        let u = Tuple::new([v("a"), v("x"), v("c")]);
        assert!(t.agrees_on(&u, AttrSet::from_attrs([1, 3])));
        assert!(!t.agrees_on(&u, AttrSet::from_attrs([1, 2])));
        // Every pair of tuples vacuously agrees on the empty set.
        assert!(t.agrees_on(&u, AttrSet::EMPTY));
    }

    #[test]
    fn fact_construction_checks_arity() {
        let sig = sig();
        let r = sig.rel_id("R").unwrap();
        assert!(Fact::new(&sig, r, Tuple::new([v("a"), v("b"), v("c")])).is_ok());
        assert!(matches!(
            Fact::new(&sig, r, Tuple::new([v("a")])),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(Fact::parse_new(&sig, "T", [v("a")]).is_err());
    }

    #[test]
    fn facts_of_different_relations_never_agree() {
        let sig = sig();
        let f = Fact::parse_new(&sig, "S", [v("a"), v("b")]).unwrap();
        let g = Fact::parse_new(&sig, "R", [v("a"), v("b"), v("c")]).unwrap();
        assert!(!f.agrees_on(&g, AttrSet::EMPTY));
        assert!(!f.agrees_on(&g, AttrSet::singleton(1)));
    }

    #[test]
    fn display_resolves_relation_name() {
        let sig = sig();
        let f = Fact::parse_new(&sig, "S", [v("lib1"), v("almaden")]).unwrap();
        assert_eq!(f.display(&sig).to_string(), "S(lib1,almaden)");
    }
}
