//! Attribute sets.
//!
//! The paper writes `⟦R⟧ = {1, …, arity(R)}` and manipulates subsets of
//! `⟦R⟧` constantly: FD left/right-hand sides, closures `⟦R.A^Δ⟧`, the
//! sets `A⁺`, `Â = A⁺ \ A` of the §5.2 case analysis. We cap arity at 64
//! and represent attribute sets as one machine word, so closure
//! computation and the case branching are branch-free set algebra.
//!
//! Attributes are **1-based** in the paper; we keep that convention in
//! the public API (attribute `1` is the first column) and store bit
//! `i - 1` internally.

use std::fmt;

/// Maximum supported relation arity.
pub const MAX_ARITY: usize = 64;

/// A set of attribute indices (1-based), backed by a `u64` bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty attribute set (the `∅` of constant-attribute FDs `∅ → B`).
    pub const EMPTY: AttrSet = AttrSet(0);

    /// The full set `⟦R⟧ = {1, …, arity}`.
    ///
    /// # Panics
    /// Panics if `arity > 64`.
    pub fn full(arity: usize) -> Self {
        assert!(arity <= MAX_ARITY, "arity {arity} exceeds {MAX_ARITY}");
        if arity == MAX_ARITY {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << arity) - 1)
        }
    }

    /// The singleton `{attr}` (1-based).
    ///
    /// # Panics
    /// Panics if `attr` is `0` or exceeds [`MAX_ARITY`].
    pub fn singleton(attr: usize) -> Self {
        assert!((1..=MAX_ARITY).contains(&attr), "attribute {attr} out of range");
        AttrSet(1u64 << (attr - 1))
    }

    /// Builds a set from 1-based attribute indices.
    pub fn from_attrs<I: IntoIterator<Item = usize>>(attrs: I) -> Self {
        let mut s = AttrSet::EMPTY;
        for a in attrs {
            s = s.union(AttrSet::singleton(a));
        }
        s
    }

    /// Raw bit representation (bit `i` ⇔ attribute `i + 1`).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from raw bits.
    pub fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Does the set contain the (1-based) attribute?
    pub fn contains(self, attr: usize) -> bool {
        (1..=MAX_ARITY).contains(&attr) && (self.0 >> (attr - 1)) & 1 == 1
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Adds a (1-based) attribute.
    #[must_use]
    pub fn insert(self, attr: usize) -> AttrSet {
        self.union(AttrSet::singleton(attr))
    }

    /// Removes a (1-based) attribute.
    #[must_use]
    pub fn remove(self, attr: usize) -> AttrSet {
        self.difference(AttrSet::singleton(attr))
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Is `self ⊊ other`?
    pub fn is_proper_subset(self, other: AttrSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// Is `self ∩ other = ∅`?
    pub fn is_disjoint(self, other: AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates the attributes in increasing (1-based) order.
    pub fn iter(self) -> AttrIter {
        AttrIter(self.0)
    }

    /// All subsets of `self`, in submask order (the empty set first,
    /// `self` last). Used by the exhaustive classifier oracles.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter { mask: self.0, current: 0, done: false }
    }
}

/// Iterator over the attributes of an [`AttrSet`].
pub struct AttrIter(u64);

impl Iterator for AttrIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let tz = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(tz + 1)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrIter {}

/// Iterator over all subsets of a mask (standard submask enumeration).
pub struct SubsetIter {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        if self.done {
            return None;
        }
        let out = AttrSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Next submask of `mask` above `current`.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        AttrSet::from_attrs(iter)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_singleton() {
        assert_eq!(AttrSet::full(3).len(), 3);
        assert!(AttrSet::full(3).contains(1));
        assert!(AttrSet::full(3).contains(3));
        assert!(!AttrSet::full(3).contains(4));
        assert_eq!(AttrSet::singleton(2).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(AttrSet::full(64).len(), 64);
    }

    #[test]
    #[should_panic]
    fn arity_over_64_panics() {
        let _ = AttrSet::full(65);
    }

    #[test]
    #[should_panic]
    fn attribute_zero_panics() {
        let _ = AttrSet::singleton(0);
    }

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_attrs([1, 2, 3]);
        let b = AttrSet::from_attrs([2, 3, 4]);
        assert_eq!(a.union(b), AttrSet::from_attrs([1, 2, 3, 4]));
        assert_eq!(a.intersect(b), AttrSet::from_attrs([2, 3]));
        assert_eq!(a.difference(b), AttrSet::singleton(1));
        assert!(AttrSet::from_attrs([2]).is_subset(a));
        assert!(AttrSet::from_attrs([2]).is_proper_subset(a));
        assert!(!a.is_proper_subset(a));
        assert!(a.is_subset(a));
        assert!(AttrSet::singleton(1).is_disjoint(AttrSet::singleton(2)));
    }

    #[test]
    fn empty_set_properties() {
        assert!(AttrSet::EMPTY.is_empty());
        assert_eq!(AttrSet::EMPTY.len(), 0);
        assert!(AttrSet::EMPTY.is_subset(AttrSet::EMPTY));
        assert!(AttrSet::EMPTY.is_subset(AttrSet::full(5)));
        assert_eq!(AttrSet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = AttrSet::EMPTY.insert(5).insert(1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(s.remove(5), AttrSet::singleton(1));
        assert_eq!(s.remove(3), s); // removing an absent attr is a no-op
    }

    #[test]
    fn subset_enumeration_counts() {
        let s = AttrSet::from_attrs([1, 3, 4]);
        let subs: Vec<_> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert_eq!(subs[0], AttrSet::EMPTY);
        assert_eq!(*subs.last().unwrap(), s);
        for sub in &subs {
            assert!(sub.is_subset(s));
        }
        // All distinct.
        let uniq: std::collections::HashSet<_> = subs.iter().copied().collect();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<_> = AttrSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn display_form() {
        assert_eq!(AttrSet::from_attrs([1, 3]).to_string(), "{1,3}");
        assert_eq!(AttrSet::EMPTY.to_string(), "{}");
    }
}
