//! Database instances and subinstance bitsets.
//!
//! All the repair-checking algorithms of the paper work with one fixed
//! inconsistent instance `I` and range over its *subinstances* (`J`,
//! `J′`, the sets `X`, `Y`, `F`, `F′` …). We therefore give every fact
//! of `I` a dense [`FactId`] and represent subinstances as [`FactSet`]
//! bitsets over those ids, so that the set algebra in the inner loops
//! (global/Pareto improvement tests, graph constructions) is
//! word-parallel and allocation-free.

use crate::error::DataError;
use crate::fact::{Fact, SigRef, Tuple};
use crate::hash::FxHashMap;
use crate::signature::RelId;
use crate::value::Value;
use std::fmt;

/// Dense identifier of a fact within one [`Instance`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The dense index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite database instance: a set of facts over a signature.
///
/// Facts are deduplicated on insertion; the id of a fact is stable for
/// the lifetime of the instance.
#[derive(Clone)]
pub struct Instance {
    sig: SigRef,
    facts: Vec<Fact>,
    index: FxHashMap<Fact, FactId>,
    by_rel: Vec<Vec<FactId>>,
}

impl Instance {
    /// Creates an empty instance over a signature.
    pub fn new(sig: SigRef) -> Self {
        let nrels = sig.len();
        Instance {
            sig,
            facts: Vec::new(),
            index: FxHashMap::default(),
            by_rel: vec![Vec::new(); nrels],
        }
    }

    /// The instance's signature.
    pub fn signature(&self) -> &SigRef {
        &self.sig
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Inserts a fact, returning its id (existing id if already present).
    pub fn insert(&mut self, fact: Fact) -> FactId {
        if let Some(&id) = self.index.get(&fact) {
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        self.by_rel[fact.rel().index()].push(id);
        self.index.insert(fact.clone(), id);
        self.facts.push(fact);
        id
    }

    /// Inserts a fact given by relation name and values.
    ///
    /// # Errors
    /// Fails on unknown relations or arity mismatches.
    pub fn insert_named<I>(&mut self, rel: &str, values: I) -> Result<FactId, DataError>
    where
        I: IntoIterator<Item = Value>,
    {
        let fact = Fact::parse_new(&self.sig, rel, values)?;
        Ok(self.insert(fact))
    }

    /// Removes the fact with the given id, shifting every later id
    /// down by one so the dense layout stays exactly what inserting the
    /// surviving facts in order would produce. That canonical layout is
    /// what lets a patched workspace stay bit-identical (fact ids,
    /// certificates, rendered text) to a from-scratch parse of the
    /// edited content. O(n) — a delete costs one sweep of the instance.
    ///
    /// # Panics
    /// Panics if the id is not from this instance.
    pub fn remove_fact(&mut self, id: FactId) -> Fact {
        let removed = self.facts.remove(id.index());
        self.index.remove(&removed);
        for slot in self.index.values_mut() {
            if *slot > id {
                slot.0 -= 1;
            }
        }
        for rel in &mut self.by_rel {
            rel.retain(|&f| f != id);
            for f in rel.iter_mut() {
                if *f > id {
                    f.0 -= 1;
                }
            }
        }
        removed
    }

    /// The fact with the given id.
    ///
    /// # Panics
    /// Panics if the id is not from this instance.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.index()]
    }

    /// Looks up the id of a fact.
    pub fn id_of(&self, fact: &Fact) -> Option<FactId> {
        self.index.get(fact).copied()
    }

    /// Does the instance contain the fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.index.contains_key(fact)
    }

    /// Iterates `(FactId, &Fact)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().enumerate().map(|(i, f)| (FactId(i as u32), f))
    }

    /// All fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32).map(FactId)
    }

    /// The facts of one relation, in insertion order.
    pub fn facts_of(&self, rel: RelId) -> &[FactId] {
        &self.by_rel[rel.index()]
    }

    /// A fresh all-zeros fact set sized to this instance.
    pub fn empty_set(&self) -> FactSet {
        FactSet::empty(self.len())
    }

    /// The fact set containing every fact of the instance.
    pub fn full_set(&self) -> FactSet {
        FactSet::full(self.len())
    }

    /// The fact set of all facts of one relation (the per-relation
    /// decomposition of Proposition 3.5).
    pub fn rel_set(&self, rel: RelId) -> FactSet {
        let mut s = self.empty_set();
        for &id in self.facts_of(rel) {
            s.insert(id);
        }
        s
    }

    /// Builds a fact set from fact ids.
    pub fn set_of<I: IntoIterator<Item = FactId>>(&self, ids: I) -> FactSet {
        let mut s = self.empty_set();
        for id in ids {
            assert!(id.index() < self.len(), "fact id out of range");
            s.insert(id);
        }
        s
    }

    /// Builds a fact set from facts (which must all be present).
    ///
    /// # Errors
    /// Fails if some fact is not in the instance.
    pub fn set_of_facts<'a, I>(&self, facts: I) -> Result<FactSet, DataError>
    where
        I: IntoIterator<Item = &'a Fact>,
    {
        let mut s = self.empty_set();
        for f in facts {
            match self.id_of(f) {
                Some(id) => s.insert(id),
                None => return Err(DataError::SignatureMismatch),
            }
        }
        Ok(s)
    }

    /// Materializes a subinstance as a fresh `Instance` (used by the Π
    /// reductions and by query evaluation, which want standalone
    /// instances).
    pub fn materialize(&self, set: &FactSet) -> Instance {
        let mut out = Instance::new(self.sig.clone());
        for id in set.iter() {
            out.insert(self.fact(id).clone());
        }
        out
    }

    /// Renders a subinstance with relation names, for diagnostics.
    pub fn render_set(&self, set: &FactSet) -> String {
        let mut parts: Vec<String> =
            set.iter().map(|id| self.fact(id).display(&self.sig).to_string()).collect();
        parts.sort();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance over [{}]:", self.sig)?;
        for (_, fact) in self.iter() {
            writeln!(f, "  {}", fact.display(&self.sig))?;
        }
        Ok(())
    }
}

/// A subinstance of a fixed base [`Instance`], as a bitset of fact ids.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactSet {
    words: Vec<u64>,
    universe: usize,
}

impl FactSet {
    /// The empty set over a universe of `universe` facts.
    pub fn empty(universe: usize) -> Self {
        FactSet { words: vec![0; universe.div_ceil(64)], universe }
    }

    /// The full set over a universe of `universe` facts.
    pub fn full(universe: usize) -> Self {
        let mut s = FactSet::empty(universe);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.universe;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of facts in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    pub fn contains(&self, id: FactId) -> bool {
        let i = id.index();
        i < self.universe && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Adds a fact.
    ///
    /// # Panics
    /// Panics if the id is outside the universe.
    pub fn insert(&mut self, id: FactId) {
        let i = id.index();
        assert!(i < self.universe, "fact id {i} outside universe {}", self.universe);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes a fact (no-op if absent).
    pub fn remove(&mut self, id: FactId) {
        let i = id.index();
        if i < self.universe {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Extends the universe (new ids start absent). Used by the delta
    /// path when a fact is appended to the base instance.
    ///
    /// # Panics
    /// Panics if `new_universe` is smaller than the current universe.
    pub fn grow(&mut self, new_universe: usize) {
        assert!(new_universe >= self.universe, "universe cannot shrink via grow");
        self.universe = new_universe;
        self.words.resize(new_universe.div_ceil(64), 0);
    }

    /// Deletes position `id` from the universe entirely: the bit at
    /// `id` is dropped and every higher bit shifts down by one, i.e.
    /// the set follows [`Instance::remove_fact`]'s id renumbering.
    ///
    /// # Panics
    /// Panics if the id is outside the universe.
    pub fn remove_shift(&mut self, id: FactId) {
        let i = id.index();
        assert!(i < self.universe, "fact id {i} outside universe {}", self.universe);
        let w = i / 64;
        let b = i % 64;
        let low_mask = (1u64 << b) - 1;
        let word = self.words[w];
        self.words[w] = (word & low_mask) | ((word >> 1) & !low_mask);
        for k in w + 1..self.words.len() {
            let carry = self.words[k] & 1;
            self.words[k - 1] |= carry << 63;
            self.words[k] >>= 1;
        }
        self.universe -= 1;
        self.words.truncate(self.universe.div_ceil(64));
        self.trim();
    }

    /// `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &FactSet) -> FactSet {
        self.zip_with(other, |a, b| a | b)
    }

    /// `self ∩ other`.
    #[must_use]
    pub fn intersect(&self, other: &FactSet) -> FactSet {
        self.zip_with(other, |a, b| a & b)
    }

    /// `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &FactSet) -> FactSet {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Complement within the universe.
    #[must_use]
    pub fn complement(&self) -> FactSet {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.trim();
        out
    }

    fn zip_with(&self, other: &FactSet, f: impl Fn(u64, u64) -> u64) -> FactSet {
        assert_eq!(self.universe, other.universe, "fact sets over different instances");
        FactSet {
            words: self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect(),
            universe: self.universe,
        }
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &FactSet) -> bool {
        assert_eq!(self.universe, other.universe, "fact sets over different instances");
        self.words.iter().zip(&other.words).all(|(&a, &b)| a & !b == 0)
    }

    /// Is `self ∩ other = ∅`?
    pub fn is_disjoint(&self, other: &FactSet) -> bool {
        assert_eq!(self.universe, other.universe, "fact sets over different instances");
        self.words.iter().zip(&other.words).all(|(&a, &b)| a & b == 0)
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> FactSetIter<'_> {
        FactSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// An arbitrary member, if any.
    pub fn first(&self) -> Option<FactId> {
        self.iter().next()
    }
}

impl fmt::Debug for FactSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.0)?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`FactSet`].
pub struct FactSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for FactSetIter<'_> {
    type Item = FactId;

    fn next(&mut self) -> Option<FactId> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(FactId((self.word_idx * 64 + tz) as u32));
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Convenience: build a [`Tuple`] from anything convertible to values.
pub fn tuple<const N: usize>(values: [impl Into<Value>; N]) -> Tuple {
    Tuple::new(values.into_iter().map(Into::into))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn small_instance() -> Instance {
        let sig = Signature::new([("R", 2), ("S", 1)]).unwrap();
        let mut i = Instance::new(sig);
        i.insert_named("R", [Value::sym("a"), Value::sym("b")]).unwrap();
        i.insert_named("R", [Value::sym("a"), Value::sym("c")]).unwrap();
        i.insert_named("S", [Value::sym("x")]).unwrap();
        i
    }

    #[test]
    fn insertion_dedups_and_ids_are_stable() {
        let mut i = small_instance();
        assert_eq!(i.len(), 3);
        let id = i.insert_named("R", [Value::sym("a"), Value::sym("b")]).unwrap();
        assert_eq!(id, FactId(0));
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn per_relation_listing() {
        let i = small_instance();
        let r = i.signature().rel_id("R").unwrap();
        let s = i.signature().rel_id("S").unwrap();
        assert_eq!(i.facts_of(r).len(), 2);
        assert_eq!(i.facts_of(s), &[FactId(2)]);
        assert_eq!(i.rel_set(r).len(), 2);
        assert!(!i.rel_set(r).contains(FactId(2)));
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut i = small_instance();
        assert!(i.insert_named("T", [Value::sym("x")]).is_err());
    }

    #[test]
    fn factset_algebra() {
        let a = {
            let mut s = FactSet::empty(130);
            s.insert(FactId(0));
            s.insert(FactId(64));
            s.insert(FactId(129));
            s
        };
        let b = {
            let mut s = FactSet::empty(130);
            s.insert(FactId(64));
            s.insert(FactId(100));
            s
        };
        assert_eq!(a.len(), 3);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![FactId(64)]);
        assert_eq!(a.difference(&b).len(), 2);
        assert!(a.intersect(&b).is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn complement_respects_universe() {
        let mut s = FactSet::empty(70);
        s.insert(FactId(3));
        let c = s.complement();
        assert_eq!(c.len(), 69);
        assert!(!c.contains(FactId(3)));
        assert!(c.contains(FactId(69)));
        // No phantom bits beyond the universe.
        assert_eq!(c.union(&s).len(), 70);
        assert_eq!(FactSet::full(70), c.union(&s));
    }

    #[test]
    fn iteration_in_order() {
        let mut s = FactSet::empty(200);
        for i in [5u32, 63, 64, 65, 199] {
            s.insert(FactId(i));
        }
        let got: Vec<u32> = s.iter().map(|f| f.0).collect();
        assert_eq!(got, vec![5, 63, 64, 65, 199]);
        assert_eq!(s.first(), Some(FactId(5)));
        assert_eq!(FactSet::empty(10).first(), None);
    }

    #[test]
    fn remove_fact_shifts_ids_like_a_reinsert() {
        let mut i = small_instance();
        let removed = i.remove_fact(FactId(1)); // R(a,c)
        assert_eq!(removed.display(i.signature()).to_string(), "R(a,c)");
        assert_eq!(i.len(), 2);
        // Survivors keep their relative order under dense renumbering.
        assert_eq!(i.fact(FactId(0)).display(i.signature()).to_string(), "R(a,b)");
        assert_eq!(i.fact(FactId(1)).display(i.signature()).to_string(), "S(x)");
        assert_eq!(i.id_of(&removed), None);
        let s = i.signature().rel_id("S").unwrap();
        assert_eq!(i.facts_of(s), &[FactId(1)]);
        // The layout equals a fresh instance built from the survivors.
        let mut fresh = Instance::new(i.signature().clone());
        fresh.insert_named("R", [Value::sym("a"), Value::sym("b")]).unwrap();
        fresh.insert_named("S", [Value::sym("x")]).unwrap();
        for (id, fact) in i.iter() {
            assert_eq!(fresh.id_of(fact), Some(id));
        }
    }

    #[test]
    fn factset_grow_and_remove_shift() {
        let mut s = FactSet::empty(130);
        for id in [3u32, 63, 64, 65, 129] {
            s.insert(FactId(id));
        }
        // Deleting position 64 drops it and shifts 65→64, 129→128.
        s.remove_shift(FactId(64));
        assert_eq!(s.universe(), 129);
        assert_eq!(s.iter().map(|f| f.0).collect::<Vec<_>>(), vec![3, 63, 64, 128]);
        // Deleting an absent position still renumbers the ones above.
        s.remove_shift(FactId(0));
        assert_eq!(s.iter().map(|f| f.0).collect::<Vec<_>>(), vec![2, 62, 63, 127]);
        assert_eq!(s.universe(), 128);
        // Growing appends absent ids and permits inserting them.
        s.grow(200);
        assert_eq!(s.universe(), 200);
        assert_eq!(s.len(), 4);
        s.insert(FactId(199));
        assert!(s.contains(FactId(199)));
        // Shrinking a universe across a word boundary stays exact.
        let mut t = FactSet::full(65);
        t.remove_shift(FactId(10));
        assert_eq!(t, FactSet::full(64));
    }

    #[test]
    #[should_panic]
    fn insert_outside_universe_panics() {
        let mut s = FactSet::empty(10);
        s.insert(FactId(10));
    }

    #[test]
    #[should_panic]
    fn mixed_universe_algebra_panics() {
        let a = FactSet::empty(10);
        let b = FactSet::empty(11);
        let _ = a.union(&b);
    }

    #[test]
    fn materialize_roundtrip() {
        let i = small_instance();
        let sub = i.set_of([FactId(0), FactId(2)]);
        let m = i.materialize(&sub);
        assert_eq!(m.len(), 2);
        assert!(m.contains(i.fact(FactId(0))));
        assert!(m.contains(i.fact(FactId(2))));
        assert!(!m.contains(i.fact(FactId(1))));
    }

    #[test]
    fn render_set_is_sorted_and_named() {
        let i = small_instance();
        let sub = i.set_of([FactId(1), FactId(2)]);
        assert_eq!(i.render_set(&sub), "{R(a,c), S(x)}");
    }

    #[test]
    fn set_of_facts_checks_membership() {
        let i = small_instance();
        let present = i.fact(FactId(0)).clone();
        assert_eq!(i.set_of_facts([&present]).unwrap().len(), 1);
        let absent = Fact::parse_new(i.signature(), "S", [Value::sym("zz")]).unwrap();
        assert!(i.set_of_facts([&absent]).is_err());
    }
}
