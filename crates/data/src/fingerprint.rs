//! Canonical 128-bit fingerprints of relational content.
//!
//! The serving layer keys its session cache by *content*: two requests
//! carrying the same `(schema, FDs, priority, instance)` — regardless
//! of declaration order — must map to the same cache slot, and
//! different content must (with overwhelming probability) map to
//! different slots. This module provides the hashing substrate:
//!
//! * [`Fingerprint`] — an opaque 128-bit digest with a stable hex
//!   rendering;
//! * [`FingerprintBuilder`] — an *ordered* mixer over words, bytes and
//!   strings, built from two independently-seeded FxHash-style lanes
//!   (the single-lane 64-bit hash in [`crate::hash`] is fine for hash
//!   maps but too collision-prone for cache identity);
//! * [`combine_unordered`] — a commutative fold (sum + xor lanes over
//!   the item digests) so *sets* of facts, FDs, or priority edges
//!   fingerprint identically under any declaration order;
//! * content fingerprints for the types this crate owns:
//!   [`fingerprint_value`], [`fingerprint_fact`],
//!   [`fingerprint_signature`], and [`fingerprint_instance`] (the
//!   instance digest is order-insensitive over its fact multiset).
//!
//! Upper layers compose these into whole-workspace fingerprints (see
//! `rpr-format::workspace_fingerprint`); the digests are **not**
//! cryptographic — they resist accidents, not adversaries, exactly like
//! every other hash in this workspace. Consumers for whom a *crafted*
//! collision would be a correctness problem (the serving session cache,
//! which keys across an HTTP trust boundary) must therefore verify
//! content equality on lookup hits rather than trust the digest alone —
//! `rpr-serve::identity` does exactly that, so a collision there
//! degrades to a cache miss, never to a wrong answer.

use crate::fact::Fact;
use crate::instance::Instance;
use crate::signature::Signature;
use crate::value::Value;
use std::fmt;

/// The two lane seeds: distinct odd constants (the FxHash multiplier
/// and the golden-ratio constant) so the lanes decorrelate.
const SEED_A: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const SEED_B: u64 = 0x9e_37_79_b9_7f_4a_7c_15;
const ROTATE_A: u32 = 5;
const ROTATE_B: u32 = 23;

/// A 128-bit content digest.
///
/// `Fingerprint` is the session-cache key of the serving layer: equal
/// content yields equal fingerprints (the builders are deterministic,
/// with no per-process seeding), and the 128-bit width makes accidental
/// collisions across a cache's lifetime negligible.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[must_use]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The two 64-bit halves (high, low).
    pub fn halves(self) -> (u64, u64) {
        ((self.0 >> 64) as u64, self.0 as u64)
    }

    /// The canonical 32-hex-digit rendering (what `/check` responses
    /// and the metrics label use).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the canonical hex rendering back.
    pub fn from_hex(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An ordered 128-bit mixer: two independent multiply-rotate lanes fed
/// with the same word stream under different seeds and rotations.
#[derive(Clone, Debug)]
#[must_use]
pub struct FingerprintBuilder {
    a: u64,
    b: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintBuilder {
    /// A fresh builder (fixed initial state — no per-process seeding).
    pub fn new() -> Self {
        FingerprintBuilder { a: SEED_A, b: SEED_B }
    }

    /// Mixes one 64-bit word into both lanes.
    #[inline]
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.a = (self.a.rotate_left(ROTATE_A) ^ w).wrapping_mul(SEED_A);
        self.b = (self.b.rotate_left(ROTATE_B) ^ w).wrapping_mul(SEED_B);
        self
    }

    /// Mixes a byte string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` digest differently.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.word(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(w));
        }
        self
    }

    /// Mixes a string (UTF-8 bytes, length-prefixed).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Mixes a previously-computed digest.
    pub fn fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        let (hi, lo) = fp.halves();
        self.word(hi).word(lo)
    }

    /// Finalizes: one extra scramble round per lane so trailing zeros
    /// don't collide with absent input.
    pub fn finish(&self) -> Fingerprint {
        let mut tail = self.clone();
        tail.word(0x000f_eed0_f00d);
        Fingerprint(((tail.a as u128) << 64) | tail.b as u128)
    }
}

/// Commutatively combines item digests: a wrapping sum and a xor fold,
/// re-mixed together with the item count. Any permutation of `items`
/// yields the same result; different multisets yield different results
/// with 128-bit-hash probability.
pub fn combine_unordered<I: IntoIterator<Item = Fingerprint>>(items: I) -> Fingerprint {
    let mut sum: u128 = 0;
    let mut xor: u128 = 0;
    let mut count: u64 = 0;
    for fp in items {
        sum = sum.wrapping_add(fp.0);
        xor ^= fp.0.rotate_left(9);
        count += 1;
    }
    let mut b = FingerprintBuilder::new();
    b.word(count)
        .word((sum >> 64) as u64)
        .word(sum as u64)
        .word((xor >> 64) as u64)
        .word(xor as u64);
    b.finish()
}

/// An incrementally-maintained [`combine_unordered`]: the commutative
/// sum/xor/count state kept live so items can be added *and removed*
/// in O(1), with `finish()` producing exactly the digest
/// `combine_unordered` would compute over the current multiset.
///
/// This is what makes workspace fingerprints patchable: a delta that
/// inserts or deletes a fact (or priority edge) updates the affected
/// lane in constant time instead of re-folding the whole multiset.
/// Removal relies on the algebra being a group: the sum lane subtracts,
/// the xor lane is its own inverse, and the count decrements — so any
/// add/remove history that ends in the same multiset ends in the same
/// state, bit for bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnorderedAccumulator {
    sum: u128,
    xor: u128,
    count: u64,
}

impl UnorderedAccumulator {
    /// An accumulator over the empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds an accumulator from an existing multiset of digests.
    pub fn from_items<I: IntoIterator<Item = Fingerprint>>(items: I) -> Self {
        let mut acc = Self::new();
        for fp in items {
            acc.add(fp);
        }
        acc
    }

    /// Adds one item digest to the multiset.
    pub fn add(&mut self, fp: Fingerprint) {
        self.sum = self.sum.wrapping_add(fp.0);
        self.xor ^= fp.0.rotate_left(9);
        self.count += 1;
    }

    /// Removes one item digest from the multiset. The caller must only
    /// remove digests previously added (the count underflows otherwise,
    /// which panics in debug builds like any other integer underflow).
    pub fn remove(&mut self, fp: Fingerprint) {
        self.sum = self.sum.wrapping_sub(fp.0);
        self.xor ^= fp.0.rotate_left(9);
        self.count -= 1;
    }

    /// Number of items currently in the multiset.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Is the multiset empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The digest of the current multiset — identical to
    /// [`combine_unordered`] over the same items.
    pub fn finish(&self) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.word(self.count)
            .word((self.sum >> 64) as u64)
            .word(self.sum as u64)
            .word((self.xor >> 64) as u64)
            .word(self.xor as u64);
        b.finish()
    }
}

/// Digest of a single constant (structural, recursing into pairs).
pub fn fingerprint_value(v: &Value) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    mix_value(&mut b, v);
    b.finish()
}

fn mix_value(b: &mut FingerprintBuilder, v: &Value) {
    match v {
        Value::Int(i) => {
            b.word(1).word(*i as u64);
        }
        Value::Sym(s) => {
            b.word(2).str(s);
        }
        Value::Pair(p) => {
            b.word(3);
            mix_value(b, &p.0);
            mix_value(b, &p.1);
        }
    }
}

/// Digest of one fact: the relation *name* (not the numeric id, so the
/// digest survives signature reordering) plus the tuple values in
/// attribute order.
pub fn fingerprint_fact(sig: &Signature, fact: &Fact) -> Fingerprint {
    let mut b = FingerprintBuilder::new();
    b.str(sig.symbol(fact.rel()).name());
    for v in fact.tuple().values() {
        mix_value(&mut b, v);
    }
    b.finish()
}

/// Digest of a signature: the *set* of `name/arity` symbols,
/// insensitive to declaration order.
pub fn fingerprint_signature(sig: &Signature) -> Fingerprint {
    combine_unordered(sig.iter().map(|(_, sym)| {
        let mut b = FingerprintBuilder::new();
        b.str(sym.name()).word(sym.arity() as u64);
        b.finish()
    }))
}

/// Digest of an instance: its signature plus the *multiset* of facts.
/// Two instances whose facts were inserted in different orders (and so
/// carry different `FactId`s) fingerprint identically.
pub fn fingerprint_instance(instance: &Instance) -> Fingerprint {
    let sig = instance.signature();
    let mut b = FingerprintBuilder::new();
    b.fingerprint(fingerprint_signature(sig));
    b.fingerprint(combine_unordered(instance.iter().map(|(_, f)| fingerprint_fact(sig, f))));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::signature::Signature;

    fn sig2() -> crate::fact::SigRef {
        Signature::new([("R", 2), ("S", 3)]).unwrap()
    }

    #[test]
    fn builder_is_deterministic_and_order_sensitive() {
        let mut a = FingerprintBuilder::new();
        a.str("hello").word(7);
        let mut b = FingerprintBuilder::new();
        b.str("hello").word(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = FingerprintBuilder::new();
        c.word(7).str("hello");
        assert_ne!(a.finish(), c.finish());
        // Length prefixing separates concatenation ambiguities.
        let mut d = FingerprintBuilder::new();
        d.str("he").str("llo7");
        assert_ne!(a.finish(), d.finish());
    }

    #[test]
    fn empty_input_differs_from_zero_words() {
        let empty = FingerprintBuilder::new().finish();
        let mut z = FingerprintBuilder::new();
        z.word(0);
        assert_ne!(empty, z.finish());
    }

    #[test]
    fn unordered_combination_is_permutation_invariant() {
        let items: Vec<Fingerprint> = (0..50u64)
            .map(|i| {
                let mut b = FingerprintBuilder::new();
                b.word(i);
                b.finish()
            })
            .collect();
        let forward = combine_unordered(items.iter().copied());
        let backward = combine_unordered(items.iter().rev().copied());
        let mut shuffled = items.clone();
        shuffled.swap(3, 41);
        shuffled.swap(0, 17);
        assert_eq!(forward, backward);
        assert_eq!(forward, combine_unordered(shuffled));
        // Dropping one item changes the digest.
        assert_ne!(forward, combine_unordered(items[1..].iter().copied()));
        // Duplicating an item changes the digest (multiset, not set).
        let mut dup = items.clone();
        dup.push(items[0]);
        assert_ne!(forward, combine_unordered(dup));
    }

    #[test]
    fn instance_fingerprint_ignores_insertion_order() {
        let sig = sig2();
        let mut i1 = Instance::new(sig.clone());
        i1.insert_named("R", [Value::sym("a"), Value::int(1)]).unwrap();
        i1.insert_named("R", [Value::sym("b"), Value::int(2)]).unwrap();
        i1.insert_named("S", [Value::sym("x"), Value::sym("y"), Value::int(0)]).unwrap();
        let mut i2 = Instance::new(sig.clone());
        i2.insert_named("S", [Value::sym("x"), Value::sym("y"), Value::int(0)]).unwrap();
        i2.insert_named("R", [Value::sym("b"), Value::int(2)]).unwrap();
        i2.insert_named("R", [Value::sym("a"), Value::int(1)]).unwrap();
        assert_eq!(fingerprint_instance(&i1), fingerprint_instance(&i2));

        // Different content separates.
        let mut i3 = Instance::new(sig);
        i3.insert_named("R", [Value::sym("a"), Value::int(1)]).unwrap();
        assert_ne!(fingerprint_instance(&i1), fingerprint_instance(&i3));
    }

    #[test]
    fn fact_fingerprint_distinguishes_relation_and_values() {
        let sig = Signature::new([("R", 1), ("T", 1)]).unwrap();
        let r = Fact::parse_new(&sig, "R", [Value::sym("a")]).unwrap();
        let t = Fact::parse_new(&sig, "T", [Value::sym("a")]).unwrap();
        let r2 = Fact::parse_new(&sig, "R", [Value::sym("b")]).unwrap();
        assert_ne!(fingerprint_fact(&sig, &r), fingerprint_fact(&sig, &t));
        assert_ne!(fingerprint_fact(&sig, &r), fingerprint_fact(&sig, &r2));
        // Int 1 and symbol "1" are different constants.
        let i = Fact::parse_new(&sig, "R", [Value::int(1)]).unwrap();
        let s = Fact::parse_new(&sig, "R", [Value::sym("1")]).unwrap();
        assert_ne!(fingerprint_fact(&sig, &i), fingerprint_fact(&sig, &s));
    }

    #[test]
    fn accumulator_matches_combine_unordered() {
        let item = |i: u64| {
            let mut b = FingerprintBuilder::new();
            b.word(i);
            b.finish()
        };
        let items: Vec<Fingerprint> = (0..40).map(item).collect();
        let mut acc = UnorderedAccumulator::new();
        for &fp in &items {
            acc.add(fp);
        }
        assert_eq!(acc.finish(), combine_unordered(items.iter().copied()));
        assert_eq!(acc.len(), 40);

        // Remove half (in a scrambled order) — equals a fresh fold.
        for i in (0..40).step_by(2) {
            acc.remove(item(i));
        }
        let survivors: Vec<Fingerprint> = (1..40).step_by(2).map(item).collect();
        assert_eq!(acc.finish(), combine_unordered(survivors));

        // Remove-then-re-add round-trips bit for bit.
        let before = acc.clone();
        acc.remove(item(7));
        assert_ne!(acc.finish(), before.finish());
        acc.add(item(7));
        assert_eq!(acc, before);

        // Empty accumulator equals the empty fold.
        let empty = UnorderedAccumulator::new();
        assert_eq!(empty.finish(), combine_unordered(std::iter::empty()));
        assert!(empty.is_empty());
        assert_eq!(UnorderedAccumulator::from_items(items).finish(), {
            let mut a = UnorderedAccumulator::new();
            for i in 0..40 {
                a.add(item(i));
            }
            a.finish()
        });
    }

    #[test]
    fn hex_roundtrip() {
        let mut b = FingerprintBuilder::new();
        b.str("roundtrip");
        let fp = b.finish();
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(format!("{fp}"), fp.to_hex());
    }

    #[test]
    fn dense_word_range_has_no_collisions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..20_000 {
            let mut b = FingerprintBuilder::new();
            b.word(i);
            seen.insert(b.finish());
        }
        assert_eq!(seen.len(), 20_000);
    }
}
