//! Constants appearing in database facts.
//!
//! The paper assumes an infinite domain `Const` of constants (§2.1). We
//! support integers, symbolic constants (strings), and *pairs* of values.
//! Pair values are what the Π reductions of §5 need: the Case-1 fact
//! mapping sends a constant `c_a, c_b` pair into a single attribute value
//! `⟨c_a, c_b⟩` (Lemma 5.3), and nesting pairs yields the triple
//! `⟨c1, c2, c3⟩`.

use std::fmt;
use std::sync::Arc;

/// A database constant.
///
/// Cloning is cheap: symbolic constants and pairs are reference-counted.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A symbolic (named) constant such as `lib1` or `almaden`.
    Sym(Arc<str>),
    /// An ordered pair of constants, e.g. `⟨c1, c2⟩` from the Π mappings.
    Pair(Arc<(Value, Value)>),
}

impl Value {
    /// Builds a symbolic constant.
    pub fn sym(name: impl AsRef<str>) -> Self {
        Value::Sym(Arc::from(name.as_ref()))
    }

    /// Builds an integer constant.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Builds the pair `⟨a, b⟩`.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Pair(Arc::new((a, b)))
    }

    /// Builds the right-nested triple `⟨a, ⟨b, c⟩⟩`, the encoding used for
    /// the `⟨c1, c2, c3⟩` values of the Case-1 reduction.
    pub fn triple(a: Value, b: Value, c: Value) -> Self {
        Value::pair(a, Value::pair(b, c))
    }

    /// Returns the symbol name if this is a symbolic constant.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the components if this is a pair.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Pair(p) => write!(f, "⟨{},{}⟩", p.0, p.1),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Sym(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::sym("lib1"), Value::sym("lib1"));
        assert_ne!(Value::sym("lib1"), Value::sym("lib2"));
        assert_ne!(Value::int(1), Value::sym("1"));
        assert_eq!(Value::pair(1.into(), 2.into()), Value::pair(1.into(), 2.into()));
        assert_ne!(Value::pair(1.into(), 2.into()), Value::pair(2.into(), 1.into()));
    }

    #[test]
    fn hash_agrees_with_equality_for_clones() {
        let a = Value::triple("a".into(), "b".into(), "c".into());
        let b = Value::triple("a".into(), "b".into(), "c".into());
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn triple_is_right_nested() {
        let t = Value::triple(1.into(), 2.into(), 3.into());
        let (a, rest) = t.as_pair().unwrap();
        assert_eq!(a, &Value::int(1));
        let (b, c) = rest.as_pair().unwrap();
        assert_eq!(b, &Value::int(2));
        assert_eq!(c, &Value::int(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::sym("x").to_string(), "x");
        assert_eq!(Value::pair("a".into(), 1.into()).to_string(), "⟨a,1⟩");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::sym("s").as_sym(), Some("s"));
        assert_eq!(Value::int(9).as_int(), Some(9));
        assert_eq!(Value::int(9).as_sym(), None);
        assert!(Value::pair(1.into(), 2.into()).as_pair().is_some());
        assert!(Value::int(1).as_pair().is_none());
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::sym("b"),
            Value::int(2),
            Value::pair(1.into(), 1.into()),
            Value::sym("a"),
            Value::int(1),
        ];
        vs.sort();
        // Ints sort before syms before pairs (enum declaration order).
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(2),
                Value::sym("a"),
                Value::sym("b"),
                Value::pair(1.into(), 1.into()),
            ]
        );
    }
}
