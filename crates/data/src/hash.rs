//! A fast, non-cryptographic hasher (the FxHash algorithm used by rustc).
//!
//! The repair algorithms hash small keys — interned ids, attribute
//! projections, `u32` fact ids — millions of times per run. The standard
//! library's SipHash is DoS-resistant but an order of magnitude slower for
//! such keys, and none of our inputs are adversarial (see the Rust
//! Performance Book, "Hashing"). We vendor the ~20-line FxHash algorithm
//! instead of pulling in an external crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: a multiply-and-rotate word mixer.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // No collisions over a dense small range.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        // Writing the same logical bytes in one call must be stable.
        let mut h1 = FxHasher::default();
        h1.write(b"hello world!!");
        let mut h2 = FxHasher::default();
        h2.write(b"hello world!!");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello world!?");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }
}
