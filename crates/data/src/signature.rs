//! Relational signatures (§2.1): finite sets of relation symbols with
//! designated arities.

use crate::attrset::{AttrSet, MAX_ARITY};
use crate::error::DataError;
use crate::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a relation symbol within its [`Signature`] (dense index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation symbol: a name plus an arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationSymbol {
    name: Arc<str>,
    arity: usize,
}

impl RelationSymbol {
    /// Creates a relation symbol.
    ///
    /// # Errors
    /// Fails if the arity is zero or exceeds [`MAX_ARITY`].
    pub fn new(name: impl AsRef<str>, arity: usize) -> Result<Self, DataError> {
        if arity == 0 || arity > MAX_ARITY {
            return Err(DataError::BadArity { name: name.as_ref().to_owned(), arity });
        }
        Ok(RelationSymbol { name: Arc::from(name.as_ref()), arity })
    }

    /// The symbol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The attribute universe `⟦R⟧ = {1, …, arity}`.
    pub fn attrs(&self) -> AttrSet {
        AttrSet::full(self.arity)
    }
}

/// A relational signature `R = {R1, …, Rn}`.
///
/// Signatures are immutable once built and shared via `Arc` by schemas,
/// instances and queries, so that every component agrees on the
/// `RelId ↔ name` correspondence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    symbols: Vec<RelationSymbol>,
    by_name: FxHashMap<Arc<str>, RelId>,
}

impl Signature {
    /// Builds a signature from `(name, arity)` pairs.
    ///
    /// # Errors
    /// Fails on duplicate names or invalid arities.
    pub fn new<'a, I>(symbols: I) -> Result<Arc<Self>, DataError>
    where
        I: IntoIterator<Item = (&'a str, usize)>,
    {
        let mut sig = Signature { symbols: Vec::new(), by_name: FxHashMap::default() };
        for (name, arity) in symbols {
            sig.push(RelationSymbol::new(name, arity)?)?;
        }
        Ok(Arc::new(sig))
    }

    fn push(&mut self, sym: RelationSymbol) -> Result<RelId, DataError> {
        if self.by_name.contains_key(sym.name.as_ref() as &str) {
            return Err(DataError::DuplicateRelation(sym.name().to_owned()));
        }
        let id = RelId(self.symbols.len() as u32);
        self.by_name.insert(sym.name.clone(), id);
        self.symbols.push(sym);
        Ok(id)
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Is the signature empty?
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbol with the given id.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this signature.
    pub fn symbol(&self, id: RelId) -> &RelationSymbol {
        &self.symbols[id.index()]
    }

    /// The arity of the relation with the given id.
    pub fn arity(&self, id: RelId) -> usize {
        self.symbol(id).arity()
    }

    /// Looks a relation up by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Looks a relation up by name, erroring if absent.
    pub fn require(&self, name: &str) -> Result<RelId, DataError> {
        self.rel_id(name).ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// Iterates `(RelId, &RelationSymbol)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSymbol)> {
        self.symbols.iter().enumerate().map(|(i, s)| (RelId(i as u32), s))
    }

    /// All relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.symbols.len()).map(|i| RelId(i as u32))
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.symbols {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", s.name(), s.arity())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let sig = Signature::new([("BookLoc", 3), ("LibLoc", 2)]).unwrap();
        assert_eq!(sig.len(), 2);
        let b = sig.rel_id("BookLoc").unwrap();
        let l = sig.rel_id("LibLoc").unwrap();
        assert_ne!(b, l);
        assert_eq!(sig.arity(b), 3);
        assert_eq!(sig.arity(l), 2);
        assert_eq!(sig.symbol(b).name(), "BookLoc");
        assert_eq!(sig.symbol(b).attrs(), AttrSet::full(3));
        assert!(sig.rel_id("Nope").is_none());
        assert!(sig.require("Nope").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        assert!(matches!(
            Signature::new([("R", 2), ("R", 3)]),
            Err(DataError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn invalid_arities_rejected() {
        assert!(Signature::new([("R", 0)]).is_err());
        assert!(Signature::new([("R", 65)]).is_err());
        assert!(Signature::new([("R", 64)]).is_ok());
    }

    #[test]
    fn display() {
        let sig = Signature::new([("R", 3), ("S", 1)]).unwrap();
        assert_eq!(sig.to_string(), "R/3, S/1");
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let sig = Signature::new([("A", 1), ("B", 2), ("C", 3)]).unwrap();
        let names: Vec<_> = sig.iter().map(|(_, s)| s.name().to_owned()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
        let ids: Vec<_> = sig.rel_ids().collect();
        assert_eq!(ids, vec![RelId(0), RelId(1), RelId(2)]);
    }
}
