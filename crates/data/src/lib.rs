//! # rpr-data — relational substrate for the preferred-repairs system
//!
//! This crate implements the data model of §2.1 of *Dichotomies in the
//! Complexity of Preferred Repairs* (Fagin, Kimelfeld, Kolaitis, PODS
//! 2015): constants, tuples, facts, relational signatures and instances,
//! plus the two bitset work-horses every algorithm in the upper crates
//! relies on:
//!
//! * [`AttrSet`] — subsets of the attribute universe `⟦R⟧` as one
//!   machine word (FD sides, closures, the `A⁺`/`Â` sets of §5.2);
//! * [`FactSet`] — subinstances of a fixed instance `I` as dense
//!   bitsets over [`FactId`]s (the repairs `J`, improvements, and the
//!   `F`/`F′` exchange sets of Lemmas 4.2/4.4/7.3).
//!
//! Nothing in this crate knows about functional dependencies or repairs;
//! see `rpr-fd` and `rpr-core` for those layers.

#![warn(missing_docs)]

pub mod attrset;
pub mod error;
pub mod fact;
pub mod fingerprint;
pub mod hash;
pub mod instance;
pub mod parse;
pub mod signature;
pub mod value;

pub use attrset::{AttrSet, MAX_ARITY};
pub use error::DataError;
pub use fact::{Fact, SigRef, Tuple};
pub use fingerprint::{
    combine_unordered, fingerprint_fact, fingerprint_instance, fingerprint_signature,
    fingerprint_value, Fingerprint, FingerprintBuilder,
};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use instance::{tuple, FactId, FactSet, Instance};
pub use parse::{parse_instance, render_instance};
pub use signature::{RelId, RelationSymbol, Signature};
pub use value::Value;
