//! Error types for the relational substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while building signatures, facts and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation was declared with arity 0 or above the supported maximum.
    BadArity {
        /// Relation name.
        name: String,
        /// Offending arity.
        arity: usize,
    },
    /// Two relations with the same name in one signature.
    DuplicateRelation(String),
    /// A relation name that the signature does not contain.
    UnknownRelation(String),
    /// A fact whose tuple width differs from its relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Tuple width supplied.
        got: usize,
    },
    /// A fact referred to a different signature than the instance.
    SignatureMismatch,
    /// Instance text that could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadArity { name, arity } => {
                write!(f, "relation {name} has unsupported arity {arity} (must be 1..=64)")
            }
            DataError::DuplicateRelation(name) => {
                write!(f, "duplicate relation symbol {name}")
            }
            DataError::UnknownRelation(name) => {
                write!(f, "unknown relation symbol {name}")
            }
            DataError::ArityMismatch { relation, expected, got } => {
                write!(
                    f,
                    "fact over {relation} has {got} values but the relation has arity {expected}"
                )
            }
            DataError::SignatureMismatch => {
                write!(f, "fact and instance use different signatures")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DataError::ArityMismatch { relation: "R".into(), expected: 3, got: 2 };
        assert!(e.to_string().contains("R"));
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        let e = DataError::Parse { line: 7, message: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
