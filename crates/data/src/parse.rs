//! A small text format for instances, used by examples and tests.
//!
//! ```text
//! # comment
//! BookLoc(b1, fiction, lib1)
//! LibLoc(lib1, almaden)
//! LibLoc(lib1, 42)        // bare integers parse as Value::Int
//! ```
//!
//! Values are symbols unless they parse as `i64`. Whitespace around
//! values is trimmed. Empty lines and `#`-prefixed lines are skipped.

use crate::error::DataError;
use crate::fact::SigRef;
use crate::instance::Instance;
use crate::value::Value;

/// Parses one value token.
fn parse_value(token: &str) -> Value {
    match token.parse::<i64>() {
        Ok(n) => Value::Int(n),
        Err(_) => Value::sym(token),
    }
}

/// Parses an instance from text.
///
/// # Errors
/// Fails with [`DataError::Parse`] (with a line number) on malformed
/// lines, and propagates unknown-relation/arity errors.
pub fn parse_instance(sig: SigRef, text: &str) -> Result<Instance, DataError> {
    let mut instance = Instance::new(sig);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let open = line.find('(').ok_or_else(|| DataError::Parse {
            line: lineno,
            message: "expected Relation(v1, ..., vn)".into(),
        })?;
        if !line.ends_with(')') {
            return Err(DataError::Parse {
                line: lineno,
                message: "missing closing parenthesis".into(),
            });
        }
        let rel = line[..open].trim();
        if rel.is_empty() {
            return Err(DataError::Parse { line: lineno, message: "missing relation name".into() });
        }
        let body = &line[open + 1..line.len() - 1];
        if body.trim().is_empty() {
            return Err(DataError::Parse {
                line: lineno,
                message: "facts must have at least one value".into(),
            });
        }
        let values: Vec<Value> = body.split(',').map(|t| parse_value(t.trim())).collect();
        instance.insert_named(rel, values).map_err(|e| match e {
            DataError::Parse { .. } => e,
            other => DataError::Parse { line: lineno, message: other.to_string() },
        })?;
    }
    Ok(instance)
}

/// Serializes an instance back to the text format (sorted for stability).
pub fn render_instance(instance: &Instance) -> String {
    let sig = instance.signature();
    let mut lines: Vec<String> = instance.iter().map(|(_, f)| f.display(sig).to_string()).collect();
    lines.sort();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn sig() -> SigRef {
        Signature::new([("R", 2), ("S", 3)]).unwrap()
    }

    #[test]
    fn parses_mixed_values_and_comments() {
        let i = parse_instance(sig(), "# header\n\nR(a, 7)\nS(x, y, -3)\n  R( a ,7 )\n").unwrap();
        assert_eq!(i.len(), 2); // duplicate R(a,7) deduped
        let f = i.fact(crate::instance::FactId(0));
        assert_eq!(f.get(2), &Value::Int(7));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_instance(sig(), "R a b").is_err());
        assert!(parse_instance(sig(), "R(a, b").is_err());
        assert!(parse_instance(sig(), "(a, b)").is_err());
        assert!(parse_instance(sig(), "R()").is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_instance(sig(), "R(a,b)\nbroken").unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn arity_errors_become_parse_errors_with_location() {
        let err = parse_instance(sig(), "R(a,b,c)").unwrap_err();
        match err {
            DataError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("arity"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn roundtrip() {
        let text = "R(a,7)\nS(x,y,z)";
        let i = parse_instance(sig(), text).unwrap();
        let rendered = render_instance(&i);
        let j = parse_instance(sig(), &rendered).unwrap();
        assert_eq!(i.len(), j.len());
        for (_, f) in i.iter() {
            assert!(j.contains(f));
        }
    }
}
