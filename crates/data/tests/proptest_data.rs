//! Property-based tests for the bitset substrate: the algebra laws the
//! repair algorithms silently rely on.

use proptest::prelude::*;
use rpr_data::{
    parse_instance, render_instance, AttrSet, FactId, FactSet, Signature, Tuple, Value,
};

fn attrset() -> impl Strategy<Value = AttrSet> {
    any::<u64>().prop_map(|bits| AttrSet::from_bits(bits & AttrSet::full(16).bits()))
}

fn factset(universe: usize) -> impl Strategy<Value = FactSet> {
    proptest::collection::vec(any::<bool>(), universe).prop_map(move |bools| {
        let mut s = FactSet::empty(universe);
        for (i, b) in bools.into_iter().enumerate() {
            if b {
                s.insert(FactId(i as u32));
            }
        }
        s
    })
}

proptest! {
    #[test]
    fn attrset_de_morgan(a in attrset(), b in attrset()) {
        let u = AttrSet::full(16);
        let not = |s: AttrSet| u.difference(s);
        prop_assert_eq!(not(a.union(b)), not(a).intersect(not(b)));
        prop_assert_eq!(not(a.intersect(b)), not(a).union(not(b)));
    }

    #[test]
    fn attrset_difference_laws(a in attrset(), b in attrset()) {
        prop_assert!(a.difference(b).is_disjoint(b));
        prop_assert_eq!(a.difference(b).union(a.intersect(b)), a);
        prop_assert!(a.difference(b).is_subset(a));
    }

    #[test]
    fn attrset_subset_antisymmetry_transitivity(a in attrset(), b in attrset(), c in attrset()) {
        if a.is_subset(b) && b.is_subset(a) {
            prop_assert_eq!(a, b);
        }
        if a.is_subset(b) && b.is_subset(c) {
            prop_assert!(a.is_subset(c));
        }
    }

    #[test]
    fn attrset_iteration_roundtrip(a in attrset()) {
        let rebuilt: AttrSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
        // Iteration is strictly increasing.
        let attrs: Vec<usize> = a.iter().collect();
        for w in attrs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn attrset_subset_enumeration_is_complete(bits in 0u64..256) {
        let a = AttrSet::from_bits(bits);
        let subs: Vec<AttrSet> = a.subsets().collect();
        prop_assert_eq!(subs.len(), 1 << a.len());
        for s in &subs {
            prop_assert!(s.is_subset(a));
        }
        let uniq: std::collections::HashSet<u64> = subs.iter().map(|s| s.bits()).collect();
        prop_assert_eq!(uniq.len(), subs.len());
    }

    #[test]
    fn factset_algebra(a in factset(130), b in factset(130)) {
        prop_assert_eq!(a.union(&b).len(), a.len() + b.len() - a.intersect(&b).len());
        prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a.clone());
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
        // Complement laws respect the universe.
        let c = a.complement();
        prop_assert!(c.is_disjoint(&a));
        prop_assert_eq!(c.union(&a), FactSet::full(130));
        prop_assert_eq!(c.complement(), a);
    }

    #[test]
    fn factset_iteration_roundtrip(a in factset(100)) {
        let mut rebuilt = FactSet::empty(100);
        for id in a.iter() {
            rebuilt.insert(id);
        }
        prop_assert_eq!(rebuilt, a.clone());
        prop_assert_eq!(a.iter().count(), a.len());
        prop_assert_eq!(a.first(), a.iter().next());
    }

    #[test]
    fn tuple_projection_composes(vals in proptest::collection::vec(0i64..50, 1..10), bits in any::<u64>()) {
        let t = Tuple::new(vals.iter().map(|&v| Value::Int(v)));
        let mask = AttrSet::from_bits(bits & AttrSet::full(t.len()).bits());
        let projected = t.project(mask);
        prop_assert_eq!(projected.len(), mask.len());
        // Projection preserves the values at the selected positions.
        for (k, attr) in mask.iter().enumerate() {
            prop_assert_eq!(projected.get(k + 1), t.get(attr));
        }
        // Agreement on the mask is equivalent to equal projections.
        prop_assert!(t.agrees_on(&t, mask));
    }

    #[test]
    fn instance_text_roundtrip(rows in proptest::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..30)) {
        let sig = Signature::new([("R", 3)]).unwrap();
        let mut instance = rpr_data::Instance::new(sig.clone());
        for (a, b, c) in rows {
            instance
                .insert_named("R", [Value::Int(a), Value::Int(b), Value::Int(c)])
                .unwrap();
        }
        let text = render_instance(&instance);
        let parsed = parse_instance(sig, &text).unwrap();
        prop_assert_eq!(parsed.len(), instance.len());
        for (_, f) in instance.iter() {
            prop_assert!(parsed.contains(f));
        }
    }
}
