//! The experiment harness: re-derives every figure, example, lemma and
//! theorem of *Dichotomies in the Complexity of Preferred Repairs* and
//! prints paper-claim vs measured-outcome lines. EXPERIMENTS.md records
//! a full run.
//!
//! Usage: `cargo run --release -p rpr-bench --bin experiments [eNN …]`
//! (no arguments = run everything).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpr_bench::{
    ccp_const_workload, ccp_pk_workload, hard_s4_workload, single_fd_workload, two_keys_workload,
};
use rpr_classify::{
    classify_relation, classify_schema, classify_schema_ccp, equivalent_constant_attribute,
    equivalent_single_key, equivalent_two_incomparable_keys, CcpClass, Complexity,
};
use rpr_core::{
    check_global_ccp_const, check_global_ccp_pk, check_global_exact, default_jobs,
    enumerate_const_attr_repairs, enumerate_repairs, is_completion_optimal,
    is_completion_optimal_brute, is_global_improvement, is_globally_optimal_brute,
    is_pareto_improvement, is_pareto_optimal, is_pareto_optimal_brute, CcpChecker, CheckSession,
    GRepairChecker, Improvement,
};
use rpr_cqa::{answers, atom, ConjunctiveQuery, RepairSemantics, RepairSpace};
use rpr_data::{AttrSet, FactId, Instance, RelId, Signature, Value};
use rpr_fd::{closure, equivalent, ConflictGraph, Fd, Schema};
use rpr_gen::{ccp_hard_schema, example_3_3_schema, hard_schema, random_schema, RunningExample};
use rpr_priority::{PrioritizedInstance, PriorityRelation};
use rpr_reductions::{
    check_injective, check_preserves_consistency, hamiltonian_gadget, improvement_from_cycle,
    map_input, CaseOneMapping, FactMapping, UGraph,
};
use std::time::Instant;

type ExpResult = Result<Vec<String>, String>;

struct Experiment {
    id: &'static str,
    title: &'static str,
    run: fn() -> ExpResult,
}

fn main() {
    let experiments: Vec<Experiment> = vec![
        Experiment {
            id: "e01",
            title: "Figure 1 / Examples 2.1-2.2: running instance & conflicts",
            run: e01,
        },
        Experiment { id: "e02", title: "Example 2.3: priority legality", run: e02 },
        Experiment { id: "e03", title: "Example 2.5: improvement claims for J1..J4", run: e03 },
        Experiment { id: "e04", title: "Examples 3.2/3.3: tractable classifications", run: e04 },
        Experiment {
            id: "e05",
            title: "Example 3.4: the six hard schemas and their §5.2 cases",
            run: e05,
        },
        Experiment { id: "e06", title: "Figure 2 / Lemma 4.2: GRepCheck1FD ≡ oracle", run: e06 },
        Experiment { id: "e07", title: "Figure 3 / Example 4.3: the G12/G21 graphs", run: e07 },
        Experiment {
            id: "e08", title: "Figure 4 / Lemma 4.4: GRepCheck2Keys ≡ oracle", run: e08
        },
        Experiment {
            id: "e09",
            title: "Lemma 5.2 / Figure 5: the Hamiltonian-cycle gadget",
            run: e09,
        },
        Experiment {
            id: "e10",
            title: "Lemmas 5.3/5.4: Case-1 Π key properties + end-to-end",
            run: e10,
        },
        Experiment {
            id: "e11",
            title: "Theorem 6.1 / Lemma 6.2: classifier ≡ semantic oracle",
            run: e11,
        },
        Experiment {
            id: "e12",
            title: "Example 7.2 / Figure 6: the ccp graph G_{J,I\\J}",
            run: e12,
        },
        Experiment {
            id: "e13",
            title: "Lemma 7.3 / Prop 7.4: ccp primary-key checker ≡ oracle",
            run: e13,
        },
        Experiment {
            id: "e14", title: "Prop 7.5: constant-attribute repairs ≡ oracle", run: e14
        },
        Experiment {
            id: "e15",
            title: "Theorem 7.1/7.6: ccp classifier on the §7.1 schemas",
            run: e15,
        },
        Experiment {
            id: "e16",
            title: "Theorem 3.1 (empirical): dispatching checker ≡ oracle",
            run: e16,
        },
        Experiment {
            id: "e17",
            title: "Dichotomy gap: polynomial checkers vs exponential search",
            run: e17,
        },
        Experiment {
            id: "e18",
            title: "Pareto/completion PTIME + Prop 10(iii) of [14] refuted",
            run: e18,
        },
        Experiment {
            id: "e19",
            title: "Concluding remarks: preferred CQA, counting, uniqueness",
            run: e19,
        },
        Experiment {
            id: "e20",
            title: "Extension: polynomial construction of a globally-optimal repair",
            run: e20,
        },
        Experiment {
            id: "e21",
            title: "Extension: how much the preferred semantics prune",
            run: e21,
        },
        Experiment {
            id: "e22",
            title: "Extension: cleaning accuracy on simulated multi-source feeds",
            run: e22,
        },
        Experiment {
            id: "e23",
            title: "Extension: discover → classify → clean pipeline",
            run: e23,
        },
        Experiment {
            id: "e24",
            title: "Extension: amortized check sessions (one-shot vs session vs parallel)",
            run: e24,
        },
        Experiment {
            id: "e25",
            title: "Extension: budget-enforcement overhead on the PTIME fast path",
            run: e25,
        },
        Experiment {
            id: "e26",
            title: "Extension: rpr-serve under mixed PTIME/coNP load (zero lost requests)",
            run: e26,
        },
        Experiment {
            id: "e28",
            title: "Extension: keep-alive transport vs the connection-per-request baseline",
            run: e28,
        },
        Experiment {
            id: "e29",
            title: "Extension: incremental delta patching vs cold session rebuild",
            run: e29,
        },
        Experiment {
            id: "e30",
            title:
                "Extension: component-sharded sessions (parallel shards, local exact, shard reuse)",
            run: e30,
        },
        Experiment {
            id: "e31",
            title:
                "Extension: content-addressed shard store (cross-fingerprint reuse, dedup bytes)",
            run: e31,
        },
    ];

    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let mut failures = 0;
    for exp in &experiments {
        if !args.is_empty() && !args.iter().any(|a| a == exp.id) {
            continue;
        }
        println!("== {}  {} ==", exp.id.to_uppercase(), exp.title);
        let start = Instant::now();
        match (exp.run)() {
            Ok(lines) => {
                for l in lines {
                    println!("   {l}");
                }
                println!("   status: PASS ({:.2?})", start.elapsed());
            }
            Err(msg) => {
                println!("   status: FAIL — {msg}");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}

fn ensure(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

// ---------------------------------------------------------------- E01
fn e01() -> ExpResult {
    let ex = RunningExample::new();
    let mut out = Vec::new();
    ensure(ex.instance.len() == 13, "Figure 1 has 13 facts")?;
    ensure(!ex.schema.is_consistent(&ex.instance), "I violates Δ")?;
    let f = RunningExample::fact_ids();
    let cg = ConflictGraph::new(&ex.schema, &ex.instance);
    ensure(cg.conflicting(f.g1f1, f.f1d3), "{g1f1,f1d3} is a δ1-conflict")?;
    ensure(cg.conflicting(f.d1a, f.d1e), "{d1a,d1e} is a δ2-conflict")?;
    ensure(cg.conflicting(f.d1a, f.g2a), "{d1a,g2a} is a δ3-conflict")?;
    let book = ex.schema.signature().rel_id("BookLoc").unwrap();
    ensure(
        ex.schema.closure(book, AttrSet::singleton(1)) == AttrSet::from_attrs([1, 2]),
        "⟦BookLoc.{1}^Δ⟧ = {1,2}",
    )?;
    ensure(
        ex.schema.closure(book, AttrSet::from_attrs([1, 3])) == AttrSet::from_attrs([1, 2, 3]),
        "⟦BookLoc.{1,3}^Δ⟧ = {1,2,3}",
    )?;
    out.push("paper: Figure 1 is inconsistent, with the Example 2.2 δ-conflicts".into());
    out.push(format!(
        "measured: 13 facts, {} conflicting pairs, all three listed conflicts present, closures match",
        cg.edges().len()
    ));
    Ok(out)
}

// ---------------------------------------------------------------- E02
fn e02() -> ExpResult {
    let ex = RunningExample::new();
    let pi = ex.prioritized(); // validates acyclicity + conflict restriction
    Ok(vec![
        "paper: the Example 2.3 priority is acyclic and only orders conflicting facts".into(),
        format!(
            "measured: {} priority edges validate in conflict-restricted mode",
            pi.priority().edge_count()
        ),
    ])
}

// ---------------------------------------------------------------- E03
fn e03() -> ExpResult {
    let ex = RunningExample::new();
    let cg = ConflictGraph::new(&ex.schema, &ex.instance);
    let (j1, j2, j3, j4) = (ex.j1(), ex.j2(), ex.j3(), ex.j4());
    for (n, j) in [("J1", &j1), ("J2", &j2), ("J3", &j3), ("J4", &j4)] {
        ensure(cg.is_repair(j), &format!("{n} is a repair"))?;
    }
    ensure(is_pareto_improvement(&ex.priority, &j1, &j2), "J2 Pareto-improves J1")?;
    ensure(is_global_improvement(&ex.priority, &j3, &j4), "J4 globally improves J3")?;
    ensure(!is_pareto_improvement(&ex.priority, &j3, &j4), "J4 does not Pareto-improve J3")?;
    ensure(
        is_globally_optimal_brute(&cg, &ex.priority, &j2, 1 << 22).map_err(|e| e.to_string())?,
        "J2 is globally optimal",
    )?;
    ensure(
        !is_globally_optimal_brute(&cg, &ex.priority, &j3, 1 << 22).map_err(|e| e.to_string())?,
        "J3 is not globally optimal",
    )?;
    let variant = ex.priority_without_g2a_edges();
    ensure(is_pareto_optimal(&cg, &variant, &j3), "J3 Pareto-optimal under the variant priority")?;
    Ok(vec![
        "paper: J2 Pareto+globally improves J1; J2 globally optimal; J4 global-not-Pareto improvement of J3; J3 Pareto-optimal but not globally optimal".into(),
        "measured: all claims hold; the lone 'J3 Pareto-optimal' claim requires the variant priority without the g2a edges (the printed J3 equals J1 — see EXPERIMENTS.md note)".into(),
    ])
}

// ---------------------------------------------------------------- E04
fn e04() -> ExpResult {
    let ex = RunningExample::new();
    let c1 = classify_schema(&ex.schema);
    ensure(c1.complexity() == Complexity::PolynomialTime, "running example is PTIME")?;
    let c2 = classify_schema(&example_3_3_schema());
    ensure(c2.complexity() == Complexity::PolynomialTime, "Example 3.3 is PTIME")?;
    let t = example_3_3_schema();
    let t_rel = t.signature().rel_id("T").unwrap();
    let keys = equivalent_two_incomparable_keys(t.fds_for(t_rel), 4)
        .ok_or("T must classify as two keys")?;
    Ok(vec![
        "paper: running example tractable (single FD + two keys); Example 3.3 tractable, with ∆|T ≡ a pair of keys".into(),
        format!(
            "measured: both PTIME; ∆|T ≡ keys {} and {} (the paper's {{1}} and {{2,3}})",
            keys.0, keys.1
        ),
    ])
}

// ---------------------------------------------------------------- E05
fn e05() -> ExpResult {
    let mut out = vec![
        "paper: S1..S6 all violate the Theorem 3.1 condition and are coNP-complete; they anchor Cases 1..6 of §5.2".into(),
    ];
    for i in 1..=6 {
        let schema = hard_schema(i);
        let class = classify_schema(&schema);
        ensure(class.complexity() == Complexity::ConpComplete, &format!("S{i} must be hard"))?;
        let (_, hc) = class.hard_relations().next().ok_or("hard relation expected")?;
        ensure(
            hc.number() as usize == i,
            &format!("S{i} lands in case {} instead of {i}", hc.number()),
        )?;
        out.push(format!("measured: S{i} → coNP-complete, {hc}"));
    }
    Ok(out)
}

// ---------------------------------------------------------------- E06
fn e06() -> ExpResult {
    let mut checked = 0usize;
    let mut optimal = 0usize;
    for seed in 0..30u64 {
        let w = single_fd_workload(10, 3, 0.6, seed);
        let cg = w.conflict_graph();
        let checker = GRepairChecker::new(w.schema.clone());
        let pi = PrioritizedInstance::conflict_restricted(
            &w.schema,
            w.instance.clone(),
            w.priority.clone(),
        )
        .map_err(|e| e.to_string())?;
        for j in enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())? {
            let fast = checker.check(&pi, &j).map_err(|e| e.to_string())?.is_optimal();
            let slow = is_globally_optimal_brute(&cg, &w.priority, &j, 1 << 22)
                .map_err(|e| e.to_string())?;
            ensure(fast == slow, &format!("seed {seed}: disagreement"))?;
            checked += 1;
            optimal += usize::from(fast);
        }
    }
    // Timing at scale (polynomial path only).
    let w = single_fd_workload(4000, 8, 0.6, 777);
    let checker = GRepairChecker::new(w.schema.clone());
    let pi =
        PrioritizedInstance::conflict_restricted(&w.schema, w.instance.clone(), w.priority.clone())
            .map_err(|e| e.to_string())?;
    let t = Instant::now();
    let _ = checker.check(&pi, &w.j).map_err(|e| e.to_string())?;
    let dt = t.elapsed();
    Ok(vec![
        "paper: GRepCheck1FD decides globally-optimal repair checking in polynomial time for a single FD".into(),
        format!("measured: {checked} repair checks across 30 seeds agree with the brute-force oracle ({optimal} optimal)"),
        format!("measured: one check on a 4000-fact instance takes {dt:.2?} (see bench single_fd for the sweep)"),
    ])
}

// ---------------------------------------------------------------- E07
fn e07() -> ExpResult {
    // Reproduce Figure 3 exactly, via the public 2-keys checker pieces:
    // J = {d1a, f2b, f3c}; G12 has no reverse edges; G21 has reverse
    // edges from lib2 (via g2a) and lib1 (via e1b), closing a cycle.
    let ex = RunningExample::new();
    let f = RunningExample::fact_ids();
    let lib = ex.schema.signature().rel_id("LibLoc").unwrap();
    let domain = ex.instance.rel_set(lib);
    let j = ex.instance.set_of([f.d1a, f.f2b, f.f3c]);
    let cg = ConflictGraph::new(&ex.schema, &ex.instance);
    let outcome = rpr_core::check_global_2keys(
        &ex.instance,
        &cg,
        &ex.priority,
        AttrSet::singleton(1),
        AttrSet::singleton(2),
        &domain,
        &j,
    );
    let imp = match outcome {
        rpr_core::CheckOutcome::Improvable(imp) => imp,
        other => return Err(format!("Figure 3's J must be improvable, got {other:?}")),
    };
    ensure(
        imp.is_valid_global_improvement(&cg, &ex.priority, &j),
        "extracted witness re-validates",
    )?;
    let removed = ex.instance.render_set(&imp.removed);
    let added = ex.instance.render_set(&imp.added);
    Ok(vec![
        "paper: Figure 3 shows G12 with no reverse edges and G21 with edges lib2→almaden (g2a ≻ f2b) and lib1→bascom (e1b ≻ d1a)".into(),
        format!("measured: the G21 cycle yields the improvement remove {removed} / add {added}"),
    ])
}

// ---------------------------------------------------------------- E08
fn e08() -> ExpResult {
    let mut checked = 0usize;
    for seed in 0..30u64 {
        let w = two_keys_workload(9, 4, 0.7, seed);
        let cg = w.conflict_graph();
        let checker = GRepairChecker::new(w.schema.clone());
        let pi = PrioritizedInstance::conflict_restricted(
            &w.schema,
            w.instance.clone(),
            w.priority.clone(),
        )
        .map_err(|e| e.to_string())?;
        for j in enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())? {
            let fast = checker.check(&pi, &j).map_err(|e| e.to_string())?.is_optimal();
            let slow = is_globally_optimal_brute(&cg, &w.priority, &j, 1 << 22)
                .map_err(|e| e.to_string())?;
            ensure(fast == slow, &format!("seed {seed}: disagreement"))?;
            checked += 1;
        }
    }
    let w = two_keys_workload(4000, 900, 0.7, 778);
    let checker = GRepairChecker::new(w.schema.clone());
    let pi =
        PrioritizedInstance::conflict_restricted(&w.schema, w.instance.clone(), w.priority.clone())
            .map_err(|e| e.to_string())?;
    let t = Instant::now();
    let _ = checker.check(&pi, &w.j).map_err(|e| e.to_string())?;
    let dt = t.elapsed();
    Ok(vec![
        "paper: GRepCheck2Keys (Pareto pre-check + acyclicity of G12/G21) is polynomial for two keys".into(),
        format!("measured: {checked} repair checks across 30 seeds agree with the oracle"),
        format!("measured: one check on a ~4000-fact instance takes {dt:.2?} (see bench two_keys)"),
    ])
}

// ---------------------------------------------------------------- E09
fn e09() -> ExpResult {
    let mut out =
        vec!["paper: the Lemma 5.2 gadget makes J globally-optimal iff G has no Hamiltonian cycle"
            .into()];
    // Exhaustively checkable sizes.
    let mut k2 = UGraph::new(2);
    k2.add_edge(0, 1);
    for (name, graph) in [("2 isolated vertices", UGraph::new(2)), ("K2 (Figure 5)", k2)] {
        let gadget = hamiltonian_gadget(&graph);
        let cg = ConflictGraph::new(&gadget.schema, gadget.prioritized.instance());
        let outcome = check_global_exact(
            &cg,
            gadget.prioritized.priority(),
            &gadget.prioritized.instance().full_set(),
            &gadget.j,
            1 << 26,
        )
        .map_err(|e| e.to_string())?;
        let hamiltonian = !outcome.is_optimal();
        ensure(
            hamiltonian == graph.is_hamiltonian(),
            &format!("{name}: gadget disagrees with the HC solver"),
        )?;
        out.push(format!(
            "measured: {name} → J optimal = {}, matching Hamiltonicity = {}",
            outcome.is_optimal(),
            graph.is_hamiltonian()
        ));
    }
    // Constructive direction at larger sizes.
    for (name, graph) in
        [("C5", UGraph::cycle(5)), ("K4", UGraph::complete(4)), ("C8", UGraph::cycle(8))]
    {
        let pi = graph.hamiltonian_cycle().ok_or("test graph should be Hamiltonian")?;
        let gadget = hamiltonian_gadget(&graph);
        let cg = ConflictGraph::new(&gadget.schema, gadget.prioritized.instance());
        let (removed, added) = improvement_from_cycle(&gadget, &pi);
        let imp = Improvement { removed, added };
        ensure(
            imp.is_valid_global_improvement(&cg, gadget.prioritized.priority(), &gadget.j),
            &format!("{name}: proof construction invalid"),
        )?;
        out.push(format!(
            "measured: {name} ({} facts) — the proof's improvement from π validates",
            gadget.prioritized.instance().len()
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------- E10
fn e10() -> ExpResult {
    let mut rng = StdRng::seed_from_u64(510);
    let mut configs = 0;
    while configs < 25 {
        let arity = rng.random_range(3..=6usize);
        let keys: Vec<AttrSet> = (0..rng.random_range(3..=4usize))
            .map(|_| {
                let size = rng.random_range(1..=arity.min(3));
                let mut s = AttrSet::EMPTY;
                while s.len() < size {
                    s = s.insert(rng.random_range(1..=arity));
                }
                s
            })
            .collect();
        let Ok(pi) = CaseOneMapping::new("R", arity, &keys) else { continue };
        configs += 1;
        let mut facts = Vec::new();
        for a in 0..2i64 {
            for b in 0..2i64 {
                for c in 0..2i64 {
                    facts.push(
                        rpr_data::Fact::parse_new(
                            pi.source_schema().signature(),
                            "R1",
                            [Value::Int(a), Value::Int(b), Value::Int(c)],
                        )
                        .unwrap(),
                    );
                }
            }
        }
        ensure(check_injective(&pi, &facts), "Lemma 5.3: Π injective")?;
        ensure(check_preserves_consistency(&pi, &facts), "Lemma 5.4: Π preserves (in)consistency")?;
    }
    // End-to-end: Figure-5 gadget through Π.
    let mut graph = UGraph::new(2);
    graph.add_edge(0, 1);
    let gadget = hamiltonian_gadget(&graph);
    let keys =
        [AttrSet::from_attrs([1, 2]), AttrSet::from_attrs([2, 3]), AttrSet::from_attrs([3, 4])];
    let pi_map = CaseOneMapping::new("R", 5, &keys).map_err(|e| e.to_string())?;
    let (mapped, j2) = map_input(&pi_map, &gadget.prioritized, &gadget.j);
    let dst_cg = ConflictGraph::new(pi_map.target_schema(), mapped.instance());
    let outcome =
        check_global_exact(&dst_cg, mapped.priority(), &mapped.instance().full_set(), &j2, 1 << 26)
            .map_err(|e| e.to_string())?;
    ensure(!outcome.is_optimal(), "mapped Figure-5 input stays improvable")?;
    Ok(vec![
        "paper: the Case-1 Π is injective and preserves (in)consistency, transporting hardness to every ≥3-keys schema".into(),
        format!("measured: both key properties hold on {configs} random incomparable key configurations (8 facts each, all pairs)"),
        "measured: the Figure-5 gadget mapped into keys {1,2},{2,3},{3,4} over arity 5 keeps its answer".into(),
    ])
}

// ---------------------------------------------------------------- E11
fn e11() -> ExpResult {
    let mut rng = StdRng::seed_from_u64(611);
    let mut agree = 0usize;
    for trial in 0..300 {
        let arity = 2 + (trial % 3);
        let schema = random_schema(&mut rng, arity, 1 + trial % 4, 2);
        let rel = RelId(0);
        let fds = schema.fds_for(rel);
        // Semantic oracles over ALL attribute subsets.
        let oracle_single = AttrSet::full(arity)
            .subsets()
            .any(|lhs| equivalent(fds, &[Fd::new(rel, lhs, closure(lhs, fds))]));
        let subsets: Vec<AttrSet> = AttrSet::full(arity).subsets().collect();
        let oracle_two = subsets.iter().enumerate().any(|(i, &a1)| {
            subsets
                .iter()
                .skip(i)
                .any(|&a2| equivalent(fds, &[Fd::key(rel, a1, arity), Fd::key(rel, a2, arity)]))
        });
        let tractable = classify_relation(fds, rel, arity).is_tractable();
        ensure(
            tractable == (oracle_single || oracle_two),
            &format!("trial {trial}: classifier disagrees with oracle on {fds:?}"),
        )?;
        agree += 1;
    }
    // Timing on a wide relation.
    let mut rng2 = StdRng::seed_from_u64(612);
    let big = random_schema(&mut rng2, 40, 30, 5);
    let t = Instant::now();
    let _ = classify_schema(&big);
    let dt = t.elapsed();
    Ok(vec![
        "paper: deciding the Theorem 3.1 side is polynomial (Theorem 6.1, via Lemma 6.2 + Maier-Mendelzon-Sagiv implication)".into(),
        format!("measured: {agree}/300 random schemas classified identically to the exhaustive semantic oracle"),
        format!("measured: a 40-attribute, 30-FD schema classifies in {dt:.2?}"),
    ])
}

// ---------------------------------------------------------------- E12
fn e12() -> ExpResult {
    // Example 7.2 / Figure 6.
    let sig = Signature::new([("R", 2)]).unwrap();
    let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
    let mut i = Instance::new(sig);
    for (a, b) in [("0", "1"), ("0", "2"), ("0", "c"), ("1", "a"), ("1", "b"), ("1", "3")] {
        i.insert_named("R", [Value::sym(a), Value::sym(b)]).unwrap();
    }
    let cg = ConflictGraph::new(&schema, &i);
    let p = PriorityRelation::new(
        i.len(),
        [
            (FactId(2), FactId(4)), // R(0,c) ≻ R(1,b)
            (FactId(5), FactId(1)), // R(1,3) ≻ R(0,2)
            (FactId(5), FactId(0)),
            (FactId(1), FactId(0)),
        ],
    )
    .unwrap();
    let j = i.set_of([FactId(1), FactId(4)]); // {R(0,2), R(1,b)}
    let outcome = check_global_ccp_pk(&cg, &p, &j);
    let imp = match outcome {
        rpr_core::CheckOutcome::Improvable(imp) => imp,
        other => return Err(format!("Figure 6's J must be improvable, got {other:?}")),
    };
    ensure(
        imp.added.contains(FactId(2)) && imp.added.contains(FactId(5)),
        "cycle adds R(0,c) and R(1,3)",
    )?;
    Ok(vec![
        "paper: in Figure 6's graph the cross-conflict priorities close a cycle through R(0,2) and R(1,b)".into(),
        format!(
            "measured: Lemma 7.3 cycle found — remove {} / add {}",
            i.render_set(&imp.removed),
            i.render_set(&imp.added)
        ),
    ])
}

// ---------------------------------------------------------------- E13
fn e13() -> ExpResult {
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let w = ccp_pk_workload(12, 4, 10, seed);
        let cg = w.conflict_graph();
        for j in enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())? {
            let fast = check_global_ccp_pk(&cg, &w.priority, &j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &w.priority, &j, 1 << 22)
                .map_err(|e| e.to_string())?;
            ensure(fast == slow, &format!("seed {seed}: disagreement"))?;
            checked += 1;
        }
    }
    let w = ccp_pk_workload(4000, 600, 4000, 779);
    let checker = CcpChecker::new(w.schema.clone());
    let pi = PrioritizedInstance::cross_conflict(w.instance.clone(), w.priority.clone());
    let t = Instant::now();
    let _ = checker.check(&pi, &w.j).map_err(|e| e.to_string())?;
    let dt = t.elapsed();
    Ok(vec![
        "paper: for primary-key assignments, ccp globally-optimal checking reduces to cycle detection in G_{J,I\\J} (PTIME)".into(),
        format!("measured: {checked} checks across 25 seeds agree with the oracle"),
        format!("measured: one check on a ~4000-fact ccp instance takes {dt:.2?} (see bench ccp)"),
    ])
}

// ---------------------------------------------------------------- E14
fn e14() -> ExpResult {
    let consts = vec![AttrSet::singleton(2), AttrSet::singleton(1)];
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let w = ccp_const_workload(10, 3, 8, seed);
        let cg = w.conflict_graph();
        // Repairs = product of consistent partitions.
        let fast_repairs = enumerate_const_attr_repairs(&w.instance, &consts);
        let mut slow_repairs = enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())?;
        let mut fr = fast_repairs.clone();
        fr.sort();
        slow_repairs.sort();
        ensure(fr == slow_repairs, &format!("seed {seed}: repair sets differ"))?;
        for j in &slow_repairs {
            let fast =
                check_global_ccp_const(&w.instance, &cg, &w.priority, &consts, j).is_optimal();
            let slow = is_globally_optimal_brute(&cg, &w.priority, j, 1 << 22)
                .map_err(|e| e.to_string())?;
            ensure(fast == slow, &format!("seed {seed}: disagreement"))?;
            checked += 1;
        }
    }
    Ok(vec![
        "paper: for constant-attribute assignments the repairs are exactly one consistent partition per relation — polynomially many — so checking is PTIME".into(),
        format!("measured: partition products equal the enumerated repairs on 25 seeds; {checked} optimality checks agree with the oracle"),
    ])
}

// ---------------------------------------------------------------- E15
fn e15() -> ExpResult {
    let mut out =
        vec!["paper: §7.1's worked schemas split exactly as Theorem 7.1 prescribes".into()];
    let ex33 = example_3_3_schema();
    ensure(
        classify_schema_ccp(&ex33).complexity() == Complexity::ConpComplete,
        "Example 3.3 becomes hard over ccp-instances",
    )?;
    out.push("measured: Example 3.3 (classically PTIME) → coNP-complete over ccp".into());
    for x in ['a', 'b', 'c', 'd'] {
        let s = ccp_hard_schema(x);
        ensure(
            classify_schema_ccp(&s).complexity() == Complexity::ConpComplete,
            &format!("S{x} must be ccp-hard"),
        )?;
    }
    out.push("measured: the §7.3 anchor schemas Sa..Sd all classify coNP-complete".into());
    // The two §7.1 replacement examples.
    let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
    let mixed =
        Schema::from_named(sig, [("R", &[1][..], &[2, 3][..]), ("S", &[][..], &[1][..])]).unwrap();
    ensure(
        classify_schema_ccp(&mixed).complexity() == Complexity::ConpComplete,
        "{R:1→{2,3}, S:∅→1} stays hard (mixed assignment)",
    )?;
    let sig = Signature::new([("R", 3), ("S", 3), ("T", 4)]).unwrap();
    let pk = Schema::from_named(sig, [("R", &[1][..], &[2, 3][..]), ("S", &[1, 2][..], &[3][..])])
        .unwrap();
    let class = classify_schema_ccp(&pk);
    ensure(
        matches!(class, CcpClass::PrimaryKeyAssignment(_)),
        "{R:1→{2,3}, S:{1,2}→3} is a primary-key assignment",
    )?;
    out.push(
        "measured: the mixed-assignment variant stays hard; the all-keys variant is PTIME".into(),
    );
    // Classifier consistency with per-relation tests on random schemas.
    let mut rng = StdRng::seed_from_u64(715);
    for trial in 0..200 {
        let arity = 2 + trial % 3;
        let schema = random_schema(&mut rng, arity, 1 + trial % 3, 2);
        let rel = RelId(0);
        let fds = schema.fds_for(rel);
        let expected_pk = equivalent_single_key(fds, rel, arity).is_some();
        let expected_ca = equivalent_constant_attribute(fds, rel).is_some();
        let class = classify_schema_ccp(&schema);
        let got_ptime = class.complexity() == Complexity::PolynomialTime;
        ensure(
            got_ptime == (expected_pk || expected_ca),
            &format!("trial {trial}: ccp classifier inconsistent"),
        )?;
    }
    out.push(
        "measured: 200 random schemas classify consistently with the per-relation tests".into(),
    );
    Ok(out)
}

// ---------------------------------------------------------------- E16
fn e16() -> ExpResult {
    // A mixed multi-relation schema: single FD + two keys, checked as a
    // whole against the oracle (Proposition 3.5 decomposition inside).
    let sig = Signature::new([("A", 3), ("B", 2)]).unwrap();
    let schema = Schema::from_named(
        sig,
        [("A", &[1][..], &[2][..]), ("B", &[1][..], &[2][..]), ("B", &[2][..], &[1][..])],
    )
    .unwrap();
    let checker = GRepairChecker::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(316);
    let mut checked = 0usize;
    for seed in 0..25u64 {
        let _ = seed;
        let mut instance = Instance::new(schema.signature().clone());
        for _ in 0..7 {
            let g = rng.random_range(0..3);
            let b = rng.random_range(0..3);
            let c = rng.random_range(0..50);
            instance.insert_named("A", [Value::Int(g), Value::Int(b), Value::Int(c)]).unwrap();
        }
        for _ in 0..6 {
            let x = rng.random_range(0..3);
            let y = rng.random_range(0..3);
            instance.insert_named("B", [Value::Int(x), Value::Int(y)]).unwrap();
        }
        let cg = ConflictGraph::new(&schema, &instance);
        let priority = rpr_gen::random_conflict_priority(&cg, 0.6, &mut rng);
        let pi =
            PrioritizedInstance::conflict_restricted(&schema, instance.clone(), priority.clone())
                .map_err(|e| e.to_string())?;
        for j in enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())? {
            let fast = checker.check(&pi, &j).map_err(|e| e.to_string())?.is_optimal();
            let slow = is_globally_optimal_brute(&cg, &priority, &j, 1 << 22)
                .map_err(|e| e.to_string())?;
            ensure(fast == slow, "dispatcher disagrees with oracle")?;
            checked += 1;
        }
    }
    Ok(vec![
        "paper: Theorem 3.1 — tractable schemas decompose per relation (Prop 3.5) and check in PTIME".into(),
        format!("measured: {checked} whole-schema checks on mixed (1FD + 2-keys) instances agree with the oracle"),
    ])
}

// ---------------------------------------------------------------- E17
fn e17() -> ExpResult {
    let mut out = vec![
        "paper: the dichotomy — polynomial on one side, coNP-complete (exponential search) on the other".into(),
        format!("{:>6} {:>14} {:>14} {:>16}", "n", "1FD check", "2keys check", "S4 exact search"),
    ];
    for &n in &[10usize, 16, 22, 28, 34, 40] {
        let w1 = single_fd_workload(n, 3, 0.6, 17);
        let c1 = GRepairChecker::new(w1.schema.clone());
        let p1 = PrioritizedInstance::conflict_restricted(
            &w1.schema,
            w1.instance.clone(),
            w1.priority.clone(),
        )
        .map_err(|e| e.to_string())?;
        let t = Instant::now();
        for _ in 0..10 {
            let _ = c1.check(&p1, &w1.j).map_err(|e| e.to_string())?;
        }
        let d1 = t.elapsed() / 10;

        let w2 = two_keys_workload(n, (n as u32) / 2, 0.6, 17);
        let c2 = GRepairChecker::new(w2.schema.clone());
        let p2 = PrioritizedInstance::conflict_restricted(
            &w2.schema,
            w2.instance.clone(),
            w2.priority.clone(),
        )
        .map_err(|e| e.to_string())?;
        let t = Instant::now();
        for _ in 0..10 {
            let _ = c2.check(&p2, &w2.j).map_err(|e| e.to_string())?;
        }
        let d2 = t.elapsed() / 10;

        // Hard side with an EMPTY priority: every repair is optimal,
        // so the exact search cannot exit early and must enumerate the
        // entire repair space — the true coNP-side worst case.
        let wh = hard_s4_workload(n, 3, 0.6, 17);
        let cgh = wh.conflict_graph();
        let empty = PriorityRelation::empty(wh.instance.len());
        let t = Instant::now();
        let exact = check_global_exact(&cgh, &empty, &wh.instance.full_set(), &wh.j, 1 << 27);
        let d3 = t.elapsed();
        let d3s = match exact {
            Ok(_) => format!("{d3:.2?}"),
            Err(_) => format!(">{d3:.2?} (budget)"),
        };
        out.push(format!(
            "{:>6} {:>14} {:>14} {:>16}",
            n,
            format!("{d1:.2?}"),
            format!("{d2:.2?}"),
            d3s
        ));
    }
    out.push("measured: the polynomial columns stay flat while the exact-search column explodes — the dichotomy in wall-clock form (full sweep: bench dichotomy_gap)".into());
    Ok(out)
}

// ---------------------------------------------------------------- E18
fn e18() -> ExpResult {
    // Pareto + completion checkers vs oracles.
    let mut pareto_checked = 0usize;
    let mut completion_checked = 0usize;
    for seed in 0..20u64 {
        let w = single_fd_workload(8, 3, 0.5, 1000 + seed);
        let cg = w.conflict_graph();
        if cg.edges().len() > 14 {
            continue;
        }
        for j in enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())? {
            ensure(
                is_pareto_optimal(&cg, &w.priority, &j)
                    == is_pareto_optimal_brute(&cg, &w.priority, &j, 1 << 22)
                        .map_err(|e| e.to_string())?,
                "Pareto disagreement",
            )?;
            pareto_checked += 1;
            ensure(
                is_completion_optimal(&cg, &w.priority, &j)
                    == is_completion_optimal_brute(&cg, &w.priority, &j, 1 << 20)
                        .map_err(|e| e.to_string())?,
                "completion disagreement",
            )?;
            completion_checked += 1;
        }
    }
    // The Proposition 10(iii) refutation.
    let sig = Signature::new([("R", 3)]).unwrap();
    let schema = Schema::from_named(sig.clone(), [("R", &[1][..], &[2][..])]).unwrap();
    let v = Value::sym;
    let mut instance = Instance::new(sig);
    let j1 = instance.insert_named("R", [v("g"), v("J"), v("1")]).unwrap();
    let j2 = instance.insert_named("R", [v("g"), v("J"), v("2")]).unwrap();
    let x1 = instance.insert_named("R", [v("g"), v("X1"), v("1")]).unwrap();
    let x2 = instance.insert_named("R", [v("g"), v("X2"), v("1")]).unwrap();
    let priority = PriorityRelation::new(instance.len(), [(x1, j1), (x2, j2)]).unwrap();
    let cg = ConflictGraph::new(&schema, &instance);
    let j = instance.set_of([j1, j2]);
    ensure(
        is_globally_optimal_brute(&cg, &priority, &j, 1 << 20).map_err(|e| e.to_string())?,
        "counterexample J is globally optimal",
    )?;
    ensure(!is_completion_optimal(&cg, &priority, &j), "…but not completion optimal")?;
    ensure(
        !is_completion_optimal_brute(&cg, &priority, &j, 1 << 20).map_err(|e| e.to_string())?,
        "…confirmed by completion enumeration",
    )?;
    Ok(vec![
        "paper: Pareto and completion checking are PTIME; §4.1 reports that Prop 10(iii) of [14] (global = completion for a single FD) is incorrect".into(),
        format!("measured: Pareto checker agrees with its oracle on {pareto_checked} repairs; completion checker on {completion_checked}"),
        "measured: concrete single-FD counterexample — J = {R(g,J,1), R(g,J,2)} with x1 ≻ j1, x2 ≻ j2 is globally optimal but not completion optimal".into(),
    ])
}

// ---------------------------------------------------------------- E19
fn e19() -> ExpResult {
    let ex = RunningExample::new();
    let q = ConjunctiveQuery {
        head: vec![3],
        atoms: vec![
            atom(&ex.instance, "BookLoc", &["b1", "?1", "?2"]),
            atom(&ex.instance, "LibLoc", &["?2", "?3"]),
        ],
    };
    q.validate(&ex.instance).map_err(|e| e.to_string())?;
    let all = answers(&ex.schema, &ex.instance, &ex.priority, &q, RepairSemantics::All, 1 << 22)
        .map_err(|e| e.to_string())?;
    let global =
        answers(&ex.schema, &ex.instance, &ex.priority, &q, RepairSemantics::Global, 1 << 22)
            .map_err(|e| e.to_string())?;
    ensure(all.certain.is_empty(), "no certain answers over all repairs")?;
    ensure(global.certain.len() == 1, "exactly one certain answer over g-repairs")?;
    let cg = ConflictGraph::new(&ex.schema, &ex.instance);
    let space = RepairSpace::compute(&cg, &ex.priority, 1 << 22).map_err(|e| e.to_string())?;
    Ok(vec![
        "paper (concluding remarks): preferred CQA and g-repair counting/uniqueness are the next classification targets".into(),
        format!(
            "measured: q(loc) ← BookLoc(b1,g,l), LibLoc(l,loc) has 0 certain answers over {} repairs but 1 over the {} globally-optimal repairs",
            all.repair_count, global.repair_count
        ),
        format!(
            "measured: the running example has {} globally-optimal repairs (cleaning is {})",
            space.count(),
            if space.unique().is_some() { "unambiguous" } else { "ambiguous" }
        ),
    ])
}

// ---------------------------------------------------------------- E20
fn e20() -> ExpResult {
    use rpr_core::{construct_globally_optimal_repair, is_completion_optimal, is_pareto_optimal};
    let mut verified = 0usize;
    for seed in 0..30u64 {
        let w = single_fd_workload(9, 3, 0.6, 2000 + seed);
        let cg = w.conflict_graph();
        let j = construct_globally_optimal_repair(&cg, &w.priority);
        ensure(cg.is_repair(&j), "constructed set is a repair")?;
        ensure(
            is_globally_optimal_brute(&cg, &w.priority, &j, 1 << 22).map_err(|e| e.to_string())?,
            "constructed repair is globally optimal",
        )?;
        ensure(is_pareto_optimal(&cg, &w.priority, &j), "…and Pareto optimal")?;
        ensure(is_completion_optimal(&cg, &w.priority, &j), "…and completion optimal")?;
        verified += 1;
    }
    // Scale: the construction is greedy over a topological order.
    let w = single_fd_workload(20_000, 8, 0.6, 2999);
    let cg = w.conflict_graph();
    let t = Instant::now();
    let j = construct_globally_optimal_repair(&cg, &w.priority);
    let dt = t.elapsed();
    ensure(cg.is_repair(&j), "large construction is a repair")?;
    Ok(vec![
        "paper: checking can be coNP-complete, but FINDING a globally-optimal repair is always polynomial (greedy over a completion; C ⊆ G)".into(),
        format!("measured: {verified}/30 random constructions verified optimal under all three semantics"),
        format!("measured: constructing for a 20k-fact instance takes {dt:.2?}"),
    ])
}

// ---------------------------------------------------------------- E21
fn e21() -> ExpResult {
    // How many repairs survive each semantics, on random single-FD
    // instances with half-ordered priorities.
    let mut totals = [0usize; 4]; // all, pareto, global, completion
    let mut instances = 0usize;
    for seed in 0..40u64 {
        let w = single_fd_workload(9, 3, 0.5, 3000 + seed);
        let cg = w.conflict_graph();
        let all = enumerate_repairs(&cg, 1 << 22).map_err(|e| e.to_string())?;
        let pareto = all.iter().filter(|j| is_pareto_optimal(&cg, &w.priority, j)).count();
        let global = all
            .iter()
            .filter(|j| is_globally_optimal_brute(&cg, &w.priority, j, 1 << 22).unwrap_or(false))
            .count();
        let completion =
            all.iter().filter(|j| rpr_core::is_completion_optimal(&cg, &w.priority, j)).count();
        totals[0] += all.len();
        totals[1] += pareto;
        totals[2] += global;
        totals[3] += completion;
        instances += 1;
        ensure(completion <= global && global <= pareto, "inclusion chain")?;
        ensure(completion >= 1, "a C-repair always exists")?;
    }
    Ok(vec![
        "paper (§1): preferences exist to cut the number of repairs down; the semantics form a chain C ⊆ G ⊆ P ⊆ all".into(),
        format!(
            "measured over {instances} random instances: {} repairs → {} Pareto-optimal → {} globally-optimal → {} completion-optimal",
            totals[0], totals[1], totals[2], totals[3]
        ),
    ])
}

// ---------------------------------------------------------------- E22
fn e22() -> ExpResult {
    use rpr_core::construct_globally_optimal_repair;
    use rpr_gen::{simulate_feed, trust_then_recency_priority, FeedSpec, SourceSpec};
    let spec = FeedSpec {
        entities: 200,
        sources: vec![
            SourceSpec { name: "gold".into(), coverage: 0.9, error_rate: 0.02 },
            SourceSpec { name: "bulk".into(), coverage: 0.8, error_rate: 0.30 },
            SourceSpec { name: "scrape".into(), coverage: 0.7, error_rate: 0.60 },
        ],
    };
    let mut policy_acc = 0.0;
    let mut random_acc = 0.0;
    let trials = 10;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let feed = simulate_feed(&spec, &mut rng);
        let cg = ConflictGraph::new(&feed.schema, &feed.instance);
        let priority = trust_then_recency_priority(&feed, &["gold", "bulk", "scrape"]);
        let cleaned = construct_globally_optimal_repair(&cg, &priority);
        policy_acc += feed.accuracy(&cleaned);
        for _ in 0..5 {
            let r = rpr_gen::random_repair(&cg, &mut rng);
            random_acc += feed.accuracy(&r) / 5.0;
        }
    }
    policy_acc /= trials as f64;
    random_acc /= trials as f64;
    ensure(policy_acc > random_acc + 0.05, "policy cleaning must beat random repairs")?;
    ensure(policy_acc > 0.8, "gold-first cleaning should be mostly correct")?;
    Ok(vec![
        "paper (§1): reliability/recency preferences exist to steer repairs toward the right data".into(),
        format!(
            "measured over {trials} simulated 3-source feeds (200 entities): trust-then-recency cleaning recovers {:.1}% of the ground truth vs {:.1}% for an average unprioritized repair",
            policy_acc * 100.0,
            random_acc * 100.0
        ),
    ])
}

// ---------------------------------------------------------------- E23
fn e23() -> ExpResult {
    use rpr_core::construct_globally_optimal_repair;
    use rpr_fd::{discover_fds_for, DiscoveryOptions};
    use rpr_gen::{simulate_feed, trust_then_recency_priority, FeedSpec, SourceSpec};
    let spec = FeedSpec {
        entities: 120,
        sources: vec![
            SourceSpec { name: "gold".into(), coverage: 0.95, error_rate: 0.05 },
            SourceSpec { name: "scrape".into(), coverage: 0.8, error_rate: 0.5 },
        ],
    };
    let mut rng = StdRng::seed_from_u64(5000);
    let feed = simulate_feed(&spec, &mut rng);
    // The dirty feed does NOT satisfy the entity key…
    let rel = feed.instance.signature().rel_id("Record").unwrap();
    let dirty = discover_fds_for(&feed.instance, rel, DiscoveryOptions { max_lhs: 1 });
    let key_lhs = AttrSet::singleton(1);
    let entity_determines_value =
        dirty.iter().any(|fd| fd.lhs == key_lhs && fd.rhs == AttrSet::singleton(2));
    ensure(!entity_determines_value, "dirty data must violate entity→value")?;
    // …but the policy-cleaned repair does, and the mined schema is then
    // tractable (indeed a primary-key assignment for ccp too).
    let cg = ConflictGraph::new(&feed.schema, &feed.instance);
    let priority = trust_then_recency_priority(&feed, &["gold", "scrape"]);
    let cleaned = construct_globally_optimal_repair(&cg, &priority);
    let clean_inst = feed.instance.materialize(&cleaned);
    let mined = discover_fds_for(&clean_inst, rel, DiscoveryOptions { max_lhs: 1 });
    let recovered = mined.iter().any(|fd| fd.lhs == key_lhs || fd.lhs.is_empty());
    ensure(recovered, "cleaned data must satisfy the entity key (or stronger)")?;
    let schema =
        rpr_fd::Schema::new(clean_inst.signature().clone(), mined).map_err(|e| e.to_string())?;
    let class = classify_schema(&schema);
    ensure(
        class.complexity() == Complexity::PolynomialTime
            || class.complexity() == Complexity::ConpComplete,
        "classification runs",
    )?;
    Ok(vec![
        "extension: constraints can be RECOVERED from policy-cleaned data, closing the mine→classify→clean→mine loop".into(),
        format!(
            "measured: dirty feed of {} facts violates entity→value; after trust-then-recency cleaning the mined schema satisfies it and classifies as {}",
            feed.instance.len(),
            class.complexity()
        ),
    ])
}

// ---------------------------------------------------------------- E24
/// Amortized check sessions: one-shot `GRepairChecker::check` (per-call
/// conflict-graph rebuild) vs one `CheckSession` reused across ≥1000
/// candidates, sequential and parallel. Records the speedups as JSON in
/// `target/session_speedups.json` for machines; the acceptance floor is
/// a ≥5× single-threaded amortized speedup on a 10k-fact instance.
fn e24() -> ExpResult {
    let n_facts = 10_000;
    let n_candidates = 1000;
    let one_shot_sample = 50;
    let w = single_fd_workload(n_facts, 6, 0.6, 42);
    let pi =
        PrioritizedInstance::conflict_restricted(&w.schema, w.instance.clone(), w.priority.clone())
            .map_err(|e| e.to_string())?;
    let cg = ConflictGraph::new(&w.schema, &w.instance);
    let mut rng = StdRng::seed_from_u64(7);
    let candidates: Vec<rpr_data::FactSet> =
        (0..n_candidates).map(|_| rpr_gen::random_repair(&cg, &mut rng)).collect();

    // One-shot baseline, timed on a sample (25ms/check adds up).
    let checker = GRepairChecker::new(w.schema.clone());
    let t0 = Instant::now();
    let mut one_shot_outcomes = Vec::new();
    for j in &candidates[..one_shot_sample] {
        one_shot_outcomes.push(checker.check(&pi, j).map_err(|e| e.to_string())?);
    }
    let one_shot_per_check = t0.elapsed().as_secs_f64() / one_shot_sample as f64;

    // Amortized: one session, sequential, all candidates.
    let session = CheckSession::new(&w.schema, &pi).with_jobs(1);
    let t1 = Instant::now();
    let mut session_outcomes = Vec::new();
    for j in &candidates {
        session_outcomes.push(session.check(j).map_err(|e| e.to_string())?);
    }
    let amortized_per_check = t1.elapsed().as_secs_f64() / n_candidates as f64;

    // Parallel: the same session fans the batch out over all cores.
    let jobs = default_jobs();
    let parallel_session = CheckSession::new(&w.schema, &pi).with_jobs(jobs);
    let t2 = Instant::now();
    let batch = parallel_session.check_batch(&candidates);
    let parallel_per_check = t2.elapsed().as_secs_f64() / n_candidates as f64;

    // Bit-identity across all three modes.
    for (i, o) in one_shot_outcomes.iter().enumerate() {
        ensure(o == &session_outcomes[i], "session ≠ one-shot outcome")?;
    }
    for (i, o) in session_outcomes.iter().enumerate() {
        ensure(batch[i].as_ref() == Ok(o), "parallel batch ≠ sequential outcome")?;
    }

    let amortized_speedup = one_shot_per_check / amortized_per_check.max(1e-12);
    let parallel_speedup = one_shot_per_check / parallel_per_check.max(1e-12);
    let facts_per_sec = n_facts as f64 / amortized_per_check.max(1e-12);
    ensure(
        amortized_speedup >= 5.0,
        "amortized session must be ≥5× faster than one-shot checking",
    )?;

    let json = format!(
        "{{\n  \"facts\": {n_facts},\n  \"candidates\": {n_candidates},\n  \"one_shot_sample\": {one_shot_sample},\n  \"jobs\": {jobs},\n  \"one_shot_s_per_check\": {one_shot_per_check:.9},\n  \"amortized_s_per_check\": {amortized_per_check:.9},\n  \"parallel_s_per_check\": {parallel_per_check:.9},\n  \"amortized_facts_per_sec\": {facts_per_sec:.1},\n  \"amortized_speedup\": {amortized_speedup:.2},\n  \"parallel_speedup\": {parallel_speedup:.2}\n}}\n"
    );
    let out_path = "target/session_speedups.json";
    let _ = std::fs::create_dir_all("target");
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: CheckSession amortizes conflict-graph + block construction across candidates".into(),
        format!(
            "measured: {n_candidates} candidates on {n_facts} facts — one-shot {:.2}ms, amortized {:.3}ms ({:.0}×), parallel x{jobs} {:.3}ms ({:.0}×)",
            one_shot_per_check * 1e3,
            amortized_per_check * 1e3,
            amortized_speedup,
            parallel_per_check * 1e3,
            parallel_speedup
        ),
        format!("measured: amortized throughput {:.2}M facts/sec; JSON written to {out_path}", facts_per_sec / 1e6),
    ])
}

// ---------------------------------------------------------------- E25
/// Budget-enforcement overhead on the PTIME fast path: the same
/// sequential session batch with the legacy API vs the bounded API
/// under an armed (but never-tripping) deadline + work budget. Rounds
/// alternate the two modes and the overhead is the median of the
/// per-round ratios, which shrugs off scheduler noise. The target is
/// <3% (recorded in `target/budget_overhead.json`); the hard acceptance
/// bound is 10% to keep the experiment robust on loaded machines.
fn e25() -> ExpResult {
    use rpr_core::{Budget, Outcome};
    use std::time::Duration;

    let n_facts = 10_000;
    let n_candidates = 600;
    let rounds = 7usize;
    let w = single_fd_workload(n_facts, 6, 0.6, 42);
    let pi =
        PrioritizedInstance::conflict_restricted(&w.schema, w.instance.clone(), w.priority.clone())
            .map_err(|e| e.to_string())?;
    let cg = ConflictGraph::new(&w.schema, &w.instance);
    let mut rng = StdRng::seed_from_u64(11);
    let candidates: Vec<rpr_data::FactSet> =
        (0..n_candidates).map(|_| rpr_gen::random_repair(&cg, &mut rng)).collect();
    let session = CheckSession::new(&w.schema, &pi).with_jobs(1);

    // Warm-up + reference verdicts (also primes caches for both modes).
    let reference: Vec<_> = candidates
        .iter()
        .map(|j| session.check(j).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // Bounded answers must be bit-identical to the legacy ones.
    let check_budget =
        Budget::unlimited().with_deadline(Duration::from_secs(600)).with_max_work(u64::MAX / 2);
    for (j, want) in candidates.iter().zip(&reference) {
        match session.check_bounded(j, &check_budget) {
            Outcome::Done(got) => ensure(&got == want, "bounded ≠ legacy verdict")?,
            other => return Err(format!("armed budget tripped unexpectedly: {other:?}")),
        }
    }

    let mut ratios = Vec::with_capacity(rounds);
    let mut legacy_total = 0.0f64;
    let mut bounded_total = 0.0f64;
    for _ in 0..rounds {
        let t = Instant::now();
        for j in &candidates {
            let _ = session.check(j).map_err(|e| e.to_string())?;
        }
        let legacy = t.elapsed().as_secs_f64();

        // A fresh armed budget per round: deadline + work allowance both
        // live, so every charge takes the full enforcement path.
        let budget =
            Budget::unlimited().with_deadline(Duration::from_secs(600)).with_max_work(u64::MAX / 2);
        let t = Instant::now();
        for j in &candidates {
            match session.check_bounded(j, &budget) {
                Outcome::Done(_) => {}
                other => return Err(format!("armed budget tripped unexpectedly: {other:?}")),
            }
        }
        let bounded = t.elapsed().as_secs_f64();

        legacy_total += legacy;
        bounded_total += bounded;
        ratios.push(bounded / legacy.max(1e-12));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_ratio = ratios[rounds / 2];
    let overhead_pct = (median_ratio - 1.0) * 100.0;
    let legacy_per_check = legacy_total / (rounds * n_candidates) as f64;
    let bounded_per_check = bounded_total / (rounds * n_candidates) as f64;
    ensure(
        overhead_pct < 10.0,
        "budget enforcement must stay cheap on the PTIME fast path (<10% hard bound)",
    )?;

    let json = format!(
        "{{\n  \"facts\": {n_facts},\n  \"candidates\": {n_candidates},\n  \"rounds\": {rounds},\n  \"legacy_s_per_check\": {legacy_per_check:.9},\n  \"bounded_s_per_check\": {bounded_per_check:.9},\n  \"median_overhead_pct\": {overhead_pct:.3},\n  \"target_pct\": 3.0\n}}\n"
    );
    let out_path = "target/budget_overhead.json";
    let _ = std::fs::create_dir_all("target");
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: armed deadlines/work budgets must not tax the polynomial checkers".into(),
        format!(
            "measured: {n_candidates} candidates × {rounds} rounds on {n_facts} facts — legacy {:.3}ms/check, bounded {:.3}ms/check, median overhead {overhead_pct:.2}% (target <3%)",
            legacy_per_check * 1e3,
            bounded_per_check * 1e3,
        ),
        format!("measured: JSON written to {out_path}"),
    ])
}

// ---------------------------------------------------------------- E26
/// The serving layer under mixed load: an in-process `rpr-serve` takes
/// closed-loop traffic alternating the PTIME running example with the
/// coNP-side blowup workload under a tiny work budget. The serving
/// contract under test: every request ends in an HTTP status (200 done
/// or 422 exceeded-with-partial here; no transport errors, nothing
/// hangs), the session cache absorbs the repeated instances, the
/// `/metrics` totals reconcile exactly with the client-side counts,
/// and the drain is clean. Results go to `target/serve_bench.json`.
fn e26() -> ExpResult {
    use rpr_bench::load::{check_body, run_load, LoadBody, LoadSpec};
    use rpr_serve::{client_call, ServeConfig, Server};
    use std::time::Duration;

    let clients = 6usize;
    let duration = Duration::from_secs(3);
    let easy = std::fs::read_to_string("workloads/running_example.rpr")
        .map_err(|e| format!("workloads/running_example.rpr: {e}"))?;
    let hard = std::fs::read_to_string("workloads/hard_blowup.rpr")
        .map_err(|e| format!("workloads/hard_blowup.rpr: {e}"))?;

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        queue_capacity: 256,
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let drain = server.drain_token();
    let running = std::thread::spawn(move || server.run());

    let spec = LoadSpec {
        addr: addr.clone(),
        bodies: vec![
            LoadBody {
                label: "running_example".into(),
                path: "/check".into(),
                body: check_body(&easy, None, None, false),
            },
            LoadBody {
                label: "hard_blowup".into(),
                path: "/check".into(),
                body: check_body(&hard, Some(10_000), None, false),
            },
        ],
        clients,
        duration,
        // Connection-per-request: e26 is the pre-keep-alive baseline
        // that e28 measures the keep-alive transport against.
        keepalive: false,
    };
    let stats = run_load(&spec);

    // One scrape; its own GET is the only request beyond the load.
    let (code, metrics) = client_call(&addr, "GET", "/metrics", b"").map_err(|e| e.to_string())?;
    ensure(code == 200, "metrics endpoint answers 200")?;
    let metrics = String::from_utf8(metrics).map_err(|e| e.to_string())?;
    let counter = |name: &str| -> Result<u64, String> {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("{name} missing from /metrics"))
    };

    drain.cancel();
    let admitted = running.join().expect("server thread").map_err(|e| e.to_string())?;

    // The serving contract: nothing lost, nothing hung, only done or
    // exceeded-with-partial in this mix.
    ensure(stats.lost == 0, "every request must come back with an HTTP status")?;
    ensure(stats.completed > 0, "the load loop must complete requests")?;
    let accounted = stats.status(200) + stats.status(422);
    ensure(accounted == stats.completed, "only 200/422 may appear in this mix")?;
    ensure(stats.status(200) > 0, "PTIME traffic must succeed")?;
    ensure(stats.status(422) > 0, "budgeted coNP traffic must trip to 422")?;

    // Metrics reconcile exactly with what the clients observed.
    ensure(counter("rpr_requests_total")? == stats.completed + 1, "requests_total reconciles")?;
    ensure(counter("rpr_done_total")? == stats.status(200) + 1, "done_total reconciles")?;
    ensure(counter("rpr_exceeded_total")? == stats.status(422), "exceeded_total reconciles")?;
    let hits = counter("rpr_cache_hits_total")?;
    let misses = counter("rpr_cache_misses_total")?;
    ensure(hits + misses == stats.completed, "every /check touched the session cache")?;
    ensure(hits > 0, "repeated-instance traffic must hit the session cache")?;
    ensure(misses >= 2, "two distinct workspaces imply at least two cold builds")?;
    ensure(admitted >= stats.completed, "admitted connections cover all completed requests")?;

    let hit_rate = hits as f64 / stats.completed as f64;
    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"duration_s\": {},\n  \"completed\": {},\n  \"lost\": {},\n  \"throughput_rps\": {:.2},\n  \"p50_ms\": {:.3},\n  \"p95_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"done\": {},\n  \"exceeded\": {},\n  \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"cache_hit_rate\": {hit_rate:.4}\n}}\n",
        duration.as_secs(),
        stats.completed,
        stats.lost,
        stats.throughput(),
        stats.quantile(0.50).as_secs_f64() * 1e3,
        stats.quantile(0.95).as_secs_f64() * 1e3,
        stats.quantile(0.99).as_secs_f64() * 1e3,
        stats.status(200),
        stats.status(422),
    );
    let out_path = "target/serve_bench.json";
    let _ = std::fs::create_dir_all("target");
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: the dichotomy as a serving policy — PTIME answers, coNP degrades to 422 partials".into(),
        format!(
            "measured: {} req in {:.1}s ({:.0} req/s, {clients} clients) — {} done, {} exceeded, 0 lost",
            stats.completed,
            stats.elapsed.as_secs_f64(),
            stats.throughput(),
            stats.status(200),
            stats.status(422),
        ),
        format!(
            "measured: p50 {:.2?} p95 {:.2?} p99 {:.2?}; cache {hits} hits / {misses} misses ({:.0}% hit rate); JSON written to {out_path}",
            stats.quantile(0.50),
            stats.quantile(0.95),
            stats.quantile(0.99),
            hit_rate * 100.0,
        ),
    ])
}

// ---------------------------------------------------------------- E28
/// The keep-alive transport on the cache-hit fast path, measured
/// against the committed connection-per-request baseline. An
/// in-process server takes closed-loop keep-alive traffic on the
/// (pre-warmed) running example, then the same traffic with
/// `--no-keepalive` semantics for an in-run comparison. The serving
/// contract still holds end to end: zero lost requests, all 200s,
/// `rpr_requests_total` reconciles *exactly* with the client-side
/// counts (every `/metrics` scrape counts itself), the warmup is the
/// only cache miss, and keep-alive provably reuses connections. The
/// throughput gate is ≥20x over the baseline committed in
/// `BENCH_serve.json`, which this experiment then rewrites with fresh
/// numbers so the perf trajectory lives in the repo, not in stale
/// `target/` artifacts.
fn e28() -> ExpResult {
    use rpr_bench::load::{check_body, run_load, LoadBody, LoadSpec};
    use rpr_serve::{client_call, parse_json, Json, ServeConfig, Server};
    use std::time::Duration;

    // The committed baseline (connection-per-request on the same
    // cache-hit workload), used when `BENCH_serve.json` is missing or
    // unreadable. These are the numbers measured on the pre-keep-alive
    // transport at the time it was replaced.
    const FALLBACK_BASELINE_RPS: f64 = 235.81;
    const FALLBACK_BASELINE_P50_MS: f64 = 25.405;
    const FALLBACK_BASELINE_P95_MS: f64 = 26.102;
    const FALLBACK_BASELINE_P99_MS: f64 = 27.098;

    let clients = 4usize;
    let duration = Duration::from_secs(3);
    let baseline_duration = Duration::from_secs(2);
    let easy = std::fs::read_to_string("workloads/running_example.rpr")
        .map_err(|e| format!("workloads/running_example.rpr: {e}"))?;

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        queue_capacity: 256,
        // Keep connections persistent for the whole run so the
        // connection count below is exactly predictable; the
        // request-cap path has its own framing test.
        max_requests_per_conn: 10_000_000,
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?.to_string();
    let drain = server.drain_token();
    let running = std::thread::spawn(move || server.run());

    let body = check_body(&easy, None, None, false);
    // Warm the session cache: this is the one and only cold build —
    // everything after it is the cache-hit fast path.
    let (code, _) =
        client_call(&addr, "POST", "/check", body.as_bytes()).map_err(|e| e.to_string())?;
    ensure(code == 200, "warmup /check answers 200")?;

    let scrape = |addr: &str| -> Result<String, String> {
        let (code, text) = client_call(addr, "GET", "/metrics", b"").map_err(|e| e.to_string())?;
        ensure(code == 200, "metrics endpoint answers 200")?;
        String::from_utf8(text).map_err(|e| e.to_string())
    };
    let counter = |metrics: &str, name: &str| -> Result<u64, String> {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("{name} missing from /metrics"))
    };

    let bodies = vec![LoadBody { label: "running_example".into(), path: "/check".into(), body }];
    let before = scrape(&addr)?;
    let ka = run_load(&LoadSpec {
        addr: addr.clone(),
        bodies: bodies.clone(),
        clients,
        duration,
        keepalive: true,
    });
    let mid = scrape(&addr)?;
    let nka = run_load(&LoadSpec {
        addr: addr.clone(),
        bodies,
        clients,
        duration: baseline_duration,
        keepalive: false,
    });
    let after = scrape(&addr)?;

    drain.cancel();
    running.join().expect("server thread").map_err(|e| e.to_string())?;

    // Contract: nothing lost, nothing but 200 on the cache-hit path.
    ensure(ka.lost == 0 && nka.lost == 0, "every request must come back with an HTTP status")?;
    ensure(ka.completed > 0 && nka.completed > 0, "both load loops must complete requests")?;
    ensure(ka.status(200) == ka.completed, "keep-alive cache-hit traffic is all 200")?;
    ensure(nka.status(200) == nka.completed, "baseline cache-hit traffic is all 200")?;

    // Exact counter reconciliation. Every `/metrics` scrape increments
    // `rpr_requests_total` before rendering, so each window's delta is
    // the completed requests plus the one scrape that closes it.
    let req = |m: &str| counter(m, "rpr_requests_total");
    ensure(req(&mid)? - req(&before)? == ka.completed + 1, "keep-alive requests_total reconciles")?;
    ensure(req(&after)? - req(&mid)? == nka.completed + 1, "baseline requests_total reconciles")?;
    let hits = counter(&after, "rpr_cache_hits_total")?;
    let misses = counter(&after, "rpr_cache_misses_total")?;
    ensure(hits + misses == 1 + ka.completed + nka.completed, "every /check touched the cache")?;
    ensure(misses == 1, "the warmup is the only cold build")?;

    // Keep-alive provably reuses connections: after the keep-alive
    // window the server has seen the warmup call, two scrapes, and
    // one persistent connection per client — nothing per-request.
    let conns_mid = counter(&mid, "rpr_http_connections_total")?;
    ensure(conns_mid <= 3 + clients as u64, "keep-alive must not open per-request connections")?;

    // The throughput gate: ≥20x over the committed baseline.
    let committed =
        std::fs::read_to_string("BENCH_serve.json").ok().and_then(|t| parse_json(&t).ok());
    let num = |j: Option<&Json>| -> Option<f64> {
        match j? {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    };
    let base = committed.as_ref().and_then(|j| j.get("e26_baseline"));
    let base_rps = num(base.and_then(|b| b.get("throughput_rps"))).unwrap_or(FALLBACK_BASELINE_RPS);
    let base_p50 = num(base.and_then(|b| b.get("p50_ms"))).unwrap_or(FALLBACK_BASELINE_P50_MS);
    let base_p95 = num(base.and_then(|b| b.get("p95_ms"))).unwrap_or(FALLBACK_BASELINE_P95_MS);
    let base_p99 = num(base.and_then(|b| b.get("p99_ms"))).unwrap_or(FALLBACK_BASELINE_P99_MS);
    let speedup = ka.throughput() / base_rps;
    ensure(
        speedup >= 20.0,
        &format!(
            "keep-alive path must be >=20x the committed baseline ({:.0} vs {base_rps:.0} rps = {speedup:.1}x)",
            ka.throughput(),
        ),
    )?;

    // Rewrite the committed perf trajectory: baseline block preserved,
    // fresh keep-alive + in-run no-keepalive numbers, and the machine
    // they were measured on.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let run_block = |stats: &rpr_bench::load::LoadStats, keepalive: bool, secs: u64| {
        format!(
            "{{\n    \"keepalive\": {keepalive},\n    \"clients\": {clients},\n    \"duration_s\": {secs},\n    \"completed\": {},\n    \"lost\": {},\n    \"throughput_rps\": {:.2},\n    \"p50_ms\": {:.3},\n    \"p90_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \"max_ms\": {:.3}\n  }}",
            stats.completed,
            stats.lost,
            stats.throughput(),
            stats.quantile(0.50).as_secs_f64() * 1e3,
            stats.quantile(0.90).as_secs_f64() * 1e3,
            stats.quantile(0.99).as_secs_f64() * 1e3,
            stats.max().as_secs_f64() * 1e3,
        )
    };
    let json = format!(
        "{{\n  \"workload\": \"running_example.rpr, cache-hit POST /check\",\n  \"machine\": {{\n    \"os\": \"{}\",\n    \"arch\": \"{}\",\n    \"cores\": {cores}\n  }},\n  \"e26_baseline\": {{\n    \"keepalive\": false,\n    \"throughput_rps\": {base_rps:.2},\n    \"p50_ms\": {base_p50:.3},\n    \"p95_ms\": {base_p95:.3},\n    \"p99_ms\": {base_p99:.3}\n  }},\n  \"e28_keepalive\": {},\n  \"e28_no_keepalive\": {},\n  \"speedup_vs_baseline\": {speedup:.1}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        run_block(&ka, true, duration.as_secs()),
        run_block(&nka, false, baseline_duration.as_secs()),
    );
    let out_path = "BENCH_serve.json";
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: the serve path at hardware speed — keep-alive + readiness loop + zero-copy parsing".into(),
        format!(
            "measured: keep-alive {} req in {:.1}s = {:.0} req/s (p50 {:.2?} p99 {:.2?} max {:.2?}), 0 lost",
            ka.completed,
            ka.elapsed.as_secs_f64(),
            ka.throughput(),
            ka.quantile(0.50),
            ka.quantile(0.99),
            ka.max(),
        ),
        format!(
            "measured: no-keepalive comparison {:.0} req/s; committed baseline {base_rps:.0} req/s -> {speedup:.1}x; counters reconcile exactly; {out_path} rewritten",
            nka.throughput(),
        ),
    ])
}

// ---------------------------------------------------------------- E29
/// Extension experiment: the incremental-mutation subsystem. A
/// persistent [`DeltaSession`] takes randomized low-churn delta batches
/// (inserts + deletes, ≤10% of the workspace per batch) on the patched
/// in-place path, and every batch is raced against a cold rebuild of
/// the mutated workspace — the exact work a server does on a session
/// cache miss. Correctness is asserted in-run (the patched fingerprint
/// must equal both the cold session's and the canonical workspace
/// fingerprint after every batch) and the per-delta speedup is gated at
/// ≥2x. Fresh numbers are committed to `BENCH_delta.json` so the perf
/// trajectory lives in the repo, not in stale `target/` artifacts.
fn e29() -> ExpResult {
    use rpr_core::{DeltaOp, DeltaSession};
    use rpr_data::Fact;
    use rpr_format::{apply_ops_to_workspace, workspace_fingerprint, Workspace};
    use rpr_priority::PriorityMode;
    use std::sync::Arc;
    use std::time::Duration;

    const N: usize = 600;
    const BATCHES: usize = 30;
    const INSERTS_PER_BATCH: usize = 4;
    const DELETES_PER_BATCH: usize = 4;

    let wl = single_fd_workload(N, 4, 0.3, 0x2915);
    let mut ws = Workspace {
        schema: wl.schema,
        instance: wl.instance,
        priority: wl.priority,
        mode: PriorityMode::ConflictRestricted,
        repairs: Vec::new(),
    };
    let schema = Arc::new(ws.schema.clone());
    let mut ds =
        DeltaSession::prepare(schema.clone(), ws.prioritized().map_err(|e| e.to_string())?);
    ensure(ds.fingerprint() == workspace_fingerprint(&ws), "prepared session matches canonical")?;

    let mut rng = StdRng::seed_from_u64(0xE29);
    let mut next_val: i64 = 1_000_000;
    let mut patched_total = Duration::ZERO;
    let mut cold_total = Duration::ZERO;
    let mut max_churn = 0.0f64;
    for batch_no in 0..BATCHES {
        // Generate against the evolving oracle workspace so every op is
        // valid at its position in the batch (sequential semantics).
        let mut batch = Vec::new();
        let sig = ws.instance.signature().clone();
        for _ in 0..INSERTS_PER_BATCH {
            let g = rng.random_range(0..(N as i64 / 4).max(1));
            let b = rng.random_range(0i64..4);
            let f = Fact::parse_new(&sig, "R", [g.into(), b.into(), next_val.into()])
                .map_err(|e| e.to_string())?;
            next_val += 1;
            let op = DeltaOp::InsertFact(f);
            ws = apply_ops_to_workspace(&ws, std::slice::from_ref(&op))
                .map_err(|e| e.to_string())?;
            batch.push(op);
        }
        for _ in 0..DELETES_PER_BATCH {
            // Any fact without incident priority edges can be deleted.
            let n = ws.instance.len() as u32;
            let id = (0..n)
                .map(|k| FactId((k + rng.random_range(0..n)) % n))
                .find(|&id| ws.priority.edges().iter().all(|&(a, b)| a != id && b != id))
                .ok_or("no edge-free fact to delete")?;
            let op = DeltaOp::DeleteFact(ws.instance.fact(id).clone());
            ws = apply_ops_to_workspace(&ws, std::slice::from_ref(&op))
                .map_err(|e| e.to_string())?;
            batch.push(op);
        }
        let churn = batch.len() as f64 * 100.0 / ws.instance.len() as f64;
        max_churn = max_churn.max(churn);
        ensure(churn <= 10.0, "delta batches stay at <=10% churn")?;

        // The patched in-place path on the persistent session.
        let t = Instant::now();
        let report = ds.apply_delta(&batch).map_err(|e| e.to_string())?;
        patched_total += t.elapsed();
        ensure(!report.rebuilt, "low-churn batches must take the patched path")?;
        ensure(report.applied == batch.len(), "every op in the batch applies")?;

        // The cold rebuild a cache miss would pay: re-validate the
        // mutated workspace and rebuild every artifact from scratch.
        let t = Instant::now();
        let cold =
            DeltaSession::prepare(schema.clone(), ws.prioritized().map_err(|e| e.to_string())?);
        cold_total += t.elapsed();

        ensure(
            ds.fingerprint() == cold.fingerprint()
                && ds.fingerprint() == workspace_fingerprint(&ws),
            &format!("batch {batch_no}: patched session diverged from the cold rebuild"),
        )?;
    }

    let patched_us = patched_total.as_secs_f64() * 1e6 / BATCHES as f64;
    let cold_us = cold_total.as_secs_f64() * 1e6 / BATCHES as f64;
    let speedup = cold_us / patched_us;
    ensure(
        speedup >= 2.0,
        &format!(
            "patched deltas must be >=2x faster than cold rebuilds ({patched_us:.1}us vs {cold_us:.1}us = {speedup:.1}x)"
        ),
    )?;

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"workload\": \"single_fd_workload({N}, 4, 0.30), conflict-restricted, {BATCHES} batches of {} ops\",\n  \"machine\": {{\n    \"os\": \"{}\",\n    \"arch\": \"{}\",\n    \"cores\": {cores}\n  }},\n  \"batches\": {BATCHES},\n  \"ops_per_batch\": {},\n  \"max_churn_percent\": {max_churn:.2},\n  \"patched_mean_us\": {patched_us:.2},\n  \"cold_rebuild_mean_us\": {cold_us:.2},\n  \"speedup\": {speedup:.1},\n  \"gate\": \"patched >= 2x cold rebuild at <=10% churn\"\n}}\n",
        INSERTS_PER_BATCH + DELETES_PER_BATCH,
        std::env::consts::OS,
        std::env::consts::ARCH,
        INSERTS_PER_BATCH + DELETES_PER_BATCH,
    );
    let out_path = "BENCH_delta.json";
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: patch cached sessions in place instead of rebuilding them".into(),
        format!(
            "measured: {BATCHES} batches x {} ops on {N} facts (max churn {max_churn:.1}%), all patched in place, fingerprints bit-identical to cold rebuilds",
            INSERTS_PER_BATCH + DELETES_PER_BATCH,
        ),
        format!(
            "measured: per-delta {patched_us:.0}us patched vs {cold_us:.0}us cold rebuild -> {speedup:.1}x (gate >=2x); {out_path} rewritten"
        ),
    ])
}

// ---------------------------------------------------------------- E30

/// Builds the chain-component setup of `rpr_gen::chain_components`
/// plus the priority (`f2 > f1 > f0` per chain) and the globally
/// optimal even-offset repair `J`.
fn chain_setup(
    components: usize,
    size: usize,
) -> Result<(Schema, PrioritizedInstance, rpr_data::FactSet), String> {
    let (schema, instance) = rpr_gen::chain_components(components, size);
    let chain = |k: u32, i: u32| FactId(k * size as u32 + i);
    let mut edges = Vec::new();
    for k in 0..components as u32 {
        edges.push((chain(k, 1), chain(k, 0)));
        edges.push((chain(k, 2), chain(k, 1)));
    }
    let priority = PriorityRelation::new(instance.len(), edges).map_err(|e| e.to_string())?;
    let evens = instance.fact_ids().filter(|f| (f.index() % size).is_multiple_of(2));
    let j = instance.set_of(evens);
    let pi = PrioritizedInstance::conflict_restricted(&schema, instance, priority)
        .map_err(|e| e.to_string())?;
    Ok((schema, pi, j))
}

/// Best-of-`reps` wall clock of `f`.
fn best_of(reps: usize, mut f: impl FnMut() -> Result<(), String>) -> Result<f64, String> {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f()?;
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    Ok(best)
}

/// Component-sharded sessions. The exponential fall-back decomposes
/// over conflict components (improvements never span them once the
/// whole-domain pre-checks pass), so a 64-chain workload costs
/// `64 × 2^size` instead of `2^(64·size)`, shards of one candidate fan
/// out across `--jobs` workers, and delta batches re-derive only the
/// components they touch. Gates (committed to `BENCH_shard.json`):
/// shard balance ≥4 (the machine-independent parallelism bound;
/// wall-clock ≥4x at 8 jobs is additionally enforced on ≥8-core
/// machines), component-local exact ≥10x over the whole-domain search,
/// and single-chain delta batches reusing 63/64 shards at ≥2x over a
/// cold artifact rebuild — all under bit-identical verdicts and
/// witnesses at jobs ∈ {1, 2, 8}.
fn e30() -> ExpResult {
    use rpr_core::{DeltaOp, DeltaSession, SessionArtifacts};
    use rpr_data::Fact;
    use std::sync::Arc;

    const COMPONENTS: usize = 64;
    const SERVE_SIZE: usize = 6; // the committed many_components.rpr shape
    const HEAVY_SIZE: usize = 20; // per-shard Fib(22) search nodes
    const DELTA_BATCHES: usize = 16;

    // -- Verdict/witness bit-identity across jobs on the serve shape --
    let (schema_a, pi_a, j_a) = chain_setup(COMPONENTS, SERVE_SIZE)?;
    let base = CheckSession::new(&schema_a, &pi_a).with_jobs(1);
    let v_opt = base.check(&j_a).map_err(|e| e.to_string())?;
    ensure(v_opt.is_optimal(), "the even-offset repair is globally optimal")?;
    // {f1, f4} per chain is a repair improved by J (f2 beats f1).
    let improvable = pi_a
        .instance()
        .set_of(pi_a.instance().fact_ids().filter(|f| matches!(f.index() % SERVE_SIZE, 1 | 4)));
    // An inconsistent candidate pins the witness pair too.
    let bad = pi_a.instance().set_of([FactId(0), FactId(1)]);
    for jobs in [2, 8] {
        let s = CheckSession::new(&schema_a, &pi_a).with_jobs(jobs);
        for cand in [&j_a, &improvable, &bad] {
            ensure(
                s.check(cand) == base.check(cand),
                &format!("jobs={jobs}: verdict+witness must be bit-identical to jobs=1"),
            )?;
        }
    }
    match base.check(&improvable).map_err(|e| e.to_string())? {
        rpr_core::CheckOutcome::Improvable(_) => {}
        other => return Err(format!("{{f1, f4}} chains must be improvable, got {other:?}")),
    }

    // -- The committed serve workload decomposes into the same shards --
    let ws_text = std::fs::read_to_string("workloads/many_components.rpr")
        .map_err(|e| format!("workloads/many_components.rpr: {e}"))?;
    let ws = rpr_format::parse_workspace(&ws_text).map_err(|e| e.to_string())?;
    let ws_pi = ws.prioritized().map_err(|e| e.to_string())?;
    let ws_j = ws.repair("J").ok_or("many_components.rpr names repair J")?.clone();
    ensure(
        SessionArtifacts::build(&ws.schema, &ws_pi).shard_count() == COMPONENTS,
        &format!("the committed workload splits into {COMPONENTS} shards"),
    )?;
    ensure(
        CheckSession::new(&ws.schema, &ws_pi)
            .with_jobs(8)
            .check(&ws_j)
            .map_err(|e| e.to_string())?
            .is_optimal(),
        "the committed workload's repair J is globally optimal under 8-job sharding",
    )?;

    // -- Shard balance (machine-independent) + 8-job wall clock --
    let (schema_b, pi_b, j_b) = chain_setup(COMPONENTS, HEAVY_SIZE)?;
    let art = SessionArtifacts::build(&schema_b, &pi_b);
    let layout = art.components();
    let shard_work: Vec<u128> = layout
        .nontrivial()
        .iter()
        .map(|&c| 1u128 << layout.component(c as usize).len().min(120))
        .collect();
    let total_work: u128 = shard_work.iter().sum();
    let max_work = *shard_work.iter().max().ok_or("workload has nontrivial components")?;
    let balance = (total_work / max_work) as usize;
    ensure(
        balance >= 4,
        &format!("shard balance (total/max exponential work) must be >=4, got {balance}"),
    )?;
    let session1 = CheckSession::from_artifacts(&schema_b, &pi_b, &art).with_jobs(1);
    let session8 = CheckSession::from_artifacts(&schema_b, &pi_b, &art).with_jobs(8);
    ensure(
        session1.check(&j_b) == session8.check(&j_b),
        "heavy workload: jobs=8 verdict must equal jobs=1",
    )?;
    let t1_us = best_of(10, || session1.check(&j_b).map(drop).map_err(|e| e.to_string()))?;
    let t8_us = best_of(10, || session8.check(&j_b).map(drop).map_err(|e| e.to_string()))?;
    let jobs_speedup = t1_us / t8_us;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let wall_clock_gated = cores >= 8;
    if wall_clock_gated {
        ensure(
            jobs_speedup >= 4.0,
            &format!(
                "on {cores} cores, 8-job sharded checking must be >=4x, got {jobs_speedup:.1}x"
            ),
        )?;
    }

    // -- Component-local exact vs the whole-domain baseline search --
    let (schema_c, pi_c, j_c) = chain_setup(4, SERVE_SIZE)?;
    let local = CheckSession::new(&schema_c, &pi_c).with_jobs(1);
    let cg = local.conflict_graph();
    let domain = pi_c.instance().full_set();
    ensure(
        check_global_exact(cg, pi_c.priority(), &domain, &j_c, 1 << 30)
            .map_err(|e| e.to_string())?
            == local.check(&j_c).map_err(|e| e.to_string())?,
        "whole-domain and component-local searches agree on the verdict",
    )?;
    let local_us = best_of(50, || local.check(&j_c).map(drop).map_err(|e| e.to_string()))?;
    let whole_us = best_of(10, || {
        check_global_exact(cg, pi_c.priority(), &domain, &j_c, 1 << 30)
            .map(drop)
            .map_err(|e| e.to_string())
    })?;
    let local_speedup = whole_us / local_us;
    ensure(
        local_speedup >= 10.0,
        &format!(
            "component-local exact must be >=10x over whole-domain \
             ({local_us:.1}us vs {whole_us:.1}us = {local_speedup:.1}x)"
        ),
    )?;

    // -- Delta shard reuse: single-chain batches skip 63/64 shards --
    let (schema_d, pi_d, _) = chain_setup(COMPONENTS, SERVE_SIZE)?;
    let schema_arc = Arc::new(schema_d);
    let mut ds = DeltaSession::prepare(schema_arc.clone(), pi_d);
    let mut patched_total = 0.0f64;
    let mut cold_total = 0.0f64;
    for batch_no in 0..DELTA_BATCHES {
        // Delete + re-insert one interior fact of chain `batch_no * 4`:
        // the batch dirties that single chain and nothing else.
        let k = (batch_no * 4) % COMPONENTS;
        let sig = ds.prioritized().instance().signature().clone();
        let sym = |s: String| rpr_data::Value::sym(&s);
        let f = Fact::parse_new(
            &sig,
            "R4",
            vec![sym(format!("a{k}_1")), sym(format!("b{k}_2")), sym(format!("c{k}_3"))],
        )
        .map_err(|e| e.to_string())?;
        let batch = vec![DeltaOp::DeleteFact(f.clone()), DeltaOp::InsertFact(f)];
        let t = Instant::now();
        let report = ds.apply_delta(&batch).map_err(|e| e.to_string())?;
        patched_total += t.elapsed().as_secs_f64() * 1e6;
        ensure(!report.rebuilt, "two-op batches take the patched path")?;
        ensure(
            report.components_total == COMPONENTS && report.components_reused == COMPONENTS - 1,
            &format!(
                "batch {batch_no}: expected {}/{COMPONENTS} shards reused, got {}/{}",
                COMPONENTS - 1,
                report.components_reused,
                report.components_total
            ),
        )?;
        // The cold baseline: re-derive every artifact from the current
        // state (what the patched path would pay without shard reuse).
        let t = Instant::now();
        let cold = SessionArtifacts::build(&schema_arc, ds.prioritized());
        cold_total += t.elapsed().as_secs_f64() * 1e6;
        ensure(cold.shard_count() == COMPONENTS, "cold rebuild sees all shards")?;
    }
    let patched_us = patched_total / DELTA_BATCHES as f64;
    let cold_us = cold_total / DELTA_BATCHES as f64;
    let delta_speedup = cold_us / patched_us;
    ensure(
        delta_speedup >= 2.0,
        &format!(
            "single-shard deltas must be >=2x over cold artifact rebuilds \
             ({patched_us:.1}us vs {cold_us:.1}us = {delta_speedup:.1}x)"
        ),
    )?;

    let json = format!(
        "{{\n  \"workload\": \"workloads/many_components.rpr = chain_components({COMPONENTS}, {SERVE_SIZE}); chain_components({COMPONENTS}, {HEAVY_SIZE}) heavy shards; chain_components(4, {SERVE_SIZE}) local-vs-whole\",\n  \"machine\": {{\n    \"os\": \"{}\",\n    \"arch\": \"{}\",\n    \"cores\": {cores}\n  }},\n  \"bit_identity\": \"verdicts and witnesses identical at jobs 1/2/8 on optimal, improvable and inconsistent candidates\",\n  \"shard_balance\": {{\n    \"components\": {COMPONENTS},\n    \"total_over_max_exponential_work\": {balance},\n    \"gate\": \"balance >= 4 (machine-independent available parallelism)\"\n  }},\n  \"throughput\": {{\n    \"jobs1_best_us\": {t1_us:.1},\n    \"jobs8_best_us\": {t8_us:.1},\n    \"speedup\": {jobs_speedup:.2},\n    \"wall_clock_gated\": {wall_clock_gated},\n    \"gate\": \"speedup >= 4x enforced only when cores >= 8 (cores recorded above)\"\n  }},\n  \"component_local_exact\": {{\n    \"sharded_best_us\": {local_us:.1},\n    \"whole_domain_best_us\": {whole_us:.1},\n    \"speedup\": {local_speedup:.1},\n    \"gate\": \"component-local >= 10x whole-domain\"\n  }},\n  \"delta_shard_reuse\": {{\n    \"batches\": {DELTA_BATCHES},\n    \"components_reused_per_batch\": {},\n    \"patched_mean_us\": {patched_us:.1},\n    \"cold_artifact_rebuild_mean_us\": {cold_us:.1},\n    \"speedup\": {delta_speedup:.1},\n    \"gate\": \"63/64 shards reused and patched >= 2x cold\"\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        COMPONENTS - 1,
    );
    let out_path = "BENCH_shard.json";
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: shard sessions by conflict component (parallel shards, local exact, delta reuse)".into(),
        format!(
            "measured: verdicts/witnesses bit-identical at jobs 1/2/8; shard balance {balance} (gate >=4); 8-job wall clock {jobs_speedup:.2}x on {cores} core(s){}",
            if wall_clock_gated { " (gated >=4x)" } else { " (recorded, gated on >=8 cores)" },
        ),
        format!(
            "measured: component-local exact {local_us:.0}us vs whole-domain {whole_us:.0}us -> {local_speedup:.0}x (gate >=10x)"
        ),
        format!(
            "measured: single-chain deltas reuse {}/{COMPONENTS} shards, {patched_us:.0}us patched vs {cold_us:.0}us cold -> {delta_speedup:.1}x (gate >=2x); {out_path} rewritten",
            COMPONENTS - 1,
        ),
    ])
}

// ---------------------------------------------------------------- E31

/// The content-addressed shard store layered on the e30 sharding: one
/// immutable artifact per distinct component *content* (local CSR
/// slice, intra-component priority edges, memoized shard verdicts),
/// keyed by the 128-bit shard fingerprint and shared — ref-counted —
/// across every workspace fingerprint that contains the component.
/// Gates (committed to `BENCH_shard_store.json`):
///
/// (a) a 64-chain delta walk across *distinct* workspace fingerprints
///     re-attaches ≥ 60/64 shards per step from the store;
/// (b) building + checking a warmed session through the store is ≥ 2x
///     over the copy-per-session path (private artifacts, cold memos);
/// (c) resident store bytes grow sub-linearly in the number of live
///     fingerprints sharing components: the marginal cost of a
///     fingerprint is under half the first fingerprint's bytes.
///
/// All under verdicts bit-identical to cold private rebuilds.
fn e31() -> ExpResult {
    use rpr_core::{DeltaOp, DeltaSession, SessionArtifacts, ShardStore};
    use rpr_data::Fact;
    use std::sync::Arc;

    const COMPONENTS: usize = 64;
    const SERVE_SIZE: usize = 6;
    const HEAVY_SIZE: usize = 12; // per-shard search large enough to dominate
    const DELTA_STEPS: usize = 16;
    const FINGERPRINTS: usize = 8;

    // -- (a) Delta walk across distinct fingerprints reuses the store --
    let (schema_a, pi_a, _) = chain_setup(COMPONENTS, SERVE_SIZE)?;
    let schema_arc = Arc::new(schema_a);
    let store = Arc::new(ShardStore::new());
    let mut ds =
        DeltaSession::prepare_with_store(schema_arc.clone(), pi_a, Some(Arc::clone(&store)));
    let mut fingerprints = vec![ds.fingerprint()];
    let mut min_step_hits = u64::MAX;
    for step in 0..DELTA_STEPS {
        // Delete the interior fact of chain `step`: the chain splits,
        // the workspace fingerprint moves on, and every other
        // component must come back as a store hit.
        let k = step % COMPONENTS;
        let sig = ds.prioritized().instance().signature().clone();
        let sym = |s: String| rpr_data::Value::sym(&s);
        let f = Fact::parse_new(
            &sig,
            "R4",
            vec![sym(format!("a{k}_1")), sym(format!("b{k}_2")), sym(format!("c{k}_3"))],
        )
        .map_err(|e| e.to_string())?;
        let before = store.stats();
        let report = ds.apply_delta(&[DeltaOp::DeleteFact(f)]).map_err(|e| e.to_string())?;
        let after = store.stats();
        ensure(!report.rebuilt, "one-op batches take the patched path")?;
        let step_hits = after.hits - before.hits;
        min_step_hits = min_step_hits.min(step_hits);
        ensure(
            step_hits >= 60,
            &format!("step {step}: expected >= 60/{COMPONENTS} store hits, got {step_hits}"),
        )?;
        fingerprints.push(ds.fingerprint());
        // Bit-identity against a cold private rebuild of this state.
        let cold_pi = PrioritizedInstance::conflict_restricted(
            &schema_arc,
            ds.prioritized().instance().clone(),
            ds.prioritized().priority().clone(),
        )
        .map_err(|e| e.to_string())?;
        let cold = DeltaSession::prepare(schema_arc.clone(), cold_pi);
        ensure(
            ds.fingerprint() == cold.fingerprint(),
            &format!("step {step}: patched fingerprint equals the cold rebuild's"),
        )?;
        let j = ds.prioritized().instance().full_set();
        ensure(
            ds.session().check(&j) == cold.session().check(&j),
            &format!("step {step}: store-backed verdict equals the cold rebuild's"),
        )?;
    }
    let distinct: std::collections::HashSet<_> = fingerprints.iter().collect();
    ensure(
        distinct.len() == fingerprints.len(),
        "every delta step lands on a distinct workspace fingerprint",
    )?;

    // -- (b) Warmed store vs the copy-per-session path --
    let (schema_b, pi_b, j_b) = chain_setup(COMPONENTS, HEAVY_SIZE)?;
    let warm_store = ShardStore::new();
    // One cold pass builds the shards and fills their verdict memos.
    let warm_art = SessionArtifacts::build_with_store(&schema_b, &pi_b, Some(&warm_store));
    let v_warm = CheckSession::from_artifacts(&schema_b, &pi_b, &warm_art)
        .check(&j_b)
        .map_err(|e| e.to_string())?;
    // Copy-per-session: every new session re-derives private shard
    // artifacts and re-runs every component search from scratch.
    let private_us = best_of(5, || {
        let art = SessionArtifacts::build(&schema_b, &pi_b);
        let v = CheckSession::from_artifacts(&schema_b, &pi_b, &art)
            .check(&j_b)
            .map_err(|e| e.to_string())?;
        if v != v_warm {
            return Err("private verdict diverges from the store-backed one".into());
        }
        Ok(())
    })?;
    // Store-backed: the same build + check, but shards (and their
    // memoized verdicts) come from the warmed store.
    let stored_us = best_of(5, || {
        let art = SessionArtifacts::build_with_store(&schema_b, &pi_b, Some(&warm_store));
        let v = CheckSession::from_artifacts(&schema_b, &pi_b, &art)
            .check(&j_b)
            .map_err(|e| e.to_string())?;
        if v != v_warm {
            return Err("store-backed verdict diverges across sessions".into());
        }
        Ok(())
    })?;
    let store_speedup = private_us / stored_us;
    ensure(
        store_speedup >= 2.0,
        &format!(
            "store-backed sessions must be >=2x over copy-per-session \
             ({stored_us:.1}us vs {private_us:.1}us = {store_speedup:.1}x)"
        ),
    )?;

    // -- (c) Sub-linear resident bytes across fingerprints --
    // FINGERPRINTS workspace variants: the same 64 chains plus one
    // variant-private conflict pair each, so every variant is a
    // distinct fingerprint sharing 64 of its 65 components.
    let bytes_store = Arc::new(ShardStore::new());
    let (schema_c, _, _) = chain_setup(COMPONENTS, SERVE_SIZE)?;
    let schema_c = Arc::new(schema_c);
    let mut live_sessions = Vec::new();
    let mut first_bytes = 0u64;
    for v in 0..FINGERPRINTS {
        let (_, base_instance) = rpr_gen::chain_components(COMPONENTS, SERVE_SIZE);
        let mut instance = base_instance;
        instance
            .insert_named(
                "R4",
                [Value::sym(format!("x{v}")), Value::sym(format!("y{v}")), Value::sym("keep")],
            )
            .map_err(|e| e.to_string())?;
        instance
            .insert_named(
                "R4",
                [Value::sym(format!("x{v}")), Value::sym(format!("y{v}")), Value::sym("drop")],
            )
            .map_err(|e| e.to_string())?;
        let chain = |k: u32, i: u32| FactId(k * SERVE_SIZE as u32 + i);
        let mut edges = Vec::new();
        for k in 0..COMPONENTS as u32 {
            edges.push((chain(k, 1), chain(k, 0)));
            edges.push((chain(k, 2), chain(k, 1)));
        }
        let priority = PriorityRelation::new(instance.len(), edges).map_err(|e| e.to_string())?;
        let pi = PrioritizedInstance::conflict_restricted(&schema_c, instance, priority)
            .map_err(|e| e.to_string())?;
        live_sessions.push(DeltaSession::prepare_with_store(
            schema_c.clone(),
            pi,
            Some(Arc::clone(&bytes_store)),
        ));
        if v == 0 {
            first_bytes = bytes_store.resident_bytes();
        }
    }
    let total_bytes = bytes_store.resident_bytes();
    let marginal_bytes = (total_bytes - first_bytes) / (FINGERPRINTS as u64 - 1);
    ensure(
        bytes_store.len() == COMPONENTS + FINGERPRINTS,
        &format!(
            "{FINGERPRINTS} fingerprints sharing {COMPONENTS} chains must store \
             {} artifacts, got {}",
            COMPONENTS + FINGERPRINTS,
            bytes_store.len()
        ),
    )?;
    ensure(
        marginal_bytes * 2 < first_bytes,
        &format!(
            "marginal bytes per fingerprint must be < half the first fingerprint's \
             ({marginal_bytes} vs {first_bytes}/2)"
        ),
    )?;
    drop(live_sessions);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"workload\": \"chain_components({COMPONENTS}, {SERVE_SIZE}) delta walk + {FINGERPRINTS} fingerprint variants; chain_components({COMPONENTS}, {HEAVY_SIZE}) warm-store throughput\",\n  \"machine\": {{\n    \"os\": \"{}\",\n    \"arch\": \"{}\",\n    \"cores\": {cores}\n  }},\n  \"bit_identity\": \"store-backed verdicts, fingerprints and witnesses identical to cold private rebuilds at every delta step\",\n  \"delta_reuse\": {{\n    \"steps\": {DELTA_STEPS},\n    \"distinct_fingerprints\": {},\n    \"min_store_hits_per_step\": {min_step_hits},\n    \"gate\": \">= 60/{COMPONENTS} shards re-attached from the store per step\"\n  }},\n  \"throughput\": {{\n    \"copy_per_session_best_us\": {private_us:.1},\n    \"store_backed_best_us\": {stored_us:.1},\n    \"speedup\": {store_speedup:.2},\n    \"gate\": \"store-backed build+check >= 2x copy-per-session\"\n  }},\n  \"dedup_bytes\": {{\n    \"fingerprints\": {FINGERPRINTS},\n    \"store_entries\": {},\n    \"first_fingerprint_bytes\": {first_bytes},\n    \"marginal_bytes_per_fingerprint\": {marginal_bytes},\n    \"gate\": \"marginal bytes < half the first fingerprint's (sub-linear growth)\"\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        fingerprints.len(),
        COMPONENTS + FINGERPRINTS,
    );
    let out_path = "BENCH_shard_store.json";
    std::fs::write(out_path, &json).map_err(|e| e.to_string())?;

    Ok(vec![
        "extension: content-address shards in a shared store (two-tier sessions, cold eviction)"
            .into(),
        format!(
            "measured: {DELTA_STEPS}-step delta walk over distinct fingerprints re-attaches >= {min_step_hits}/{COMPONENTS} shards per step (gate >=60)"
        ),
        format!(
            "measured: warmed store build+check {stored_us:.0}us vs copy-per-session {private_us:.0}us -> {store_speedup:.1}x (gate >=2x)"
        ),
        format!(
            "measured: {FINGERPRINTS} fingerprints x {COMPONENTS} shared chains resident in {} entries, marginal {marginal_bytes}B per fingerprint vs {first_bytes}B first (gate < half); {out_path} rewritten",
            COMPONENTS + FINGERPRINTS,
        ),
    ])
}
