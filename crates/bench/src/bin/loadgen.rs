//! `loadgen` — closed-loop load generator for a running `rpr serve`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--clients N] [--duration-s S]
//!         [--max-work N] [--timeout-ms MS] [--json PATH]
//!         [--require-cache-hits] FILE.rpr [FILE.rpr …]
//! ```
//!
//! Each client POSTs the given workspace files to `/check` round-robin
//! and waits for the full response before sending the next. At the end
//! the tool prints throughput, latency quantiles and the per-status
//! breakdown, scrapes the server's `/metrics` to report the session
//! cache hit rate, and exits non-zero if any request was *lost* (a
//! transport error instead of an HTTP status — the serving contract
//! says that never happens) or, with `--require-cache-hits`, if the
//! repeated-workspace traffic somehow missed the session cache.

use rpr_bench::load::{check_body, run_load, scrape_counter, LoadBody, LoadSpec};
use std::time::Duration;

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    opt_value(args, flag).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = opt_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let addr = addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_owned();
    let clients: usize = opt_parse(&args, "--clients").unwrap_or(8);
    let duration_s: u64 = opt_parse(&args, "--duration-s").unwrap_or(10);
    let max_work: Option<u64> = opt_parse(&args, "--max-work");
    let timeout_ms: Option<u64> = opt_parse(&args, "--timeout-ms");
    let json_path = opt_value(&args, "--json");
    let require_cache_hits = args.iter().any(|a| a == "--require-cache-hits");

    // Positional arguments (not values of the flags above) are files.
    let mut files = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = a != "--require-cache-hits"
                && matches!(args.get(i + 1), Some(v) if !v.starts_with("--"));
            continue;
        }
        files.push(a.clone());
    }
    if files.is_empty() {
        eprintln!("loadgen: no workspace files given");
        std::process::exit(1);
    }

    let bodies: Vec<LoadBody> = files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {f}: {e}");
                std::process::exit(1);
            });
            LoadBody {
                label: f.rsplit('/').next().unwrap_or(f).to_owned(),
                path: "/check".to_owned(),
                body: check_body(&text, max_work, timeout_ms),
            }
        })
        .collect();

    let hits_before = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0);
    let spec =
        LoadSpec { addr: addr.clone(), bodies, clients, duration: Duration::from_secs(duration_s) };
    println!(
        "loadgen: {clients} client(s) × {duration_s}s against {addr} ({} workload(s))",
        files.len()
    );
    let stats = run_load(&spec);

    let hits = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0) - hits_before;
    let hit_rate = hits as f64 / (stats.completed.max(1)) as f64;
    println!(
        "loadgen: {} completed, {} lost, {:.1} req/s; p50 {:.2?} p95 {:.2?} p99 {:.2?}",
        stats.completed,
        stats.lost,
        stats.throughput(),
        stats.quantile(0.50),
        stats.quantile(0.95),
        stats.quantile(0.99),
    );
    for (code, n) in &stats.statuses {
        println!("loadgen:   status {code}: {n}");
    }
    println!("loadgen: cache hits {hits} ({:.1}% of completed)", hit_rate * 100.0);

    if let Some(path) = json_path {
        let statuses = stats
            .statuses
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"clients\": {clients},\n  \"duration_s\": {duration_s},\n  \"completed\": {},\n  \"lost\": {},\n  \"throughput_rps\": {:.2},\n  \"p50_ms\": {:.3},\n  \"p95_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"statuses\": {{{statuses}}},\n  \"cache_hits\": {hits},\n  \"cache_hit_rate\": {hit_rate:.4}\n}}\n",
            stats.completed,
            stats.lost,
            stats.throughput(),
            stats.quantile(0.50).as_secs_f64() * 1e3,
            stats.quantile(0.95).as_secs_f64() * 1e3,
            stats.quantile(0.99).as_secs_f64() * 1e3,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("loadgen: wrote {path}");
    }

    if stats.lost > 0 {
        eprintln!("loadgen: FAIL — {} request(s) lost to transport errors", stats.lost);
        std::process::exit(1);
    }
    if require_cache_hits && hits == 0 && stats.completed > files.len() as u64 {
        eprintln!("loadgen: FAIL — repeated traffic produced zero session-cache hits");
        std::process::exit(1);
    }
}
