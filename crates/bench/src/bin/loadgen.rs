//! `loadgen` — closed-loop load generator for a running `rpr serve`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--clients N] [--duration-s S]
//!         [--max-work N] [--timeout-ms MS] [--json PATH]
//!         [--no-keepalive] [--certify]
//!         [--require-cache-hits] [--require-reconcile]
//!         FILE.rpr [FILE.rpr …]
//! ```
//!
//! Each client POSTs the given workspace files to `/check` round-robin
//! over one persistent keep-alive connection, waiting for the full
//! response before sending the next; `--no-keepalive` opens a fresh
//! connection per request (the pre-keep-alive baseline). At the end
//! the tool prints throughput, the latency histogram (p50/p90/p99/max)
//! and the per-status breakdown, scrapes the server's `/metrics` to
//! report the session cache hit rate and to reconcile the server's
//! `rpr_requests_total` delta against what was sent, and exits
//! non-zero if any request was *lost* (a transport error instead of an
//! HTTP status — the serving contract says that never happens), if
//! `--require-cache-hits` is set and the repeated-workspace traffic
//! missed the session cache, or if `--require-reconcile` is set and
//! the counter delta disagrees with the client-side count (only
//! meaningful when loadgen is the server's sole client).

use rpr_bench::load::{check_body, run_load, scrape_counter, LoadBody, LoadSpec};
use std::time::Duration;

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    opt_value(args, flag).and_then(|v| v.parse().ok())
}

/// Flags that take no value (everything after any other `--flag` is
/// that flag's value, not a positional file).
const BARE_FLAGS: [&str; 4] =
    ["--no-keepalive", "--certify", "--require-cache-hits", "--require-reconcile"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = opt_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let addr = addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_owned();
    let clients: usize = opt_parse(&args, "--clients").unwrap_or(8);
    let duration_s: u64 = opt_parse(&args, "--duration-s").unwrap_or(10);
    let max_work: Option<u64> = opt_parse(&args, "--max-work");
    let timeout_ms: Option<u64> = opt_parse(&args, "--timeout-ms");
    let json_path = opt_value(&args, "--json");
    let keepalive = !args.iter().any(|a| a == "--no-keepalive");
    let certify = args.iter().any(|a| a == "--certify");
    let require_cache_hits = args.iter().any(|a| a == "--require-cache-hits");
    let require_reconcile = args.iter().any(|a| a == "--require-reconcile");

    // Positional arguments (not values of the flags above) are files.
    let mut files = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BARE_FLAGS.contains(&a.as_str())
                && matches!(args.get(i + 1), Some(v) if !v.starts_with("--"));
            continue;
        }
        files.push(a.clone());
    }
    if files.is_empty() {
        eprintln!("loadgen: no workspace files given");
        std::process::exit(1);
    }

    let bodies: Vec<LoadBody> = files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {f}: {e}");
                std::process::exit(1);
            });
            LoadBody {
                label: f.rsplit('/').next().unwrap_or(f).to_owned(),
                path: "/check".to_owned(),
                body: check_body(&text, max_work, timeout_ms, certify),
            }
        })
        .collect();

    // Each `/metrics` scrape is itself a request and counts itself in
    // the value it returns (the counter bumps before rendering), so
    // the reconciliation below must account for the scrapes loadgen
    // issues between the two `requests_total` readings.
    let requests_before = scrape_counter(&addr, "rpr_requests_total");
    let hits_before = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0);
    let issued_before = scrape_counter(&addr, "rpr_certificates_issued_total").unwrap_or(0);
    let audit_failures_before = scrape_counter(&addr, "rpr_audit_failures_total").unwrap_or(0);
    let spec = LoadSpec {
        addr: addr.clone(),
        bodies,
        clients,
        duration: Duration::from_secs(duration_s),
        keepalive,
    };
    println!(
        "loadgen: {clients} client(s) × {duration_s}s against {addr} ({} workload(s), {})",
        files.len(),
        if keepalive { "keep-alive" } else { "connection-per-request" },
    );
    let stats = run_load(&spec);

    let hits = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0) - hits_before;
    let issued =
        scrape_counter(&addr, "rpr_certificates_issued_total").unwrap_or(0) - issued_before;
    let audit_failures =
        scrape_counter(&addr, "rpr_audit_failures_total").unwrap_or(0) - audit_failures_before;
    let requests_after = scrape_counter(&addr, "rpr_requests_total");
    let hit_rate = hits as f64 / (stats.completed.max(1)) as f64;
    println!(
        "loadgen: {} completed, {} lost, {:.1} req/s; p50 {:.2?} p90 {:.2?} p99 {:.2?} max {:.2?}",
        stats.completed,
        stats.lost,
        stats.throughput(),
        stats.quantile(0.50),
        stats.quantile(0.90),
        stats.quantile(0.99),
        stats.max(),
    );
    for (code, n) in &stats.statuses {
        println!("loadgen:   status {code}: {n}");
    }
    println!("loadgen: cache hits {hits} ({:.1}% of completed)", hit_rate * 100.0);
    if certify {
        println!(
            "loadgen: certificates received {} (server issued {issued}, audit failures {audit_failures})",
            stats.certificates
        );
    }

    // Seven scrapes land between the two readings: the cache-hits /
    // certificates / audit-failures scrapes before the run, and the
    // same three plus the requests_total scrape after it.
    let expected_delta = stats.completed + 7;
    let reconciled = match (requests_before, requests_after) {
        (Some(before), Some(after)) => {
            let delta = after - before;
            println!(
                "loadgen: server counted {delta} request(s); expected {expected_delta} \
                 (completed + 7 scrapes){}",
                if delta == expected_delta { " — reconciled" } else { " — MISMATCH" },
            );
            delta == expected_delta
        }
        _ => {
            println!("loadgen: rpr_requests_total not scrapeable; reconciliation skipped");
            false
        }
    };
    // Certificate accounting must be exact in both directions: every
    // certificate the server says it issued reached a client, and no
    // audit failure went uncounted (when loadgen is the sole client).
    let certs_reconciled = issued == stats.certificates;
    if certify && !certs_reconciled {
        println!(
            "loadgen: certificate MISMATCH — server issued {issued}, clients saw {}",
            stats.certificates
        );
    }

    if let Some(path) = json_path {
        let statuses = stats
            .statuses
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"clients\": {clients},\n  \"duration_s\": {duration_s},\n  \"keepalive\": {keepalive},\n  \"completed\": {},\n  \"lost\": {},\n  \"throughput_rps\": {:.2},\n  \"p50_ms\": {:.3},\n  \"p90_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"max_ms\": {:.3},\n  \"statuses\": {{{statuses}}},\n  \"cache_hits\": {hits},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \"certificates\": {},\n  \"certificates_issued\": {issued},\n  \"audit_failures\": {audit_failures},\n  \"reconciled\": {reconciled}\n}}\n",
            stats.certificates,
            stats.completed,
            stats.lost,
            stats.throughput(),
            stats.quantile(0.50).as_secs_f64() * 1e3,
            stats.quantile(0.90).as_secs_f64() * 1e3,
            stats.quantile(0.99).as_secs_f64() * 1e3,
            stats.max().as_secs_f64() * 1e3,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("loadgen: wrote {path}");
    }

    if stats.lost > 0 {
        eprintln!("loadgen: FAIL — {} request(s) lost to transport errors", stats.lost);
        std::process::exit(1);
    }
    if require_cache_hits && hits == 0 && stats.completed > files.len() as u64 {
        eprintln!("loadgen: FAIL — repeated traffic produced zero session-cache hits");
        std::process::exit(1);
    }
    if require_reconcile && !reconciled {
        eprintln!("loadgen: FAIL — rpr_requests_total does not reconcile with requests sent");
        std::process::exit(1);
    }
    if require_reconcile && certify && !certs_reconciled {
        eprintln!(
            "loadgen: FAIL — rpr_certificates_issued_total does not reconcile with \
             certificates received"
        );
        std::process::exit(1);
    }
}
