//! `loadgen` — closed-loop load generator for a running `rpr serve`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7171 [--clients N] [--duration-s S]
//!         [--max-work N] [--timeout-ms MS] [--json PATH]
//!         [--no-keepalive] [--certify] [--delta] [--shard-reuse]
//!         [--require-cache-hits] [--require-reconcile]
//!         FILE.rpr [FILE.rpr …]
//! ```
//!
//! Each client POSTs the given workspace files to `/check` round-robin
//! over one persistent keep-alive connection, waiting for the full
//! response before sending the next; `--no-keepalive` opens a fresh
//! connection per request (the pre-keep-alive baseline). At the end
//! the tool prints throughput, the latency histogram (p50/p90/p99/max)
//! and the per-status breakdown, scrapes the server's `/metrics` to
//! report the session cache hit rate and to reconcile the server's
//! `rpr_requests_total` delta against what was sent, and exits
//! non-zero if any request was *lost* (a transport error instead of an
//! HTTP status — the serving contract says that never happens), if
//! `--require-cache-hits` is set and the repeated-workspace traffic
//! missed the session cache, or if `--require-reconcile` is set and
//! the counter delta disagrees with the client-side count (only
//! meaningful when loadgen is the server's sole client).
//!
//! `--delta` exercises `POST /delta` instead: each workspace is first
//! warmed into the session cache with one `/check`, then every request
//! applies a self-inverting `insert`+`delete` pair of a fresh fact —
//! the fingerprint is unchanged by each batch, so concurrent clients
//! can all address the session by its original fingerprint. Under
//! `--require-reconcile` the run additionally demands that every
//! request came back `200` and that the server's `rpr_delta_ops_total`
//! delta equals exactly two ops per completed request.
//!
//! `--shard-reuse` (implies `--delta`) additionally audits the shard
//! store: every delta re-attaches the session's shards, and since the
//! self-inverting batch leaves every component's content untouched,
//! each re-attach must hit the store once per nontrivial component —
//! so `rpr_shard_hits_total` must move by exactly
//! `rpr_session_components × completed`, `rpr_shard_store_entries`
//! must equal the component count (no duplicate shard artifacts),
//! `rpr_shard_evictions_total` must not move, and
//! `rpr_session_cache_bytes` must exceed `rpr_shard_store_bytes`
//! (dedup-aware: private session bytes + each shared shard once).
//! Under `--require-reconcile` any violation is a failing exit.

use rpr_bench::load::{check_body, run_load, scrape_counter, LoadBody, LoadSpec};
use std::time::Duration;

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn opt_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    opt_value(args, flag).and_then(|v| v.parse().ok())
}

/// Flags that take no value (everything after any other `--flag` is
/// that flag's value, not a positional file).
const BARE_FLAGS: [&str; 6] = [
    "--no-keepalive",
    "--certify",
    "--delta",
    "--shard-reuse",
    "--require-cache-hits",
    "--require-reconcile",
];

/// Builds the `/delta` body for one workspace: a self-inverting
/// `insert`+`delete` pair of a fact provably absent from the instance,
/// addressed by the workspace's canonical fingerprint. Applying the
/// pair leaves the fingerprint unchanged, so the same body stays valid
/// for the whole run no matter how the clients interleave.
fn delta_body(ws: &rpr_format::Workspace) -> String {
    let sig = ws.instance.signature();
    let (_, sym) = sig.iter().next().expect("workspace signature has a relation");
    let (name, arity) = (sym.name().to_owned(), sym.arity());
    let mut base = 9_000_000_000i64;
    let fact_text = loop {
        let values: Vec<rpr_data::Value> = (0..arity as i64).map(|j| (base + j).into()).collect();
        let fact = rpr_data::Fact::parse_new(sig, &name, values.clone())
            .expect("fresh fact matches its own signature");
        if ws.instance.id_of(&fact).is_none() {
            let rendered: Vec<String> = (0..arity as i64).map(|j| (base + j).to_string()).collect();
            break format!("{name}({})", rendered.join(", "));
        }
        base += arity as i64;
    };
    let fp = rpr_format::workspace_fingerprint(ws).to_hex();
    rpr_serve::Json::obj([
        ("fingerprint", rpr_serve::Json::str(fp)),
        (
            "ops",
            rpr_serve::Json::Arr(vec![
                rpr_serve::Json::str(format!("insert {fact_text}")),
                rpr_serve::Json::str(format!("delete {fact_text}")),
            ]),
        ),
    ])
    .render()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = opt_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let addr = addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_owned();
    let clients: usize = opt_parse(&args, "--clients").unwrap_or(8);
    let duration_s: u64 = opt_parse(&args, "--duration-s").unwrap_or(10);
    let max_work: Option<u64> = opt_parse(&args, "--max-work");
    let timeout_ms: Option<u64> = opt_parse(&args, "--timeout-ms");
    let json_path = opt_value(&args, "--json");
    let keepalive = !args.iter().any(|a| a == "--no-keepalive");
    let certify = args.iter().any(|a| a == "--certify");
    let shard_reuse = args.iter().any(|a| a == "--shard-reuse");
    let delta = shard_reuse || args.iter().any(|a| a == "--delta");
    let require_cache_hits = args.iter().any(|a| a == "--require-cache-hits");
    let require_reconcile = args.iter().any(|a| a == "--require-reconcile");

    // Positional arguments (not values of the flags above) are files.
    let mut files = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BARE_FLAGS.contains(&a.as_str())
                && matches!(args.get(i + 1), Some(v) if !v.starts_with("--"));
            continue;
        }
        files.push(a.clone());
    }
    if files.is_empty() {
        eprintln!("loadgen: no workspace files given");
        std::process::exit(1);
    }

    let texts: Vec<(String, String)> = files
        .iter()
        .map(|f| {
            let text = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {f}: {e}");
                std::process::exit(1);
            });
            (f.rsplit('/').next().unwrap_or(f).to_owned(), text)
        })
        .collect();
    let bodies: Vec<LoadBody> = texts
        .iter()
        .map(|(label, text)| {
            let (path, body) = if delta {
                let ws = rpr_format::parse_workspace(text).unwrap_or_else(|e| {
                    eprintln!("loadgen: {label} does not parse: {e}");
                    std::process::exit(1);
                });
                ("/delta".to_owned(), delta_body(&ws))
            } else {
                ("/check".to_owned(), check_body(text, max_work, timeout_ms, certify))
            };
            LoadBody { label: label.clone(), path, body }
        })
        .collect();

    // Delta traffic addresses sessions by fingerprint, so each
    // workspace must already sit in the server's cache; warm them
    // before the first metrics scrape so the warm-up requests stay out
    // of the reconciliation window.
    if delta {
        for (label, text) in &texts {
            let body = check_body(text, max_work, timeout_ms, false);
            match rpr_serve::client_call(&addr, "POST", "/check", body.as_bytes()) {
                Ok((200, _)) => {}
                Ok((status, response)) => {
                    eprintln!(
                        "loadgen: warm-up /check of {label} got {status}: {}",
                        String::from_utf8_lossy(&response)
                    );
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("loadgen: warm-up /check of {label} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("loadgen: warmed {} session(s) via /check", texts.len());
    }

    // Each `/metrics` scrape is itself a request and counts itself in
    // the value it returns (the counter bumps before rendering), so
    // the reconciliation below must account for the scrapes loadgen
    // issues between the two `requests_total` readings.
    let requests_before = scrape_counter(&addr, "rpr_requests_total");
    let hits_before = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0);
    let issued_before = scrape_counter(&addr, "rpr_certificates_issued_total").unwrap_or(0);
    let audit_failures_before = scrape_counter(&addr, "rpr_audit_failures_total").unwrap_or(0);
    let delta_ops_before =
        if delta { scrape_counter(&addr, "rpr_delta_ops_total").unwrap_or(0) } else { 0 };
    let component_skips_before =
        if delta { scrape_counter(&addr, "rpr_component_skips_total").unwrap_or(0) } else { 0 };
    let shard_hits_before =
        if shard_reuse { scrape_counter(&addr, "rpr_shard_hits_total").unwrap_or(0) } else { 0 };
    let shard_evictions_before = if shard_reuse {
        scrape_counter(&addr, "rpr_shard_evictions_total").unwrap_or(0)
    } else {
        0
    };
    let spec = LoadSpec {
        addr: addr.clone(),
        bodies,
        clients,
        duration: Duration::from_secs(duration_s),
        keepalive,
    };
    println!(
        "loadgen: {clients} client(s) × {duration_s}s against {addr} ({} workload(s), {})",
        files.len(),
        if keepalive { "keep-alive" } else { "connection-per-request" },
    );
    let stats = run_load(&spec);

    let hits = scrape_counter(&addr, "rpr_cache_hits_total").unwrap_or(0) - hits_before;
    let issued =
        scrape_counter(&addr, "rpr_certificates_issued_total").unwrap_or(0) - issued_before;
    let audit_failures =
        scrape_counter(&addr, "rpr_audit_failures_total").unwrap_or(0) - audit_failures_before;
    let delta_ops = if delta {
        scrape_counter(&addr, "rpr_delta_ops_total").unwrap_or(0) - delta_ops_before
    } else {
        0
    };
    let component_skips = if delta {
        scrape_counter(&addr, "rpr_component_skips_total").unwrap_or(0) - component_skips_before
    } else {
        0
    };
    let session_components =
        if delta { scrape_counter(&addr, "rpr_session_components").unwrap_or(0) } else { 0 };
    let (shard_hits, shard_evictions, shard_entries, shard_bytes, session_bytes) = if shard_reuse {
        (
            scrape_counter(&addr, "rpr_shard_hits_total").unwrap_or(0) - shard_hits_before,
            scrape_counter(&addr, "rpr_shard_evictions_total").unwrap_or(0)
                - shard_evictions_before,
            scrape_counter(&addr, "rpr_shard_store_entries").unwrap_or(0),
            scrape_counter(&addr, "rpr_shard_store_bytes").unwrap_or(0),
            scrape_counter(&addr, "rpr_session_cache_bytes").unwrap_or(0),
        )
    } else {
        (0, 0, 0, 0, 0)
    };
    let requests_after = scrape_counter(&addr, "rpr_requests_total");
    let hit_rate = hits as f64 / (stats.completed.max(1)) as f64;
    println!(
        "loadgen: {} completed, {} lost, {:.1} req/s; p50 {:.2?} p90 {:.2?} p99 {:.2?} max {:.2?}",
        stats.completed,
        stats.lost,
        stats.throughput(),
        stats.quantile(0.50),
        stats.quantile(0.90),
        stats.quantile(0.99),
        stats.max(),
    );
    for (code, n) in &stats.statuses {
        println!("loadgen:   status {code}: {n}");
    }
    println!("loadgen: cache hits {hits} ({:.1}% of completed)", hit_rate * 100.0);
    if delta {
        println!(
            "loadgen: delta ops applied {delta_ops} (expected {} = 2 × the 200s)",
            2 * stats.status(200)
        );
        println!(
            "loadgen: session shards {session_components}, component skips {component_skips} \
             (expected {} = shards × the 200s)",
            session_components * stats.status(200)
        );
    }
    if shard_reuse {
        println!(
            "loadgen: shard store hits {shard_hits} (expected {} = components × the 200s), \
             entries {shard_entries}, bytes {shard_bytes}, evictions {shard_evictions}, \
             session bytes {session_bytes}",
            session_components * stats.status(200)
        );
    }
    if certify {
        println!(
            "loadgen: certificates received {} (server issued {issued}, audit failures {audit_failures})",
            stats.certificates
        );
    }

    // Seven scrapes land between the two readings: the cache-hits /
    // certificates / audit-failures scrapes before the run, and the
    // same three plus the requests_total scrape after it. Delta mode
    // adds its ops and component-skips scrapes on each side plus the
    // shard-gauge scrape after the run; shard-reuse mode adds its two
    // counter scrapes before and five store scrapes after.
    let expected_delta =
        stats.completed + 7 + if delta { 5 } else { 0 } + if shard_reuse { 7 } else { 0 };
    let reconciled = match (requests_before, requests_after) {
        (Some(before), Some(after)) => {
            let counted = after - before;
            println!(
                "loadgen: server counted {counted} request(s); expected {expected_delta} \
                 (completed + scrapes){}",
                if counted == expected_delta { " — reconciled" } else { " — MISMATCH" },
            );
            counted == expected_delta
        }
        _ => {
            println!("loadgen: rpr_requests_total not scrapeable; reconciliation skipped");
            false
        }
    };
    // Certificate accounting must be exact in both directions: every
    // certificate the server says it issued reached a client, and no
    // audit failure went uncounted (when loadgen is the sole client).
    let certs_reconciled = issued == stats.certificates;
    if certify && !certs_reconciled {
        println!(
            "loadgen: certificate MISMATCH — server issued {issued}, clients saw {}",
            stats.certificates
        );
    }
    // Delta accounting: nothing but 200s (every op batch applied), and
    // the server's op counter moved by exactly two per request.
    let delta_reconciled =
        !delta || (stats.status(200) == stats.completed && delta_ops == 2 * stats.completed);
    if delta && !delta_reconciled {
        println!(
            "loadgen: delta MISMATCH — {} of {} requests returned 200, \
             rpr_delta_ops_total moved by {delta_ops} (expected {})",
            stats.status(200),
            stats.completed,
            2 * stats.completed
        );
    }
    // Shard accounting: each self-inverting batch leaves every
    // nontrivial component untouched, so the dirty-shard tracker must
    // report all of them reused on every request.
    let shards_reconciled = !delta || component_skips == session_components * stats.completed;
    if delta && !shards_reconciled {
        println!(
            "loadgen: shard MISMATCH — rpr_component_skips_total moved by {component_skips} \
             (expected {} = {session_components} shard(s) × {} request(s))",
            session_components * stats.completed,
            stats.completed
        );
    }
    // Shard-store accounting: every re-attach must find all of its
    // shards already resident (one hit per nontrivial component, no
    // duplicate entries, no evictions without a ceiling), and the
    // dedup-aware session bytes must dominate the store's share.
    let store_reconciled = !shard_reuse
        || (shard_hits == session_components * stats.completed
            && shard_entries == session_components
            && shard_evictions == 0
            && shard_bytes > 0
            && session_bytes > shard_bytes);
    if shard_reuse && !store_reconciled {
        println!(
            "loadgen: shard store MISMATCH — hits {shard_hits} (expected {}), \
             entries {shard_entries} (expected {session_components}), \
             evictions {shard_evictions} (expected 0), bytes {shard_bytes} (expected > 0), \
             session bytes {session_bytes} (expected > store bytes)",
            session_components * stats.completed,
        );
    }

    if let Some(path) = json_path {
        let statuses = stats
            .statuses
            .iter()
            .map(|(c, n)| format!("\"{c}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let json = format!(
            "{{\n  \"clients\": {clients},\n  \"duration_s\": {duration_s},\n  \"keepalive\": {keepalive},\n  \"completed\": {},\n  \"lost\": {},\n  \"throughput_rps\": {:.2},\n  \"p50_ms\": {:.3},\n  \"p90_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"max_ms\": {:.3},\n  \"statuses\": {{{statuses}}},\n  \"cache_hits\": {hits},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \"certificates\": {},\n  \"certificates_issued\": {issued},\n  \"audit_failures\": {audit_failures},\n  \"delta_ops\": {delta_ops},\n  \"session_components\": {session_components},\n  \"component_skips\": {component_skips},\n  \"shard_hits\": {shard_hits},\n  \"shard_store_entries\": {shard_entries},\n  \"shard_store_bytes\": {shard_bytes},\n  \"shard_evictions\": {shard_evictions},\n  \"session_cache_bytes\": {session_bytes},\n  \"reconciled\": {reconciled}\n}}\n",
            stats.completed,
            stats.lost,
            stats.throughput(),
            stats.quantile(0.50).as_secs_f64() * 1e3,
            stats.quantile(0.90).as_secs_f64() * 1e3,
            stats.quantile(0.99).as_secs_f64() * 1e3,
            stats.max().as_secs_f64() * 1e3,
            stats.certificates,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("loadgen: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("loadgen: wrote {path}");
    }

    if stats.lost > 0 {
        eprintln!("loadgen: FAIL — {} request(s) lost to transport errors", stats.lost);
        std::process::exit(1);
    }
    if require_cache_hits && !delta && hits == 0 && stats.completed > files.len() as u64 {
        eprintln!("loadgen: FAIL — repeated traffic produced zero session-cache hits");
        std::process::exit(1);
    }
    if require_reconcile && !reconciled {
        eprintln!("loadgen: FAIL — rpr_requests_total does not reconcile with requests sent");
        std::process::exit(1);
    }
    if require_reconcile && !delta_reconciled {
        eprintln!("loadgen: FAIL — rpr_delta_ops_total does not reconcile with the /delta traffic");
        std::process::exit(1);
    }
    if require_reconcile && !shards_reconciled {
        eprintln!(
            "loadgen: FAIL — rpr_component_skips_total does not reconcile with \
             rpr_session_components × the /delta traffic"
        );
        std::process::exit(1);
    }
    if require_reconcile && !store_reconciled {
        eprintln!(
            "loadgen: FAIL — the shard-store metric families do not reconcile with \
             the /delta traffic"
        );
        std::process::exit(1);
    }
    if require_reconcile && certify && !certs_reconciled {
        eprintln!(
            "loadgen: FAIL — rpr_certificates_issued_total does not reconcile with \
             certificates received"
        );
        std::process::exit(1);
    }
}
