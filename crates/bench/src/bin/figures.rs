//! Generates the CSV data series behind the EXPERIMENTS.md plots:
//!
//! * `dichotomy.csv` — polynomial checkers vs exact search over `n`
//!   (the wall-clock form of Theorem 3.1, experiment E17);
//! * `poly_scaling.csv` — every polynomial checker to 6400 facts;
//! * `semantics_pruning.csv` — repair counts per semantics (E21);
//! * `classifier.csv` — Theorem 6.1/7.6 classification time vs schema
//!   width.
//!
//! Usage: `cargo run --release -p rpr-bench --bin figures [OUT_DIR]`
//! (default `target/figures`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpr_bench::{
    ccp_pk_workload, hard_s4_workload, single_fd_workload, two_keys_workload, Workload,
};
use rpr_classify::{classify_schema, classify_schema_ccp};
use rpr_core::{
    check_global_exact, enumerate_repairs, is_completion_optimal, is_globally_optimal_brute,
    is_pareto_optimal, CcpChecker, GRepairChecker,
};
use rpr_gen::random_schema;
use rpr_priority::{PrioritizedInstance, PriorityRelation};
use std::fmt::Write as _;
use std::time::Instant;

fn time_us<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn classical_check_time(w: &Workload, reps: u32) -> f64 {
    let checker = GRepairChecker::new(w.schema.clone());
    let pi =
        PrioritizedInstance::conflict_restricted(&w.schema, w.instance.clone(), w.priority.clone())
            .expect("workload priorities are conflict-restricted");
    time_us(reps, || checker.check(&pi, &w.j).unwrap().is_optimal())
}

fn dichotomy_csv() -> String {
    let mut out = String::from("n,grepcheck_1fd_us,grepcheck_2keys_us,s4_exact_us\n");
    for &n in &[10usize, 14, 18, 22, 26, 30, 34, 38, 42] {
        let t1 = classical_check_time(&single_fd_workload(n, 3, 0.6, 17), 50);
        let t2 = classical_check_time(&two_keys_workload(n, (n as u32) / 2, 0.6, 17), 50);
        let wh = hard_s4_workload(n, 3, 0.6, 17);
        let cg = wh.conflict_graph();
        let empty = PriorityRelation::empty(wh.instance.len());
        let t3 = time_us(3, || {
            check_global_exact(&cg, &empty, &wh.instance.full_set(), &wh.j, 1 << 30)
                .unwrap()
                .is_optimal()
        });
        let _ = writeln!(out, "{n},{t1:.2},{t2:.2},{t3:.2}");
    }
    out
}

fn poly_scaling_csv() -> String {
    let mut out =
        String::from("n,grepcheck_1fd_us,grepcheck_2keys_us,ccp_pk_us,pareto_us,completion_us\n");
    for &n in &[100usize, 200, 400, 800, 1600, 3200, 6400] {
        let w1 = single_fd_workload(n, 6, 0.6, 42);
        let t1 = classical_check_time(&w1, 10);
        let w2 = two_keys_workload(n, (n as u32 / 4).max(2), 0.6, 43);
        let t2 = classical_check_time(&w2, 10);
        let w3 = ccp_pk_workload(n, (n as u32 / 6).max(2), n, 47);
        let checker = CcpChecker::new(w3.schema.clone());
        let pi = PrioritizedInstance::cross_conflict(w3.instance.clone(), w3.priority.clone());
        let t3 = time_us(10, || checker.check(&pi, &w3.j).unwrap().is_optimal());
        let cg1 = w1.conflict_graph();
        let t4 = time_us(10, || is_pareto_optimal(&cg1, &w1.priority, &w1.j));
        let t5 = time_us(10, || is_completion_optimal(&cg1, &w1.priority, &w1.j));
        let _ = writeln!(out, "{n},{t1:.2},{t2:.2},{t3:.2},{t4:.2},{t5:.2}");
    }
    out
}

fn semantics_pruning_csv() -> String {
    let mut out = String::from("seed,repairs,pareto,global,completion\n");
    for seed in 0..40u64 {
        let w = single_fd_workload(9, 3, 0.5, 3000 + seed);
        let cg = w.conflict_graph();
        let all = enumerate_repairs(&cg, 1 << 22).unwrap();
        let pareto = all.iter().filter(|j| is_pareto_optimal(&cg, &w.priority, j)).count();
        let global = all
            .iter()
            .filter(|j| is_globally_optimal_brute(&cg, &w.priority, j, 1 << 22).unwrap())
            .count();
        let completion = all.iter().filter(|j| is_completion_optimal(&cg, &w.priority, j)).count();
        let _ = writeln!(out, "{seed},{},{pareto},{global},{completion}", all.len());
    }
    out
}

fn classifier_csv() -> String {
    let mut out = String::from("arity,fds,theorem_3_1_us,theorem_7_1_us\n");
    for &(arity, n_fds) in
        &[(4usize, 4usize), (8, 8), (16, 16), (24, 24), (32, 32), (48, 48), (64, 64)]
    {
        let mut rng = StdRng::seed_from_u64(49);
        let schema = random_schema(&mut rng, arity, n_fds, 4);
        let t1 = time_us(200, || classify_schema(&schema).complexity());
        let t2 = time_us(200, || classify_schema_ccp(&schema).complexity());
        let _ = writeln!(out, "{arity},{n_fds},{t1:.2},{t2:.2}");
    }
    out
}

fn main() -> std::io::Result<()> {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "target/figures".to_owned());
    std::fs::create_dir_all(&dir)?;
    for (name, data) in [
        ("dichotomy.csv", dichotomy_csv()),
        ("poly_scaling.csv", poly_scaling_csv()),
        ("semantics_pruning.csv", semantics_pruning_csv()),
        ("classifier.csv", classifier_csv()),
    ] {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, &data)?;
        println!("wrote {path} ({} rows)", data.lines().count() - 1);
    }
    Ok(())
}
