//! Closed-loop HTTP load generation against a running `rpr serve`.
//!
//! Shared by the `loadgen` binary and experiments e26/e28: `clients`
//! threads each send one request, wait for the full response, and
//! immediately send the next (closed loop — offered load adapts to
//! service rate, so the server is saturated but never flooded). By
//! default each client holds one **keep-alive** connection for the
//! whole run; `keepalive: false` reproduces the old
//! connection-per-request baseline. Every response is accounted for:
//! the serving contract is that each request ends in an HTTP status
//! (200 done, 422 budget-exceeded with partial, 503 drain/saturation,
//! 4xx/5xx otherwise) — a transport error is a *lost* request and
//! callers treat any of those as failure.

use rpr_serve::{client_call, HttpClient};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One request the generator cycles through.
#[derive(Clone, Debug)]
pub struct LoadBody {
    /// A short tag used in reports (e.g. the workload file stem).
    pub label: String,
    /// Endpoint path (`/check`, `/classify`, `/cqa`).
    pub path: String,
    /// The JSON body to POST.
    pub body: String,
}

/// What to run: where, with how many clients, for how long.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Server address (`host:port`).
    pub addr: String,
    /// The request mix, cycled round-robin per client.
    pub bodies: Vec<LoadBody>,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// How long to keep offering load.
    pub duration: Duration,
    /// Reuse one connection per client (HTTP/1.1 keep-alive); `false`
    /// opens a fresh connection per request, reproducing the pre-
    /// keep-alive baseline.
    pub keepalive: bool,
}

/// Aggregated results of one load run.
#[derive(Clone, Debug)]
pub struct LoadStats {
    /// Completed requests (an HTTP status came back).
    pub completed: u64,
    /// Requests lost to transport errors (connect/read/write failed).
    pub lost: u64,
    /// Completed requests per HTTP status.
    pub statuses: BTreeMap<u16, u64>,
    /// Certificates observed in response bodies (`certify` traffic);
    /// reconciles against the server's `rpr_certificates_issued_total`.
    pub certificates: u64,
    /// Wall-clock time actually spent offering load.
    pub elapsed: Duration,
    /// End-to-end request latencies, sorted ascending.
    pub latencies: Vec<Duration>,
}

impl LoadStats {
    /// Completed requests per second over the run.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `q`-quantile latency (`0.5` = p50), by nearest-rank.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((self.latencies.len() as f64) * q).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }

    /// The slowest observed request.
    pub fn max(&self) -> Duration {
        self.latencies.last().copied().unwrap_or(Duration::ZERO)
    }

    /// Count for one status code.
    pub fn status(&self, code: u16) -> u64 {
        self.statuses.get(&code).copied().unwrap_or(0)
    }
}

/// Per-client tallies before aggregation: completed, lost, statuses,
/// certificates, latencies.
type ClientTally = (u64, u64, BTreeMap<u16, u64>, u64, Vec<Duration>);

/// Counts the `certificate` fields in a `/check` response body. The
/// field value is an escaped JSON string, so the raw pattern cannot
/// appear inside a certificate itself — a plain byte scan is exact.
fn count_certificates(body: &[u8]) -> u64 {
    const PATTERN: &[u8] = b"\"certificate\":";
    body.windows(PATTERN.len()).filter(|w| *w == PATTERN).count() as u64
}

/// Runs the closed loop and aggregates every client's observations.
pub fn run_load(spec: &LoadSpec) -> LoadStats {
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let mut per_client: Vec<ClientTally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_id in 0..spec.clients.max(1) {
            let stop = &stop;
            let spec = &spec;
            handles.push(scope.spawn(move || {
                let mut completed = 0u64;
                let mut lost = 0u64;
                let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
                let mut certificates = 0u64;
                let mut latencies = Vec::new();
                // Stagger starting positions so clients don't sweep the
                // mix in lockstep.
                let mut next = client_id % spec.bodies.len().max(1);
                // One persistent connection per client in keep-alive
                // mode (re-established transparently if the server
                // closes it: idle timeout, request cap, drain).
                let mut session = HttpClient::new(spec.addr.clone());
                while !stop.load(Ordering::Relaxed) {
                    let body = &spec.bodies[next];
                    next = (next + 1) % spec.bodies.len();
                    let t = Instant::now();
                    let result = if spec.keepalive {
                        session.call("POST", &body.path, body.body.as_bytes())
                    } else {
                        client_call(&spec.addr, "POST", &body.path, body.body.as_bytes())
                    };
                    match result {
                        Ok((status, response)) => {
                            completed += 1;
                            *statuses.entry(status).or_insert(0) += 1;
                            certificates += count_certificates(&response);
                            latencies.push(t.elapsed());
                        }
                        Err(_) => lost += 1,
                    }
                }
                (completed, lost, statuses, certificates, latencies)
            }));
        }
        std::thread::sleep(spec.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            per_client.push(h.join().expect("load client panicked"));
        }
    });
    let elapsed = started.elapsed();

    let mut stats = LoadStats {
        completed: 0,
        lost: 0,
        statuses: BTreeMap::new(),
        certificates: 0,
        elapsed,
        latencies: Vec::new(),
    };
    for (completed, lost, statuses, certificates, latencies) in per_client {
        stats.completed += completed;
        stats.lost += lost;
        for (code, n) in statuses {
            *stats.statuses.entry(code).or_insert(0) += n;
        }
        stats.certificates += certificates;
        stats.latencies.extend(latencies);
    }
    stats.latencies.sort();
    stats
}

/// Reads a Prometheus counter out of a `/metrics` exposition.
pub fn scrape_counter(addr: &str, name: &str) -> Option<u64> {
    let (status, body) = client_call(addr, "GET", "/metrics", b"").ok()?;
    if status != 200 {
        return None;
    }
    let text = String::from_utf8(body).ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
}

/// Builds a `/check` body from workspace text plus optional budget
/// overrides (the JSON escaping lives in `rpr_serve::Json`); `certify`
/// asks the server to attach a verdict certificate per candidate.
pub fn check_body(
    workspace_text: &str,
    max_work: Option<u64>,
    timeout_ms: Option<u64>,
    certify: bool,
) -> String {
    let mut fields = vec![("workspace".to_owned(), rpr_serve::Json::str(workspace_text))];
    if let Some(w) = max_work {
        fields.push(("max_work".to_owned(), rpr_serve::Json::Int(w as i64)));
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".to_owned(), rpr_serve::Json::Int(ms as i64)));
    }
    if certify {
        fields.push(("certify".to_owned(), rpr_serve::Json::Bool(true)));
    }
    rpr_serve::Json::Obj(fields.into_iter().collect()).render()
}
